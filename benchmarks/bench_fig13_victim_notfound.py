"""Figure 13 — victim-not-found fraction vs interval length (quad)."""

from conftest import INSTRUCTIONS, mixes_subset

from repro.experiments import fig13_victim_notfound
from repro.workloads.mixes import mixes_for_cores


def test_fig13_victim_not_found(benchmark, report):
    mixes = mixes_subset(mixes_for_cores(4))
    result = benchmark.pedantic(
        lambda: fig13_victim_notfound.run(instructions=INSTRUCTIONS[4] * 2, mixes=mixes),
        rounds=1,
        iterations=1,
    )
    report(fig13_victim_notfound.format_result(result))
    averages = result["average"]
    # All rates are small fractions of replacements (paper: 2.5-3.8% at its
    # scale; higher here because the scaled sets hold fewer blocks/core).
    for value in averages.values():
        assert 0.0 <= value < 0.35
    # The trend the paper reports: the longest interval has a not-found
    # rate no worse than the shortest.
    mults = sorted(result["interval_multipliers"])
    assert averages[f"w{mults[-1]}"] <= averages[f"w{mults[0]}"] + 0.02
