"""Figure 11 — stability of PriSM-H eviction probabilities (quad)."""

from conftest import INSTRUCTIONS, mixes_subset

from repro.experiments import fig11_evprob
from repro.workloads.mixes import mixes_for_cores


def test_fig11_probability_stability(benchmark, report):
    mixes = mixes_subset(mixes_for_cores(4))
    result = benchmark.pedantic(
        lambda: fig11_evprob.run(instructions=INSTRUCTIONS[4] * 2, mixes=mixes),
        rounds=1,
        iterations=1,
    )
    report(fig11_evprob.format_result(result))
    # The paper's reading: probabilities settle — std is small relative to
    # the [0,1] range for the large majority of (mix, benchmark) pairs.
    rows = result["rows"]
    stable = sum(1 for r in rows if r["std"] < 0.15)
    assert stable >= 0.8 * len(rows)
    assert result["recomputations_min"] > 10
