"""Figure 6 — PriSM-H with 16 cores on a 16-way cache (cores == ways)."""

from conftest import INSTRUCTIONS, mixes_subset

from repro.experiments import fig06_cores_eq_ways
from repro.workloads.mixes import mixes_for_cores


def test_fig6_cores_equal_ways(benchmark, report):
    mixes = mixes_subset(mixes_for_cores(16))
    result = benchmark.pedantic(
        lambda: fig06_cores_eq_ways.run(instructions=INSTRUCTIONS[16], mixes=mixes),
        rounds=1,
        iterations=1,
    )
    report(fig06_cores_eq_ways.format_result(result))
    # Way-partitioning is degenerate here (1 way per core is the only
    # choice); PriSM still improves on LRU on geomean (paper: +14.8%).
    assert result["geomean"] < 1.0
