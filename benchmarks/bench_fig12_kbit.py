"""Figure 12 — K-bit eviction probabilities vs floating point (quad)."""

from conftest import INSTRUCTIONS, mixes_subset

from repro.experiments import fig12_kbit
from repro.workloads.mixes import mixes_for_cores


def test_fig12_kbit_probabilities(benchmark, report):
    mixes = mixes_subset(mixes_for_cores(4), limit=3)
    result = benchmark.pedantic(
        lambda: fig12_kbit.run(instructions=INSTRUCTIONS[4], mixes=mixes),
        rounds=1,
        iterations=1,
    )
    report(fig12_kbit.format_result(result))
    # Paper: 6-12 bit fixed point performs like float (ratios ~= 1).
    for bits in result["bit_widths"]:
        assert abs(result["geomean"][f"bits{bits}"] - 1.0) < 0.06
