"""Figure 3 — per-workload ANTT: PriSM-H vs UCP vs PIPP (quad + 32-core)."""

from conftest import INSTRUCTIONS, mixes_subset

from repro.experiments import fig03_percore
from repro.workloads.mixes import mixes_for_cores


def test_fig3_per_workload(benchmark, report):
    quad = mixes_subset(mixes_for_cores(4))
    big = mixes_subset(mixes_for_cores(32), limit=2)
    result = benchmark.pedantic(
        lambda: fig03_percore.run(
            instructions=INSTRUCTIONS[4], quad_mixes=quad, big_mixes=big
        ),
        rounds=1,
        iterations=1,
    )
    report(fig03_percore.format_result(result))
    # PriSM-H beats LRU on geomean in both panels.
    assert result["quad"]["geomean"]["prism_h"] < 1.0
    assert result["thirtytwo"]["geomean"]["prism_h"] < 1.0
    # The paper's 32-core story: PIPP loses its quad-core edge at scale —
    # PriSM-H must be at least competitive with PIPP there.
    assert (
        result["thirtytwo"]["geomean"]["prism_h"]
        < result["thirtytwo"]["geomean"]["pipp"] + 0.05
    )
