"""Figure 7 — PriSM vs Vantage ANTT on timestamp-LRU (quad + 16-core)."""

from conftest import INSTRUCTIONS, mixes_subset

from repro.experiments import fig07_vantage
from repro.workloads.mixes import mixes_for_cores


def test_fig7_vantage(benchmark, report):
    quad = mixes_subset(mixes_for_cores(4))
    sixteen = mixes_subset(mixes_for_cores(16), limit=3)
    result = benchmark.pedantic(
        lambda: fig07_vantage.run(
            instructions=INSTRUCTIONS[4], quad_mixes=quad, sixteen_mixes=sixteen
        ),
        rounds=1,
        iterations=1,
    )
    report(fig07_vantage.format_result(result))
    # Paper: PriSM beats set-associative Vantage by 7.8% (quad) and 11.8%
    # (16-core) on geomean; require the win in both panels.
    assert result["quad"]["geomean"]["prism"] < result["quad"]["geomean"]["vantage"] * 1.02
    assert result["sixteen"]["geomean"]["prism"] < result["sixteen"]["geomean"]["vantage"]
