"""Section 5.6 — PriSM-H over a DIP baseline; TA-DIP comparison (quad)."""

from conftest import INSTRUCTIONS, mixes_subset

from repro.experiments import sec56_dip
from repro.workloads.mixes import mixes_for_cores


def test_sec56_dip_replacement(benchmark, report):
    mixes = mixes_subset(mixes_for_cores(4))
    result = benchmark.pedantic(
        lambda: sec56_dip.run(instructions=INSTRUCTIONS[4], mixes=mixes),
        rounds=1,
        iterations=1,
    )
    report(sec56_dip.format_result(result))
    g = result["geomean"]
    # Paper: PriSM-H over DIP improves on plain DIP by 8.9%; TA-DIP lands
    # about level with DIP.
    assert g["prism_h_dip"] < 1.0
    assert abs(g["tadip"] - 1.0) < 0.08
