"""Figure 2 — PriSM-H / PriSM-F summary across core counts."""

from conftest import INSTRUCTIONS, MIXES_PER_COUNT

from repro.experiments import fig02_summary


def test_fig2_summary(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig02_summary.run(
            instructions=INSTRUCTIONS, mixes_per_count=MIXES_PER_COUNT or None
        ),
        rounds=1,
        iterations=1,
    )
    report(fig02_summary.format_result(result))
    for row in result["rows"]:
        # PriSM-H improves on LRU at every core count (paper: 12.7-18.7%).
        assert row["prism_h_antt_vs_lru"] < 1.0
        if "fairness_prism_f" in row:
            # PriSM-F's fairness beats the LRU baseline (paper Fig. 2 right).
            assert row["fairness_prism_f"] > row["fairness_lru"] * 0.98
