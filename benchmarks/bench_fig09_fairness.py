"""Figure 9 — fairness: LRU vs way-partitioning [9] vs PriSM-F (16-core)."""

from conftest import INSTRUCTIONS, mixes_subset

from repro.experiments import fig09_fairness
from repro.workloads.mixes import mixes_for_cores


def test_fig9_fairness(benchmark, report):
    mixes = mixes_subset(mixes_for_cores(16))
    result = benchmark.pedantic(
        lambda: fig09_fairness.run(instructions=INSTRUCTIONS[16], mixes=mixes),
        rounds=1,
        iterations=1,
    )
    report(fig09_fairness.format_result(result))
    g = result["geomean"]
    # PriSM-F improves fairness over both LRU and the way-partitioning
    # fairness scheme (paper: +23.3% over way-partitioning at 16 cores)...
    assert g["prism_f"] > g["lru"]
    assert g["prism_f"] > g["waypart"] * 0.98
    # ...without sacrificing performance (paper: +19% ANTT vs LRU).
    assert g["prism_f_antt_vs_lru"] < 1.05
