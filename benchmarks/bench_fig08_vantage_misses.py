"""Figure 8 — per-benchmark misses under PriSM normalised to Vantage."""

from conftest import INSTRUCTIONS, mixes_subset

from repro.experiments import fig08_vantage_misses
from repro.workloads.mixes import mixes_for_cores


def test_fig8_miss_breakdown(benchmark, report):
    mixes = mixes_subset(mixes_for_cores(4))
    result = benchmark.pedantic(
        lambda: fig08_vantage_misses.run(instructions=INSTRUCTIONS[4], mixes=mixes),
        rounds=1,
        iterations=1,
    )
    report(fig08_vantage_misses.format_result(result))
    # Paper: PriSM reduces misses for >= 3 of 4 programs in every quad mix;
    # require it for the majority of mixes at this scale.
    assert result["mixes_with_3plus_improved"] >= result["total_mixes"] / 2
