"""Simulator micro-benchmarks: accesses/second of the hot path.

Unlike the figure benches (minutes-long experiments, one round), these are
true pytest-benchmark microbenchmarks with multiple rounds: they track the
cost of the cache access path under each scheme class so performance
regressions in the substrate are visible.
"""

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import TimestampLRUPolicy
from repro.core import HitMaxPolicy, PrismScheme
from repro.partitioning import UCPScheme, VantageScheme
from repro.util.rng import make_rng

GEOMETRY = CacheGeometry(64 << 10, 64, 16)
ACCESSES = 20_000


def _stream(seed=1):
    rng = make_rng(seed, "speed")
    return [(rng.randrange(4), rng.randrange(3000)) for _ in range(ACCESSES)]


def _drive(cache, stream):
    access = cache.access
    for core, addr in stream:
        access(core, (core << 20) + addr)
    return cache.stats.total_misses()


def test_speed_unmanaged_lru(benchmark):
    stream = _stream()
    result = benchmark(lambda: _drive(SharedCache(GEOMETRY, 4), stream))
    assert result > 0


def test_speed_prism(benchmark):
    stream = _stream()

    def run():
        cache = SharedCache(GEOMETRY, 4)
        cache.set_scheme(PrismScheme(HitMaxPolicy(), sample_shift=1))
        return _drive(cache, stream)

    assert benchmark(run) > 0


def test_speed_ucp(benchmark):
    stream = _stream()

    def run():
        cache = SharedCache(GEOMETRY, 4)
        cache.set_scheme(UCPScheme(sample_shift=1))
        return _drive(cache, stream)

    assert benchmark(run) > 0


def test_speed_vantage(benchmark):
    stream = _stream()

    def run():
        cache = SharedCache(GEOMETRY, 4, policy=TimestampLRUPolicy())
        cache.set_scheme(VantageScheme(sample_shift=1))
        return _drive(cache, stream)

    assert benchmark(run) > 0
