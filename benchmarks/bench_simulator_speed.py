"""Simulator micro-benchmarks: accesses/second of the hot path.

Unlike the figure benches (minutes-long experiments, one round), these are
true pytest-benchmark microbenchmarks with multiple rounds: they track the
cost of the cache access path under each scheme class so performance
regressions in the substrate are visible.

Also runnable directly (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_simulator_speed.py

which times every scenario best-of-N (``time.perf_counter``, one untimed
warm-up round first), runs the classic and vector backends side by side
on the wide backend-comparison scenarios with their speedup ratio, and
*appends* a run entry (keyed by git SHA) to ``BENCH_speed.json`` — the
trajectory artifact CI archives so hot-path throughput accumulates per
PR instead of being overwritten. ``--check-floors`` turns the run into
the CI speed-regression smoke: it fails if any scenario's vector/classic
speedup drops below its conservative floor.
"""

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import TimestampLRUPolicy
from repro.core import HitMaxPolicy, PrismScheme
from repro.partitioning import UCPScheme, VantageScheme
from repro.util.rng import make_rng

GEOMETRY = CacheGeometry(64 << 10, 64, 16)
ACCESSES = 20_000


def _stream(seed=1):
    rng = make_rng(seed, "speed")
    return [(rng.randrange(4), rng.randrange(3000)) for _ in range(ACCESSES)]


def _drive(cache, stream):
    access = cache.access
    for core, addr in stream:
        access(core, (core << 20) + addr)
    return cache.stats.total_misses()


def test_speed_unmanaged_lru(benchmark):
    stream = _stream()
    result = benchmark(lambda: _drive(SharedCache(GEOMETRY, 4), stream))
    assert result > 0


def test_speed_prism(benchmark):
    stream = _stream()

    def run():
        cache = SharedCache(GEOMETRY, 4)
        cache.set_scheme(PrismScheme(HitMaxPolicy(), sample_shift=1))
        return _drive(cache, stream)

    assert benchmark(run) > 0


def test_speed_ucp(benchmark):
    stream = _stream()

    def run():
        cache = SharedCache(GEOMETRY, 4)
        cache.set_scheme(UCPScheme(sample_shift=1))
        return _drive(cache, stream)

    assert benchmark(run) > 0


def test_speed_vantage(benchmark):
    stream = _stream()

    def run():
        cache = SharedCache(GEOMETRY, 4, policy=TimestampLRUPolicy())
        cache.set_scheme(VantageScheme(sample_shift=1))
        return _drive(cache, stream)

    assert benchmark(run) > 0


# -- standalone mode ---------------------------------------------------------


def _unmanaged_lru():
    return SharedCache(GEOMETRY, 4)


def _prism():
    cache = SharedCache(GEOMETRY, 4)
    cache.set_scheme(PrismScheme(HitMaxPolicy(), sample_shift=1))
    return cache


def _ucp():
    cache = SharedCache(GEOMETRY, 4)
    cache.set_scheme(UCPScheme(sample_shift=1))
    return cache


def _vantage():
    cache = SharedCache(GEOMETRY, 4, policy=TimestampLRUPolicy())
    cache.set_scheme(VantageScheme(sample_shift=1))
    return cache


SCENARIOS = {
    "unmanaged_lru": _unmanaged_lru,
    "prism": _prism,
    "ucp": _ucp,
    "vantage": _vantage,
}


# -- backend comparison scenarios --------------------------------------------
#
# Wide last-level caches (thousands of sets) are where batch replay pays:
# the classic engine's per-access pointer chasing misses in the *host*
# cache, while the vector engine's fused array passes keep their
# throughput. Geometries follow the multi-tenant scale-out direction in
# ROADMAP.md, not the scaled-down figure machines.

WIDE = CacheGeometry(16 << 20, 64, 16)  # 16 MiB, 16384 sets
XWIDE = CacheGeometry(64 << 20, 64, 16)  # 64 MiB, 65536 sets
WIDE_CORES = 8


def _wide_stream(accesses, hot_range, hot_frac, seed=7):
    """Shared hot pool + uniform cold tail over a 16 M-block address space."""
    rng = make_rng(seed, "speed-wide")
    return [
        (
            rng.randrange(WIDE_CORES),
            rng.randrange(hot_range) if rng.random() < hot_frac else rng.getrandbits(24),
        )
        for _ in range(accesses)
    ]


def _lru_pair(geometry):
    from repro.cache.vector import VectorCache

    return (lambda: SharedCache(geometry, WIDE_CORES),
            lambda: VectorCache(geometry, WIDE_CORES))


def _dip_pair(geometry):
    from repro.cache.replacement import DIPPolicy
    from repro.cache.vector import VectorCache

    return (lambda: SharedCache(geometry, WIDE_CORES, policy=DIPPolicy(seed=3)),
            lambda: VectorCache(geometry, WIDE_CORES, policy=DIPPolicy(seed=3)))


def _prism_pair(geometry):
    from repro.cache.vector import VectorCache

    def classic():
        cache = SharedCache(geometry, WIDE_CORES)
        cache.set_scheme(PrismScheme(HitMaxPolicy(), seed=5, sample_shift=5))
        return cache

    def vector():
        return VectorCache(
            geometry, WIDE_CORES,
            scheme=PrismScheme(HitMaxPolicy(), seed=5, sample_shift=5),
        )

    return classic, vector


#: name -> (factory pair builder, geometry, (hot_range, hot_frac), CI floor).
#: The floor is the vector/classic speedup below which the CI smoke fails —
#: deliberately conservative (CI runners are noisy and use short streams);
#: see BENCH_speed.json for measured values.
BACKEND_SCENARIOS = {
    "lru_hot": (_lru_pair, WIDE, (40_000, 0.95), 2.5),
    "lru_wide": (_lru_pair, WIDE, (200_000, 0.60), 3.0),
    "lru_xwide": (_lru_pair, XWIDE, (600_000, 0.60), 4.0),
    "dip_wide": (_dip_pair, WIDE, (40_000, 0.95), 1.0),
    "prism_wide": (_prism_pair, WIDE, (40_000, 0.95), 1.2),
}


def _best_of(run, rounds):
    """Best wall-clock of ``rounds`` timed calls, after one warm-up call.

    The warm-up round is not timed: it pages in the engine code paths,
    warms the allocator and (for the vector engine) numpy's internal
    caches, so round-to-round variance reflects the engine, not process
    start-up.
    """
    import time

    run()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def run_backends(accesses: int = 400_000, rounds: int = 2) -> dict:
    """Both backends side by side on every backend scenario.

    Per scenario: the classic engine driven per access (the historical
    baseline), the classic engine over ``access_many`` (same engine, batch
    call overhead shed), and the vector engine over the same pre-encoded
    stream. ``speedup`` is vector vs per-access classic.
    """
    from repro.cache.encode import encode_trace

    if accesses < 1 or rounds < 1:
        raise SystemExit(
            f"--accesses and --rounds must be >= 1 (got {accesses}, {rounds})"
        )
    results = {}
    for name, (pair, geometry, (hot_range, hot_frac), floor) in BACKEND_SCENARIOS.items():
        classic_factory, vector_factory = pair(geometry)
        stream = _wide_stream(accesses, hot_range, hot_frac)
        encoded = encode_trace(stream, geometry)

        def classic_scalar():
            cache = classic_factory()
            access = cache.access
            for core, addr in stream:
                access(core, addr)

        classic_s = _best_of(classic_scalar, rounds)
        classic_batch_s = _best_of(
            lambda: classic_factory().access_many(encoded), rounds
        )
        vector_s = _best_of(
            lambda: vector_factory().access_many(encoded), rounds
        )
        results[name] = {
            "accesses": accesses,
            "rounds": rounds,
            "classic_aps": round(accesses / classic_s, 1),
            "classic_batch_aps": round(accesses / classic_batch_s, 1),
            "vector_aps": round(accesses / vector_s, 1),
            "speedup": round(classic_s / vector_s, 2),
            "floor": floor,
        }
    return results


def run_standalone(accesses: int = 100_000, rounds: int = 3) -> dict:
    """Best-of-``rounds`` accesses/second for every classic-only scenario."""
    rng = make_rng(1, "speed")
    stream = [(rng.randrange(4), rng.randrange(3000)) for _ in range(accesses)]
    results = {}
    for name, factory in SCENARIOS.items():
        holder = {}

        def run():
            holder["misses"] = _drive(factory(), stream)

        best = _best_of(run, rounds)
        assert holder["misses"] > 0
        results[name] = {
            "accesses": accesses,
            "rounds": rounds,
            "best_seconds": round(best, 6),
            "accesses_per_sec": round(accesses / best, 1),
        }
    return results


def _git_sha() -> str:
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        sha = out.stdout.strip() or "unknown"
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=10,
        )
        if sha != "unknown" and status.stdout.strip():
            sha += "+dirty"
        return sha
    except OSError:
        return "unknown"


def _append_trajectory(path, entry) -> dict:
    """Append ``entry`` to the run trajectory in ``path`` (format 2).

    The artifact accumulates one entry per invocation instead of being
    overwritten, so the per-PR perf history the ROADMAP asks for actually
    builds up. A pre-format-2 file (one flat snapshot) is preserved under
    ``"legacy"``.
    """
    import json
    import os

    doc = {"format": 2, "runs": []}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                old = json.load(fh)
        except (OSError, ValueError):
            old = None
        if isinstance(old, dict) and old.get("format") == 2:
            doc = old
        elif old is not None:
            doc["legacy"] = old
    doc["runs"].append(entry)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def main(argv=None) -> int:
    import argparse
    import json
    import time

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=100_000,
                        help="stream length for the classic-only scenarios")
    parser.add_argument("--backend-accesses", type=int, default=400_000,
                        help="stream length for the backend-comparison scenarios")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("-o", "--output", default="BENCH_speed.json")
    parser.add_argument("--skip-backends", action="store_true",
                        help="only run the classic-only scenarios")
    parser.add_argument("--check-floors", action="store_true",
                        help="exit 1 if any backend scenario's vector/classic "
                        "speedup falls below its floor (the CI smoke)")
    args = parser.parse_args(argv)

    classic_only = run_standalone(accesses=args.accesses, rounds=args.rounds)
    print("classic-only scenarios (64 KiB figure machine):")
    for name, row in classic_only.items():
        print(f"{name:>16}: {row['accesses_per_sec']:>12,.0f} accesses/sec")

    backends = {}
    failures = []
    if not args.skip_backends:
        backends = run_backends(
            accesses=args.backend_accesses, rounds=max(1, args.rounds - 1)
        )
        print("\nbackend comparison (accesses/sec, best-of-N after warm-up):")
        print(f"{'scenario':>12} {'classic':>12} {'classic-batch':>14} "
              f"{'vector':>12} {'speedup':>8}")
        for name, row in backends.items():
            print(f"{name:>12} {row['classic_aps']:>12,.0f} "
                  f"{row['classic_batch_aps']:>14,.0f} "
                  f"{row['vector_aps']:>12,.0f} {row['speedup']:>7.2f}x")
            if row["speedup"] < row["floor"]:
                failures.append(
                    f"{name}: speedup {row['speedup']:.2f}x "
                    f"below floor {row['floor']:.2f}x"
                )

    entry = {
        "sha": _git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "scenarios": classic_only,
        "backends": backends,
    }
    doc = _append_trajectory(args.output, entry)
    print(f"\nwrote {args.output} ({len(doc['runs'])} run(s) in trajectory)")

    if args.check_floors and failures:
        for failure in failures:
            print(f"FLOOR VIOLATION: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
