"""Simulator micro-benchmarks: accesses/second of the hot path.

Unlike the figure benches (minutes-long experiments, one round), these are
true pytest-benchmark microbenchmarks with multiple rounds: they track the
cost of the cache access path under each scheme class so performance
regressions in the substrate are visible.

Also runnable directly (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_simulator_speed.py

which times every scenario best-of-N and writes ``BENCH_speed.json`` —
the artifact CI archives so hot-path throughput is tracked over time.
"""

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import TimestampLRUPolicy
from repro.core import HitMaxPolicy, PrismScheme
from repro.partitioning import UCPScheme, VantageScheme
from repro.util.rng import make_rng

GEOMETRY = CacheGeometry(64 << 10, 64, 16)
ACCESSES = 20_000


def _stream(seed=1):
    rng = make_rng(seed, "speed")
    return [(rng.randrange(4), rng.randrange(3000)) for _ in range(ACCESSES)]


def _drive(cache, stream):
    access = cache.access
    for core, addr in stream:
        access(core, (core << 20) + addr)
    return cache.stats.total_misses()


def test_speed_unmanaged_lru(benchmark):
    stream = _stream()
    result = benchmark(lambda: _drive(SharedCache(GEOMETRY, 4), stream))
    assert result > 0


def test_speed_prism(benchmark):
    stream = _stream()

    def run():
        cache = SharedCache(GEOMETRY, 4)
        cache.set_scheme(PrismScheme(HitMaxPolicy(), sample_shift=1))
        return _drive(cache, stream)

    assert benchmark(run) > 0


def test_speed_ucp(benchmark):
    stream = _stream()

    def run():
        cache = SharedCache(GEOMETRY, 4)
        cache.set_scheme(UCPScheme(sample_shift=1))
        return _drive(cache, stream)

    assert benchmark(run) > 0


def test_speed_vantage(benchmark):
    stream = _stream()

    def run():
        cache = SharedCache(GEOMETRY, 4, policy=TimestampLRUPolicy())
        cache.set_scheme(VantageScheme(sample_shift=1))
        return _drive(cache, stream)

    assert benchmark(run) > 0


# -- standalone mode ---------------------------------------------------------


def _unmanaged_lru():
    return SharedCache(GEOMETRY, 4)


def _prism():
    cache = SharedCache(GEOMETRY, 4)
    cache.set_scheme(PrismScheme(HitMaxPolicy(), sample_shift=1))
    return cache


def _ucp():
    cache = SharedCache(GEOMETRY, 4)
    cache.set_scheme(UCPScheme(sample_shift=1))
    return cache


def _vantage():
    cache = SharedCache(GEOMETRY, 4, policy=TimestampLRUPolicy())
    cache.set_scheme(VantageScheme(sample_shift=1))
    return cache


SCENARIOS = {
    "unmanaged_lru": _unmanaged_lru,
    "prism": _prism,
    "ucp": _ucp,
    "vantage": _vantage,
}


def run_standalone(accesses: int = 100_000, rounds: int = 3) -> dict:
    """Best-of-``rounds`` accesses/second for every scenario."""
    import time

    if accesses < 1 or rounds < 1:
        raise SystemExit(
            f"--accesses and --rounds must be >= 1 (got {accesses}, {rounds})"
        )

    rng = make_rng(1, "speed")
    stream = [(rng.randrange(4), rng.randrange(3000)) for _ in range(accesses)]
    results = {}
    for name, factory in SCENARIOS.items():
        best = float("inf")
        for _ in range(rounds):
            cache = factory()
            start = time.perf_counter()
            misses = _drive(cache, stream)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
        assert misses > 0
        results[name] = {
            "accesses": accesses,
            "rounds": rounds,
            "best_seconds": round(best, 6),
            "accesses_per_sec": round(accesses / best, 1),
        }
    return results


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=100_000)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("-o", "--output", default="BENCH_speed.json")
    args = parser.parse_args(argv)

    results = run_standalone(accesses=args.accesses, rounds=args.rounds)
    for name, row in results.items():
        print(f"{name:>16}: {row['accesses_per_sec']:>12,.0f} accesses/sec")
    with open(args.output, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
