"""Figure 5 — same hit-max policy: PriSM enforcement vs way-partitioning."""

from conftest import INSTRUCTIONS, mixes_subset

from repro.experiments import fig05_vs_waypart
from repro.workloads.mixes import mixes_for_cores


def test_fig5_enforcement_granularity(benchmark, report):
    mixes = mixes_subset(mixes_for_cores(16))
    result = benchmark.pedantic(
        lambda: fig05_vs_waypart.run(instructions=INSTRUCTIONS[16], mixes=mixes),
        rounds=1,
        iterations=1,
    )
    report(fig05_vs_waypart.format_result(result))
    # The paper's Fig. 5 claim: with the allocation policy held fixed,
    # fine-grained (PriSM) enforcement beats way-rounding on geomean.
    assert result["geomean"]["prism"] < result["geomean"]["waypart"]
