"""Ablation bench: contribution of each repo-specific PriSM mechanism."""

from conftest import INSTRUCTIONS, mixes_subset

from repro.experiments import ablation
from repro.workloads.mixes import mixes_for_cores


def test_ablation_design_choices(benchmark, report):
    mixes = mixes_subset(mixes_for_cores(16), limit=3)
    result = benchmark.pedantic(
        lambda: ablation.run(instructions=INSTRUCTIONS[16], mixes=mixes),
        rounds=1,
        iterations=1,
    )
    report(ablation.format_result(result))
    g = result["geomean"]
    # Every variant still runs correctly and beats or ties LRU broadly.
    for variant, value in g.items():
        assert 0.5 < value < 1.15, (variant, value)
    # The default configuration is the strongest (or tied within noise).
    assert g["default"] <= min(g.values()) + 0.04
