"""Figure 4 — per-program occupancy at finish: PriSM-H vs UCP (quad)."""

from conftest import INSTRUCTIONS, mixes_subset

from repro.experiments import fig04_occupancy
from repro.workloads.mixes import mixes_for_cores


def test_fig4_occupancy(benchmark, report):
    mixes = mixes_subset(mixes_for_cores(4))
    result = benchmark.pedantic(
        lambda: fig04_occupancy.run(instructions=INSTRUCTIONS[4], mixes=mixes),
        rounds=1,
        iterations=1,
    )
    report(fig04_occupancy.format_result(result))
    rows = result["rows"]
    assert len(rows) == 4 * len(mixes)
    # Occupancies are valid fractions and neither scheme leaves the cache
    # essentially unused by the mix.
    for row in rows:
        assert 0.0 <= row["prism_occupancy"] <= 1.0
        assert 0.0 <= row["ucp_occupancy"] <= 1.0
    by_mix = {}
    for row in rows:
        by_mix.setdefault(row["mix"], []).append(row)
    for mix_rows in by_mix.values():
        assert sum(r["prism_occupancy"] for r in mix_rows) > 0.5
