"""Figure 1 — motivation: scheme scalability and fine-grained partitioning.

Regenerates both panels: (a) UCP/PIPP ANTT vs LRU and way-partitioning
fairness across 4-32 cores, (b) LRU/UCP throughput at 16/64/256-way
associativity.
"""

from conftest import INSTRUCTIONS, MIXES_PER_COUNT

from repro.experiments import fig01_motivation


def test_fig1a_scalability(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig01_motivation.run_scalability(
            instructions=INSTRUCTIONS, mixes_per_count=MIXES_PER_COUNT or None
        ),
        rounds=1,
        iterations=1,
    )
    rows = result["rows"]
    assert [r["cores"] for r in rows] == [4, 8, 16, 32]
    # The motivation trend: UCP's advantage over LRU shrinks from 4 to 32
    # cores (ANTT ratio drifts toward 1).
    assert rows[3]["ucp_antt_vs_lru"] > rows[0]["ucp_antt_vs_lru"] - 0.05
    report(
        "Figure 1(a) rows (UCP/PIPP ANTT vs LRU; fairness):\n"
        + "\n".join(str(r) for r in rows)
    )


def test_fig1b_fine_grain(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig01_motivation.run_fine_grain(
            instructions=INSTRUCTIONS, mixes_per_count=min(MIXES_PER_COUNT or 3, 3)
        ),
        rounds=1,
        iterations=1,
    )
    rows = result["rows"]
    assert [r["assoc"] for r in rows] == [16, 64, 256]
    # Finer partitioning (higher assoc) must not hurt UCP's throughput.
    assert rows[2]["ucp_throughput_4c"] >= rows[0]["ucp_throughput_4c"] * 0.95
    report(
        "Figure 1(b) rows (IPC throughput by associativity):\n"
        + "\n".join(str(r) for r in rows)
    )
