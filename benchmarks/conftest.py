"""Shared configuration for the paper-reproduction benchmarks.

Each ``bench_*.py`` file regenerates one table/figure of the paper at a
reduced-but-meaningful scale and prints the same rows the paper reports.
The pytest-benchmark timing wraps the *whole experiment* (single round —
these are minutes-long simulations, not microbenchmarks).

Scale knobs (environment variables):

- ``REPRO_BENCH_SCALE`` — multiply every instruction budget (default 1.0;
  set 4-10 for publication-quality runs).
- ``REPRO_BENCH_MIXES`` — mixes per core count (default 4; 0 = all).
"""

import os

import pytest

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
MIXES_PER_COUNT = int(os.environ.get("REPRO_BENCH_MIXES", "4")) or None

#: Per-core instruction budgets by core count, shared across benches so the
#: runner's stand-alone IPC cache is reused between figures.
INSTRUCTIONS = {
    4: int(250_000 * _SCALE),
    8: int(150_000 * _SCALE),
    16: int(250_000 * _SCALE),
    32: int(100_000 * _SCALE),
}


def mixes_subset(names, limit=None):
    """First ``limit`` (or REPRO_BENCH_MIXES) names of a mix list."""
    limit = limit if limit is not None else MIXES_PER_COUNT
    return names[:limit] if limit else list(names)


@pytest.fixture
def report():
    """Print a figure's formatted rows after the benchmarked run."""
    outputs = []

    def _report(text: str) -> None:
        outputs.append(text)

    yield _report
    for text in outputs:
        print()
        print(text)
