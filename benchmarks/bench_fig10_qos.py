"""Figure 10 — PriSM-Q holding core 0 at 80% of stand-alone IPC (16-core)."""

from conftest import INSTRUCTIONS, mixes_subset

from repro.experiments import fig10_qos
from repro.workloads.mixes import mixes_for_cores


def test_fig10_qos(benchmark, report):
    mixes = mixes_subset(mixes_for_cores(16))
    result = benchmark.pedantic(
        lambda: fig10_qos.run(
            instructions=INSTRUCTIONS[16], mixes=mixes, tolerance=0.25
        ),
        rounds=1,
        iterations=1,
    )
    report(fig10_qos.format_result(result))
    # Paper: 38 of 41 mixes land at/above the 80% target. At this scale a
    # tail of programs is structurally capped below it (scan footprints
    # bigger than any share + DRAM contention absent from the stand-alone
    # run — see EXPERIMENTS.md), so the bench requires (a) a majority
    # within a 25% band of the target and (b) the controller visibly
    # lifting core 0 above its LRU slowdown in most mixes.
    assert result["achieved"] >= result["total"] / 2
    lifted = sum(1 for r in result["rows"] if r["slowdown"] > r["lru_slowdown"] * 1.05)
    assert lifted >= result["total"] / 2
    for row in result["rows"]:
        assert 0.0 < row["slowdown"] <= 1.1
