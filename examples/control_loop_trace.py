#!/usr/bin/env python
"""Watch PriSM's control loop converge — and re-converge after a phase change.

Core 0 runs a *phased* program: a cache-friendly working set for the first
half, then a compute-bound phase with a tiny footprint. An
:class:`~repro.cache.history.IntervalHistory` monitor records occupancy,
targets, and eviction probabilities at every allocation interval; the
script prints the trajectory and (optionally) dumps it as CSV for
plotting.

What to look for: core 0's occupancy climbs toward its target during the
friendly phase, then PriSM hands the space to the competing friendly core
within a few intervals of the phase change.

Usage::

    python examples/control_loop_trace.py [--csv trace.csv]
"""

import argparse

from repro.cache import IntervalHistory, SharedCache
from repro.core import HitMaxPolicy, PrismScheme
from repro.cpu import MultiCoreSystem
from repro.cpu.memory import MemoryModel
from repro.experiments.configs import machine
from repro.workloads import PhasedProfile, get_profile


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--phase-length", type=int, default=400_000,
                        help="instructions per phase for core 0")
    parser.add_argument("--csv", default=None, help="dump the trajectory as CSV")
    args = parser.parse_args()

    config = machine(4)
    # The compute phase gets a huge budget so the schedule never cycles
    # back to the friendly phase while other cores finish their runs.
    phased = PhasedProfile(
        [
            (get_profile("300.twolf"), args.phase_length),
            (get_profile("416.gamess"), 100 * args.phase_length),
        ]
    )
    profiles = [phased, get_profile("471.omnetpp"),
                get_profile("470.lbm"), get_profile("403.gcc")]

    cache = SharedCache(config.geometry, 4)
    scheme = PrismScheme(HitMaxPolicy())
    cache.set_scheme(scheme)
    history = IntervalHistory(cache)
    system = MultiCoreSystem(
        cache, profiles, seed=7, memory=MemoryModel(config.num_controllers)
    )
    system.run(2 * args.phase_length)

    print(f"{len(history.records)} intervals; core 0 phases: "
          f"{phased.phases[0][0].name} -> {phased.phases[1][0].name}\n")
    print(f"{'interval':>8} {'C0':>7} {'T0':>7} {'E0':>7}   {'C1':>7} {'E1':>7}")
    step = max(1, len(history.records) // 24)
    for record in history.records[::step]:
        print(
            f"{record['interval']:>8} {record['occupancy'][0]:>7.3f} "
            f"{record['targets'][0]:>7.3f} {record['probabilities'][0]:>7.3f}   "
            f"{record['occupancy'][1]:>7.3f} {record['probabilities'][1]:>7.3f}"
        )

    c0 = history.series("occupancy", 0)
    half = len(c0) // 2
    print(f"\ncore 0 mean occupancy: friendly phase {sum(c0[:half]) / half:.3f} "
          f"-> compute phase {sum(c0[half:]) / (len(c0) - half):.3f}")

    if args.csv:
        from repro.experiments.export import rows_to_csv

        path = rows_to_csv(history.to_rows(), args.csv)
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
