#!/usr/bin/env python
"""Extending PriSM: a custom allocation policy and a custom baseline.

The paper's framework cleanly separates the *allocation policy* (what
occupancy each core deserves) from the *enforcement mechanism* (eviction
probabilities). This example demonstrates both extension points:

1. ``PriorityPolicy`` — a user-defined allocation policy giving explicit
   static shares (e.g. a latency-critical core gets 50% of the LLC),
   plugged into :class:`repro.core.PrismScheme` unchanged.
2. Running PriSM over the SRRIP replacement policy — a policy the paper
   never evaluated — to show the core-selection step really is
   replacement-agnostic.

Usage::

    python examples/custom_policy.py [--instructions N]
"""

import argparse
from typing import List

from repro.cache import SharedCache
from repro.cache.replacement import SRRIPPolicy
from repro.core import PrismScheme
from repro.core.allocation import AllocationContext, AllocationPolicy
from repro.cpu import MultiCoreSystem
from repro.cpu.memory import MemoryModel
from repro.experiments.configs import machine
from repro.workloads import get_profile


class PriorityPolicy(AllocationPolicy):
    """Static occupancy shares — the simplest possible allocation policy."""

    name = "priority"

    def __init__(self, shares: List[float]) -> None:
        total = sum(shares)
        if total <= 0:
            raise ValueError("shares must sum to a positive value")
        self.shares = [s / total for s in shares]

    def compute_targets(self, ctx: AllocationContext) -> List[float]:
        if len(self.shares) != ctx.num_cores:
            raise ValueError(
                f"{len(self.shares)} shares for {ctx.num_cores} cores"
            )
        return list(self.shares)


def run_once(policy, replacement, profiles, config, instructions: int):
    cache = SharedCache(config.geometry, len(profiles), policy=replacement)
    cache.set_scheme(PrismScheme(policy))
    system = MultiCoreSystem(
        cache, profiles, seed=42,
        memory=MemoryModel(num_controllers=config.num_controllers),
    )
    return system.run(instructions), cache


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instructions", type=int, default=500_000)
    args = parser.parse_args()

    config = machine(4)
    names = ["179.art", "471.omnetpp", "470.lbm", "416.gamess"]
    profiles = [get_profile(n) for n in names]
    # Give the first core half the cache, split the rest evenly.
    shares = [0.5, 0.167, 0.167, 0.166]

    print("PriSM with a custom static-priority allocation over SRRIP replacement")
    print(f"machine: {config}")
    print(f"target shares: {[round(s, 3) for s in shares]}\n")

    result, cache = run_once(
        PriorityPolicy(shares), SRRIPPolicy(), profiles, config, args.instructions
    )
    occupancy = cache.occupancy_fractions()

    print(f"{'benchmark':>16} {'target':>8} {'achieved':>9} {'IPC':>8}")
    for core, name in enumerate(names):
        print(
            f"{name:>16} {shares[core]:>8.3f} {occupancy[core]:>9.3f} "
            f"{result.cores[core].ipc:>8.3f}"
        )
    errors = [abs(occupancy[c] - shares[c]) for c in range(4)]
    print(f"\nmax |achieved - target| = {max(errors):.3f}")
    print("(occupancy can only grow through insertions: a core whose working "
          "set is\n smaller than its share — e.g. 416.gamess — tops out at its "
          "footprint, and the\n slack flows to the heaviest inserters; the "
          "priority core still gets its half)")


if __name__ == "__main__":
    main()
