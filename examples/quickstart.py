#!/usr/bin/env python
"""Quickstart: PriSM-H vs LRU on one quad-core workload.

Runs the paper's headline mix Q7 (179.art + 429.mcf + 470.lbm +
416.gamess) on the scaled 4-core machine under an unmanaged LRU cache and
under PriSM hit-maximisation, then prints per-program IPCs, the final
eviction-probability distribution, and the ANTT improvement.

Usage::

    python examples/quickstart.py [--instructions N]
"""

import argparse

from repro import machine, run_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--instructions", type=int, default=1_000_000,
        help="per-core instruction target (default 1M)",
    )
    parser.add_argument("--mix", default="Q7", help="workload mix name (default Q7)")
    args = parser.parse_args()

    config = machine(4)
    print(f"machine: {config}")
    print(f"mix:     {args.mix}")
    print()

    lru = run_workload(args.mix, config, "lru", instructions=args.instructions)
    prism = run_workload(args.mix, config, "prism-h", instructions=args.instructions)

    print(f"{'benchmark':>16} {'IPC alone':>10} {'IPC (LRU)':>10} {'IPC (PriSM)':>12} {'E_i':>7}")
    probabilities = prism.eviction_probabilities
    for core, name in enumerate(lru.benchmarks):
        print(
            f"{name:>16} {lru.standalone[core]:>10.3f} {lru.cores[core].ipc:>10.3f} "
            f"{prism.cores[core].ipc:>12.3f} {probabilities[core]:>7.3f}"
        )
    print()
    print(f"ANTT  LRU:     {lru.antt:.4f}   (lower is better)")
    print(f"ANTT  PriSM-H: {prism.antt:.4f}")
    improvement = (1.0 - prism.antt / lru.antt) * 100.0
    print(f"PriSM-H improves ANTT by {improvement:.1f}% over LRU")
    print(f"(allocation recomputed {prism.intervals} times; "
          f"victim-not-found rate {prism.victim_not_found_rate:.2%})")


if __name__ == "__main__":
    main()
