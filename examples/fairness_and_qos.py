#!/usr/bin/env python
"""Fairness and QoS: the other two faces of the PriSM framework.

Part 1 — fairness: runs a sixteen-core mix under LRU, the way-partitioning
fairness scheme [9] and PriSM-F, printing each program's slowdown and the
fairness metric (min/max slowdown ratio). PriSM-F should compress the
slowdown spread without losing throughput.

Part 2 — QoS: re-runs the same mix under PriSM-Q with core 0 guaranteed
80% of its stand-alone IPC, and shows the achieved slowdown and how much
cache the QoS core ended up holding.

Usage::

    python examples/fairness_and_qos.py [--mix S3] [--instructions N]
"""

import argparse

from repro import machine, run_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mix", default="S3", help="sixteen-core mix name")
    parser.add_argument("--instructions", type=int, default=600_000,
                        help="per-core target; QoS convergence needs room")
    parser.add_argument("--qos-target", type=float, default=0.8,
                        help="QoS target as a fraction of stand-alone IPC")
    args = parser.parse_args()

    config = machine(16)
    print(f"machine: {config}")
    print(f"mix:     {args.mix}\n")

    runs = {
        name: run_workload(args.mix, config, name, instructions=args.instructions)
        for name in ("lru", "fair-waypart", "prism-f")
    }

    print("--- fairness ---")
    header = f"{'benchmark':>16}" + "".join(f"{name:>14}" for name in runs)
    print(header + "   (slowdown = IPC shared / IPC alone)")
    benchmarks = runs["lru"].benchmarks
    for core, name in enumerate(benchmarks):
        cells = "".join(f"{r.slowdown(core):>14.3f}" for r in runs.values())
        print(f"{name:>16}{cells}")
    print(f"{'fairness':>16}" + "".join(f"{r.fairness:>14.3f}" for r in runs.values()))
    print(f"{'ANTT':>16}" + "".join(f"{r.antt:>14.3f}" for r in runs.values()))
    print()

    print(f"--- QoS: hold core 0 ({benchmarks[0]}) at "
          f"{args.qos_target:.0%} of stand-alone IPC ---")
    qos = run_workload(
        args.mix,
        config,
        "prism-q",
        instructions=args.instructions,
        scheme_kwargs={"target_ipc_fraction": args.qos_target},
    )
    achieved = qos.slowdown(0)
    occupancy = qos.cores[0].occupancy_at_finish
    print(f"achieved slowdown: {achieved:.3f}  (target {args.qos_target:.2f})")
    print(f"core 0 cache share at finish: {occupancy:.1%}")
    if achieved >= args.qos_target * 0.95:
        verdict = "met"
    elif achieved >= args.qos_target * 0.75:
        verdict = "approached (bandwidth contention caps the last stretch; see EXPERIMENTS.md fig10)"
    else:
        verdict = "MISSED"
    print(f"QoS target {verdict}; other cores ran hit-max in the remaining space")


if __name__ == "__main__":
    main()
