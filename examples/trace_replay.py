#!/usr/bin/env python
"""Trace capture and replay: identical inputs across scheme comparisons.

Records each program's access stream once, saves it to disk (.npz), and
replays the *same* trace under LRU and PriSM-H — so any difference between
the runs is attributable to the scheme alone, with zero generator noise.
This is the workflow for plugging external traces into the simulator: any
pair of (gaps, block-address) arrays becomes a drop-in benchmark.

Usage::

    python examples/trace_replay.py [--length N] [--dir DIR]
"""

import argparse
import tempfile
from pathlib import Path

from repro.cache import SharedCache
from repro.cache.replacement import LRUPolicy
from repro.core import HitMaxPolicy, PrismScheme
from repro.cpu import MultiCoreSystem
from repro.cpu.memory import MemoryModel
from repro.experiments.configs import machine
from repro.workloads import Trace, get_profile, record_trace
from repro.workloads.benchmark import BenchmarkProfile


class _TraceStream:
    """Adapter: replay a Trace wherever an AccessStream is expected."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace

    def next_access(self):
        return self.trace.next_access()


def run_with_traces(traces, profiles, config, scheme, instructions: int):
    cache = SharedCache(config.geometry, len(profiles), policy=LRUPolicy())
    if scheme == "prism-h":
        cache.set_scheme(PrismScheme(HitMaxPolicy()))
    system = MultiCoreSystem(
        cache, profiles, memory=MemoryModel(config.num_controllers)
    )
    # Swap the live generators for trace replays.
    system.streams = [_TraceStream(t) for t in traces]
    return system.run(instructions)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=60_000,
                        help="accesses to record per program")
    parser.add_argument("--instructions", type=int, default=400_000)
    parser.add_argument("--dir", default=None, help="where to store traces")
    args = parser.parse_args()

    config = machine(4)
    names = ["179.art", "300.twolf", "470.lbm", "403.gcc"]
    profiles = [get_profile(n) for n in names]
    trace_dir = Path(args.dir) if args.dir else Path(tempfile.mkdtemp(prefix="prism-traces-"))
    trace_dir.mkdir(parents=True, exist_ok=True)

    print(f"recording {args.length} accesses per program into {trace_dir}")
    paths = []
    for i, profile in enumerate(profiles):
        trace = record_trace(profile, args.length, seed=100 + i)
        path = trace_dir / f"{profile.name}.npz"
        trace.save(path)
        paths.append(path)
        print(f"  {path.name}: {len(trace)} accesses, footprint "
              f"{trace.addrs.max() + 1} blocks")

    results = {}
    for scheme in ("lru", "prism-h"):
        traces = [Trace.load(p) for p in paths]  # fresh cursors per run
        results[scheme] = run_with_traces(
            traces, profiles, config, scheme, args.instructions
        )

    print(f"\n{'benchmark':>12} {'IPC (LRU)':>10} {'IPC (PriSM-H)':>14}")
    for core, name in enumerate(names):
        print(f"{name:>12} {results['lru'].cores[core].ipc:>10.3f} "
              f"{results['prism-h'].cores[core].ipc:>14.3f}")
    lru_thr = sum(c.ipc for c in results["lru"].cores)
    prism_thr = sum(c.ipc for c in results["prism-h"].cores)
    print(f"\nthroughput: LRU {lru_thr:.3f} -> PriSM-H {prism_thr:.3f} "
          "(same replayed input, so the delta is pure scheme effect)")


if __name__ == "__main__":
    main()
