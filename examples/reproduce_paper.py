#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation.

Walks the experiment registry (Fig. 1-13 plus the Section 5.6 DIP study)
and prints each reproduction in paper-style rows. At the default
``--budget quick`` the suite runs in minutes on a laptop using shortened
instruction windows and mix subsets; ``--budget full`` runs every mix at
the DESIGN.md default windows (hours).

Usage::

    python examples/reproduce_paper.py                   # everything, quick
    python examples/reproduce_paper.py --only fig7 fig9  # a subset
    python examples/reproduce_paper.py --budget full
"""

import argparse
import os
import time

from repro.experiments.options import RunOptions
from repro.experiments.registry import EXPERIMENTS

#: Per-experiment quick-budget kwargs (instruction windows + mix subsets).
_QUICK = {
    "fig1": {"instructions": 150_000, "mixes_per_count": 3},
    "fig2": {"instructions": 150_000, "mixes_per_count": 3},
    "fig3": {"instructions": 200_000, "quad_mixes": ["Q1", "Q5", "Q7", "Q12"],
             "big_mixes": ["T1", "T2"]},
    "fig4": {"instructions": 200_000, "mixes": ["Q1", "Q4", "Q7"]},
    "fig5": {"instructions": 150_000, "mixes": ["S1", "S2", "S3", "S4"]},
    "fig6": {"instructions": 150_000, "mixes": ["S1", "S2", "S3", "S4"]},
    "fig7": {"instructions": 200_000, "quad_mixes": ["Q1", "Q7", "Q12", "Q19"],
             "sixteen_mixes": ["S1", "S2"]},
    "fig8": {"instructions": 200_000, "mixes": ["Q1", "Q7", "Q12"]},
    "fig9": {"instructions": 150_000, "mixes": ["S1", "S2", "S3", "S4"]},
    "fig10": {"instructions": 150_000, "mixes": ["S1", "S2", "S3", "S4"]},
    "fig11": {"instructions": 300_000, "mixes": ["Q1", "Q5", "Q7"]},
    "fig12": {"instructions": 200_000, "mixes": ["Q1", "Q7"]},
    "fig13": {"instructions": 300_000, "mixes": ["Q1", "Q5", "Q7"]},
    "sec56": {"instructions": 200_000, "mixes": ["Q1", "Q5", "Q7", "Q12"]},
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--only", nargs="*", default=None,
                        help=f"experiment ids to run (default: all of {sorted(EXPERIMENTS)})")
    parser.add_argument("--budget", choices=["quick", "full"], default="quick")
    parser.add_argument("--verbose", action="store_true", help="print per-run progress")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for independent runs "
                        "(0 = all CPUs; default: serial or REPRO_JOBS)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="result-store directory: completed runs are "
                        "cached there, so re-running the suite only "
                        "simulates what changed (see docs/campaigns.md)")
    args = parser.parse_args()

    if args.jobs is not None:
        # The figure modules fan out via compare_schemes, which consults
        # REPRO_JOBS whenever no explicit jobs= is passed.
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.store is not None:
        # Same trick for the result store: run_specs resolves REPRO_STORE
        # at fan-out time and skips fingerprints it already holds.
        os.environ["REPRO_STORE"] = args.store
    ids = args.only or list(EXPERIMENTS)
    progress = (lambda msg: print(f"    {msg}", flush=True)) if args.verbose else None
    for experiment_id in ids:
        experiment = EXPERIMENTS[experiment_id]
        kwargs = dict(_QUICK.get(experiment_id, {})) if args.budget == "quick" else {}
        options = RunOptions(
            instructions=kwargs.pop("instructions", None), progress=progress
        )
        print("=" * 78)
        print(f"[{experiment.id}] {experiment.title}")
        print("=" * 78)
        start = time.time()
        result = experiment.run(options=options, **kwargs)
        print(experiment.format(result))
        print(f"({time.time() - start:.0f}s)\n")


if __name__ == "__main__":
    main()
