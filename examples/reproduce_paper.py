#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation.

Walks the experiment registry (Fig. 1-13 plus the Section 5.6 DIP study)
and prints each reproduction in paper-style rows. At the default
``--budget quick`` the suite runs in minutes on a laptop using shortened
instruction windows and mix subsets; ``--budget full`` runs every mix at
the DESIGN.md default windows (hours).

Usage::

    python examples/reproduce_paper.py                   # everything, quick
    python examples/reproduce_paper.py --only fig7 fig9  # a subset
    python examples/reproduce_paper.py --budget full
"""

import argparse
import os
import time

from repro.experiments.options import RunOptions
from repro.experiments.registry import EXPERIMENTS

#: Per-experiment quick-budget kwargs (instruction windows + mix subsets).
_QUICK = {
    "fig1": {"instructions": 150_000, "mixes_per_count": 3},
    "fig2": {"instructions": 150_000, "mixes_per_count": 3},
    "fig3": {"instructions": 200_000, "quad_mixes": ["Q1", "Q5", "Q7", "Q12"],
             "big_mixes": ["T1", "T2"]},
    "fig4": {"instructions": 200_000, "mixes": ["Q1", "Q4", "Q7"]},
    "fig5": {"instructions": 150_000, "mixes": ["S1", "S2", "S3", "S4"]},
    "fig6": {"instructions": 150_000, "mixes": ["S1", "S2", "S3", "S4"]},
    "fig7": {"instructions": 200_000, "quad_mixes": ["Q1", "Q7", "Q12", "Q19"],
             "sixteen_mixes": ["S1", "S2"]},
    "fig8": {"instructions": 200_000, "mixes": ["Q1", "Q7", "Q12"]},
    "fig9": {"instructions": 150_000, "mixes": ["S1", "S2", "S3", "S4"]},
    "fig10": {"instructions": 150_000, "mixes": ["S1", "S2", "S3", "S4"]},
    "fig11": {"instructions": 300_000, "mixes": ["Q1", "Q5", "Q7"]},
    "fig12": {"instructions": 200_000, "mixes": ["Q1", "Q7"]},
    "fig13": {"instructions": 300_000, "mixes": ["Q1", "Q5", "Q7"]},
    "sec56": {"instructions": 200_000, "mixes": ["Q1", "Q5", "Q7", "Q12"]},
}


def _herd_grids(experiment_id, kwargs):
    """The compare_schemes grids an experiment will run, for prefetching.

    Mirrors each figure module's call sites exactly (same machine, mixes,
    schemes, instructions, telemetry) so the prefetched fingerprints are
    the ones the figure asks for. Experiments that sweep scheme kwargs
    spec-by-spec (fig10-13) have no entry: their runs still cache into
    the store, they just are not prefetched by the herd.
    """
    from repro.experiments.common import resolve_instructions
    from repro.workloads.mixes import mixes_for_cores

    instructions = kwargs.get("instructions")
    grids = []

    def grid(cores, mixes, schemes, telemetry=False, **machine_kwargs):
        grids.append({
            "cores": cores,
            "machine_kwargs": machine_kwargs,
            "instructions": resolve_instructions(instructions, cores),
            "mixes": list(mixes),
            "schemes": list(schemes),
            "telemetry": telemetry,
        })

    def default_mixes(cores):
        mixes = mixes_for_cores(cores)
        per_count = kwargs.get("mixes_per_count")
        return mixes[:per_count] if per_count else mixes

    if experiment_id == "fig1":
        for cores in (4, 8, 16, 32):
            schemes = ["lru", "ucp", "pipp"]
            if cores <= 16:
                schemes.append("fair-waypart")
            grid(cores, default_mixes(cores), schemes)
    elif experiment_id == "fig2":
        for cores in (4, 8, 16, 32):
            schemes = ["lru", "prism-h", "ucp", "pipp"]
            if cores <= 16:
                schemes += ["prism-f", "fair-waypart"]
            grid(cores, default_mixes(cores), schemes)
    elif experiment_id == "fig3":
        schemes = ["lru", "prism-h", "ucp", "pipp"]
        grid(4, kwargs.get("quad_mixes") or mixes_for_cores(4), schemes)
        grid(32, kwargs.get("big_mixes") or mixes_for_cores(32), schemes)
    elif experiment_id == "fig4":
        grid(4, kwargs.get("mixes") or mixes_for_cores(4),
             ["prism-h", "ucp"], telemetry=True)
    elif experiment_id == "fig5":
        grid(16, kwargs.get("mixes") or mixes_for_cores(16),
             ["lru", "prism-h", "waypart-hitmax"])
    elif experiment_id == "fig6":
        grid(16, kwargs.get("mixes") or mixes_for_cores(16),
             ["lru", "prism-h"], assoc=16, llc_bytes=8 << 20)
    elif experiment_id == "fig7":
        schemes = ["tslru", "vantage", "prism-ucpx"]
        grid(4, kwargs.get("quad_mixes") or mixes_for_cores(4), schemes)
        grid(16, kwargs.get("sixteen_mixes") or mixes_for_cores(16), schemes)
    elif experiment_id == "fig8":
        grid(4, kwargs.get("mixes") or mixes_for_cores(4),
             ["vantage", "prism-ucpx"])
    elif experiment_id == "fig9":
        grid(16, kwargs.get("mixes") or mixes_for_cores(16),
             ["lru", "fair-waypart", "prism-f"])
    elif experiment_id == "sec56":
        grid(4, kwargs.get("mixes") or mixes_for_cores(4),
             ["dip", "prism-h-dip", "tadip", "lru"])
    return grids


def _herd_prefill(ids, budget, store, workers, progress) -> None:
    """Fan the selected experiments' grids over a local herd into the store.

    Groups specs by machine config (a campaign binds one machine), then
    runs each group through :class:`repro.herd.HerdController` with
    ``workers`` local worker processes. The figure loop that follows
    answers from the store, so it only simulates whatever the herd did
    not cover (grids without a ``_herd_grids`` entry).
    """
    import json

    from repro.campaign import Campaign
    from repro.campaign.campaign import machine_to_dict
    from repro.experiments.configs import machine
    from repro.experiments.parallel import RunSpec
    from repro.herd import HerdController, LocalTransport

    groups = {}  # machine payload -> (config, {spec-key: RunSpec})
    for experiment_id in ids:
        kwargs = dict(_QUICK.get(experiment_id, {})) if budget == "quick" else {}
        for g in _herd_grids(experiment_id, kwargs):
            config = machine(g["cores"], **g["machine_kwargs"])
            key = json.dumps(machine_to_dict(config), sort_keys=True)
            _, specs = groups.setdefault(key, (config, {}))
            for mix in g["mixes"]:
                for scheme in g["schemes"]:
                    spec = RunSpec(
                        mix=mix, scheme=scheme, seed=0,
                        instructions=g["instructions"],
                        telemetry=g["telemetry"],
                    )
                    specs[(mix, scheme, g["instructions"], g["telemetry"])] = spec
    total = sum(len(specs) for _, specs in groups.values())
    print(f"herd prefill: {total} specs over {len(groups)} machine config(s), "
          f"{workers} local workers -> {store}")
    for config, specs in groups.values():
        campaign = Campaign(store, config, list(specs.values()))
        controller = HerdController(
            campaign,
            transport=LocalTransport(),
            workers=workers,
            progress=progress,
        )
        run = controller.run_with_sigint_drain()
        print(f"  [{config.num_cores}-core machine] {run.describe()}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--only", nargs="*", default=None,
                        help=f"experiment ids to run (default: all of {sorted(EXPERIMENTS)})")
    parser.add_argument("--budget", choices=["quick", "full"], default="quick")
    parser.add_argument("--verbose", action="store_true", help="print per-run progress")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for independent runs "
                        "(0 = all CPUs; default: serial or REPRO_JOBS)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="result-store directory: completed runs are "
                        "cached there, so re-running the suite only "
                        "simulates what changed (see docs/campaigns.md)")
    parser.add_argument("--herd", type=int, default=None, metavar="N",
                        help="prefill --store by fanning the selected "
                        "experiments' scheme grids over N local herd "
                        "workers before the figures render (requires "
                        "--store; see docs/campaigns.md)")
    args = parser.parse_args()
    if args.herd is not None and args.store is None:
        parser.error("--herd requires --store")

    if args.jobs is not None:
        # The figure modules fan out via compare_schemes, which consults
        # REPRO_JOBS whenever no explicit jobs= is passed.
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.store is not None:
        # Same trick for the result store: run_specs resolves REPRO_STORE
        # at fan-out time and skips fingerprints it already holds.
        os.environ["REPRO_STORE"] = args.store
    ids = args.only or list(EXPERIMENTS)
    progress = (lambda msg: print(f"    {msg}", flush=True)) if args.verbose else None
    if args.herd:
        _herd_prefill(ids, args.budget, args.store, args.herd, progress)
    for experiment_id in ids:
        experiment = EXPERIMENTS[experiment_id]
        kwargs = dict(_QUICK.get(experiment_id, {})) if args.budget == "quick" else {}
        options = RunOptions(
            instructions=kwargs.pop("instructions", None), progress=progress
        )
        print("=" * 78)
        print(f"[{experiment.id}] {experiment.title}")
        print("=" * 78)
        start = time.time()
        result = experiment.run(options=options, **kwargs)
        print(experiment.format(result))
        print(f"({time.time() - start:.0f}s)\n")


if __name__ == "__main__":
    main()
