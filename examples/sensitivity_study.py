#!/usr/bin/env python
"""Sensitivity study: how PriSM-H's gain depends on its knobs.

Sweeps the three knobs the paper's Section 5.6 analyses — interval length
(Fig. 13), probability bit-width (Fig. 12) — plus two this repo adds:
cache scale (how the scaled-down substrate behaves as it approaches paper
size) and shadow-tag sampling density. Each sweep reports PriSM-H's ANTT
versus LRU on one quad mix.

Usage::

    python examples/sensitivity_study.py [--mix Q7] [--instructions N]
"""

import argparse

from repro.experiments.configs import machine
from repro.experiments.runner import DEFAULT_STANDALONE_CACHE, run_workload


def ratio(mix, config, instructions, **scheme_kwargs):
    lru = run_workload(mix, config, "lru", instructions=instructions)
    prism = run_workload(
        mix, config, "prism-h", instructions=instructions,
        scheme_kwargs=scheme_kwargs or None,
    )
    return prism.antt / lru.antt


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mix", default="Q7")
    parser.add_argument("--instructions", type=int, default=400_000)
    args = parser.parse_args()

    config = machine(4)
    n = config.geometry.num_blocks
    print(f"mix {args.mix} on {config}; values are PriSM-H ANTT / LRU ANTT "
          "(lower = better)\n")

    print("interval length W (paper default W = N):")
    for mult in (0.25, 0.5, 1.0, 2.0, 4.0):
        r = ratio(args.mix, config, args.instructions,
                  interval_len=max(1, int(n * mult)))
        print(f"  W = {mult:>4}*N : {r:.4f}")

    print("\nprobability bit-width (float reference first):")
    r_float = ratio(args.mix, config, args.instructions)
    print(f"  float    : {r_float:.4f}")
    for bits in (4, 6, 8, 12):
        r = ratio(args.mix, config, args.instructions, probability_bits=bits)
        print(f"  {bits:>2} bits  : {r:.4f}")

    print("\nshadow-tag sampling (1/2**shift of sets):")
    for shift in (0, 1, 2, 3):
        r = ratio(args.mix, config, args.instructions, sample_shift=shift)
        print(f"  1/{1 << shift:<3}    : {r:.4f}")

    print("\ncache scale (scale_factor: capacity = paper / factor):")
    for factor in (128, 64, 32):
        DEFAULT_STANDALONE_CACHE.clear()  # different geometry, fresh baselines
        scaled = machine(4, scale_factor=factor)
        r = ratio(args.mix, scaled, args.instructions)
        print(f"  1/{factor:<4}   ({scaled.geometry}): {r:.4f}")

    print("\nInterpretation: gains are insensitive to the probability "
          "bit-width (Fig. 12)\nand to sampling density; long intervals "
          "(W >= 2N) trade adaptation speed for\nstability, so they need "
          "proportionally longer runs to converge (Fig. 13's\nsweep); "
          "bigger caches likewise need more instructions to warm and "
          "converge —\nraise --instructions when sweeping scale.")


if __name__ == "__main__":
    main()
