#!/usr/bin/env python
"""Hit-maximisation study: PriSM-H against UCP, PIPP and way-partitioning.

Reproduces the paper's central comparison on a configurable slice of the
workload suite: for each mix, ANTT under LRU / UCP / PIPP / PriSM-H / the
same hit-max policy rounded to way quotas, plus the geomean summary. This
is the scenario the paper's introduction motivates — existing schemes
degrade as cores grow; fine-grained probabilistic partitioning does not.

Usage::

    python examples/hitmax_study.py --cores 4 --mixes 6 [--instructions N]
"""

import argparse
import time

from repro.experiments.common import compare_schemes, format_table, geomean_ratio
from repro.experiments.configs import machine
from repro.workloads.mixes import mixes_for_cores

SCHEMES = ["lru", "ucp", "pipp", "waypart-hitmax", "prism-h"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cores", type=int, default=4, choices=[4, 8, 16, 32])
    parser.add_argument("--mixes", type=int, default=6, help="how many mixes to run")
    parser.add_argument("--instructions", type=int, default=600_000)
    args = parser.parse_args()

    config = machine(args.cores)
    mixes = mixes_for_cores(args.cores)[: args.mixes]
    print(f"machine: {config}")
    print(f"mixes:   {', '.join(mixes)}")
    start = time.time()
    results = compare_schemes(
        mixes,
        config,
        SCHEMES,
        instructions=args.instructions,
        progress=lambda msg: print(f"  running {msg}", flush=True),
    )
    print(f"({time.time() - start:.0f}s)\n")

    rows = []
    for mix in mixes:
        lru_antt = results[mix]["lru"].antt
        rows.append(
            [mix]
            + [results[mix][s].antt / lru_antt for s in SCHEMES[1:]]
        )
    rows.append(
        ["geomean"] + [geomean_ratio(results, s, "lru") for s in SCHEMES[1:]]
    )
    print("ANTT normalised to LRU (lower is better):")
    print(format_table(["mix", "UCP", "PIPP", "WP+Alg1", "PriSM-H"], rows))
    print()
    gain = (1.0 - geomean_ratio(results, "prism-h", "lru")) * 100.0
    print(f"PriSM-H geomean gain over LRU at {args.cores} cores: {gain:.1f}%")


if __name__ == "__main__":
    main()
