"""Property tests for the deterministic clustering pipeline.

The determinism contract (see :mod:`repro.clustering`): k-medoids is a
pure function of the multiset of curves — value-based tie-breaks make
the induced *partition* invariant under permutation of core order — and
``k >= n`` degenerates to the identity map. These are exactly the
properties the scale-out driver leans on when it reuses a ``core_map``
as part of a run's fingerprint.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.clustering import cluster_cores, derive_core_map, kmedoids
from repro.experiments.configs import machine
from repro.workloads.shared import get_shared_workload

# Small discrete value pools keep duplicate curves likely, which is where
# index-based tie-breaking would betray a non-deterministic ordering.
curve_strategy = st.lists(
    st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]), min_size=4, max_size=4
).map(tuple)

curves_strategy = st.lists(curve_strategy, min_size=1, max_size=10)


def partition_of(assignment):
    """The induced partition as a canonical frozenset of frozensets."""
    groups = {}
    for index, label in enumerate(assignment):
        groups.setdefault(label, set()).add(index)
    return frozenset(frozenset(g) for g in groups.values())


class TestKMedoidsProperties:
    @given(curves=curves_strategy, k=st.integers(1, 10))
    def test_deterministic(self, curves, k):
        """Same inputs, same outputs — there is no RNG to vary."""
        assert kmedoids(curves, k) == kmedoids(curves, k)
        assert cluster_cores(curves, k) == cluster_cores(curves, k)

    @given(curves=curves_strategy, k=st.integers(1, 10), data=st.data())
    def test_partition_invariant_under_core_permutation(self, curves, k, data):
        """Permuting core order permutes labels but not the partition."""
        perm = data.draw(st.permutations(range(len(curves))))
        base = cluster_cores(curves, k)
        permuted = cluster_cores([curves[p] for p in perm], k)
        # Map the permuted assignment back to original core indices.
        unpermuted = [0] * len(curves)
        for position, core in enumerate(perm):
            unpermuted[core] = permuted[position]
        assert partition_of(base) == partition_of(unpermuted)

    @given(curves=curves_strategy, data=st.data())
    def test_identity_when_k_reaches_core_count(self, curves, data):
        """``k >= n`` gives every core its own cluster."""
        n = len(curves)
        k = data.draw(st.integers(n, n + 4))
        medoids, assignment = kmedoids(curves, k)
        assert medoids == list(range(n))
        assert assignment == list(range(n))
        assert cluster_cores(curves, k) == list(range(n))

    @given(curves=curves_strategy, k=st.integers(1, 10))
    def test_core_map_is_dense_and_bounded(self, curves, k):
        """Labels are dense in [0, K), first-appearance ordered, K <= k."""
        core_map = cluster_cores(curves, k)
        assert len(core_map) == len(curves)
        seen = []
        for label in core_map:
            if label not in seen:
                seen.append(label)
        assert seen == list(range(len(seen)))
        assert len(seen) <= min(k, len(curves))

    @given(curves=curves_strategy, k=st.integers(1, 10))
    def test_equal_curves_share_a_cluster(self, curves, k):
        """Identical curves can never be split across clusters.

        Only meaningful below the ``k >= n`` degeneracy: the identity
        map gives every core (duplicate or not) its own cluster.
        """
        assume(k < len(curves))
        core_map = cluster_cores(curves, k)
        labels = {}
        for curve, label in zip(curves, core_map):
            labels.setdefault(curve, set()).add(label)
        assert all(len(s) == 1 for s in labels.values())


class TestDeriveCoreMap:
    @settings(deadline=None)
    @given(seed=st.integers(0, 3))
    def test_profiled_map_is_reproducible(self, seed):
        source = get_shared_workload("smoke4")
        geometry = machine(4).geometry
        a = derive_core_map(source, geometry, 2, seed, profile_requests=4000)
        b = derive_core_map(source, geometry, 2, seed, profile_requests=4000)
        assert a == b
        assert len(a) == 4 and max(a) + 1 <= 2

    def test_k_at_least_n_skips_profiling(self):
        source = get_shared_workload("smoke4")
        geometry = machine(4).geometry
        assert derive_core_map(source, geometry, 4, 0) == [0, 1, 2, 3]
        assert derive_core_map(source, geometry, 9, 0) == [0, 1, 2, 3]
