"""Tests for the multicore system driver."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.core.allocation import HitMaxPolicy
from repro.core.prism import PrismScheme
from repro.cpu.memory import MemoryModel
from repro.cpu.system import MultiCoreSystem, run_standalone


@pytest.fixture
def geometry():
    return CacheGeometry(8 << 10, 64, 8)  # 128 blocks


class TestRun:
    def test_every_core_reaches_target(self, geometry, friendly_profile,
                                        streaming_profile):
        cache = SharedCache(geometry, 2)
        system = MultiCoreSystem(cache, [friendly_profile, streaming_profile], seed=1)
        result = system.run(20000)
        for core in result.cores:
            assert core.instructions >= 20000

    def test_profile_count_must_match_cores(self, geometry, friendly_profile):
        cache = SharedCache(geometry, 2)
        with pytest.raises(ValueError, match="profiles"):
            MultiCoreSystem(cache, [friendly_profile])

    def test_rejects_zero_instruction_target(self, geometry, friendly_profile):
        cache = SharedCache(geometry, 1)
        system = MultiCoreSystem(cache, [friendly_profile])
        with pytest.raises(ValueError):
            system.run(0)

    def test_max_accesses_safety_valve(self, geometry, friendly_profile):
        cache = SharedCache(geometry, 1)
        system = MultiCoreSystem(cache, [friendly_profile])
        with pytest.raises(RuntimeError, match="exceeded"):
            system.run(10_000_000, max_accesses=100)

    def test_deterministic_under_seed(self, geometry, friendly_profile,
                                      streaming_profile):
        def run(seed):
            cache = SharedCache(geometry, 2)
            system = MultiCoreSystem(
                cache, [friendly_profile, streaming_profile], seed=seed
            )
            return [c.ipc for c in system.run(15000).cores]

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_address_spaces_disjoint(self, geometry, friendly_profile):
        """Two cores running the identical profile must not share blocks:
        no cross-core hits can occur."""
        cache = SharedCache(geometry, 2)
        system = MultiCoreSystem(cache, [friendly_profile, friendly_profile], seed=2)
        system.run(10000)
        for cset in cache.sets:
            owners = {}
            for block in cset.blocks:
                owners.setdefault(block.tag, set()).add(block.core)
        # Footprints are identical but offset: occupancy split is sane.
        assert cache.occupancy[0] > 0 and cache.occupancy[1] > 0

    def test_memory_intensity_drives_access_share(self, geometry,
                                                  friendly_profile,
                                                  insensitive_profile):
        """Rate matching: the memory-intensive core issues far more LLC
        accesses per retired instruction than the compute-bound one."""
        cache = SharedCache(geometry, 2)
        system = MultiCoreSystem(
            cache, [friendly_profile, insensitive_profile], seed=3
        )
        system.run(30000)
        # Rates per *retired instruction* (the insensitive core keeps
        # executing after its finish line, so raw counts don't compare).
        rates = [
            cache.stats.accesses(i) / system.cores[i].instructions for i in range(2)
        ]
        assert rates[0] == pytest.approx(0.05, rel=0.1)
        assert rates[1] == pytest.approx(0.005, rel=0.1)


class TestPerfCounters:
    def test_interval_counters_roll(self, geometry, friendly_profile,
                                    streaming_profile):
        cache = SharedCache(geometry, 2)
        scheme = PrismScheme(HitMaxPolicy(), interval_len=64)
        cache.set_scheme(scheme)
        system = MultiCoreSystem(cache, [friendly_profile, streaming_profile], seed=4)
        system.run(20000)
        assert cache.intervals_completed > 0
        # After rolling, the snapshots equal the live counters at roll time,
        # so interval CPI stays bounded and positive.
        for core in range(2):
            assert system.cpi(core) >= 0.0

    def test_system_registers_as_perf_provider(self, geometry, friendly_profile,
                                               streaming_profile):
        cache = SharedCache(geometry, 2)
        scheme = PrismScheme(HitMaxPolicy(), interval_len=64)
        cache.set_scheme(scheme)
        system = MultiCoreSystem(cache, [friendly_profile, streaming_profile])
        assert scheme.perf is system

    def test_interval_cpi_zero_when_core_idle(self, geometry, friendly_profile):
        cache = SharedCache(geometry, 1)
        system = MultiCoreSystem(cache, [friendly_profile])
        assert system.cpi(0) == 0.0
        assert system.ipc(0) == 0.0
        assert system.llc_stall_cpi(0) == 0.0


class TestStandalone:
    def test_standalone_beats_shared_for_friendly_core(self, geometry,
                                                       friendly_profile,
                                                       streaming_profile):
        alone = run_standalone(friendly_profile, geometry, 20000, seed=7)
        cache = SharedCache(geometry, 2)
        system = MultiCoreSystem(cache, [friendly_profile, streaming_profile], seed=7)
        shared = system.run(20000)
        assert alone.ipc >= shared.cores[0].ipc

    def test_standalone_occupies_whole_cache_eventually(self, geometry,
                                                        friendly_profile):
        core = run_standalone(friendly_profile, geometry, 20000)
        assert core.instructions >= 20000
        assert core.hits > 0

    def test_controllers_forwarded(self, geometry, streaming_profile):
        slow = run_standalone(streaming_profile, geometry, 15000, num_controllers=1)
        fast = run_standalone(streaming_profile, geometry, 15000, num_controllers=8)
        assert fast.ipc >= slow.ipc  # more controllers, less queueing
