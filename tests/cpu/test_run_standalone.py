"""Tests for run_standalone and SystemResult helpers."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import DIPPolicy, TimestampLRUPolicy
from repro.cpu.system import run_standalone

GEOMETRY = CacheGeometry(8 << 10, 64, 8)


class TestRunStandalone:
    def test_policy_factory_used(self, friendly_profile):
        # A stateful policy must be freshly constructible per run.
        calls = []

        def factory():
            calls.append(1)
            return DIPPolicy()

        core = run_standalone(friendly_profile, GEOMETRY, 10_000, policy_factory=factory)
        assert calls == [1]
        assert core.ipc > 0

    def test_default_is_lru(self, friendly_profile):
        core = run_standalone(friendly_profile, GEOMETRY, 10_000)
        assert core.instructions >= 10_000

    def test_baseline_policy_changes_result(self, streaming_profile):
        lru = run_standalone(streaming_profile, GEOMETRY, 15_000, seed=5)
        ts = run_standalone(
            streaming_profile, GEOMETRY, 15_000,
            policy_factory=TimestampLRUPolicy, seed=5,
        )
        # Same stream, different policy: results close but independently
        # computed (both valid, both positive).
        assert lru.ipc > 0 and ts.ipc > 0

    def test_seed_changes_stream(self, friendly_profile):
        a = run_standalone(friendly_profile, GEOMETRY, 10_000, seed=1)
        b = run_standalone(friendly_profile, GEOMETRY, 10_000, seed=2)
        assert a.ipc != b.ipc

    def test_scale_shrinks_footprint(self, friendly_profile):
        # At scale 0.25 the working set fits the small cache: fewer misses.
        big = run_standalone(friendly_profile, GEOMETRY, 15_000, scale=1.0, seed=3)
        small = run_standalone(friendly_profile, GEOMETRY, 15_000, scale=0.25, seed=3)
        assert small.misses < big.misses

    def test_hit_latency_affects_ipc(self, friendly_profile):
        fast = run_standalone(friendly_profile, GEOMETRY, 10_000, llc_hit_latency=2.0)
        slow = run_standalone(friendly_profile, GEOMETRY, 10_000, llc_hit_latency=30.0)
        assert fast.ipc > slow.ipc
