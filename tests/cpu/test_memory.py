"""Tests for the DRAM contention model."""

import pytest

from repro.cpu.memory import MemoryModel


class TestMemoryModel:
    def test_unloaded_latency_pays_service_and_base(self):
        # A request always occupies its controller for service_cycles, so
        # even an unloaded miss is service + DRAM round-trip.
        memory = MemoryModel(num_controllers=1, base_latency=200.0, service_cycles=24.0)
        assert memory.miss_latency(0, now=0.0) == 224.0

    def test_back_to_back_requests_queue(self):
        memory = MemoryModel(1, base_latency=200.0, service_cycles=24.0)
        memory.miss_latency(0, now=0.0)
        second = memory.miss_latency(0, now=0.0)
        assert second == pytest.approx(248.0)  # 24 queued + 24 service + 200

    def test_back_to_back_regression_each_request_pays_its_service(self):
        """Regression for the busy-horizon bug: the horizon advanced by
        service_cycles per request, but the returned latency omitted the
        request's own service occupancy — N back-to-back misses must cost
        base + N * service_cycles for the last one, not base + (N-1)."""
        memory = MemoryModel(1, base_latency=200.0, service_cycles=24.0)
        latencies = [memory.miss_latency(0, now=0.0) for _ in range(4)]
        assert latencies == [224.0, 248.0, 272.0, 296.0]

    def test_queue_drains_over_time(self):
        memory = MemoryModel(1, base_latency=200.0, service_cycles=24.0)
        memory.miss_latency(0, now=0.0)
        later = memory.miss_latency(0, now=1000.0)
        assert later == 224.0

    def test_controllers_are_independent(self):
        memory = MemoryModel(2, base_latency=200.0, service_cycles=24.0)
        memory.miss_latency(0, now=0.0)  # controller 0
        other = memory.miss_latency(1, now=0.0)  # controller 1 (addr % 2)
        assert other == 224.0

    def test_address_hashing(self):
        memory = MemoryModel(4)
        memory.miss_latency(7, now=0.0)   # controller 3
        assert memory._busy_until[3] > 0
        assert memory._busy_until[0] == 0

    def test_contention_grows_with_load(self):
        """More simultaneous requesters -> larger average queueing delay
        (the Fig. 1(a) high-core-count effect)."""

        def mean_delay(requesters):
            memory = MemoryModel(1, base_latency=200.0, service_cycles=24.0)
            for i in range(requesters * 50):
                memory.miss_latency(0, now=float(i // requesters) * 30.0)
            return memory.mean_queue_delay()

        assert mean_delay(8) > mean_delay(1)

    def test_stats(self):
        memory = MemoryModel(1)
        assert memory.mean_queue_delay() == 0.0
        memory.miss_latency(0, 0.0)
        memory.miss_latency(0, 0.0)
        assert memory.requests == 2
        assert memory.mean_queue_delay() > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryModel(0)
        with pytest.raises(ValueError):
            MemoryModel(1, base_latency=0)
        with pytest.raises(ValueError):
            MemoryModel(1, banks_per_controller=0)
        with pytest.raises(ValueError):
            MemoryModel(1, row_blocks=-1)
        with pytest.raises(ValueError):
            MemoryModel(1, row_blocks=4, row_hit_latency=0.0)


class TestRowBufferModel:
    def test_disabled_by_default_is_flat(self):
        memory = MemoryModel(1, base_latency=200.0, service_cycles=24.0)
        for addr in (0, 1, 1 << 20):
            assert memory.miss_latency(addr, now=10_000.0 * (addr + 1)) == 224.0
        assert memory.row_hits == memory.row_conflicts == 0

    def test_open_row_hit_vs_conflict(self):
        memory = MemoryModel(
            1,
            base_latency=200.0,
            service_cycles=24.0,
            banks_per_controller=2,
            row_blocks=4,
            row_hit_latency=120.0,
            row_conflict_latency=280.0,
        )
        # First touch of an idle bank: closed-bank base latency.
        assert memory.miss_latency(0, now=0.0) == 224.0
        # Same row (blocks 0-3 of bank 0): open-row hit.
        assert memory.miss_latency(1, now=1000.0) == 144.0  # 24 + 120
        # Blocks 4-7 stripe to bank 1: idle bank, base again.
        assert memory.miss_latency(4, now=2000.0) == 224.0
        # Block 8 is bank 0, row 1: conflicts with the open row 0.
        assert memory.miss_latency(8, now=3000.0) == 304.0  # 24 + 280
        assert memory.row_hits == 1
        assert memory.row_conflicts == 1
        assert memory.row_hit_rate() == 0.5

    def test_banks_hash_within_controller(self):
        """Two controllers: even addresses on controller 0, odd on 1; the
        per-controller chunk index (addr // controllers) drives bank/row."""
        memory = MemoryModel(
            2,
            base_latency=200.0,
            service_cycles=24.0,
            banks_per_controller=1,
            row_blocks=2,
            row_hit_latency=100.0,
            row_conflict_latency=300.0,
        )
        assert memory.miss_latency(0, now=0.0) == 224.0   # ctl 0, chunk 0, row 0
        assert memory.miss_latency(2, now=1000.0) == 124.0  # ctl 0, chunk 1, row 0: hit
        assert memory.miss_latency(1, now=2000.0) == 224.0  # ctl 1 idle bank
        assert memory.miss_latency(4, now=3000.0) == 324.0  # ctl 0, chunk 2, row 1: conflict

    def test_default_row_latencies_derive_from_base(self):
        memory = MemoryModel(1, base_latency=100.0, row_blocks=4)
        assert memory.row_hit_latency == pytest.approx(60.0)
        assert memory.row_conflict_latency == pytest.approx(140.0)

    def test_streaming_locality_beats_random_conflicts(self):
        streaming = MemoryModel(1, row_blocks=8, banks_per_controller=4)
        conflicting = MemoryModel(1, row_blocks=8, banks_per_controller=4)
        total_stream = sum(
            streaming.miss_latency(i, now=1000.0 * i) for i in range(64)
        )
        # Stride of one full row in the same bank: every access re-opens.
        stride = 8 * 4
        total_conflict = sum(
            conflicting.miss_latency((i % 2) * stride, now=1000.0 * i)
            for i in range(64)
        )
        assert total_stream < total_conflict
