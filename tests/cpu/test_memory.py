"""Tests for the DRAM contention model."""

import pytest

from repro.cpu.memory import MemoryModel


class TestMemoryModel:
    def test_unloaded_latency_is_base(self):
        memory = MemoryModel(num_controllers=1, base_latency=200.0)
        assert memory.miss_latency(0, now=0.0) == 200.0

    def test_back_to_back_requests_queue(self):
        memory = MemoryModel(1, base_latency=200.0, service_cycles=24.0)
        memory.miss_latency(0, now=0.0)
        second = memory.miss_latency(0, now=0.0)
        assert second == pytest.approx(224.0)

    def test_queue_drains_over_time(self):
        memory = MemoryModel(1, base_latency=200.0, service_cycles=24.0)
        memory.miss_latency(0, now=0.0)
        later = memory.miss_latency(0, now=1000.0)
        assert later == 200.0

    def test_controllers_are_independent(self):
        memory = MemoryModel(2, base_latency=200.0, service_cycles=24.0)
        memory.miss_latency(0, now=0.0)  # controller 0
        other = memory.miss_latency(1, now=0.0)  # controller 1 (addr % 2)
        assert other == 200.0

    def test_address_hashing(self):
        memory = MemoryModel(4)
        memory.miss_latency(7, now=0.0)   # controller 3
        assert memory._busy_until[3] > 0
        assert memory._busy_until[0] == 0

    def test_contention_grows_with_load(self):
        """More simultaneous requesters -> larger average queueing delay
        (the Fig. 1(a) high-core-count effect)."""

        def mean_delay(requesters):
            memory = MemoryModel(1, base_latency=200.0, service_cycles=24.0)
            for i in range(requesters * 50):
                memory.miss_latency(0, now=float(i // requesters) * 30.0)
            return memory.mean_queue_delay()

        assert mean_delay(8) > mean_delay(1)

    def test_stats(self):
        memory = MemoryModel(1)
        assert memory.mean_queue_delay() == 0.0
        memory.miss_latency(0, 0.0)
        memory.miss_latency(0, 0.0)
        assert memory.requests == 2
        assert memory.mean_queue_delay() > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryModel(0)
        with pytest.raises(ValueError):
            MemoryModel(1, base_latency=0)
