"""Tests for the optional private L1 filter."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cpu.l1 import L1Cache
from repro.cpu.system import MultiCoreSystem
from repro.util.rng import make_rng


@pytest.fixture
def l1():
    return L1Cache(CacheGeometry(1 << 10, 64, 2))  # 16 blocks, 8 sets


class TestL1Cache:
    def test_first_touch_misses_then_hits(self, l1):
        assert not l1.access(100)
        assert l1.access(100)
        assert l1.hits == 1 and l1.misses == 1

    def test_lru_within_set(self, l1):
        sets = l1.geometry.num_sets
        l1.access(0)
        l1.access(sets)       # same set, second way
        l1.access(2 * sets)   # evicts tag of addr 0
        assert not l1.access(0)
        assert l1.access(sets * 2)

    def test_invalidate(self, l1):
        l1.access(5)
        assert l1.resident(5)
        l1.invalidate(5)
        assert not l1.resident(5)
        l1.invalidate(5)  # idempotent

    def test_hit_rate(self, l1):
        assert l1.hit_rate() == 0.0
        l1.access(1)
        l1.access(1)
        assert l1.hit_rate() == 0.5

    def test_small_working_set_fully_cached(self, l1):
        rng = make_rng(1, "l1")
        for _ in range(2000):
            l1.access(rng.randrange(8))  # 8 blocks across 8 sets
        assert l1.hit_rate() > 0.95

    def test_rejects_non_power_of_two_sets(self):
        class Fake:
            num_sets = 3
            assoc = 2

        with pytest.raises(ValueError, match="power of two"):
            L1Cache(Fake())
        with pytest.raises(ValueError, match="power of two"):
            L1Cache(type("Fake0", (), {"num_sets": 0, "assoc": 2})())

    def test_resident_addrs_round_trip(self, l1):
        addrs = {0, 1, 2, 9, 18}  # sets 0,1,2 hold <= 2 ways each
        for addr in addrs:
            l1.access(addr)
        assert set(l1.resident_addrs()) == addrs
        assert l1.resident_blocks() == len(addrs)
        l1.invalidate(18)
        assert set(l1.resident_addrs()) == addrs - {18}


class TestL1EvictionOrder:
    """The dict-based set must be exact LRU, matching a naive model."""

    def test_eviction_order_is_least_recently_used(self):
        l1 = L1Cache(CacheGeometry(1 << 9, 64, 4))  # 2 sets, 4 ways
        sets = l1.geometry.num_sets
        ways = [i * sets for i in range(4)]  # four tags in set 0
        for addr in ways:
            l1.access(addr)
        l1.access(ways[0])  # touch order now: 1 (LRU), 2, 3, 0 (MRU)
        l1.access(5 * sets)  # overflow: must evict the LRU tag (ways[1])
        assert not l1.resident(ways[1])
        for addr in (ways[0], ways[2], ways[3], 5 * sets):
            assert l1.resident(addr)

    def test_matches_naive_lru_reference(self):
        geometry = CacheGeometry(1 << 10, 64, 2)  # 8 sets, 2 ways
        l1 = L1Cache(geometry)
        reference = {i: [] for i in range(geometry.num_sets)}  # MRU-first lists
        rng = make_rng(7, "l1-order")
        for _ in range(5000):
            addr = rng.randrange(64)
            tags = reference[addr % geometry.num_sets]
            tag = addr // geometry.num_sets
            expect_hit = tag in tags
            if expect_hit:
                tags.remove(tag)
            elif len(tags) >= geometry.assoc:
                tags.pop()
            tags.insert(0, tag)
            assert l1.access(addr) == expect_hit
        for set_index, tags in reference.items():
            for tag in tags:
                assert l1.resident(tag * geometry.num_sets + set_index)


class TestSystemWithL1:
    def test_l1_filters_llc_traffic(self, friendly_profile):
        geometry = CacheGeometry(8 << 10, 64, 8)

        def llc_accesses(l1_geometry):
            cache = SharedCache(geometry, 1)
            system = MultiCoreSystem(
                cache, [friendly_profile], seed=3, l1_geometry=l1_geometry
            )
            system.run(20000)
            return cache.stats.accesses(0)

        unfiltered = llc_accesses(None)
        filtered = llc_accesses(CacheGeometry(2 << 10, 64, 2))
        assert filtered < unfiltered * 0.9

    def test_l1_hits_still_retire_instructions(self, friendly_profile):
        geometry = CacheGeometry(8 << 10, 64, 8)
        cache = SharedCache(geometry, 1)
        system = MultiCoreSystem(
            cache, [friendly_profile], seed=3,
            l1_geometry=CacheGeometry(2 << 10, 64, 2),
        )
        result = system.run(20000)
        assert result.cores[0].instructions >= 20000
        assert system.l1s[0].hits > 0

    def test_l1_improves_ipc(self, friendly_profile):
        geometry = CacheGeometry(8 << 10, 64, 8)

        def ipc(l1_geometry):
            cache = SharedCache(geometry, 1)
            system = MultiCoreSystem(
                cache, [friendly_profile], seed=3, l1_geometry=l1_geometry
            )
            return system.run(20000).cores[0].ipc

        assert ipc(CacheGeometry(2 << 10, 64, 2)) > ipc(None)
