"""Tests for the optional private L1 filter."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cpu.l1 import L1Cache
from repro.cpu.system import MultiCoreSystem
from repro.util.rng import make_rng


@pytest.fixture
def l1():
    return L1Cache(CacheGeometry(1 << 10, 64, 2))  # 16 blocks, 8 sets


class TestL1Cache:
    def test_first_touch_misses_then_hits(self, l1):
        assert not l1.access(100)
        assert l1.access(100)
        assert l1.hits == 1 and l1.misses == 1

    def test_lru_within_set(self, l1):
        sets = l1.geometry.num_sets
        l1.access(0)
        l1.access(sets)       # same set, second way
        l1.access(2 * sets)   # evicts tag of addr 0
        assert not l1.access(0)
        assert l1.access(sets * 2)

    def test_invalidate(self, l1):
        l1.access(5)
        assert l1.resident(5)
        l1.invalidate(5)
        assert not l1.resident(5)
        l1.invalidate(5)  # idempotent

    def test_hit_rate(self, l1):
        assert l1.hit_rate() == 0.0
        l1.access(1)
        l1.access(1)
        assert l1.hit_rate() == 0.5

    def test_small_working_set_fully_cached(self, l1):
        rng = make_rng(1, "l1")
        for _ in range(2000):
            l1.access(rng.randrange(8))  # 8 blocks across 8 sets
        assert l1.hit_rate() > 0.95


class TestSystemWithL1:
    def test_l1_filters_llc_traffic(self, friendly_profile):
        geometry = CacheGeometry(8 << 10, 64, 8)

        def llc_accesses(l1_geometry):
            cache = SharedCache(geometry, 1)
            system = MultiCoreSystem(
                cache, [friendly_profile], seed=3, l1_geometry=l1_geometry
            )
            system.run(20000)
            return cache.stats.accesses(0)

        unfiltered = llc_accesses(None)
        filtered = llc_accesses(CacheGeometry(2 << 10, 64, 2))
        assert filtered < unfiltered * 0.9

    def test_l1_hits_still_retire_instructions(self, friendly_profile):
        geometry = CacheGeometry(8 << 10, 64, 8)
        cache = SharedCache(geometry, 1)
        system = MultiCoreSystem(
            cache, [friendly_profile], seed=3,
            l1_geometry=CacheGeometry(2 << 10, 64, 2),
        )
        result = system.run(20000)
        assert result.cores[0].instructions >= 20000
        assert system.l1s[0].hits > 0

    def test_l1_improves_ipc(self, friendly_profile):
        geometry = CacheGeometry(8 << 10, 64, 8)

        def ipc(l1_geometry):
            cache = SharedCache(geometry, 1)
            system = MultiCoreSystem(
                cache, [friendly_profile], seed=3, l1_geometry=l1_geometry
            )
            return system.run(20000).cores[0].ipc

        assert ipc(CacheGeometry(2 << 10, 64, 2)) > ipc(None)
