"""Tests for the per-core timing model."""

import pytest

from repro.cpu.core_model import CoreTimingModel
from repro.workloads.benchmark import BenchmarkProfile
from repro.workloads.zones import UniformZone


def profile(cpi_base=0.5, mlp=2.0):
    return BenchmarkProfile(
        "t", (UniformZone(1.0, 16),), mem_ratio=0.02, mlp=mlp, cpi_base=cpi_base
    )


class TestAdvance:
    def test_hit_accounting(self):
        core = CoreTimingModel(0, profile(cpi_base=0.5), llc_hit_latency=8.0)
        core.advance(100, hit=True)
        assert core.instructions == 100
        assert core.cycles == pytest.approx(100 * 0.5 + 8.0)
        assert core.llc_stall_cycles == 0.0

    def test_miss_accounting_divides_by_mlp(self):
        core = CoreTimingModel(0, profile(mlp=2.0), llc_hit_latency=8.0)
        core.advance(100, hit=False, mem_latency=200.0)
        assert core.cycles == pytest.approx(50.0 + 8.0 + 100.0)
        assert core.llc_stall_cycles == pytest.approx(100.0)

    def test_stall_excludes_hit_latency(self):
        # CPI_llc counts only the *extra* cycles a miss costs beyond a hit,
        # matching the Algorithm-2 decomposition.
        core = CoreTimingModel(0, profile(mlp=1.0), llc_hit_latency=10.0)
        core.advance(10, hit=False, mem_latency=100.0)
        assert core.llc_stall_cycles == pytest.approx(100.0)

    def test_cycles_strictly_increase(self):
        core = CoreTimingModel(0, profile())
        last = 0.0
        for i in range(100):
            core.advance(5, hit=(i % 2 == 0), mem_latency=200.0)
            assert core.cycles > last
            last = core.cycles

    def test_rejects_negative_hit_latency(self):
        with pytest.raises(ValueError):
            CoreTimingModel(0, profile(), llc_hit_latency=-1.0)


class TestReporting:
    def test_ipc_cpi_consistent(self):
        core = CoreTimingModel(0, profile(cpi_base=1.0))
        core.advance(100, hit=True)
        assert core.ipc() == pytest.approx(1.0 / core.cpi())

    def test_zero_instruction_guard(self):
        core = CoreTimingModel(0, profile())
        assert core.ipc() == 0.0
        assert core.cpi() == 0.0

    def test_finish_freezes_reported_figures(self):
        core = CoreTimingModel(0, profile())
        core.advance(100, hit=True)
        ipc_at_finish = core.ipc()
        core.mark_finished()
        core.advance(1000, hit=False, mem_latency=400.0)  # keeps running
        assert core.ipc() == pytest.approx(ipc_at_finish)
        assert core.instructions == 1100  # live counter still advances

    def test_mark_finished_idempotent(self):
        core = CoreTimingModel(0, profile())
        core.advance(10, hit=True)
        core.mark_finished()
        first = core.finish_cycles
        core.advance(10, hit=True)
        core.mark_finished()
        assert core.finish_cycles == first
