"""Tests for inclusive-hierarchy back-invalidation."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cpu.system import MultiCoreSystem

LLC = CacheGeometry(4 << 10, 64, 4)
L1 = CacheGeometry(1 << 10, 64, 2)


class TestEvictedAddr:
    def test_access_result_reports_victim_address(self):
        cache = SharedCache(LLC, 1)
        s = LLC.num_sets
        for i in range(LLC.assoc):
            cache.access(0, i * s)
        result = cache.access(0, LLC.assoc * s)
        assert result.evicted_addr == 0  # LRU victim was block address 0

    def test_no_eviction_reports_minus_one(self):
        cache = SharedCache(LLC, 1)
        result = cache.access(0, 7)
        assert result.evicted_addr == -1
        assert cache.access(0, 7).evicted_addr == -1  # hit


class TestInclusiveHierarchy:
    def test_back_invalidation_clears_l1(self, friendly_profile):
        cache = SharedCache(LLC, 1)
        system = MultiCoreSystem(
            cache, [friendly_profile], seed=1, l1_geometry=L1, inclusive=True
        )
        system.run(40_000)
        l1 = system.l1s[0]
        # Inclusion: every L1-resident block is also LLC-resident.
        for block_addr in l1.resident_addrs():
            llc_set = cache.sets[LLC.set_index(block_addr)]
            assert llc_set.lookup(LLC.tag(block_addr)) is not None

    @pytest.mark.parametrize("inclusive", [True, False])
    def test_scripted_eviction_scenario(self, friendly_profile, inclusive):
        """Block A stays hot in L1 (so the LLC never sees it again) while
        conflicting blocks push it out of the LLC. Inclusive mode must
        back-invalidate A; non-inclusive leaves it L1-resident."""

        class Scripted:
            def __init__(self, addrs):
                self.addrs = list(addrs)
                self.pos = 0

            def next_access(self):
                addr = self.addrs[min(self.pos, len(self.addrs) - 1)]
                self.pos += 1
                return 1, addr

        sets = LLC.num_sets
        a = 0
        conflicts = [sets * i for i in range(1, LLC.assoc + 1)]
        script = [a]
        for b in conflicts[:-1]:
            script += [b, a]  # keep A the L1-MRU between conflict fills
        script += [conflicts[-1]]  # the fill that evicts A from the LLC
        script += [999]  # tail filler (re-served if the run needs more)

        cache = SharedCache(LLC, 1)
        system = MultiCoreSystem(
            cache, [friendly_profile], l1_geometry=L1, inclusive=inclusive
        )
        system.streams = [Scripted(script)]
        system.run(len(script))

        llc_resident = cache.sets[0].lookup(LLC.tag(a)) is not None
        assert not llc_resident  # conflicts evicted A from the LLC
        assert system.l1s[0].resident(a) == (not inclusive)

    def test_inclusive_flag_ignored_without_l1(self, friendly_profile):
        cache = SharedCache(LLC, 1)
        system = MultiCoreSystem(cache, [friendly_profile], inclusive=True)
        assert not system.inclusive
        system.run(5_000)  # runs fine
