"""Property tests for the Eq. 1 inversion (Section 3.2).

Hypothesis sweeps the clamp, degenerate-interval and renormalisation
behaviour of :mod:`repro.core.eviction`: the derived ``E`` must always be
a sampleable distribution whenever the inputs are themselves valid
occupancy/target/miss vectors.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core.eviction import (
    derive_eviction_probabilities,
    eviction_probability,
    projected_occupancy,
)

fractions = st.floats(0.0, 1.0, allow_nan=False)
weights = st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=8)
sizes = st.integers(1, 1 << 16)


def _normalized(raw):
    total = sum(raw)
    if total <= 0.0:
        return [1.0 / len(raw)] * len(raw)
    return [x / total for x in raw]


@given(c=fractions, t=fractions, m=fractions, n=sizes, w=sizes)
def test_single_core_probability_is_clamped(c, t, m, n, w):
    e = eviction_probability(c, t, m, n, w)
    assert 0.0 <= e <= 1.0


@given(c=fractions, t=fractions, m=fractions, n=sizes, w=sizes)
def test_unclamped_region_inverts_the_occupancy_model(c, t, m, n, w):
    """Where no clamp binds, applying E for one interval lands on target."""
    e = eviction_probability(c, t, m, n, w)
    if 0.0 < e < 1.0:
        tau = projected_occupancy(c, m, e, n, w)
        assert tau == pytest.approx(t, abs=1e-9)


@given(raw=st.tuples(weights, weights, weights), n=sizes, w=sizes)
def test_targets_summing_to_one_yield_a_distribution(raw, n, w):
    k = min(len(v) for v in raw)
    c = [x / 10.0 for x in raw[0][:k]]  # occupancies need not sum to 1
    t = _normalized(raw[1][:k])
    m = _normalized(raw[2][:k])
    e = derive_eviction_probabilities(c, t, m, n, w)
    assert len(e) == k
    assert all(p >= 0.0 for p in e)
    assert sum(e) == pytest.approx(1.0)


@given(w=st.integers(-5, 0))
def test_degenerate_interval_is_rejected(w):
    """W = 0 (no misses) leaves Eq. 1 undefined; the guard must fire."""
    with pytest.raises(ValueError, match="interval"):
        derive_eviction_probabilities([0.5], [0.5], [1.0], 64, w)


@given(n=st.integers(-5, 0))
def test_degenerate_cache_size_is_rejected(n):
    with pytest.raises(ValueError, match="num_blocks"):
        derive_eviction_probabilities([0.5], [0.5], [1.0], n, 64)


def test_length_mismatch_is_rejected():
    with pytest.raises(ValueError, match="length mismatch"):
        derive_eviction_probabilities([0.5, 0.5], [1.0], [1.0], 64, 64)


def test_everyone_below_target_falls_back_to_miss_pressure():
    """All-clamped-to-zero E falls back to evicting in proportion to M."""
    e = derive_eviction_probabilities(
        [0.0, 0.0], [0.5, 0.5], [0.25, 0.75], num_blocks=6400, interval=64
    )
    assert e == [0.25, 0.75]


def test_everyone_below_target_with_no_misses_is_uniform():
    e = derive_eviction_probabilities(
        [0.0, 0.0], [0.5, 0.5], [0.0, 0.0], num_blocks=6400, interval=64
    )
    assert e == [0.5, 0.5]


@given(raw=st.tuples(weights, weights, weights), n=sizes, w=sizes)
def test_unrenormalised_vector_is_elementwise_clamped(raw, n, w):
    k = min(len(v) for v in raw)
    c, t, m = ([x / 10.0 for x in v[:k]] for v in raw)
    e = derive_eviction_probabilities(c, t, m, n, w, renormalize=False)
    assert e == [eviction_probability(*args, n, w) for args in zip(c, t, m)]
