"""Tests for the PriSM analytical model (Eq. 1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.eviction import (
    derive_eviction_probabilities,
    eviction_probability,
    projected_occupancy,
)


class TestSingleCore:
    def test_steady_state_keeps_miss_fraction(self):
        # At target (C == T), the core must be evicted exactly as fast as it
        # inserts: E == M.
        assert eviction_probability(0.25, 0.25, 0.4, 1024, 1024) == pytest.approx(0.4)

    def test_shrinking_core_evicts_more(self):
        e = eviction_probability(0.5, 0.25, 0.4, 1024, 1024)
        assert e == pytest.approx(0.65)

    def test_growing_core_evicts_less(self):
        e = eviction_probability(0.25, 0.5, 0.4, 1024, 1024)
        assert e == pytest.approx(0.15)

    def test_unreachable_growth_clamps_to_zero(self):
        # T far above what one interval of insertions can deliver -> E = 0.
        assert eviction_probability(0.1, 0.9, 0.1, 1024, 1024) == 0.0

    def test_unreachable_shrink_clamps_to_one(self):
        assert eviction_probability(0.9, 0.0, 0.8, 1024, 1024) == 1.0

    def test_interval_scaling(self):
        # Halving W doubles the occupancy-gap term.
        e_full = eviction_probability(0.3, 0.2, 0.1, 1024, 1024)
        e_half = eviction_probability(0.3, 0.2, 0.1, 1024, 512)
        assert e_half == pytest.approx(0.1 + 2 * (e_full - 0.1))


class TestProjectedOccupancy:
    def test_fixed_point(self):
        # tau = C when E == M.
        assert projected_occupancy(0.3, 0.2, 0.2, 1024, 1024) == pytest.approx(0.3)

    def test_eq1_roundtrip(self):
        # Applying Eq. 1's E reaches exactly T when feasible.
        c, t, m = 0.4, 0.32, 0.3
        e = eviction_probability(c, t, m, 2048, 1024)
        assert projected_occupancy(c, m, e, 2048, 1024) == pytest.approx(t)

    def test_clamped_to_unit_interval(self):
        assert projected_occupancy(0.9, 1.0, 0.0, 100, 1000) == 1.0
        assert projected_occupancy(0.1, 0.0, 1.0, 100, 1000) == 0.0


class TestDistribution:
    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length"):
            derive_eviction_probabilities([0.5], [0.5, 0.5], [1.0], 100, 100)

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            derive_eviction_probabilities([1.0], [1.0], [1.0], 100, 0)

    def test_unclamped_sums_to_one_identity(self):
        """The paper's distribution identity: with sum(C)=sum(T), sum(M)=1,
        the raw Eq. 1 values sum to 1 before clamping (no entry clamps in
        this example, so the function output shows the identity directly)."""
        c = [0.4, 0.3, 0.2, 0.1]
        t = [0.25, 0.25, 0.25, 0.25]
        m = [0.1, 0.2, 0.3, 0.4]
        raw = derive_eviction_probabilities(c, t, m, 4096, 4096, renormalize=False)
        assert sum(raw) == pytest.approx(1.0)

    def test_renormalized_is_distribution(self):
        e = derive_eviction_probabilities(
            [0.7, 0.2, 0.1], [0.1, 0.5, 0.4], [0.6, 0.3, 0.1], 1024, 256
        )
        assert sum(e) == pytest.approx(1.0)
        assert all(0.0 <= p <= 1.0 for p in e)

    def test_all_below_target_falls_back_to_miss_fractions(self):
        # Cold cache: everyone under target, all raw values clamp to 0.
        e = derive_eviction_probabilities(
            [0.0, 0.0], [0.5, 0.5], [0.7, 0.3], 100000, 10
        )
        assert e == pytest.approx([0.7, 0.3])

    def test_zero_miss_zero_target_yields_uniform(self):
        e = derive_eviction_probabilities(
            [0.0, 0.0], [0.5, 0.5], [0.0, 0.0], 100000, 10, renormalize=True
        )
        assert e == [0.5, 0.5]

    def test_steady_state_distribution_equals_miss_fractions(self):
        m = [0.5, 0.3, 0.2]
        c = t = [1 / 3] * 3
        e = derive_eviction_probabilities(c, t, m, 1024, 1024)
        assert e == pytest.approx(m)

    @given(
        st.lists(st.floats(0.01, 1.0), min_size=2, max_size=16),
        st.lists(st.floats(0.01, 1.0), min_size=2, max_size=16),
        st.lists(st.floats(0.0, 1.0), min_size=2, max_size=16),
        st.integers(64, 1 << 20),
        st.integers(1, 1 << 20),
    )
    def test_always_a_distribution(self, c, t, m, n, w):
        """Property: whatever the (normalised) inputs, the output is a
        probability distribution."""
        k = min(len(c), len(t), len(m))
        c, t, m = c[:k], t[:k], m[:k]
        c = [x / sum(c) for x in c]
        t = [x / sum(t) for x in t]
        total_m = sum(m)
        m = [x / total_m for x in m] if total_m > 0 else [1.0 / k] * k
        e = derive_eviction_probabilities(c, t, m, n, w)
        assert sum(e) == pytest.approx(1.0)
        assert all(0.0 <= p <= 1.0 + 1e-12 for p in e)

    @given(
        st.integers(2, 8),
        st.integers(256, 1 << 16),
        st.randoms(use_true_random=False),
    )
    def test_identity_property(self, k, n, rng):
        """The raw (pre-clamp) Eq. 1 values sum to 1 for any normalised
        C, T, M with W = N — the identity the paper's distribution relies
        on. Computed inline because the public function clamps."""

        def simplex():
            xs = [rng.random() + 0.01 for _ in range(k)]
            s = sum(xs)
            return [x / s for x in xs]

        c, t, m = simplex(), simplex(), simplex()
        raw = [(ci - ti) * n / n + mi for ci, ti, mi in zip(c, t, m)]
        assert sum(raw) == pytest.approx(1.0, abs=1e-9)
