"""Statistical properties of the probabilistic manager's fallbacks.

The design rationale for the resampling fallback (DESIGN.md §3) is that
realised per-core eviction fractions track ``E`` even when the sampled
core is often absent. These tests measure that directly on adversarial
set compositions.
"""

import pytest

from repro.cache.cacheset import CacheSet
from repro.cache.replacement.lru import LRUPolicy
from repro.core.manager import ProbabilisticCacheManager


def fixed_set(owners):
    cset = CacheSet(0, len(owners))
    for tag, core in enumerate(owners):
        cset.fill(tag, core=core, position=len(cset.blocks))
    return cset


def eviction_fractions(manager, owners, draws=20000):
    """Victim-core frequencies over repeated selections on a fixed set."""
    policy = LRUPolicy()
    counts = [0] * manager.num_cores
    for _ in range(draws):
        cset = fixed_set(owners)  # fresh set each draw (no state carryover)
        victim = manager.select_victim(cset, policy)
        counts[victim.core] += 1
    total = sum(counts)
    return [c / total for c in counts]


class TestRealisedEvictionRates:
    def test_resample_matches_e_when_everyone_present(self):
        manager = ProbabilisticCacheManager(3, seed=1)
        manager.set_distribution([0.5, 0.3, 0.2])
        fractions = eviction_fractions(manager, [0, 1, 2, 0, 1, 0, 2, 1])
        assert fractions[0] == pytest.approx(0.5, abs=0.02)
        assert fractions[1] == pytest.approx(0.3, abs=0.02)
        assert fractions[2] == pytest.approx(0.2, abs=0.02)

    def test_resample_redistributes_absent_core_proportionally(self):
        """Core 2 (E=0.2) never present: its mass must split between cores
        0 and 1 in proportion 0.5 : 0.3 (resampling), so realised fractions
        are 0.625 / 0.375."""
        manager = ProbabilisticCacheManager(3, seed=2)
        manager.set_distribution([0.5, 0.3, 0.2])
        fractions = eviction_fractions(manager, [0, 1, 0, 1, 0, 1, 0, 1])
        assert fractions[0] == pytest.approx(0.625, abs=0.02)
        assert fractions[1] == pytest.approx(0.375, abs=0.02)
        assert fractions[2] == 0.0

    def test_paper_fallback_biases_toward_lru_owner(self):
        """The paper's first-candidate rule hands every fallback to the
        core owning the LRU-most block — here core 0 owns the LRU end, so
        it absorbs all of core 2's 0.2 mass."""
        manager = ProbabilisticCacheManager(3, seed=3, fallback="paper")
        manager.set_distribution([0.5, 0.3, 0.2])
        # MRU -> LRU order: [1, 1, 0, 0]; LRU-most is core 0.
        fractions = eviction_fractions(manager, [1, 1, 0, 0])
        assert fractions[0] == pytest.approx(0.7, abs=0.02)
        assert fractions[1] == pytest.approx(0.3, abs=0.02)

    def test_not_found_rate_counts_absences(self):
        manager = ProbabilisticCacheManager(2, seed=4)
        manager.set_distribution([0.75, 0.25])
        eviction_fractions(manager, [0, 0, 0, 0], draws=4000)
        # Core 1 sampled ~25% of the time but never present.
        assert manager.victim_not_found_rate() == pytest.approx(0.25, abs=0.02)
