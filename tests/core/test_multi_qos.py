"""Tests for the multi-core QoS extension."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.core import PrismScheme
from repro.core.allocation import MultiQOSPolicy
from repro.cpu.memory import MemoryModel
from repro.cpu.system import MultiCoreSystem
from repro.workloads.spec import get_profile
from tests.core.test_allocation_policies import FakePerf, make_ctx, make_shadow


class TestValidation:
    def test_needs_targets(self):
        with pytest.raises(ValueError):
            MultiQOSPolicy({})

    def test_rejects_bad_core_or_ipc(self):
        with pytest.raises(ValueError):
            MultiQOSPolicy({-1: 1.0})
        with pytest.raises(ValueError):
            MultiQOSPolicy({0: 0.0})

    def test_core_out_of_range(self):
        policy = MultiQOSPolicy({7: 1.0})
        perf = FakePerf(cpis=[1.0] * 4, ipcs=[1.0] * 4)
        with pytest.raises(ValueError, match="out of range"):
            policy.compute_targets(make_ctx(4, perf=perf))

    def test_everyone_guaranteed_rejected(self):
        policy = MultiQOSPolicy({0: 1.0, 1: 1.0})
        perf = FakePerf(cpis=[1.0, 1.0], ipcs=[1.0, 1.0])
        with pytest.raises(ValueError, match="best-effort"):
            policy.compute_targets(make_ctx(2, perf=perf))

    def test_requires_perf(self):
        with pytest.raises(RuntimeError):
            MultiQOSPolicy({0: 1.0}).compute_targets(make_ctx(4))


class TestControlRules:
    def test_under_target_cores_grow(self):
        policy = MultiQOSPolicy({0: 1.0, 1: 1.0}, alpha=0.1)
        perf = FakePerf(cpis=[2.0, 0.5, 1.0, 1.0], ipcs=[0.5, 2.0, 1.0, 1.0])
        ctx = make_ctx(4, occupancy=[0.2, 0.2, 0.3, 0.3], perf=perf)
        targets = policy.compute_targets(ctx)
        assert targets[0] == pytest.approx(0.22)  # under target: +10%
        assert targets[1] == pytest.approx(0.18)  # over target: -10%
        assert sum(targets) == pytest.approx(1.0)

    def test_admission_control_scales_back(self):
        policy = MultiQOSPolicy({0: 10.0, 1: 10.0}, max_total_occupancy=0.5)
        perf = FakePerf(cpis=[1.0] * 4, ipcs=[1.0] * 4)
        ctx = make_ctx(4, occupancy=[0.4, 0.4, 0.1, 0.1], perf=perf)
        targets = policy.compute_targets(ctx)
        assert targets[0] + targets[1] == pytest.approx(0.5)
        # Proportionality preserved.
        assert targets[0] == pytest.approx(targets[1])

    def test_best_effort_share_follows_hitmax(self):
        policy = MultiQOSPolicy({0: 1.0})
        shadow = make_shadow(3, standalone_hits=[0, 100, 10], shared_hits=[0, 10, 8])
        perf = FakePerf(cpis=[1.0] * 3, ipcs=[1.0] * 3)
        ctx = make_ctx(3, occupancy=[0.4, 0.3, 0.3], shadow=shadow, perf=perf)
        targets = policy.compute_targets(ctx)
        assert targets[1] > targets[2]  # bigger gain -> bigger share


class TestEndToEnd:
    def test_two_guarantees_both_held(self):
        """Two cores with reachable IPC floors are both held at/near their
        targets while the best-effort cores absorb the pressure."""
        geometry = CacheGeometry(64 << 10, 64, 16)
        names = ["300.twolf", "175.vpr", "470.lbm", "429.mcf"]
        profiles = [get_profile(n) for n in names]

        def run(policy):
            cache = SharedCache(geometry, 4)
            if policy is not None:
                cache.set_scheme(PrismScheme(policy))
            system = MultiCoreSystem(cache, profiles, seed=3, memory=MemoryModel(1))
            return system.run(250_000)

        # Reachable under the service-inclusive miss latency (every miss
        # pays its own controller occupancy on top of the DRAM round-trip).
        target = 0.42
        qos = run(MultiQOSPolicy({0: target, 1: target}))
        for core in (0, 1):
            assert qos.cores[core].ipc >= target * 0.93
        # Guaranteed cores hold substantial cache; the streamer does not.
        assert qos.cores[0].occupancy_at_finish > qos.cores[2].occupancy_at_finish
