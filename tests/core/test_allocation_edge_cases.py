"""Edge-case and property tests for the allocation policies as a family."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocation import (
    BalancedPolicy,
    FairnessPolicy,
    HitMaxPolicy,
    MultiQOSPolicy,
    QOSPolicy,
    UCPExtendedPolicy,
)
from tests.core.test_allocation_policies import FakePerf, make_ctx, make_shadow

ALL_POLICIES = [
    ("hitmax", lambda: HitMaxPolicy()),
    ("hitmax-pure", lambda: HitMaxPolicy(pure=True)),
    ("fairness", lambda: FairnessPolicy()),
    ("qos", lambda: QOSPolicy(target_ipc=1.0)),
    ("multiqos", lambda: MultiQOSPolicy({0: 1.0})),
    ("ucpx", lambda: UCPExtendedPolicy()),
    ("balanced", lambda: BalancedPolicy(0.5)),
]


def random_ctx(rng, num_cores):
    """A randomized but internally consistent AllocationContext."""
    assoc = 8
    position_hits = [
        [rng.randint(0, 50) for _ in range(assoc)] for _ in range(num_cores)
    ]
    shadow = make_shadow(
        num_cores,
        assoc=assoc,
        position_hits=position_hits,
        shared_hits=[rng.randint(0, 200) for _ in range(num_cores)],
        standalone_misses=[rng.randint(0, 100) for _ in range(num_cores)],
        shared_misses=[rng.randint(1, 200) for _ in range(num_cores)],
    )
    occupancy = [rng.random() + 0.01 for _ in range(num_cores)]
    total = sum(occupancy)
    occupancy = [x / total for x in occupancy]
    misses = [rng.random() + 0.01 for _ in range(num_cores)]
    total_m = sum(misses)
    perf = FakePerf(
        cpis=[rng.random() * 3 + 0.1 for _ in range(num_cores)],
        stall_cpis=[rng.random() for _ in range(num_cores)],
        ipcs=[rng.random() * 2 + 0.05 for _ in range(num_cores)],
    )
    return make_ctx(
        num_cores,
        occupancy=occupancy,
        miss_fractions=[m / total_m for m in misses],
        shadow=shadow,
        perf=perf,
    )


@pytest.mark.parametrize("name,factory", ALL_POLICIES)
@settings(max_examples=20, deadline=None)
@given(rng=st.randoms(use_true_random=False), num_cores=st.integers(2, 16))
def test_every_policy_returns_valid_targets(name, factory, rng, num_cores):
    """Property: whatever the counters say, every allocation policy returns
    non-negative targets summing to 1."""
    ctx = random_ctx(rng, num_cores)
    targets = factory().compute_targets(ctx)
    assert len(targets) == num_cores
    assert all(t >= 0.0 for t in targets)
    assert sum(targets) == pytest.approx(1.0, abs=1e-6)


@pytest.mark.parametrize("name,factory", ALL_POLICIES)
def test_policies_handle_cold_start(name, factory):
    """First interval: zero occupancy, zero counters — no crashes, valid
    distribution."""
    perf = FakePerf(cpis=[0.0] * 4, stall_cpis=[0.0] * 4, ipcs=[0.0] * 4)
    ctx = make_ctx(4, occupancy=[0.0] * 4, perf=perf)
    targets = factory().compute_targets(ctx)
    assert sum(targets) == pytest.approx(1.0, abs=1e-6)


def test_hitmax_indifferent_to_gain_scaling():
    """Alg. 1 uses gain *shares*: multiplying every gain by a constant
    changes nothing."""
    base = make_shadow(3, standalone_hits=[30, 20, 10], shared_hits=[0, 0, 0])
    scaled = make_shadow(3, standalone_hits=[300, 200, 100], shared_hits=[0, 0, 0])
    ctx_a = make_ctx(3, occupancy=[0.3, 0.3, 0.4], shadow=base)
    ctx_b = make_ctx(3, occupancy=[0.3, 0.3, 0.4], shadow=scaled)
    policy = HitMaxPolicy(pure=True)
    assert policy.compute_targets(ctx_a) == pytest.approx(policy.compute_targets(ctx_b))


def test_fairness_reduces_slowdown_spread_in_targets():
    """The more slowed a core, the larger its fairness target relative to
    its occupancy."""
    shadow = make_shadow(2, standalone_misses=[10, 100], shared_misses=[100, 100])
    perf = FakePerf(cpis=[2.0, 2.0], stall_cpis=[1.0, 1.0])
    ctx = make_ctx(2, occupancy=[0.5, 0.5], shadow=shadow, perf=perf)
    targets = FairnessPolicy().compute_targets(ctx)
    ratios = [t / c for t, c in zip(targets, ctx.occupancy)]
    assert ratios[0] > ratios[1]
