"""Regression pins for the §3.1 fallback victim selection.

When core-selection samples a core that owns no block in the accessed set,
the paper's rule ("use the underlying replacement policy to select the
first replacement candidate that belongs to a core with non-zero eviction
probability") must:

- skip candidates whose core has ``E_i == 0``, even at the LRU position;
- fall back to the baseline (LRU) victim when *every* resident core has
  ``E_i == 0``.

Both the specialised recency-list selector (the hot path LRU/DIP use) and
the generic materialised-order selector are pinned, plus the "resample"
fallback's restriction to resident cores.
"""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement.lru import LRUPolicy
from repro.core import HitMaxPolicy, PrismScheme
from repro.core.manager import ProbabilisticCacheManager

#: One 4-way set: every access lands in it, so residency is fully scripted.
ONE_SET = CacheGeometry(4 * 64, block_bytes=64, assoc=4)

A0, A1, A2, A3, A4 = (i * 64 for i in range(5))


def scripted_cache(fallback):
    """A full one-set cache: LRU->MRU order is [A0(c0), A1(c1), A2(c1), A3(c1)]."""
    cache = SharedCache(ONE_SET, num_cores=3, policy=LRUPolicy())
    cache.set_scheme(
        PrismScheme(HitMaxPolicy(), interval_len=10_000, sample_shift=1,
                    fallback=fallback, seed=0)
    )
    cache.access(0, A0)
    for addr in (A1, A2, A3):
        cache.access(1, addr)
    return cache


def pin_draws(manager, *values):
    """Script the manager's PRNG (the selector pins the RNG object, not the
    bound method, exactly so tests can do this)."""
    draws = iter(values)
    manager._rng.random = lambda: next(draws)


class TestPaperFallback:
    def test_skips_zero_probability_core_at_lru(self):
        cache = scripted_cache("paper")
        manager = cache.scheme.manager
        # E: core 0 frozen, core 2 nearly never sampled but non-zero.
        manager.set_distribution([0.0, 0.995, 0.005])
        pin_draws(manager, 0.999)  # samples core 2, which owns nothing here
        result = cache.access(2, A4)
        assert not result.hit
        # The LRU block (A0, core 0) has E=0 and must survive; the first
        # candidate from a non-zero-E core is core 1's LRU-most block (A1).
        assert result.evicted_core == 1
        assert manager.victim_not_found == 1
        assert cache.access(0, A0).hit  # core 0's block is still resident

    def test_all_resident_cores_zero_falls_back_to_lru(self):
        cache = scripted_cache("paper")
        manager = cache.scheme.manager
        # Only absent core 2 may be sampled: every resident core has E=0.
        manager.set_distribution([0.0, 0.0, 1.0])
        pin_draws(manager, 0.5)  # bisect([0, 0, 1], 0.5) -> core 2
        result = cache.access(2, A4)
        assert not result.hit
        assert result.evicted_core == 0  # baseline LRU victim
        assert manager.victim_not_found == 1


class TestResampleFallback:
    def test_resamples_among_resident_nonzero_cores(self):
        cache = scripted_cache("resample")
        manager = cache.scheme.manager
        manager.set_distribution([0.0, 0.995, 0.005])
        # First draw samples absent core 2; the redraw is restricted to
        # resident cores with E > 0, which leaves only core 1.
        pin_draws(manager, 0.999, 0.5)
        result = cache.access(2, A4)
        assert result.evicted_core == 1
        assert manager.victim_not_found == 1

    def test_all_resident_cores_zero_falls_back_to_lru(self):
        cache = scripted_cache("resample")
        manager = cache.scheme.manager
        manager.set_distribution([0.0, 0.0, 1.0])
        pin_draws(manager, 0.5)
        result = cache.access(2, A4)
        assert result.evicted_core == 0
        assert manager.victim_not_found == 1


class _StubBlock:
    __slots__ = ("core",)

    def __init__(self, core):
        self.core = core


class _StubPolicy:
    """Non-recency-ordered policy with a scripted preference order."""

    recency_ordered = False

    def __init__(self, order):
        self._order = order

    def eviction_candidates(self, cset):
        return list(self._order)


class TestMaterialisedOrderFallback:
    """The generic (non-recency) selector obeys the same paper rule."""

    def test_skips_zero_probability_candidates(self):
        manager = ProbabilisticCacheManager(4, fallback="paper")
        manager.set_distribution([0.0, 0.6, 0.3, 0.1])
        order = [_StubBlock(0), _StubBlock(1), _StubBlock(2)]
        pin_draws(manager, 0.9999)  # samples core 3: absent from the order
        victim = manager.select_victim(None, _StubPolicy(order))
        assert victim is order[1]  # order[0] belongs to a zero-E core
        assert manager.victim_not_found == 1

    def test_all_zero_returns_baseline_choice(self):
        manager = ProbabilisticCacheManager(4, fallback="paper")
        manager.set_distribution([0.0, 0.0, 0.0, 1.0])
        order = [_StubBlock(0), _StubBlock(1)]
        pin_draws(manager, 0.5)  # samples core 3: absent
        victim = manager.select_victim(None, _StubPolicy(order))
        assert victim is order[0]


def test_fallback_name_is_validated():
    with pytest.raises(ValueError, match="fallback"):
        ProbabilisticCacheManager(2, fallback="wishful")
