"""Tests for PriSM's allocation policies (Algorithms 1-3 + extended UCP)."""

import pytest

from repro.cache.shadow import ShadowTagMonitor
from repro.core.allocation import (
    AllocationContext,
    FairnessPolicy,
    HitMaxPolicy,
    QOSPolicy,
    UCPExtendedPolicy,
)
from repro.core.allocation.base import normalize_targets


def make_shadow(num_cores=4, assoc=8, standalone_hits=None, shared_hits=None,
                standalone_misses=None, shared_misses=None, position_hits=None):
    """A shadow monitor with counters set directly (no stream needed)."""
    monitor = ShadowTagMonitor(num_cores, num_sets=16, assoc=assoc, sample_shift=0)
    for core in range(num_cores):
        if position_hits is not None:
            monitor.position_hits[core] = list(position_hits[core])
        elif standalone_hits is not None:
            monitor.position_hits[core][0] = standalone_hits[core]
        if shared_hits is not None:
            monitor.shared_hits[core] = shared_hits[core]
        if standalone_misses is not None:
            monitor.shadow_misses[core] = standalone_misses[core]
        if shared_misses is not None:
            monitor.shared_misses[core] = shared_misses[core]
    return monitor


def make_ctx(num_cores=4, occupancy=None, miss_fractions=None, shadow=None,
             perf=None, num_blocks=1024, interval=1024):
    return AllocationContext(
        num_cores=num_cores,
        occupancy=occupancy or [1.0 / num_cores] * num_cores,
        miss_fractions=miss_fractions or [1.0 / num_cores] * num_cores,
        num_blocks=num_blocks,
        interval=interval,
        shadow=shadow or make_shadow(num_cores),
        perf=perf,
    )


class FakePerf:
    """Stub performance counters."""

    def __init__(self, cpis, stall_cpis=None, ipcs=None):
        self._cpis = cpis
        self._stalls = stall_cpis or [0.0] * len(cpis)
        self._ipcs = ipcs or [1.0 / c if c else 0.0 for c in cpis]

    def cpi(self, core):
        return self._cpis[core]

    def llc_stall_cpi(self, core):
        return self._stalls[core]

    def ipc(self, core):
        return self._ipcs[core]


class TestNormalizeTargets:
    def test_scales_to_one(self):
        assert sum(normalize_targets([3.0, 1.0])) == pytest.approx(1.0)

    def test_clips_negatives(self):
        assert normalize_targets([-1.0, 1.0]) == [0.0, 1.0]

    def test_all_zero_gives_uniform(self):
        assert normalize_targets([0.0, 0.0]) == [0.5, 0.5]

    def test_empty(self):
        assert normalize_targets([]) == []


class TestHitMax:
    def test_core_with_all_the_gain_gets_more(self):
        shadow = make_shadow(2, standalone_hits=[100, 10], shared_hits=[20, 10])
        ctx = make_ctx(2, occupancy=[0.5, 0.5], shadow=shadow)
        targets = HitMaxPolicy().compute_targets(ctx)
        assert targets[0] > targets[1]
        assert sum(targets) == pytest.approx(1.0)

    def test_algorithm1_formula(self):
        # Gains 80 and 0 -> T = C * (1 + gain/total) = [0.5*2, 0.5*1] -> [2/3, 1/3].
        shadow = make_shadow(2, standalone_hits=[100, 10], shared_hits=[20, 10])
        targets = HitMaxPolicy(occupancy_floor=0.0).compute_targets(
            make_ctx(2, occupancy=[0.5, 0.5], shadow=shadow)
        )
        assert targets == pytest.approx([2 / 3, 1 / 3])

    def test_no_gain_holds_current_shares(self):
        shadow = make_shadow(2, standalone_hits=[10, 10], shared_hits=[10, 10])
        ctx = make_ctx(2, occupancy=[0.7, 0.3], shadow=shadow)
        targets = HitMaxPolicy().compute_targets(ctx)
        assert targets == pytest.approx([0.7, 0.3])

    def test_negative_gain_floored_at_zero(self):
        # Shared hits above stand-alone (possible: another core prefetched
        # shared data) must not produce a negative potential gain.
        shadow = make_shadow(2, standalone_hits=[5, 50], shared_hits=[20, 10])
        gains = HitMaxPolicy().potential_gains(make_ctx(2, shadow=shadow))
        assert gains[0] == 0.0
        assert gains[1] == 40.0

    def test_occupancy_floor_keeps_squeezed_core_recoverable(self):
        shadow = make_shadow(2, standalone_hits=[0, 100], shared_hits=[0, 0])
        ctx = make_ctx(2, occupancy=[0.0, 1.0], shadow=shadow)
        targets = HitMaxPolicy(occupancy_floor=1.0).compute_targets(ctx)
        assert targets[0] > 0.0

    def test_rejects_negative_floor(self):
        with pytest.raises(ValueError):
            HitMaxPolicy(occupancy_floor=-1.0)


class TestFairness:
    def test_requires_perf(self):
        with pytest.raises(RuntimeError, match="performance counters"):
            FairnessPolicy().compute_targets(make_ctx(2))

    def test_slowdown_estimate(self):
        # CPI_shared=2.0 with 1.0 of LLC stall; alone the misses halve ->
        # CPI_alone = 1.0 + 0.5 = 1.5; slowdown = 4/3.
        shadow = make_shadow(1, standalone_misses=[50], shared_misses=[100])
        perf = FakePerf(cpis=[2.0], stall_cpis=[1.0])
        ctx = make_ctx(1, shadow=shadow, perf=perf)
        slowdowns = FairnessPolicy().estimated_slowdowns(ctx)
        assert slowdowns[0] == pytest.approx(2.0 / 1.5)

    def test_slowed_core_gets_more_space(self):
        shadow = make_shadow(
            2, standalone_misses=[10, 100], shared_misses=[100, 100]
        )
        perf = FakePerf(cpis=[2.0, 2.0], stall_cpis=[1.0, 1.0])
        ctx = make_ctx(2, occupancy=[0.5, 0.5], shadow=shadow, perf=perf)
        targets = FairnessPolicy().compute_targets(ctx)
        # Core 0's misses grew 10x under sharing -> bigger slowdown -> more space.
        assert targets[0] > targets[1]
        assert sum(targets) == pytest.approx(1.0)

    def test_idle_core_treated_as_unslowed(self):
        perf = FakePerf(cpis=[0.0, 1.0])
        ctx = make_ctx(2, perf=perf)
        slowdowns = FairnessPolicy().estimated_slowdowns(ctx)
        assert slowdowns[0] == 1.0

    def test_slowdown_clamped_at_one(self):
        # More stand-alone misses than shared (sampling noise) would imply a
        # speedup from sharing; the policy clamps at no-slowdown.
        shadow = make_shadow(1, standalone_misses=[200], shared_misses=[100])
        perf = FakePerf(cpis=[2.0], stall_cpis=[1.0])
        slowdowns = FairnessPolicy().estimated_slowdowns(make_ctx(1, shadow=shadow, perf=perf))
        assert slowdowns[0] == 1.0


class TestQOS:
    def test_requires_perf(self):
        with pytest.raises(RuntimeError):
            QOSPolicy(target_ipc=1.0).compute_targets(make_ctx(2))

    def test_below_target_grows_by_alpha(self):
        perf = FakePerf(cpis=[2.0, 1.0], ipcs=[0.5, 1.0])
        ctx = make_ctx(2, occupancy=[0.4, 0.6], perf=perf)
        targets = QOSPolicy(target_ipc=1.0, alpha=0.1).compute_targets(ctx)
        assert targets[0] == pytest.approx(0.44)

    def test_above_target_shrinks_by_beta(self):
        perf = FakePerf(cpis=[0.5, 1.0], ipcs=[2.0, 1.0])
        ctx = make_ctx(2, occupancy=[0.4, 0.6], perf=perf)
        targets = QOSPolicy(target_ipc=1.0, beta=0.1).compute_targets(ctx)
        assert targets[0] == pytest.approx(0.36)

    def test_deadband_holds_occupancy(self):
        perf = FakePerf(cpis=[1.0, 1.0], ipcs=[1.02, 1.0])
        ctx = make_ctx(2, occupancy=[0.4, 0.6], perf=perf)
        targets = QOSPolicy(target_ipc=1.0, deadband=0.05).compute_targets(ctx)
        assert targets[0] == pytest.approx(0.4)

    def test_others_share_the_remainder(self):
        perf = FakePerf(cpis=[2.0, 1.0, 1.0], ipcs=[0.5, 1.0, 1.0])
        shadow = make_shadow(3, standalone_hits=[0, 100, 50], shared_hits=[0, 10, 40])
        ctx = make_ctx(3, occupancy=[0.5, 0.25, 0.25], shadow=shadow, perf=perf)
        targets = QOSPolicy(target_ipc=1.0).compute_targets(ctx)
        assert sum(targets) == pytest.approx(1.0)
        # Core 1 has more hit-max gain than core 2.
        assert targets[1] > targets[2]

    def test_max_occupancy_cap(self):
        perf = FakePerf(cpis=[2.0, 1.0], ipcs=[0.5, 1.0])
        ctx = make_ctx(2, occupancy=[0.95, 0.05], perf=perf)
        targets = QOSPolicy(target_ipc=1.0, max_occupancy=0.9).compute_targets(ctx)
        assert targets[0] <= 0.9

    def test_qos_core_out_of_range(self):
        perf = FakePerf(cpis=[1.0], ipcs=[1.0])
        with pytest.raises(ValueError):
            QOSPolicy(target_ipc=1.0, qos_core=5).compute_targets(make_ctx(1, perf=perf))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QOSPolicy(target_ipc=0.0)
        with pytest.raises(ValueError):
            QOSPolicy(target_ipc=1.0, qos_core=-1)
        with pytest.raises(ValueError):
            QOSPolicy(target_ipc=1.0, max_occupancy=1.5)


class TestUCPExtended:
    def test_targets_sum_to_one(self):
        position_hits = [
            [50, 30, 10, 5, 1, 0, 0, 0],
            [5, 5, 5, 5, 5, 5, 5, 5],
            [100, 0, 0, 0, 0, 0, 0, 0],
            [0, 0, 0, 0, 0, 0, 0, 0],
        ]
        shadow = make_shadow(4, position_hits=position_hits)
        targets = UCPExtendedPolicy(granularity=4).compute_targets(make_ctx(4, shadow=shadow))
        assert sum(targets) == pytest.approx(1.0)
        assert all(t > 0 for t in targets)

    def test_high_utility_core_wins(self):
        position_hits = [
            [100, 80, 60, 40, 20, 10, 5, 1],
            [1, 0, 0, 0, 0, 0, 0, 0],
        ]
        shadow = make_shadow(2, position_hits=position_hits)
        targets = UCPExtendedPolicy().compute_targets(make_ctx(2, shadow=shadow))
        assert targets[0] > 0.7

    def test_finer_granularity_than_ways(self):
        # With granularity 4 the allocation can sit between way multiples.
        position_hits = [
            [10, 10, 10, 10, 10, 10, 10, 10],
            [11, 11, 11, 11, 11, 11, 11, 11],
        ]
        shadow = make_shadow(2, position_hits=position_hits)
        targets = UCPExtendedPolicy(granularity=4).compute_targets(make_ctx(2, shadow=shadow))
        quarter = 1.0 / (8 * 4)
        # Targets are multiples of a quarter-way, not only whole ways.
        assert targets[0] % (1.0 / 8) != pytest.approx(0.0) or targets[0] == pytest.approx(
            round(targets[0] / quarter) * quarter
        )

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            UCPExtendedPolicy(granularity=0)
