"""Integration tests for PrismScheme: the framework wired into a cache."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement.dip import DIPPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.srrip import SRRIPPolicy
from repro.core.allocation import AllocationPolicy, HitMaxPolicy
from repro.core.prism import PrismScheme
from repro.util.rng import make_rng


class StaticPolicy(AllocationPolicy):
    """Fixed targets, for controllability."""

    name = "static"

    def __init__(self, targets):
        self.targets = targets

    def compute_targets(self, ctx):
        return list(self.targets)


def drive(cache, num_cores, accesses, footprints, seed=0):
    """Each core uniformly accesses its own footprint of block addresses."""
    rng = make_rng(seed, "drive")
    for _ in range(accesses):
        core = rng.randrange(num_cores)
        addr = (core << 20) + rng.randrange(footprints[core])
        cache.access(core, addr)


@pytest.fixture
def geometry():
    return CacheGeometry(16 << 10, 64, 8)  # 256 blocks, 32 sets


class TestWiring:
    def test_interval_defaults_to_num_blocks(self, geometry):
        cache = SharedCache(geometry, 2)
        scheme = PrismScheme(HitMaxPolicy())
        cache.set_scheme(scheme)
        assert scheme.interval_len == geometry.num_blocks

    def test_interval_override(self, geometry):
        cache = SharedCache(geometry, 2)
        scheme = PrismScheme(HitMaxPolicy(), interval_len=64)
        cache.set_scheme(scheme)
        assert scheme.interval_len == 64

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            PrismScheme(HitMaxPolicy(), probability_bits=0)

    def test_name_with_policy(self, geometry):
        scheme = PrismScheme(HitMaxPolicy())
        assert scheme.name_with_policy == "prism[prism-hitmax]"

    def test_shadow_monitor_registered(self, geometry):
        cache = SharedCache(geometry, 2)
        scheme = PrismScheme(HitMaxPolicy())
        cache.set_scheme(scheme)
        assert scheme.shadow in cache.monitors


class TestControlLoop:
    def test_occupancy_converges_to_static_targets(self, geometry):
        """The headline property: eviction probabilities steer occupancy to
        the requested shares."""
        cache = SharedCache(geometry, 2)
        cache.set_scheme(PrismScheme(StaticPolicy([0.75, 0.25]), interval_len=128))
        # Both cores access far more than their shares (footprints >> cache).
        drive(cache, 2, 60000, footprints=[2000, 2000])
        fractions = cache.occupancy_fractions()
        assert fractions[0] == pytest.approx(0.75, abs=0.08)
        assert fractions[1] == pytest.approx(0.25, abs=0.08)

    def test_probabilities_updated_every_interval(self, geometry):
        cache = SharedCache(geometry, 2)
        scheme = PrismScheme(StaticPolicy([0.5, 0.5]), interval_len=64)
        cache.set_scheme(scheme)
        drive(cache, 2, 2000, footprints=[1000, 1000])
        assert scheme.recomputations == cache.intervals_completed > 0

    def test_distribution_always_valid(self, geometry):
        cache = SharedCache(geometry, 4)
        scheme = PrismScheme(HitMaxPolicy(), interval_len=64)
        cache.set_scheme(scheme)
        drive(cache, 4, 20000, footprints=[100, 500, 3000, 20])
        probs = scheme.eviction_probabilities
        assert sum(probs) == pytest.approx(1.0)
        assert all(0.0 <= p <= 1.0 for p in probs)

    def test_quantized_distribution_on_k_bit_grid(self, geometry):
        cache = SharedCache(geometry, 2)
        scheme = PrismScheme(StaticPolicy([0.7, 0.3]), interval_len=64,
                             probability_bits=6)
        cache.set_scheme(scheme)
        drive(cache, 2, 5000, footprints=[1000, 1000])
        # Every installed probability is a ratio of 6-bit integers.
        probs = scheme.eviction_probabilities
        levels = [p * 63 for p in probs]
        # After renormalisation probs are level_i / sum(levels).
        total = sum(round(l) for l in levels)
        assert total > 0

    def test_hitmax_starves_the_streaming_core(self, geometry):
        """Alg. 1 should shift space from a scan-only core to a reuse-heavy
        core."""
        cache = SharedCache(geometry, 2)
        cache.set_scheme(PrismScheme(HitMaxPolicy(), interval_len=128))
        rng = make_rng(9, "mix")
        scan = 0
        for _ in range(60000):
            if rng.random() < 0.5:
                cache.access(0, rng.randrange(220))       # reusable working set
            else:
                cache.access(1, (1 << 20) + scan)         # pure stream
                scan += 1
        fractions = cache.occupancy_fractions()
        assert fractions[0] > 0.6

    def test_occupancy_accounting_intact_after_long_run(self, geometry):
        cache = SharedCache(geometry, 3)
        cache.set_scheme(PrismScheme(HitMaxPolicy(), interval_len=100))
        drive(cache, 3, 30000, footprints=[150, 800, 4000])
        assert cache.occupancy == cache.scan_occupancy()


class TestPolicyAgnosticism:
    @pytest.mark.parametrize("policy_cls", [LRUPolicy, DIPPolicy, SRRIPPolicy])
    def test_runs_on_any_replacement_policy(self, geometry, policy_cls):
        cache = SharedCache(geometry, 2, policy=policy_cls())
        cache.set_scheme(PrismScheme(StaticPolicy([0.7, 0.3]), interval_len=128))
        drive(cache, 2, 40000, footprints=[2000, 2000])
        fractions = cache.occupancy_fractions()
        # Control converges regardless of the baseline policy.
        assert fractions[0] == pytest.approx(0.7, abs=0.1)
        assert cache.occupancy == cache.scan_occupancy()


class TestReporting:
    def test_probability_stats_shape(self, geometry):
        cache = SharedCache(geometry, 2)
        scheme = PrismScheme(StaticPolicy([0.5, 0.5]), interval_len=64)
        cache.set_scheme(scheme)
        drive(cache, 2, 3000, footprints=[1000, 1000])
        stats = scheme.probability_stats()
        assert len(stats) == 2
        for entry in stats:
            assert entry["samples"] == scheme.recomputations
            assert 0.0 <= entry["mean"] <= 1.0
            assert entry["std"] >= 0.0

    def test_probability_stats_before_any_interval(self, geometry):
        cache = SharedCache(geometry, 2)
        scheme = PrismScheme(HitMaxPolicy())
        cache.set_scheme(scheme)
        stats = scheme.probability_stats()
        assert all(s["samples"] == 0 for s in stats)

    def test_stable_targets_give_low_std(self, geometry):
        """Fig. 11's claim: under a stationary workload the probabilities
        settle (std well below the mean scale)."""
        cache = SharedCache(geometry, 2)
        scheme = PrismScheme(StaticPolicy([0.6, 0.4]), interval_len=128)
        cache.set_scheme(scheme)
        drive(cache, 2, 80000, footprints=[2000, 2000])
        stats = scheme.probability_stats()
        for entry in stats:
            assert entry["std"] < 0.2
