"""Validate the paper's analytical model against the actual simulator.

Section 3.2 predicts the occupancy trajectory ``tau_i = C_i +
(M_i − E_i)·W/N`` from the installed eviction distribution. These tests
install a *fixed* distribution, run exactly one interval's worth of
misses on a warm cache, and check the measured occupancy change against
the closed form — the strongest statement that the implementation is the
model the paper analyses.
"""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.core import PrismScheme
from repro.core.allocation import AllocationPolicy
from repro.util.rng import make_rng

GEOMETRY = CacheGeometry(16 << 10, 64, 8)  # N = 256 blocks, 32 sets


class Inert(AllocationPolicy):
    """Never used: intervals are disabled in these tests."""

    name = "inert"

    def compute_targets(self, ctx):  # pragma: no cover
        raise AssertionError("allocation policy must not run")


def warm_cache_with_distribution(probabilities, seed=0):
    """A warm 2-core cache with a frozen eviction distribution."""
    cache = SharedCache(GEOMETRY, 2)
    scheme = PrismScheme(Inert(), interval_len=1 << 30, seed=seed)  # no intervals fire
    cache.set_scheme(scheme)
    rng = make_rng(seed, "warm")
    # Warm: both cores fill with huge uniform footprints (every access a
    # miss, both cores present in every set).
    for _ in range(6000):
        core = rng.randrange(2)
        cache.access(core, (core << 22) + rng.randrange(1 << 16))
    scheme.manager.set_distribution(probabilities)
    return cache, scheme, rng


@pytest.mark.parametrize("e0", [0.3, 0.5, 0.7])
def test_single_interval_matches_closed_form(e0):
    probabilities = [e0, 1.0 - e0]
    cache, scheme, rng = warm_cache_with_distribution(probabilities, seed=int(e0 * 10))
    n = GEOMETRY.num_blocks
    w = n  # one paper-default interval of misses

    c_before = cache.occupancy_fractions()
    misses = [0, 0]
    total_misses = 0
    while total_misses < w:
        core = rng.randrange(2)
        result = cache.access(core, (core << 22) + rng.randrange(1 << 16))
        if not result.hit:
            misses[core] += 1
            total_misses += 1
    c_after = cache.occupancy_fractions()

    for core in range(2):
        m = misses[core] / w
        predicted = c_before[core] + (m - probabilities[core]) * w / n
        # Skewed distributions under-realise slightly (the shrinking core
        # disappears from sets, triggering the fallback ~5% of the time),
        # so the tolerance widens with |E - 0.5|; Eq. 1's *direction* and
        # most of its magnitude must hold regardless.
        tolerance = 0.02 + 0.25 * abs(probabilities[core] - 0.5)
        assert c_after[core] == pytest.approx(predicted, abs=tolerance)
        if abs(m - probabilities[core]) > 0.05:
            moved = c_after[core] - c_before[core]
            assert moved * (m - probabilities[core]) > 0  # right direction
            assert abs(moved) > 0.5 * abs(predicted - c_before[core])


def test_multi_interval_drift_direction():
    """Holding E below a core's miss share grows it; above shrinks it —
    the inequality form of the model, over several intervals."""
    # Both cores miss ~50/50, but core 0 is only evicted 20% of the time.
    cache, scheme, rng = warm_cache_with_distribution([0.2, 0.8], seed=9)
    start = cache.occupancy_fractions()
    for _ in range(4 * GEOMETRY.num_blocks):
        core = rng.randrange(2)
        cache.access(core, (core << 22) + rng.randrange(1 << 16))
    end = cache.occupancy_fractions()
    assert end[0] > start[0] + 0.1
    assert end[1] < start[1] - 0.1


def test_e_equals_m_is_driftless_in_expectation():
    """E == M is the model's fixed point *in expectation*: with a frozen
    distribution occupancy performs an unbiased random walk (the variance
    is why PriSM recomputes E every interval — closed-loop pinning is
    covered by the PrismScheme convergence tests)."""
    drifts = []
    for seed in range(8):
        cache, scheme, rng = warm_cache_with_distribution([0.5, 0.5], seed=100 + seed)
        start = cache.occupancy_fractions()[0]
        for _ in range(2 * GEOMETRY.num_blocks):
            core = rng.randrange(2)  # misses split ~50/50 by construction
            cache.access(core, (core << 22) + rng.randrange(1 << 16))
        drifts.append(cache.occupancy_fractions()[0] - start)
    mean_drift = sum(drifts) / len(drifts)
    assert abs(mean_drift) < 0.06
    # And it genuinely wanders: not every seed sits still.
    assert max(abs(d) for d in drifts) > 0.01
