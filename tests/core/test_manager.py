"""Tests for the probabilistic cache manager (core-selection step)."""

import pytest

from repro.cache.cacheset import CacheSet
from repro.cache.replacement.lru import LRUPolicy
from repro.core.manager import ProbabilisticCacheManager


def full_set(owners):
    """A full set whose blocks (MRU->LRU) belong to the given cores."""
    cset = CacheSet(0, len(owners))
    for tag, core in enumerate(owners):
        cset.fill(tag, core=core, position=len(cset.blocks))
    return cset


class TestDistribution:
    def test_starts_uniform(self):
        manager = ProbabilisticCacheManager(4)
        assert manager.probabilities == [0.25] * 4

    def test_rejects_wrong_length(self):
        manager = ProbabilisticCacheManager(2)
        with pytest.raises(ValueError, match="expected 2"):
            manager.set_distribution([1.0])

    def test_rejects_negative(self):
        manager = ProbabilisticCacheManager(2)
        with pytest.raises(ValueError, match="negative"):
            manager.set_distribution([1.5, -0.5])

    def test_rejects_bad_sum(self):
        manager = ProbabilisticCacheManager(2)
        with pytest.raises(ValueError, match="sum"):
            manager.set_distribution([0.4, 0.4])

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            ProbabilisticCacheManager(0)


class TestSampling:
    def test_degenerate_distribution_always_selects_that_core(self):
        manager = ProbabilisticCacheManager(3, seed=1)
        manager.set_distribution([0.0, 1.0, 0.0])
        assert all(manager.sample_core() == 1 for _ in range(200))

    def test_sampling_matches_distribution(self):
        manager = ProbabilisticCacheManager(3, seed=2)
        manager.set_distribution([0.5, 0.3, 0.2])
        counts = [0, 0, 0]
        n = 30000
        for _ in range(n):
            counts[manager.sample_core()] += 1
        assert counts[0] / n == pytest.approx(0.5, abs=0.02)
        assert counts[1] / n == pytest.approx(0.3, abs=0.02)
        assert counts[2] / n == pytest.approx(0.2, abs=0.02)

    def test_deterministic_under_seed(self):
        a = ProbabilisticCacheManager(4, seed=7)
        b = ProbabilisticCacheManager(4, seed=7)
        assert [a.sample_core() for _ in range(100)] == [
            b.sample_core() for _ in range(100)
        ]

    def test_zero_probability_core_never_sampled(self):
        manager = ProbabilisticCacheManager(4, seed=3)
        manager.set_distribution([0.0, 0.5, 0.5, 0.0])
        samples = {manager.sample_core() for _ in range(5000)}
        assert samples <= {1, 2}


class TestVictimSelection:
    def test_victim_belongs_to_sampled_core(self):
        manager = ProbabilisticCacheManager(2, seed=4)
        manager.set_distribution([0.0, 1.0])
        cset = full_set([0, 1, 0, 1])
        victim = manager.select_victim(cset, LRUPolicy())
        assert victim.core == 1

    def test_victim_is_lru_most_of_selected_core(self):
        manager = ProbabilisticCacheManager(2, seed=4)
        manager.set_distribution([0.0, 1.0])
        # MRU->LRU: [1, 0, 1, 0]; core 1's LRU-most block is at position 2.
        cset = full_set([1, 0, 1, 0])
        victim = manager.select_victim(cset, LRUPolicy())
        assert victim is cset.blocks[2]

    def test_paper_fallback_when_core_absent(self):
        manager = ProbabilisticCacheManager(2, seed=4, fallback="paper")
        manager.set_distribution([0.4, 0.6])
        cset = full_set([0, 0, 0, 0])
        before = manager.victim_not_found
        # Force the sampled core to be 1 by monkeypatching the RNG draw.
        manager._rng.random = lambda: 0.99  # lands on core 1
        victim = manager.select_victim(cset, LRUPolicy())
        assert victim.core == 0  # fallback: first candidate with E > 0
        assert manager.victim_not_found == before + 1

    def test_paper_fallback_skips_zero_probability_cores(self):
        manager = ProbabilisticCacheManager(3, seed=4, fallback="paper")
        manager.set_distribution([0.0, 0.5, 0.5])
        # Set holds cores 0 and 1; if core 2 is sampled, fallback must pick
        # core 1 (E>0), never core 0 (E=0) — even though core 0's block is
        # the LRU-most candidate.
        cset = full_set([1, 1, 0, 0])
        manager._rng.random = lambda: 0.99  # samples core 2
        victim = manager.select_victim(cset, LRUPolicy())
        assert victim.core == 1

    def test_resample_fallback_counts_not_found(self):
        manager = ProbabilisticCacheManager(2, seed=4)
        manager.set_distribution([0.0, 1.0])
        cset = full_set([0, 0, 0, 0])
        victim = manager.select_victim(cset, LRUPolicy())
        # Core 1 never present: E restricted to present cores is empty
        # (core 0 has E=0) -> baseline victim, still counted as not-found.
        assert victim is cset.blocks[-1]
        assert manager.victim_not_found == 1

    def test_resample_fallback_skips_zero_probability_cores(self):
        manager = ProbabilisticCacheManager(3, seed=4)
        manager.set_distribution([0.0, 0.5, 0.5])
        cset = full_set([1, 1, 0, 0])
        for draw in (0.99, 0.95):  # both sample absent core 2
            manager._rng.random = lambda d=draw: d
            victim = manager.select_victim(cset, LRUPolicy())
            assert victim.core == 1  # core 0 has E == 0, never chosen

    def test_resample_fallback_proportional_to_e(self):
        manager = ProbabilisticCacheManager(3, seed=4)
        manager.set_distribution([0.0, 0.25, 0.75])
        # Core 0 sampled-for never; cores 1, 2 present; force not-found by
        # restricting the set to cores 1 and 2 and sampling core 0... core 0
        # has E=0 so it is never sampled; instead make the set hold only
        # core 1 and sample core 2's complement. Simpler: set holds only
        # core 1 -> whenever core 2 is sampled, resample must pick core 1.
        cset = full_set([1, 1, 1, 1])
        for _ in range(50):
            assert manager.select_victim(cset, LRUPolicy()).core == 1

    def test_invalid_fallback_rejected(self):
        with pytest.raises(ValueError, match="fallback"):
            ProbabilisticCacheManager(2, fallback="bogus")

    def test_last_resort_baseline_victim(self):
        manager = ProbabilisticCacheManager(3, seed=4)
        manager.set_distribution([0.0, 0.0, 1.0])
        cset = full_set([0, 1, 0, 1])  # nobody in the set has E > 0... except none
        victim = manager.select_victim(cset, LRUPolicy())
        # Falls through to the baseline LRU victim (the LRU-most block).
        assert victim is cset.blocks[-1]

    def test_not_found_rate(self):
        manager = ProbabilisticCacheManager(2, seed=4)
        assert manager.victim_not_found_rate() == 0.0
        manager.set_distribution([0.0, 1.0])
        cset = full_set([0, 0, 0, 0])
        manager.select_victim(cset, LRUPolicy())  # must fall back
        assert manager.victim_not_found_rate() == 1.0

    def test_replacements_counted(self):
        manager = ProbabilisticCacheManager(2, seed=4)
        cset = full_set([0, 1, 0, 1])
        for _ in range(5):
            manager.select_victim(cset, LRUPolicy())
        assert manager.replacements == 5
