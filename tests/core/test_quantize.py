"""Tests for K-bit probability quantisation (Fig. 12's mechanism)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.quantize import dequantize, quantize_distribution


class TestQuantize:
    def test_exact_levels(self):
        levels = quantize_distribution([0.0, 1.0], bits=8)
        assert levels == [0, 255]

    def test_rounding_to_nearest(self):
        levels = quantize_distribution([0.5], bits=2)  # scale 3 -> 1.5 rounds to 2
        assert levels == [2]

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            quantize_distribution([0.5], bits=0)

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ValueError):
            quantize_distribution([1.2], bits=4)
        with pytest.raises(ValueError):
            quantize_distribution([-0.1], bits=4)

    def test_all_zero_rounding_forces_a_victim(self):
        # Tiny probabilities that all round to 0: hardware still needs
        # someone to evict, so the largest entry gets level 1.
        levels = quantize_distribution([0.003, 0.001, 0.002], bits=6)
        assert sum(levels) == 1
        assert levels[0] == 1  # the largest probability won

    def test_empty_vector(self):
        assert quantize_distribution([], bits=6) == []


class TestDequantize:
    def test_normalised(self):
        probs = dequantize([1, 3], bits=4)
        assert probs == pytest.approx([0.25, 0.75])

    def test_all_zero_gives_uniform(self):
        assert dequantize([0, 0], bits=4) == [0.5, 0.5]

    def test_rejects_out_of_range_levels(self):
        with pytest.raises(ValueError):
            dequantize([16], bits=4)
        with pytest.raises(ValueError):
            dequantize([-1], bits=4)

    def test_empty(self):
        assert dequantize([], bits=6) == []


class TestRoundTrip:
    @pytest.mark.parametrize("bits", [6, 8, 10, 12])
    def test_roundtrip_error_bounded(self, bits):
        """Per-entry error of quantise-then-renormalise is O(2^-bits)."""
        original = [0.151, 0.287, 0.535, 0.027]
        recovered = dequantize(quantize_distribution(original, bits), bits)
        bound = len(original) / ((1 << bits) - 1)
        for a, b in zip(original, recovered):
            assert abs(a - b) <= bound

    @given(
        st.lists(st.floats(0.0, 1.0), min_size=1, max_size=32),
        st.sampled_from([6, 8, 10, 12]),
    )
    def test_roundtrip_always_a_distribution(self, raw, bits):
        total = sum(raw)
        probs = [x / total for x in raw] if total > 0 else [1.0 / len(raw)] * len(raw)
        recovered = dequantize(quantize_distribution(probs, bits), bits)
        assert sum(recovered) == pytest.approx(1.0)
        assert all(0.0 <= p <= 1.0 for p in recovered)

    @given(st.lists(st.floats(0.001, 1.0), min_size=2, max_size=16))
    def test_more_bits_tightens_the_error_envelope(self, raw):
        """Monotonicity holds at the level of the worst-case envelope, not
        pointwise: a vector can be luckily near-exact at 6 bits (e.g. a
        near-uniform one), so we assert each width stays inside its own
        bound and 12 bits stays inside the 6-bit bound."""
        total = sum(raw)
        probs = [x / total for x in raw]

        def max_err(bits):
            rec = dequantize(quantize_distribution(probs, bits), bits)
            return max(abs(a - b) for a, b in zip(probs, rec))

        for bits in (6, 12):
            assert max_err(bits) <= len(probs) / ((1 << bits) - 1)
        assert max_err(12) <= len(probs) / ((1 << 6) - 1)
