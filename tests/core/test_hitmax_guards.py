"""Tests for PriSM-H's knee-protection and thrash-discount guards."""

import pytest

from repro.core.allocation import HitMaxPolicy
from tests.core.test_allocation_policies import make_ctx, make_shadow


class TestUtilityKnees:
    def test_knee_at_first_way_for_concentrated_curve(self):
        shadow = make_shadow(2, position_hits=[[100, 0, 0, 0, 0, 0, 0, 0],
                                               [0, 0, 0, 0, 0, 0, 0, 0]])
        knees = HitMaxPolicy().utility_knees(make_ctx(2, shadow=shadow))
        assert knees[0] == pytest.approx(1 / 8)
        assert knees[1] == 0.0  # no hits, no knee

    def test_knee_at_full_assoc_for_flat_curve(self):
        shadow = make_shadow(1, position_hits=[[10] * 8])
        knees = HitMaxPolicy(knee_quantile=0.95).utility_knees(make_ctx(1, shadow=shadow))
        assert knees[0] == 1.0

    def test_quantile_moves_knee(self):
        shadow = make_shadow(1, position_hits=[[50, 30, 10, 5, 3, 1, 1, 0]])
        loose = HitMaxPolicy(knee_quantile=0.80).utility_knees(make_ctx(1, shadow=shadow))
        tight = HitMaxPolicy(knee_quantile=0.99).utility_knees(make_ctx(1, shadow=shadow))
        assert loose[0] < tight[0]


class TestKneeProtection:
    def test_small_core_floored_at_knee(self):
        # Core 0: tiny, satisfied by 2/8 ways; core 1: huge gains hog Alg 1.
        shadow = make_shadow(
            2,
            position_hits=[[40, 30, 0, 0, 0, 0, 0, 0], [500, 100, 80, 60, 40, 30, 20, 10]],
            shared_hits=[10, 100],
        )
        ctx = make_ctx(2, occupancy=[0.05, 0.95], shadow=shadow)
        targets = HitMaxPolicy().compute_targets(ctx)
        assert targets[0] >= 2 / 8 - 1e-9  # floored at its knee
        assert sum(targets) == pytest.approx(1.0)

    def test_pure_mode_skips_protection(self):
        shadow = make_shadow(
            2,
            position_hits=[[40, 30, 0, 0, 0, 0, 0, 0], [500, 100, 80, 60, 40, 30, 20, 10]],
            shared_hits=[10, 100],
        )
        ctx = make_ctx(2, occupancy=[0.05, 0.95], shadow=shadow)
        targets = HitMaxPolicy(pure=True).compute_targets(ctx)
        assert targets[0] < 2 / 8  # literal Alg. 1 leaves it under the knee

    def test_big_knee_core_not_floored(self):
        # Knee above the cap (1.5 / 2 cores = 0.75 -> 6/8 ways qualifies,
        # 8/8 does not).
        shadow = make_shadow(2, position_hits=[[10] * 8, [100, 0, 0, 0, 0, 0, 0, 0]])
        ctx = make_ctx(2, occupancy=[0.1, 0.9], shadow=shadow)
        policy = HitMaxPolicy(protect_cap_mult=1.0)
        knees = policy.utility_knees(ctx)
        assert knees[0] == 1.0
        targets = policy.compute_targets(ctx)
        assert targets[0] < 1.0  # flat-curve core got no full-cache floor

    def test_infeasible_floors_fall_back_to_alg1(self):
        # Both cores demand large floors; donors can't cover -> plain Alg 1.
        shadow = make_shadow(
            2, position_hits=[[10, 10, 10, 10, 10, 0, 0, 0]] * 2, shared_hits=[0, 0]
        )
        ctx = make_ctx(2, occupancy=[0.5, 0.5], shadow=shadow)
        targets = HitMaxPolicy(protect_cap_mult=2.0).compute_targets(ctx)
        assert sum(targets) == pytest.approx(1.0)


class TestThrashDiscount:
    def test_unsaturable_core_discounted(self):
        # Core 0's curve is flat to the last way (no knee inside the cache):
        # a thrasher. Core 1 saturates early.
        shadow = make_shadow(
            2,
            position_hits=[[50] * 8, [200, 100, 0, 0, 0, 0, 0, 0]],
            shared_hits=[0, 0],
        )
        ctx = make_ctx(2, occupancy=[0.5, 0.5], shadow=shadow)
        discounted = HitMaxPolicy(thrash_discount=0.1).compute_targets(ctx)
        undiscounted = HitMaxPolicy(thrash_discount=1.0).compute_targets(ctx)
        assert discounted[0] < undiscounted[0]
        assert discounted[1] > undiscounted[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            HitMaxPolicy(knee_quantile=0.0)
        with pytest.raises(ValueError):
            HitMaxPolicy(thrash_discount=1.5)
