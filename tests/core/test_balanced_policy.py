"""Tests for the BalancedPolicy extension (hit-max / fairness blend)."""

import pytest

from repro.core.allocation import BalancedPolicy, FairnessPolicy, HitMaxPolicy
from repro.experiments.configs import machine
from repro.experiments.runner import run_workload
from repro.experiments.schemes import SCHEMES, SchemeSpec
from tests.core.test_allocation_policies import FakePerf, make_ctx, make_shadow


def blend_ctx():
    # Core 0: big hit-max gain; core 1: big slowdown. The two components
    # pull in opposite directions.
    shadow = make_shadow(
        2,
        standalone_hits=[200, 20],
        shared_hits=[50, 18],
        standalone_misses=[10, 10],
        shared_misses=[20, 100],
    )
    perf = FakePerf(cpis=[1.2, 3.0], stall_cpis=[0.4, 2.0])
    return make_ctx(2, occupancy=[0.5, 0.5], shadow=shadow, perf=perf)


class TestBalancedPolicy:
    def test_balance_validated(self):
        with pytest.raises(ValueError):
            BalancedPolicy(balance=1.5)

    def test_extremes_delegate(self):
        ctx = blend_ctx()
        assert BalancedPolicy(0.0).compute_targets(ctx) == HitMaxPolicy().compute_targets(ctx)
        assert BalancedPolicy(1.0).compute_targets(ctx) == pytest.approx(
            FairnessPolicy().compute_targets(ctx)
        )

    def test_blend_between_components(self):
        ctx = blend_ctx()
        hit = HitMaxPolicy().compute_targets(ctx)
        fair = FairnessPolicy().compute_targets(ctx)
        mid = BalancedPolicy(0.5).compute_targets(ctx)
        lo, hi = sorted([hit[0], fair[0]])
        assert lo <= mid[0] <= hi
        assert sum(mid) == pytest.approx(1.0)

    def test_monotone_in_balance(self):
        ctx = blend_ctx()
        t0 = [BalancedPolicy(b).compute_targets(ctx)[0] for b in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert t0 == sorted(t0) or t0 == sorted(t0, reverse=True)

    def test_requires_perf_when_blending(self):
        ctx = blend_ctx()
        ctx.perf = None
        with pytest.raises(RuntimeError):
            BalancedPolicy(0.5).compute_targets(ctx)

    def test_end_to_end_sits_between_extremes(self):
        """On a contended quad mix the blend's fairness lands at or above
        hit-max's, and its ANTT at or below fairness's (within noise)."""
        from repro.core.prism import PrismScheme
        from repro.cache.replacement import LRUPolicy

        def factory(num_cores, sp, **kwargs):
            return PrismScheme(BalancedPolicy(0.5)), LRUPolicy()

        SCHEMES["prism-balanced"] = SchemeSpec("prism-balanced", factory, "blend test")
        try:
            cfg = machine(4, instructions=200_000)
            hit = run_workload("Q5", cfg, "prism-h")
            fair = run_workload("Q5", cfg, "prism-f")
            blend = run_workload("Q5", cfg, "prism-balanced")
            assert blend.fairness >= min(hit.fairness, fair.fairness) - 0.05
            assert blend.antt <= max(hit.antt, fair.antt) + 0.05
        finally:
            del SCHEMES["prism-balanced"]
