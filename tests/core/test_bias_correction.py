"""Tests for PrismScheme's eviction-bias feedback correction."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.core import PrismScheme
from repro.core.allocation import AllocationPolicy
from repro.util.rng import make_rng


class StaticPolicy(AllocationPolicy):
    name = "static"

    def __init__(self, targets):
        self.targets = targets

    def compute_targets(self, ctx):
        return list(self.targets)


GEOMETRY = CacheGeometry(8 << 10, 64, 8)


def drive(cache, accesses, seed=0):
    rng = make_rng(seed, "bias")
    for _ in range(accesses):
        core = rng.randrange(cache.num_cores)
        cache.access(core, (core << 20) + rng.randrange(1500))


class TestBiasCorrection:
    def test_correction_output_is_distribution(self):
        cache = SharedCache(GEOMETRY, 2)
        scheme = PrismScheme(StaticPolicy([0.7, 0.3]), interval_len=64)
        cache.set_scheme(scheme)
        drive(cache, 3000)
        assert sum(scheme.manager.probabilities) == pytest.approx(1.0)

    def test_no_evictions_passthrough(self):
        cache = SharedCache(GEOMETRY, 2)
        scheme = PrismScheme(StaticPolicy([0.5, 0.5]), interval_len=64)
        cache.set_scheme(scheme)
        probs = scheme._apply_bias_correction(cache, [0.4, 0.6])
        assert probs == [0.4, 0.6]  # no interval evictions yet

    def test_correction_subtracts_realised_excess(self):
        cache = SharedCache(GEOMETRY, 2)
        scheme = PrismScheme(StaticPolicy([0.5, 0.5]), interval_len=64)
        cache.set_scheme(scheme)
        # Pretend the last interval installed 50/50 but realised 75/25.
        scheme._installed = [0.5, 0.5]
        cache.stats.interval_evictions = [75, 25]
        corrected = scheme._apply_bias_correction(cache, [0.5, 0.5])
        # Core 0 was over-evicted by 0.25 -> its share drops; renormalised.
        assert corrected[0] < corrected[1]
        assert sum(corrected) == pytest.approx(1.0)

    def test_all_zero_correction_falls_back(self):
        cache = SharedCache(GEOMETRY, 2)
        scheme = PrismScheme(StaticPolicy([0.5, 0.5]), interval_len=64)
        cache.set_scheme(scheme)
        scheme._installed = [0.0, 0.0]
        cache.stats.interval_evictions = [100, 100]
        corrected = scheme._apply_bias_correction(cache, [0.3, 0.2])
        # Subtraction zeroes everything -> original distribution returned.
        assert corrected == [0.3, 0.2]

    def test_disabled_correction_never_touches_distribution(self):
        cache = SharedCache(GEOMETRY, 2)
        scheme = PrismScheme(
            StaticPolicy([0.7, 0.3]), interval_len=64, bias_correction=False
        )
        cache.set_scheme(scheme)
        drive(cache, 2000)
        # With static targets, steady occupancy and no correction, E is the
        # raw Eq. 1 output: recompute it and compare.
        from repro.core.eviction import derive_eviction_probabilities

        ctx = scheme.build_context(cache)
        expected = derive_eviction_probabilities(
            ctx.occupancy, [0.7, 0.3], ctx.miss_fractions, ctx.num_blocks,
            scheme.interval_len,
        )
        scheme.end_interval(cache)
        assert list(scheme.manager.probabilities) == pytest.approx(expected)

    def test_correction_improves_static_convergence(self):
        """The motivating property: with correction, occupancy lands closer
        to an aggressive static target than without."""

        def final_error(bias_correction):
            cache = SharedCache(GEOMETRY, 2)
            scheme = PrismScheme(
                StaticPolicy([0.8, 0.2]),
                interval_len=64,
                bias_correction=bias_correction,
            )
            cache.set_scheme(scheme)
            drive(cache, 40000, seed=7)
            fractions = cache.occupancy_fractions()
            return abs(fractions[0] - 0.8)

        assert final_error(True) <= final_error(False) + 0.02
