"""Tests for the hardware-cost model (§3.4 quantified)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.hardware import SchemeCost, common_monitor_bits, scheme_costs

PAPER_16C = CacheGeometry(8 << 20, 64, 32)  # the paper's 16-core LLC


class TestCommonMonitors:
    def test_scales_with_cores_and_sampling(self):
        a = common_monitor_bits(PAPER_16C, 4)
        b = common_monitor_bits(PAPER_16C, 16)
        assert b == pytest.approx(4 * a)
        dense = common_monitor_bits(PAPER_16C, 4, sample_ratio=8)
        assert dense > a


class TestSchemeCosts:
    def test_all_schemes_present(self):
        costs = scheme_costs(PAPER_16C, 16)
        assert {"prism", "waypart", "ucp", "pipp", "vantage", "dip", "tadip"} <= set(costs)

    def test_totals_positive_and_consistent(self):
        for cost in scheme_costs(PAPER_16C, 16).values():
            assert cost.total_bits > 0
            assert cost.total_bits == pytest.approx(
                cost.per_block_bits + cost.global_bits + cost.monitor_bits
            )
            assert cost.total_kib() == pytest.approx(cost.total_bits / 8192)

    def test_prism_comparable_to_ucp(self):
        """§3.4's claim: PriSM ~ way-partitioning-class hardware. Beyond
        UCP's structures PriSM adds only K bits/core + an RNG."""
        costs = scheme_costs(PAPER_16C, 16, probability_bits=8)
        extra = costs["prism"].total_bits - costs["ucp"].total_bits
        assert 0 < extra < 16 * 8 + 16 + 64  # probabilities + LFSR + counter

    def test_vantage_dominates_per_block_state(self):
        """Vantage's per-block timestamps/region bits dwarf everyone
        else's core-id tags — the paper's hardware argument."""
        costs = scheme_costs(PAPER_16C, 16)
        assert costs["vantage"].per_block_bits > 2 * costs["prism"].per_block_bits
        assert costs["vantage"].total_bits > costs["prism"].total_bits

    def test_dip_is_nearly_free(self):
        costs = scheme_costs(PAPER_16C, 16)
        assert costs["dip"].total_bits < 100

    def test_probability_width_effect_is_tiny(self):
        six = scheme_costs(PAPER_16C, 16, probability_bits=6)["prism"].total_bits
        twelve = scheme_costs(PAPER_16C, 16, probability_bits=12)["prism"].total_bits
        assert twelve - six == 16 * 6  # 6 extra bits per core, nothing else

    def test_paper_scale_magnitudes(self):
        """Sanity: at the paper's 16-core machine, PriSM's total overhead
        sits in the hundreds-of-KiB range dominated by shadow tags, and
        the PriSM-specific state is ~a dozen bytes."""
        costs = scheme_costs(PAPER_16C, 16)
        assert 50 < costs["prism"].total_kib() < 2000
        prism_specific = 16 * 8 + 16 + 32
        assert prism_specific / 8 < 40  # bytes
