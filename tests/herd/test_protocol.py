"""Wire protocol: framing, sharding, shard documents."""

import pytest

from repro.herd.protocol import (
    FRAME_PREFIX,
    PROTOCOL_FORMAT,
    check_shard_doc,
    frame,
    make_shard_doc,
    shard_index,
    shard_specs,
    unframe,
)


class TestFraming:
    def test_round_trip(self):
        message = {"type": "heartbeat", "worker": "w0", "done": 3, "current": None}
        assert unframe(frame(message)) == message

    def test_round_trip_with_trailing_newline(self):
        message = {"type": "bye", "worker": "w0"}
        assert unframe(frame(message) + "\n") == message

    def test_non_protocol_line_is_none(self):
        assert unframe("some stray print output") is None
        assert unframe("") is None

    def test_ssh_banner_is_none(self):
        assert unframe("Warning: Permanently added 'host' to known hosts.") is None

    def test_torn_frame_is_none(self):
        """A SIGKILLed worker's half-written line is log noise, not a crash."""
        whole = frame({"type": "result", "data": {"x": 1}})
        assert unframe(whole[: len(whole) - 4]) is None

    def test_framed_non_dict_is_none(self):
        assert unframe(FRAME_PREFIX + "[1, 2, 3]") is None
        assert unframe(FRAME_PREFIX + '"hello"') is None

    def test_frame_is_single_line(self):
        message = {"type": "log", "text": "line one\nline two"}
        assert "\n" not in frame(message)
        assert unframe(frame(message)) == message


FPS = [f"{i:016x}{'0' * 48}" for i in range(40)]


class TestSharding:
    def test_deterministic(self):
        assert shard_specs(FPS, 3) == shard_specs(FPS, 3)

    def test_every_spec_lands_exactly_once(self):
        shards = shard_specs(FPS, 3)
        flat = sorted(i for shard in shards for i in shard)
        assert flat == list(range(len(FPS)))

    def test_stable_under_resume_subset(self):
        """A fingerprint keeps its shard when other specs complete."""
        for fp in FPS:
            assert shard_index(fp, 5) == shard_index(fp, 5)
        subset = FPS[::3]
        for fp in subset:
            assert shard_index(fp, 5) in range(5)

    def test_single_shard_takes_all(self):
        assert shard_specs(FPS, 1) == [list(range(len(FPS)))]

    def test_empty_shards_allowed(self):
        shards = shard_specs(FPS[:1], 8)
        assert sum(len(s) for s in shards) == 1
        assert sum(1 for s in shards if not s) == 7


class TestShardDoc:
    def doc(self):
        return make_shard_doc(
            "w0",
            {"num_cores": 4},
            [{"fingerprint": "ab" * 32, "spec": {"mix": "Q1"}}],
            heartbeat=0.5,
            retries=1,
        )

    def test_check_accepts_own_docs(self):
        doc = self.doc()
        assert check_shard_doc(doc) is doc
        assert doc["format"] == PROTOCOL_FORMAT

    def test_version_mismatch_rejected(self):
        doc = self.doc()
        doc["format"] = 99
        with pytest.raises(ValueError, match="format"):
            check_shard_doc(doc)

    def test_missing_key_rejected(self):
        doc = self.doc()
        del doc["machine"]
        with pytest.raises(ValueError, match="machine"):
            check_shard_doc(doc)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            check_shard_doc(["not", "a", "doc"])
