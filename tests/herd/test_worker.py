"""worker_loop and the stdio worker entry, run in-process."""

import io
import json
import os
import queue
import threading
import time

from repro.campaign.campaign import machine_to_dict
from repro.campaign.fingerprint import spec_fingerprint
from repro.campaign.store import result_from_dict, spec_to_dict
from repro.experiments.configs import machine
from repro.experiments.parallel import RunSpec
from repro.experiments.runner import run_workload
from repro.herd.protocol import frame, make_shard_doc, unframe
from repro.herd.worker import stdio_worker_main, worker_loop

CONFIG = machine(4, instructions=2_000)


def entry_for(mix="Q1", scheme="lru", seed=0):
    spec = RunSpec(mix=mix, scheme=scheme, seed=seed)
    return {
        "fingerprint": spec_fingerprint(spec, CONFIG),
        "spec": spec_to_dict(spec),
    }


def shard_doc(entries, heartbeat=30.0, retries=0):
    """Long default heartbeat: these tests assert exact message sequences."""
    return make_shard_doc(
        "w0", machine_to_dict(CONFIG), entries, heartbeat=heartbeat, retries=retries
    )


def run_loop(entries, control_messages, **doc_kwargs):
    sent = []
    control = queue.Queue()
    for message in control_messages:
        control.put(message)
    done = worker_loop(shard_doc(entries, **doc_kwargs), sent.append, control)
    return done, sent


class TestWorkerLoop:
    def test_hello_result_bye_sequence(self):
        done, sent = run_loop([entry_for()], [{"type": "fin"}])
        kinds = [m["type"] for m in sent if m["type"] != "heartbeat"]
        assert kinds == ["hello", "result", "bye"]
        assert done == 1
        assert sent[0]["assigned"] == 1

    def test_result_record_is_store_shaped_and_correct(self):
        entry = entry_for()
        _, sent = run_loop([entry], [{"type": "fin"}])
        record = next(m for m in sent if m["type"] == "result")["data"]
        assert record["record"] == "result"
        assert record["fingerprint"] == entry["fingerprint"]
        assert record["spec"] == entry["spec"]
        assert record["meta"]["wall_seconds"] > 0
        # The streamed payload is the run a local caller would compute.
        expected = run_workload("Q1", CONFIG, "lru", seed=0)
        assert result_from_dict(record["result"]) == expected

    def test_drain_skips_queued_work(self):
        done, sent = run_loop(
            [entry_for(), entry_for(scheme="prism-h")], [{"type": "drain"}]
        )
        assert done == 0
        bye = next(m for m in sent if m["type"] == "bye")
        assert bye["drained"] is True
        assert not any(m["type"] == "result" for m in sent)

    def test_assign_extends_work(self):
        done, sent = run_loop(
            [entry_for()],
            [
                {"type": "assign", "specs": [entry_for(scheme="prism-h")]},
                {"type": "fin"},
            ],
        )
        assert done == 2
        fps = [m["data"]["fingerprint"] for m in sent if m["type"] == "result"]
        assert len(set(fps)) == 2

    def test_failure_record_for_broken_spec(self):
        spec = RunSpec(mix="NO-SUCH-MIX", scheme="lru")
        entry = {
            "fingerprint": spec_fingerprint(spec, CONFIG),
            "spec": spec_to_dict(spec),
        }
        done, sent = run_loop([entry], [{"type": "fin"}])
        assert done == 0
        record = next(m for m in sent if m["type"] == "failure")["data"]
        assert record["record"] == "failure"
        assert record["failure"]["error_type"]
        assert record["failure"]["attempts"] >= 1
        bye = next(m for m in sent if m["type"] == "bye")
        assert bye["failed"] == 1

    def test_heartbeats_flow_while_idle(self):
        """The daemon thread beats on its own clock, not per spec."""
        sent = []
        control = queue.Queue()
        runner = threading.Thread(
            target=worker_loop,
            args=(shard_doc([], heartbeat=0.01), sent.append, control),
        )
        runner.start()
        time.sleep(0.15)
        control.put({"type": "fin"})
        runner.join(timeout=5)
        assert not runner.is_alive()
        beats = [m for m in sent if m["type"] == "heartbeat"]
        assert beats, "no heartbeat in 150ms at 10ms cadence"
        assert all(b["worker"] == "w0" and b["done"] == 0 for b in beats)


def run_stdio(entries, control_lines):
    """stdio_worker_main over a real pipe held open, like a live ssh
    session (StringIO's instant EOF would look like a dead controller
    and trigger the EOF-means-drain rule before any work ran)."""
    read_fd, write_fd = os.pipe()
    stdin, writer = os.fdopen(read_fd, "r"), os.fdopen(write_fd, "w")
    stdout = io.StringIO()
    try:
        writer.write(json.dumps(shard_doc(entries)) + "\n")
        for line in control_lines:
            writer.write(line + "\n")
        writer.flush()
        code = stdio_worker_main(stdin, stdout)
    finally:
        writer.close()  # now the reader thread sees EOF and exits
        stdin.close()
    return code, [unframe(line) for line in stdout.getvalue().splitlines()]


class TestStdioWorker:
    def test_end_to_end_over_pipe(self):
        code, messages = run_stdio([entry_for()], [frame({"type": "fin"})])
        assert code == 0
        assert all(m is not None for m in messages)  # every line framed
        kinds = [m["type"] for m in messages if m["type"] != "heartbeat"]
        assert kinds == ["hello", "result", "bye"]

    def test_stdin_eof_means_drain(self):
        """Controller gone: stop taking work, say bye, exit cleanly."""
        stdin = io.StringIO(json.dumps(shard_doc([entry_for()])) + "\n")
        stdout = io.StringIO()
        assert stdio_worker_main(stdin, stdout) == 0
        messages = [unframe(line) for line in stdout.getvalue().splitlines()]
        # Whether the drain won the race with the first spec pop or not,
        # the worker must exit cleanly with a final bye.
        assert messages[-1]["type"] == "bye"

    def test_empty_stdin_is_an_error(self):
        assert stdio_worker_main(io.StringIO(""), io.StringIO()) == 2

    def test_garbage_control_lines_ignored(self):
        code, messages = run_stdio(
            [entry_for()],
            ["not a protocol line", frame({"type": "fin"})],
        )
        assert code == 0
        assert any(m["type"] == "result" for m in messages)
