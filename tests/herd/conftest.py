"""Shared isolation for the herd tests (mirrors tests/campaign)."""

import os

import pytest

from repro.experiments.parallel import JOBS_ENV, STORE_ENV
from repro.experiments.runner import DEFAULT_STANDALONE_CACHE


@pytest.fixture(autouse=True)
def _isolate_env(monkeypatch):
    """No ambient jobs/store settings, and a cold stand-alone memo."""
    monkeypatch.delenv(JOBS_ENV, raising=False)
    monkeypatch.delenv(STORE_ENV, raising=False)
    DEFAULT_STANDALONE_CACHE.clear()
    yield
    os.environ.pop(JOBS_ENV, None)
    os.environ.pop(STORE_ENV, None)
    DEFAULT_STANDALONE_CACHE.clear()
