"""Herd over the exec transport: the ssh byte stream, without the ssh.

The exec transport runs ``python -m repro.cli herd worker`` subprocesses
speaking the framed-stdio protocol — exactly what an ssh worker speaks —
so this is the ssh path's integration coverage without needing sshd.
"""

import os
import sys

import pytest

from repro.campaign.campaign import Campaign
from repro.campaign.store import ResultStore, result_to_dict
from repro.experiments.configs import machine
from repro.herd.controller import HerdController
from repro.herd.transport import SshTransport, resolve_transport

CONFIG = machine(4, instructions=3_000)


@pytest.fixture(autouse=True)
def _child_pythonpath(monkeypatch):
    """Worker subprocesses must import repro the way this process does."""
    monkeypatch.setenv("PYTHONPATH", os.pathsep.join(p for p in sys.path if p))


class TestExecHerd:
    def test_end_to_end_matches_in_process(self, tmp_path):
        campaign = Campaign.grid(
            tmp_path / "fleet", CONFIG, mixes=["Q1", "Q4"], schemes=["lru"]
        )
        transport = resolve_transport("exec", log_dir=tmp_path / "logs")
        run = HerdController(campaign, transport=transport, workers=2).run()
        assert run.executed == 2
        assert run.failed == 0 and run.remaining == 0 and not run.dead_workers

        serial = Campaign.grid(
            tmp_path / "serial", CONFIG, mixes=["Q1", "Q4"], schemes=["lru"]
        )
        serial.run(jobs=1)
        ours = {
            s.fingerprint: result_to_dict(s.result)
            for s in ResultStore(tmp_path / "fleet").results()
        }
        theirs = {
            s.fingerprint: result_to_dict(s.result)
            for s in ResultStore(tmp_path / "serial").results()
        }
        assert ours == theirs

    def test_stderr_lands_in_log_dir(self, tmp_path):
        campaign = Campaign.grid(
            tmp_path / "store", CONFIG, mixes=["Q1"], schemes=["lru"]
        )
        transport = resolve_transport("exec", log_dir=tmp_path / "logs")
        HerdController(campaign, transport=transport, workers=1).run()
        assert (tmp_path / "logs" / "exec-0.stderr.log").exists()


class TestTransportResolution:
    def test_ssh_requires_hosts(self):
        with pytest.raises(ValueError, match="hosts"):
            resolve_transport("ssh")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            resolve_transport("carrier-pigeon")

    def test_ssh_worker_names_and_argv(self):
        transport = SshTransport(["alpha", "beta", "alpha"])
        assert transport.worker_names() == ["alpha", "beta", "alpha#2"]
        argv = transport.argv_for("alpha#2")
        assert argv[0] == "ssh"
        assert "alpha" in argv and argv[-1] == "repro-sim herd worker"

    def test_local_ignores_hosts(self):
        assert resolve_transport("local", hosts=["ignored"]).name == "local"
