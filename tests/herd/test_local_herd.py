"""End-to-end herd runs over the local (multiprocessing) transport.

The acceptance bar for the herd: a fleet run is byte-equivalent to a
serial campaign (identical result payloads per fingerprint), a resumed
herd recomputes nothing, and a SIGKILLed worker's orphans re-shard to the
survivors without ever duplicating a completed record.
"""

import collections

from repro.campaign.campaign import Campaign
from repro.campaign.store import ResultStore, result_to_dict
from repro.experiments.configs import machine
from repro.herd.controller import HerdController, shards_dir
from repro.herd.protocol import shard_index
from repro.herd.transport import LocalTransport

CONFIG = machine(4, instructions=3_000)
MIXES = ["Q1", "Q4", "Q7"]
SCHEMES = ["lru", "prism-h"]


def build_campaign(path):
    return Campaign.grid(path, CONFIG, mixes=MIXES, schemes=SCHEMES)


def herd(campaign, workers=3, **kwargs):
    controller = HerdController(
        campaign, transport=LocalTransport(), workers=workers, **kwargs
    )
    return controller.run()


def result_payloads(store_root):
    """fingerprint -> result payload dict, from the canonical store."""
    store = ResultStore(store_root)
    return {
        s.fingerprint: result_to_dict(s.result) for s in store.results()
    }


def records_per_fingerprint(store_root):
    counts = collections.Counter()
    for record in ResultStore(store_root).iter_records():
        if record.get("record") == "result":
            counts[record["fingerprint"]] += 1
    return counts


class TestHerdEquivalence:
    def test_herd_matches_serial_byte_for_byte(self, tmp_path):
        serial = build_campaign(tmp_path / "serial")
        serial.run(jobs=1)
        fleet = build_campaign(tmp_path / "fleet")
        run = herd(fleet, workers=3)
        assert run.executed == len(MIXES) * len(SCHEMES)
        assert run.failed == 0 and run.remaining == 0
        assert not run.dead_workers
        ours, theirs = (
            result_payloads(tmp_path / "fleet"),
            result_payloads(tmp_path / "serial"),
        )
        assert set(ours) == set(theirs)
        for fp, payload in theirs.items():
            assert ours[fp] == payload  # the simulated physics, exactly

    def test_resume_recomputes_nothing(self, tmp_path):
        campaign = build_campaign(tmp_path / "store")
        first = herd(campaign)
        assert first.executed == len(MIXES) * len(SCHEMES)
        again = herd(build_campaign(tmp_path / "store"))
        assert again.executed == 0
        assert again.skipped == len(MIXES) * len(SCHEMES)
        counts = records_per_fingerprint(tmp_path / "store")
        assert counts and set(counts.values()) == {1}  # one record each

    def test_shard_stores_written_through(self, tmp_path):
        campaign = build_campaign(tmp_path / "store")
        herd(campaign, workers=2)
        shard_roots = sorted(shards_dir(campaign.store.root).iterdir())
        assert shard_roots  # at least one worker had specs
        streamed = {}
        for root in shard_roots:
            streamed.update(result_payloads(root))
        assert streamed == result_payloads(tmp_path / "store")


class TestDeadWorker:
    def test_chaos_kill_resharding_and_zero_recompute(self, tmp_path):
        campaign = Campaign.grid(
            tmp_path / "store", CONFIG,
            mixes=MIXES, schemes=SCHEMES + ["ucp", "dip"],
        )
        # Pick the worker the fingerprint hash gives the most specs, so
        # the SIGKILL after its first result is guaranteed to orphan some.
        runner = campaign.runner()
        fps = [runner.fingerprint(s) for s in campaign.specs]
        loads = collections.Counter(shard_index(fp, 3) for fp in fps)
        victim = f"local-{loads.most_common(1)[0][0]}"
        assert loads.most_common(1)[0][1] >= 2

        run = herd(
            campaign, workers=3,
            chaos_kill_worker=victim, chaos_kill_after=1,
        )
        assert run.dead_workers == [victim]
        assert run.reassigned >= 1
        assert run.executed == len(fps)
        assert run.failed == 0 and run.remaining == 0
        counts = records_per_fingerprint(tmp_path / "store")
        assert set(counts) == set(fps)
        assert set(counts.values()) == {1}  # no fingerprint computed twice

    def test_kill_then_resume_is_still_complete(self, tmp_path):
        campaign = build_campaign(tmp_path / "store")
        runner = campaign.runner()
        fps = [runner.fingerprint(s) for s in campaign.specs]
        victim = f"local-{collections.Counter(shard_index(fp, 2) for fp in fps).most_common(1)[0][0]}"
        first = herd(
            campaign, workers=2, max_reassign=0,
            chaos_kill_worker=victim, chaos_kill_after=1,
        )
        # max_reassign=0 abandons the orphans: the first run is short.
        assert first.executed + first.failed + first.skipped <= len(fps)
        resumed = herd(build_campaign(tmp_path / "store"))
        assert resumed.remaining == 0 and resumed.failed == 0
        assert resumed.executed + resumed.skipped == len(fps)
        assert resumed.executed <= len(fps) - first.executed
        assert set(records_per_fingerprint(tmp_path / "store").values()) == {1}


class TestDrain:
    def test_drain_before_start_keeps_store_consistent(self, tmp_path):
        campaign = build_campaign(tmp_path / "store")
        controller = HerdController(
            campaign, transport=LocalTransport(), workers=3
        )
        controller.request_drain()  # SIGINT arrived before the fleet spun up
        run = controller.run()
        total = len(MIXES) * len(SCHEMES)
        assert run.drained
        assert run.executed + run.remaining == total
        assert run.remaining > 0  # drained fleets stop early
        resumed = herd(build_campaign(tmp_path / "store"))
        assert resumed.executed == run.remaining
        assert resumed.skipped == run.executed
        assert set(records_per_fingerprint(tmp_path / "store").values()) == {1}


class TestRecovery:
    def test_leftover_shard_records_are_recovered(self, tmp_path):
        """Controller SIGKILLed after a worker streamed results: the shard
        stores still hold them, and the next run merges instead of
        recomputing."""
        donor = build_campaign(tmp_path / "donor")
        herd(donor)
        campaign = build_campaign(tmp_path / "store")
        shard = ResultStore(shards_dir(campaign.store.root) / "local-0")
        for record in ResultStore(tmp_path / "donor").iter_records():
            shard.append_raw(record)
        run = herd(build_campaign(tmp_path / "store"))
        assert run.executed == 0
        assert run.skipped == len(MIXES) * len(SCHEMES)
