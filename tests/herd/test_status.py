"""Status view: folding the heartbeat log into the fleet dashboard."""

import json

from repro.herd.controller import heartbeat_log_path
from repro.herd.status import WorkerStatus, herd_status, render_status


def write_events(store_root, events, torn_tail=False):
    path = heartbeat_log_path(store_root)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event) + "\n")
        if torn_tail:
            fh.write('{"event": "heartbeat", "worker": "w0", "ts"')


def beat(worker, ts, done, total=4, current=None, failed=0):
    return {
        "event": "heartbeat", "worker": worker, "ts": ts, "worker_ts": ts,
        "done": done, "failed": failed, "total": total, "current": current,
    }


class TestWorkerStatus:
    def test_specs_per_min_from_heartbeat_deltas(self):
        w = WorkerStatus(name="w0", first_beat=100.0, last_beat=130.0,
                         first_done=1, done=4)
        assert w.specs_per_min == (4 - 1) / 30.0 * 60.0

    def test_no_rate_without_progress(self):
        assert WorkerStatus(name="w0").specs_per_min is None
        assert WorkerStatus(
            name="w0", first_beat=100.0, last_beat=100.0, done=3
        ).specs_per_min is None
        assert WorkerStatus(
            name="w0", first_beat=100.0, last_beat=160.0, first_done=2, done=2
        ).specs_per_min is None

    def test_age(self):
        assert WorkerStatus(name="w0").age(now=50.0) is None
        assert WorkerStatus(name="w0", last_beat=40.0).age(now=50.0) == 10.0


class TestHerdStatus:
    def events(self):
        return [
            {"event": "launch", "worker": "w0", "assigned": 4,
             "heartbeat": 0.5, "transport": "local"},
            {"event": "launch", "worker": "w1", "assigned": 2,
             "heartbeat": 0.5, "transport": "local"},
            {"event": "hello", "worker": "w0"},
            {"event": "hello", "worker": "w1"},
            beat("w0", 100.0, 0, current="abcd1234"),
            beat("w0", 160.0, 2),
            beat("w1", 100.0, 0, total=2),
            {"event": "dead", "worker": "w1", "why": "no heartbeat"},
            {"event": "reassign", "worker": "w1", "to": "w0", "fingerprint": "ff"},
            {"event": "reassign", "worker": "w1", "to": "w0", "fingerprint": "ee"},
        ]

    def test_fold(self, tmp_path):
        write_events(tmp_path, self.events())
        status = herd_status(tmp_path)
        assert [w.name for w in status.workers] == ["w0", "w1"]
        w0, w1 = status.workers
        assert w0.done == 2 and w0.total == 4 + 2  # 2 re-sharded onto w0
        assert w0.specs_per_min == 2.0
        assert w1.state == "dead"
        assert status.dead == ["w1"]
        assert status.reassigned == 2
        assert status.transport == "local" and status.heartbeat == 0.5
        assert not status.finished

    def test_bye_and_summary_finish_the_run(self, tmp_path):
        events = self.events() + [
            {"event": "bye", "worker": "w0", "done": 6, "failed": 0},
            {"event": "exit", "worker": "w0", "code": 0},
            {"event": "summary", "executed": 6, "skipped": 1, "failed": 0,
             "remaining": 0, "drained": False},
        ]
        write_events(tmp_path, events)
        status = herd_status(tmp_path)
        w0 = status.workers[0]
        assert w0.state == "closed" and w0.done == 6
        assert status.finished
        assert status.summary["executed"] == 6

    def test_torn_tail_tolerated(self, tmp_path):
        write_events(tmp_path, self.events(), torn_tail=True)
        assert herd_status(tmp_path).workers  # parses, tail dropped

    def test_live_state_thresholds(self, tmp_path):
        write_events(tmp_path, self.events())
        status = herd_status(tmp_path)
        w0, w1 = status.workers
        assert status.live_state(w0, now=161.0) == "live"
        assert status.live_state(w0, now=1000.0) == "stale"
        assert status.live_state(w1, now=161.0) == "dead"


class TestRender:
    def test_no_herd_yet(self, tmp_path):
        assert "no herd has run" in render_status(tmp_path)

    def test_dashboard_mentions_fleet_and_deaths(self, tmp_path):
        write_events(tmp_path, TestHerdStatus().events() + [
            {"event": "summary", "executed": 6, "skipped": 1, "failed": 0,
             "remaining": 0, "drained": True},
        ])
        text = render_status(tmp_path, now=161.0)
        assert "w0" in text and "w1" in text
        assert "dead workers: w1 (2 specs re-sharded)" in text
        assert "executed 6, skipped 1 (cached)" in text
        assert "[drained]" in text
        assert "transport: local" in text
