"""`repro-sim campaign herd ...` and `repro-sim herd worker` wiring."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_herd_run_defaults(self):
        args = build_parser().parse_args(
            ["campaign", "herd", "run", "--store", "s",
             "--mixes", "Q1", "--schemes", "lru"]
        )
        assert args.transport == "local"
        assert args.workers is None
        assert args.heartbeat == 1.0
        assert args.dead_after == 15.0
        assert args.max_reassign == 2
        assert args.seeds == [0]
        assert args.chaos_kill_worker is None  # hidden chaos hook off

    def test_herd_status_flags(self):
        args = build_parser().parse_args(
            ["campaign", "herd", "status", "--store", "s", "--watch", "3"]
        )
        assert args.herd_command == "status"
        assert args.watch == 3.0

    def test_top_level_worker_subcommand(self):
        args = build_parser().parse_args(["herd", "worker"])
        assert args.herd_top_command == "worker"

    def test_export_offers_parquet(self):
        args = build_parser().parse_args(
            ["campaign", "export", "--store", "s", "--format", "parquet",
             "-o", "out"]
        )
        assert args.format == "parquet"

    def test_schemes_required_with_mixes(self):
        with pytest.raises(SystemExit, match="schemes"):
            main(["campaign", "herd", "run", "--store", "s", "--mixes", "Q1"])


class TestHerdCommands:
    RUN = ["campaign", "herd", "run", "--mixes", "Q1", "Q4",
           "--schemes", "lru", "--instructions", "3000",
           "--workers", "2", "--quiet"]

    def test_run_then_status_then_resume(self, capsys, tmp_path):
        store = ["--store", str(tmp_path / "s")]
        assert main(self.RUN + store) == 0
        out = capsys.readouterr().out
        assert "executed 2" in out

        assert main(["campaign", "herd", "status"] + store) == 0
        out = capsys.readouterr().out
        assert "local-" in out  # per-worker rows
        assert "run finished: executed 2" in out
        assert "2/2 completed" in out

        # Resuming the saved campaign (no --mixes) recomputes nothing.
        assert main(["campaign", "herd", "run", "--workers", "2", "--quiet"]
                    + store) == 0
        out = capsys.readouterr().out
        assert "executed 0" in out and "skipped 2 (cached)" in out

    def test_status_without_herd_run(self, capsys, tmp_path):
        store = ["--store", str(tmp_path / "never")]
        assert main(["campaign", "herd", "status"] + store) == 1
        assert "no herd has run" in capsys.readouterr().out
