"""Tests for the one-shot trace pre-encoder shared by both backends."""

import numpy as np
import pytest

from repro.cache.encode import EncodedTrace, encode_accesses, encode_trace
from repro.cache.geometry import CacheGeometry

GEO = CacheGeometry(1 << 16, 64, 8)  # 128 sets -> 7 set bits


class TestEncodeAccesses:
    def test_matches_geometry_arithmetic(self):
        addrs = [0, 1, 127, 128, 129, (1 << 30) + 5]
        cores = [0, 1, 2, 3, 0, 1]
        trace = encode_accesses(cores, addrs, GEO)
        for i, addr in enumerate(addrs):
            assert int(trace.set_indices[i]) == GEO.set_index(addr)
            assert int(trace.tags[i]) == GEO.tag(addr)
            assert int(trace.cores[i]) == cores[i]

    def test_arrays_are_int64(self):
        trace = encode_accesses([0, 1], [10, 20], GEO)
        assert trace.cores.dtype == np.int64
        assert trace.set_indices.dtype == np.int64
        assert trace.tags.dtype == np.int64

    def test_len_protocol(self):
        trace = encode_accesses([0] * 5, list(range(5)), GEO)
        assert len(trace) == 5
        assert isinstance(trace, EncodedTrace)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal-length"):
            encode_accesses([0, 1], [10], GEO)

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            encode_accesses([[0, 1]], [[10, 20]], GEO)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            encode_accesses([0], [-1], GEO)


class TestEncodeTrace:
    def test_pair_stream(self):
        stream = [(0, 10), (3, 200), (1, 131)]
        trace = encode_trace(stream, GEO)
        assert trace.cores.tolist() == [0, 3, 1]
        assert trace.set_indices.tolist() == [GEO.set_index(a) for _, a in stream]
        assert trace.tags.tolist() == [GEO.tag(a) for _, a in stream]

    def test_empty_stream(self):
        trace = encode_trace([], GEO)
        assert len(trace) == 0
        assert trace.cores.dtype == np.int64
        # The three arrays must be independent buffers even when empty.
        assert trace.cores is not trace.set_indices
