"""Conservation laws of the shared cache under every scheme."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.core import HitMaxPolicy, PrismScheme
from repro.partitioning import PIPPScheme, UCPScheme, WayPartitionScheme
from repro.util.rng import make_rng

GEOMETRY = CacheGeometry(8 << 10, 64, 8)  # 128 blocks


def build(scheme_name):
    cache = SharedCache(GEOMETRY, 2)
    scheme = {
        "none": None,
        "prism": PrismScheme(HitMaxPolicy(), interval_len=64, sample_shift=1),
        "ucp": UCPScheme(interval_len=64, sample_shift=1),
        "pipp": PIPPScheme(interval_len=64, sample_shift=1),
        "waypart": WayPartitionScheme(),
    }[scheme_name]
    if scheme is not None:
        cache.set_scheme(scheme)
    return cache


@pytest.mark.parametrize("scheme_name", ["none", "prism", "ucp", "pipp", "waypart"])
class TestConservation:
    def test_misses_equal_fills(self, scheme_name):
        """Every miss fills exactly one block: misses == evictions + resident."""
        cache = build(scheme_name)
        rng = make_rng(1, scheme_name)
        for _ in range(6000):
            core = rng.randrange(2)
            cache.access(core, (core << 20) + rng.randrange(600))
        stats = cache.stats
        assert sum(stats.misses) == sum(stats.evictions) + sum(cache.occupancy)

    def test_per_core_block_balance(self, scheme_name):
        """Per core: fills (own misses) minus evictions suffered equals
        blocks currently held."""
        cache = build(scheme_name)
        rng = make_rng(2, scheme_name)
        for _ in range(6000):
            core = rng.randrange(2)
            cache.access(core, (core << 20) + rng.randrange(600))
        for core in range(2):
            held = cache.stats.misses[core] - cache.stats.evictions[core]
            assert held == cache.occupancy[core]

    def test_full_cache_stays_full(self, scheme_name):
        """Once full, the cache never loses a block (evictions only happen
        to make room)."""
        cache = build(scheme_name)
        rng = make_rng(3, scheme_name)
        for _ in range(2000):
            core = rng.randrange(2)
            cache.access(core, (core << 20) + rng.randrange(600))
        assert sum(cache.occupancy) == GEOMETRY.num_blocks
        for _ in range(2000):
            core = rng.randrange(2)
            cache.access(core, (core << 20) + rng.randrange(600))
            assert sum(cache.occupancy) == GEOMETRY.num_blocks
