"""Tests for LIP / BIP / DIP insertion policies."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.cacheset import CacheSet
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement.dip import BIPPolicy, DIPPolicy, LIPPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.util.rng import make_rng


class TestLIP:
    def test_inserts_at_lru_end(self):
        policy = LIPPolicy()
        cset = CacheSet(0, 4)
        cset.fill(1, core=0, position=policy.insertion_position(cset, 0))
        cset.fill(2, core=0, position=policy.insertion_position(cset, 0))
        assert [b.tag for b in cset.blocks] == [1, 2]

    def test_protects_working_set_from_scan(self):
        """LIP's raison d'etre: a one-pass scan cannot displace the hot set."""
        geometry = CacheGeometry(2 << 10, 64, 8)  # 32 blocks

        def run(policy):
            cache = SharedCache(geometry, 1, policy=policy)
            rng = make_rng(11, "lipscan")
            hits = 0
            scan_pos = 1000
            for i in range(20000):
                if rng.random() < 0.7:
                    addr = rng.randrange(28)  # hot set, fits in cache
                else:
                    addr = scan_pos
                    scan_pos += 1  # endless scan, never reused
                hits += cache.access(0, addr).hit
            return hits

        assert run(LIPPolicy()) > run(LRUPolicy())


class TestBIP:
    def test_epsilon_validated(self):
        with pytest.raises(ValueError):
            BIPPolicy(epsilon=0.0)
        with pytest.raises(ValueError):
            BIPPolicy(epsilon=1.5)

    def test_mostly_lru_inserts(self):
        policy = BIPPolicy(epsilon=1 / 32, seed=1)
        cset = CacheSet(0, 16)
        positions = [policy.insertion_position(cset, 0) for _ in range(3200)]
        mru_fraction = sum(1 for p in positions if p == 0) / len(positions)
        assert mru_fraction == pytest.approx(1 / 32, abs=0.02)

    def test_epsilon_one_is_plain_lru_insertion(self):
        policy = BIPPolicy(epsilon=1.0, seed=1)
        cset = CacheSet(0, 4)
        assert all(policy.insertion_position(cset, 0) == 0 for _ in range(50))


class TestDIPDueling:
    def make_cache(self, **kwargs):
        geometry = CacheGeometry(8 << 10, 64, 4)  # 32 sets
        policy = DIPPolicy(**kwargs)
        return SharedCache(geometry, 1, policy=policy), policy

    def test_leader_sets_assigned_both_roles(self):
        _, policy = self.make_cache(leader_sets=4)
        roles = [policy.role_of(i) for i in range(32)]
        assert roles.count("lru") == 4
        assert roles.count("bip") == 4
        assert roles.count("follow") == 24

    def test_psel_moves_toward_bip_on_lru_leader_misses(self):
        cache, policy = self.make_cache(leader_sets=1)
        lru_leader = next(i for i in range(32) if policy.role_of(i) == "lru")
        start = policy.psel
        cset = cache.sets[lru_leader]
        for _ in range(10):
            policy.record_miss(cset, core=0)
        assert policy.psel == start + 10

    def test_psel_saturates(self):
        cache, policy = self.make_cache(leader_sets=1, psel_bits=4)
        lru_leader = next(i for i in range(32) if policy.role_of(i) == "lru")
        for _ in range(100):
            policy.record_miss(cache.sets[lru_leader], core=0)
        assert policy.psel == 15

    def test_followers_switch_with_psel(self):
        cache, policy = self.make_cache(leader_sets=1)
        follower = next(i for i in range(32) if policy.role_of(i) == "follow")
        policy.psel = 0
        assert not policy._uses_bip(follower)
        policy.psel = policy.psel_max
        assert policy._uses_bip(follower)

    def test_leaders_ignore_psel(self):
        cache, policy = self.make_cache(leader_sets=1)
        lru_leader = next(i for i in range(32) if policy.role_of(i) == "lru")
        bip_leader = next(i for i in range(32) if policy.role_of(i) == "bip")
        policy.psel = policy.psel_max
        assert not policy._uses_bip(lru_leader)
        policy.psel = 0
        assert policy._uses_bip(bip_leader)

    def test_dip_tracks_best_of_lru_and_bip_on_thrash(self):
        """On a thrashing working set DIP should approach BIP, beating LRU."""
        geometry = CacheGeometry(2 << 10, 64, 8)  # 32 blocks

        def run(policy):
            cache = SharedCache(geometry, 1, policy=policy)
            hits = 0
            # Cyclic working set slightly larger than the cache: worst case
            # for LRU (0% hits), good for BIP (retains a resident subset).
            for i in range(30000):
                hits += cache.access(0, i % 40).hit
            return hits

        lru_hits = run(LRUPolicy())
        dip_hits = run(DIPPolicy(seed=2))
        assert dip_hits > lru_hits * 2

    def test_rejects_zero_leader_sets(self):
        with pytest.raises(ValueError):
            DIPPolicy(leader_sets=0)
