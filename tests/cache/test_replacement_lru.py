"""Tests for LRU and random replacement, including the stack property."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.cacheset import CacheSet
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.random_policy import RandomPolicy
from repro.util.rng import make_rng


class TestLRUPolicy:
    def test_insertion_at_mru(self):
        policy = LRUPolicy()
        cset = CacheSet(0, 4)
        assert policy.insertion_position(cset, core=0) == 0

    def test_eviction_order_is_reverse_recency(self):
        policy = LRUPolicy()
        cset = CacheSet(0, 4)
        for tag in range(3):
            cset.fill(tag, core=0)
        order = policy.eviction_order(cset)
        assert [b.tag for b in order] == [0, 1, 2]

    def test_victim_is_lru(self):
        policy = LRUPolicy()
        cset = CacheSet(0, 4)
        for tag in range(4):
            cset.fill(tag, core=0)
        assert policy.victim(cset).tag == 0

    def test_victim_of_empty_set_raises(self):
        policy = LRUPolicy()
        with pytest.raises(RuntimeError, match="empty"):
            policy.victim(CacheSet(0, 4))

    def test_on_hit_promotes_to_mru(self):
        policy = LRUPolicy()
        cset = CacheSet(0, 4)
        for tag in range(3):
            cset.fill(tag, core=0)
        policy.on_hit(cset, cset.lookup(0), core=0)
        assert cset.blocks[0].tag == 0


class TestStackProperty:
    """LRU inclusion: a larger cache's hits are a superset of a smaller's."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_inclusion_across_associativity(self, seed):
        rng = make_rng(seed, "stack")
        stream = [rng.randrange(300) for _ in range(4000)]
        small_hits = None
        for assoc in (2, 4, 8, 16):
            geometry = CacheGeometry(64 * assoc * 8, 64, assoc)  # 8 sets, growing ways
            cache = SharedCache(geometry, 1, policy=LRUPolicy())
            hits = {i for i, a in enumerate(stream) if cache.access(0, a).hit}
            if small_hits is not None:
                assert small_hits <= hits
            small_hits = hits


class TestRandomPolicy:
    def test_eviction_order_is_permutation(self):
        policy = RandomPolicy(seed=5)
        cset = CacheSet(0, 8)
        for tag in range(8):
            cset.fill(tag, core=0)
        order = policy.eviction_order(cset)
        assert sorted(b.tag for b in order) == list(range(8))

    def test_hits_leave_order_untouched(self):
        policy = RandomPolicy(seed=5)
        cset = CacheSet(0, 4)
        for tag in range(3):
            cset.fill(tag, core=0)
        before = [b.tag for b in cset.blocks]
        policy.on_hit(cset, cset.lookup(0), core=0)
        assert [b.tag for b in cset.blocks] == before

    def test_deterministic_under_seed(self):
        def run(seed):
            policy = RandomPolicy(seed=seed)
            cache = SharedCache(CacheGeometry(2 << 10, 64, 4), 1, policy=policy)
            rng = make_rng(1, "s")
            return sum(cache.access(0, rng.randrange(150)).hit for _ in range(3000))

        assert run(9) == run(9)

    def test_random_worse_than_lru_on_local_stream(self):
        # A working set slightly above capacity: LRU-with-locality beats random.
        geometry = CacheGeometry(2 << 10, 64, 4)  # 32 blocks

        def hits(policy):
            cache = SharedCache(geometry, 1, policy=policy)
            rng = make_rng(2, "zipf")
            count = 0
            for _ in range(8000):
                # 90% of accesses to a hot 24-block region, 10% to a cold tail.
                addr = rng.randrange(24) if rng.random() < 0.9 else 24 + rng.randrange(400)
                count += cache.access(0, addr).hit
            return count

        assert hits(LRUPolicy()) > hits(RandomPolicy(seed=3))
