"""Tests for coarse timestamp LRU (the Vantage-comparison baseline)."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.cacheset import CacheSet
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.timestamp_lru import TimestampLRUPolicy
from repro.util.rng import make_rng


class TestTimestampMechanics:
    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            TimestampLRUPolicy(bits=1)

    def test_counter_advances_every_tick(self):
        policy = TimestampLRUPolicy(bits=8, accesses_per_tick=2)
        cset = CacheSet(0, 4)
        assert policy.now == 0
        policy.notify_access(cset)
        assert policy.now == 0
        policy.notify_access(cset)
        assert policy.now == 1

    def test_counter_wraps(self):
        policy = TimestampLRUPolicy(bits=2, accesses_per_tick=1)
        cset = CacheSet(0, 4)
        for _ in range(4):
            policy.notify_access(cset)
        assert policy.now == 0  # 2-bit counter wrapped

    def test_age_is_wraparound_aware(self):
        policy = TimestampLRUPolicy(bits=4, accesses_per_tick=1)
        cset = CacheSet(0, 4)
        block = cset.fill(1, core=0)
        block.timestamp = 14
        policy.now = 2  # wrapped past 15 -> age 4
        assert policy.age(block) == 4

    def test_bind_defaults_tick_to_sixteenth_of_blocks(self):
        geometry = CacheGeometry(64 << 10, 64, 16)  # 1024 blocks
        cache = SharedCache(geometry, 1, policy=TimestampLRUPolicy())
        assert cache.policy.accesses_per_tick == 64

    def test_fill_and_hit_stamp_current_time(self):
        policy = TimestampLRUPolicy(bits=8, accesses_per_tick=1)
        cset = CacheSet(0, 4)
        policy.now = 7
        block = cset.fill(1, core=0)
        policy.on_fill(cset, block, core=0)
        assert block.timestamp == 7
        policy.now = 9
        policy.on_hit(cset, block, core=0)
        assert block.timestamp == 9


class TestEvictionOrder:
    def test_oldest_first(self):
        policy = TimestampLRUPolicy(bits=8, accesses_per_tick=1)
        cset = CacheSet(0, 4)
        for tag, ts in [(1, 5), (2, 2), (3, 9)]:
            block = cset.fill(tag, core=0)
            block.timestamp = ts
        policy.now = 10
        order = policy.eviction_order(cset)
        assert [b.tag for b in order] == [2, 1, 3]

    def test_approximates_lru_at_coarse_granularity(self):
        """Timestamp LRU should land near true LRU on a local stream."""
        geometry = CacheGeometry(4 << 10, 64, 8)

        def run(policy):
            cache = SharedCache(geometry, 1, policy=policy)
            rng = make_rng(4, "tslru")
            hits = 0
            for _ in range(10000):
                addr = rng.randrange(48) if rng.random() < 0.8 else rng.randrange(2000)
                hits += cache.access(0, addr).hit
            return hits

        lru_hits = run(LRUPolicy())
        ts_hits = run(TimestampLRUPolicy())
        assert ts_hits == pytest.approx(lru_hits, rel=0.10)
