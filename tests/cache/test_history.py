"""Tests for the interval-history recorder."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.history import IntervalHistory
from repro.core import HitMaxPolicy, PrismScheme
from repro.partitioning import UCPScheme
from repro.util.rng import make_rng

GEOMETRY = CacheGeometry(8 << 10, 64, 8)


def drive(cache, accesses=4000, seed=0):
    rng = make_rng(seed, "hist")
    for _ in range(accesses):
        core = rng.randrange(cache.num_cores)
        cache.access(core, (core << 20) + rng.randrange(800))


class TestIntervalHistory:
    def test_records_one_per_interval(self):
        cache = SharedCache(GEOMETRY, 2)
        cache.set_scheme(PrismScheme(HitMaxPolicy(), interval_len=64, sample_shift=1))
        history = IntervalHistory(cache)
        drive(cache)
        assert len(history.records) == cache.intervals_completed
        assert history.records[0]["interval"] == 1

    def test_prism_fields_captured(self):
        cache = SharedCache(GEOMETRY, 2)
        cache.set_scheme(PrismScheme(HitMaxPolicy(), interval_len=64, sample_shift=1))
        history = IntervalHistory(cache)
        drive(cache)
        record = history.records[-1]
        assert len(record["targets"]) == 2
        assert sum(record["probabilities"]) == pytest.approx(1.0)

    def test_quota_schemes_captured(self):
        cache = SharedCache(GEOMETRY, 2)
        cache.set_scheme(UCPScheme(interval_len=64, sample_shift=1))
        history = IntervalHistory(cache)
        drive(cache)
        assert sum(history.records[-1]["quotas"]) == GEOMETRY.assoc

    def test_ring_buffer(self):
        cache = SharedCache(GEOMETRY, 1)
        cache.set_scheme(PrismScheme(HitMaxPolicy(), interval_len=32, sample_shift=1))
        history = IntervalHistory(cache, max_records=5)
        drive(cache, accesses=8000)
        assert len(history.records) == 5
        intervals = [r["interval"] for r in history.records]
        assert intervals == sorted(intervals)
        assert intervals[-1] == cache.intervals_completed

    def test_series_and_rows(self):
        cache = SharedCache(GEOMETRY, 2)
        cache.set_scheme(PrismScheme(HitMaxPolicy(), interval_len=64, sample_shift=1))
        history = IntervalHistory(cache)
        drive(cache)
        series = history.series("occupancy", 0)
        assert len(series) == len(history.records)
        rows = history.to_rows()
        assert len(rows) == 2 * len(history.records)
        assert set(rows[0]) == {"interval", "core", "occupancy", "target", "probability"}

    def test_rejects_bad_bound(self):
        cache = SharedCache(GEOMETRY, 1)
        with pytest.raises(ValueError):
            IntervalHistory(cache, max_records=0)

    def test_csv_export_compatible(self, tmp_path):
        from repro.experiments.export import rows_to_csv

        cache = SharedCache(GEOMETRY, 2)
        cache.set_scheme(PrismScheme(HitMaxPolicy(), interval_len=64, sample_shift=1))
        history = IntervalHistory(cache)
        drive(cache)
        path = rows_to_csv(history.to_rows(), tmp_path / "history.csv")
        assert path.exists()
