"""The cache's hot-path address arithmetic must match CacheGeometry's."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.util.rng import make_rng


@pytest.mark.parametrize(
    "size,assoc",
    [(1 << 10, 16), (4 << 10, 4), (64 << 10, 16), (256 << 10, 64)],
)
def test_hot_path_matches_geometry(size, assoc):
    geometry = CacheGeometry(size, 64, assoc)
    cache = SharedCache(geometry, 1)
    rng = make_rng(1, "geom")
    for _ in range(200):
        addr = rng.randrange(1 << 48)
        assert addr & cache._set_mask == geometry.set_index(addr)
        assert addr >> cache._tag_shift == geometry.tag(addr)


def test_single_set_cache_hot_path():
    geometry = CacheGeometry(1 << 10, 64, 16)  # one set
    cache = SharedCache(geometry, 1)
    assert cache._set_mask == 0
    assert cache._tag_shift == 0
    cache.access(0, 123456)
    assert cache.access(0, 123456).hit
