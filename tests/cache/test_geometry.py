"""Unit tests for cache geometry arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.geometry import CacheGeometry


class TestConstruction:
    def test_basic_counts(self):
        g = CacheGeometry(4 << 20, block_bytes=64, assoc=32)
        assert g.num_blocks == 65536  # the paper's 4MB example: N = 65536
        assert g.num_sets == 2048

    def test_paper_example_matches_section_32(self):
        # "In a 4MB32Way cache with block size of 64B, N=65536 and A=32."
        g = CacheGeometry(4 << 20, 64, 32)
        assert g.num_blocks == 65536
        assert g.assoc == 32

    def test_single_set_cache(self):
        g = CacheGeometry(1 << 10, block_bytes=64, assoc=16)
        assert g.num_sets == 1
        assert g.num_blocks == 16

    def test_rejects_non_power_of_two_size(self):
        with pytest.raises(ValueError, match="size_bytes"):
            CacheGeometry(3000, 64, 4)

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ValueError, match="block_bytes"):
            CacheGeometry(4096, 48, 4)

    def test_rejects_non_power_of_two_assoc(self):
        with pytest.raises(ValueError, match="assoc"):
            CacheGeometry(4096, 64, 3)

    def test_rejects_assoc_larger_than_blocks(self):
        with pytest.raises(ValueError):
            CacheGeometry(1 << 10, block_bytes=64, assoc=32)

    def test_frozen(self):
        g = CacheGeometry(4096, 64, 4)
        with pytest.raises(AttributeError):
            g.assoc = 8


class TestAddressMapping:
    def test_set_index_wraps(self):
        g = CacheGeometry(4096, 64, 4)  # 16 sets
        assert g.set_index(0) == 0
        assert g.set_index(16) == 0
        assert g.set_index(17) == 1

    def test_tag_strips_set_bits(self):
        g = CacheGeometry(4096, 64, 4)  # 16 sets
        assert g.tag(0) == 0
        assert g.tag(16) == 1
        assert g.tag(35) == 2

    def test_roundtrip(self):
        g = CacheGeometry(4096, 64, 4)
        for addr in [0, 1, 15, 16, 1000, (1 << 36) + 5]:
            assert g.block_addr(g.set_index(addr), g.tag(addr)) == addr

    def test_roundtrip_single_set(self):
        g = CacheGeometry(1 << 10, 64, 16)
        for addr in [0, 5, 123456]:
            assert g.set_index(addr) == 0
            assert g.block_addr(0, g.tag(addr)) == addr

    @given(st.integers(min_value=0, max_value=1 << 48))
    def test_roundtrip_property(self, addr):
        g = CacheGeometry(16 << 10, 64, 8)
        assert g.block_addr(g.set_index(addr), g.tag(addr)) == addr

    def test_distinct_addresses_in_same_set_have_distinct_tags(self):
        g = CacheGeometry(4096, 64, 4)
        addrs = [i * g.num_sets + 3 for i in range(50)]
        tags = {g.tag(a) for a in addrs}
        assert len(tags) == 50


class TestScaling:
    def test_scaled_keeps_assoc(self):
        g = CacheGeometry(4 << 20, 64, 16).scaled(64)
        assert g.size_bytes == 64 << 10
        assert g.assoc == 16
        assert g.num_blocks == 1024

    def test_scaled_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            CacheGeometry(4 << 20, 64, 16).scaled(3)

    def test_str_megabytes(self):
        assert str(CacheGeometry(4 << 20, 64, 16)) == "4MB/16way/64B"

    def test_str_kilobytes(self):
        assert str(CacheGeometry(64 << 10, 64, 16)) == "64KB/16way/64B"
