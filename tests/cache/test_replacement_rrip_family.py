"""Tests for BRRIP and DRRIP (the RRIP family extensions)."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.cacheset import CacheSet
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import make_policy
from repro.cache.replacement.srrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from repro.util.rng import make_rng


class TestBRRIP:
    def test_epsilon_validated(self):
        with pytest.raises(ValueError):
            BRRIPPolicy(epsilon=0.0)

    def test_mostly_distant_inserts(self):
        policy = BRRIPPolicy(m=2, epsilon=1 / 32, seed=1)
        cset = CacheSet(0, 4)
        distant = 0
        for tag in range(3200):
            block = cset.fill(tag, core=0)
            policy.on_fill(cset, block, core=0)
            distant += block.rrpv == policy.max_rrpv
            cset.evict(block)
        assert distant / 3200 == pytest.approx(1 - 1 / 32, abs=0.02)

    def test_resists_thrashing_better_than_srrip(self):
        geometry = CacheGeometry(2 << 10, 64, 8)  # 32 blocks

        def hits(policy):
            cache = SharedCache(geometry, 1, policy=policy)
            total = 0
            for i in range(30000):
                total += cache.access(0, i % 40).hit  # cyclic thrash
            return total

        assert hits(BRRIPPolicy(seed=2)) > hits(SRRIPPolicy()) * 2


class TestDRRIP:
    def make(self, **kwargs):
        geometry = CacheGeometry(8 << 10, 64, 4)  # 32 sets
        policy = DRRIPPolicy(**kwargs)
        return SharedCache(geometry, 1, policy=policy), policy

    def test_leader_layout(self):
        _, policy = self.make(leader_sets=4)
        roles = [policy.role_of(i) for i in range(32)]
        assert roles.count("srrip") == 4
        assert roles.count("brrip") == 4

    def test_psel_dynamics(self):
        cache, policy = self.make(leader_sets=1)
        srrip_leader = next(i for i in range(32) if policy.role_of(i) == "srrip")
        brrip_leader = next(i for i in range(32) if policy.role_of(i) == "brrip")
        start = policy.psel
        policy.record_miss(cache.sets[srrip_leader], core=0)
        assert policy.psel == start + 1
        policy.record_miss(cache.sets[brrip_leader], core=0)
        policy.record_miss(cache.sets[brrip_leader], core=0)
        assert policy.psel == start - 1

    def test_followers_switch(self):
        cache, policy = self.make(leader_sets=1)
        follower = next(i for i in range(32) if policy.role_of(i) == "follow")
        policy.psel = 0
        assert not policy._uses_brrip(follower)
        policy.psel = policy.psel_max
        assert policy._uses_brrip(follower)

    def test_adapts_to_thrashing(self):
        geometry = CacheGeometry(2 << 10, 64, 8)
        policy = DRRIPPolicy(seed=3)
        cache = SharedCache(geometry, 1, policy=policy)
        for i in range(30000):
            cache.access(0, i % 40)
        assert policy.psel > policy.psel_max // 2  # learned BRRIP

    def test_registry_names(self):
        assert isinstance(make_policy("brrip"), BRRIPPolicy)
        assert isinstance(make_policy("drrip"), DRRIPPolicy)

    def test_prism_composes_with_drrip(self):
        """PriSM invariants hold over DRRIP too (policy agnosticism)."""
        from repro.core import HitMaxPolicy, PrismScheme

        geometry = CacheGeometry(8 << 10, 64, 4)
        cache = SharedCache(geometry, 2, policy=DRRIPPolicy(seed=4))
        cache.set_scheme(PrismScheme(HitMaxPolicy(), interval_len=64, sample_shift=1))
        rng = make_rng(5, "drrip-prism")
        for _ in range(10000):
            core = rng.randrange(2)
            cache.access(core, (core << 20) + rng.randrange(800))
        assert cache.occupancy == cache.scan_occupancy()
        assert sum(cache.scheme.manager.probabilities) == pytest.approx(1.0)
