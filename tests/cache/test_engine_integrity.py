"""Randomized integrity properties of the linked-list cache engine.

The intrusive recency list replaced an explicit Python list ordering, and
per-core residency counts went from scans to incremental updates. These
tests drive randomized access streams through every (policy, scheme)
pairing the experiments use and then verify the invariants the fast paths
rely on:

- ``scan_occupancy() == occupancy`` — the incremental per-core occupancy
  counters agree with a full scan of every set;
- :meth:`CacheSet.check_integrity` — forward/backward link order agree,
  the tag index maps every resident block, no ways leak, and the per-set
  ``_core_counts`` match a recount.
"""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import DIPPolicy, LRUPolicy, SRRIPPolicy
from repro.core import HitMaxPolicy, PrismScheme
from repro.experiments.schemes import build_scheme
from repro.util.rng import make_rng

GEOMETRY = CacheGeometry(16 << 10, 64, 8)  # 32 sets x 8 ways
CORES = 4
ACCESSES = 6_000

#: Registry schemes covering every victim-selection/insertion variant:
#: unmanaged recency baselines, PriSM over LRU and DIP, UCP's way quotas,
#: PIPP's positional inserts, Vantage's partition demotions.
SCHEME_NAMES = [
    "lru",
    "dip",
    "tslru",
    "prism-h",
    "prism-h-dip",
    "ucp",
    "pipp",
    "vantage",
    "waypart",
]


def _drive(cache: SharedCache, seed: int, accesses: int = ACCESSES) -> SharedCache:
    """A mixed stream: mostly per-core private addresses, some shared."""
    rng = make_rng(seed, "engine-integrity")
    access = cache.access
    for _ in range(accesses):
        core = rng.randrange(CORES)
        if rng.random() < 0.75:
            addr = (core << 16) + rng.randrange(700)
        else:
            addr = rng.randrange(1 << 13)  # contended region, all cores
        access(core, addr)
    return cache


def _assert_invariants(cache: SharedCache) -> None:
    assert cache.scan_occupancy() == cache.occupancy
    assert cache.valid_blocks() == sum(cache.occupancy)
    assert cache.valid_blocks() <= cache.geometry.num_blocks
    for cset in cache.sets:
        cset.check_integrity()


@pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
@pytest.mark.parametrize("seed", [0, 1])
def test_registry_schemes_keep_engine_invariants(scheme_name, seed):
    scheme, policy = build_scheme(scheme_name, CORES, [1.0] * CORES)
    cache = SharedCache(GEOMETRY, CORES, policy=policy)
    if scheme is not None:
        cache.set_scheme(scheme)
    _drive(cache, seed)
    assert cache.stats.total_misses() > 0
    _assert_invariants(cache)


@pytest.mark.parametrize(
    "policy_factory", [LRUPolicy, DIPPolicy, SRRIPPolicy], ids=["lru", "dip", "srrip"]
)
def test_unmanaged_policies_keep_engine_invariants(policy_factory):
    cache = SharedCache(GEOMETRY, CORES, policy=policy_factory())
    _drive(cache, seed=2)
    _assert_invariants(cache)


def test_prism_over_srrip_keeps_engine_invariants():
    """PriSM's manager on a non-recency order (the slow victim path)."""
    cache = SharedCache(GEOMETRY, CORES, policy=SRRIPPolicy())
    cache.set_scheme(PrismScheme(HitMaxPolicy(), sample_shift=1))
    _drive(cache, seed=3)
    assert cache.intervals_completed > 0
    _assert_invariants(cache)


def test_invariants_hold_mid_stream():
    """Integrity is not just an end-state property: probe while running."""
    cache = SharedCache(GEOMETRY, CORES)
    cache.set_scheme(PrismScheme(HitMaxPolicy(), sample_shift=1))
    rng = make_rng(7, "engine-integrity-mid")
    for i in range(5):
        for _ in range(800):
            core = rng.randrange(CORES)
            cache.access(core, (core << 16) + rng.randrange(500))
        _assert_invariants(cache)
