"""Tests for the tree pseudo-LRU policy (the hierarchy baseline)."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import make_policy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.plru import PLRUPolicy
from repro.core.allocation import HitMaxPolicy
from repro.core.prism import PrismScheme
from repro.util.rng import make_rng


class NaivePLRU:
    """An independent transcription of tree PLRU for differential tests.

    Ways fill in index order while free; on a full-set miss the victim way
    is found by following the tree bits root to leaf; every touch points
    the bits on the way's root path at the sibling subtree.
    """

    def __init__(self, geometry):
        self.geometry = geometry
        self.sets = [
            {"ways": [None] * geometry.assoc, "bits": [0] * (geometry.assoc - 1)}
            for _ in range(geometry.num_sets)
        ]

    def _touch(self, state, way):
        node = self.geometry.assoc - 1 + way
        while node:
            parent = (node - 1) // 2
            side = 0 if node == 2 * parent + 1 else 1
            state["bits"][parent] = 1 - side  # point at the sibling
            node = parent

    def victim_way(self, state):
        node = 0
        while node < self.geometry.assoc - 1:
            node = 2 * node + 1 + state["bits"][node]
        return node - (self.geometry.assoc - 1)

    def access(self, addr):
        state = self.sets[self.geometry.set_index(addr)]
        tag = self.geometry.tag(addr)
        ways = state["ways"]
        if tag in ways:
            self._touch(state, ways.index(tag))
            return True
        if None in ways:
            way = ways.index(None)
        else:
            way = self.victim_way(state)
        ways[way] = tag
        self._touch(state, way)
        return False


class TestPLRUUnit:
    def test_registry_builds_it(self):
        assert isinstance(make_policy("plru"), PLRUPolicy)

    def test_rejects_non_power_of_two_assoc(self):
        class FakeGeometry:
            assoc = 3
            num_sets = 4

        class FakeCache:
            geometry = FakeGeometry()

        with pytest.raises(ValueError, match="power-of-two"):
            PLRUPolicy().bind(FakeCache())

    def test_victim_is_never_the_most_recent_touch(self):
        geometry = CacheGeometry(1 << 10, 64, 4)  # 4 sets, 4 ways
        cache = SharedCache(geometry, 1, policy=PLRUPolicy())
        sets = geometry.num_sets
        for i in range(4):
            cache.access(0, i * sets)  # fill set 0
        cache.access(0, 2 * sets)  # touch way 2 last
        order = cache.policy.eviction_order(cache.sets[0])
        assert len(order) == 4
        assert order[-1].tag == geometry.tag(2 * sets)  # MRU-most is last
        assert order[0].tag != geometry.tag(2 * sets)

    def test_eviction_order_covers_each_resident_block_once(self):
        geometry = CacheGeometry(1 << 10, 64, 8)
        cache = SharedCache(geometry, 1, policy=PLRUPolicy())
        rng = make_rng(5, "plru-order")
        for _ in range(500):
            cache.access(0, rng.randrange(256))
        for cset in cache.sets:
            order = cache.policy.eviction_order(cset)
            assert len(order) == len(cset)
            assert {b.tag for b in order} == {b.tag for b in cset}

    def test_two_way_plru_is_exact_lru(self):
        geometry = CacheGeometry(1 << 10, 64, 2)
        plru = SharedCache(geometry, 1, policy=PLRUPolicy())
        lru = SharedCache(geometry, 1, policy=LRUPolicy())
        rng = make_rng(11, "plru-2way")
        for _ in range(5000):
            addr = rng.randrange(128)
            assert plru.access(0, addr).hit == lru.access(0, addr).hit


class TestPLRUDifferential:
    @pytest.mark.parametrize("assoc", [1, 2, 4, 8, 16])
    def test_matches_naive_transcription(self, assoc):
        geometry = CacheGeometry(assoc << 8, 64, assoc)  # 4 sets
        engine = SharedCache(geometry, 1, policy=PLRUPolicy())
        naive = NaivePLRU(geometry)
        rng = make_rng(assoc, "plru-diff")
        for step in range(8000):
            addr = rng.randrange(8 * geometry.num_blocks)
            assert engine.access(0, addr).hit == naive.access(addr), (
                f"divergence at step {step} (assoc {assoc})"
            )
        # End state: resident tags agree set for set.
        for index, cset in enumerate(engine.sets):
            engine_tags = {b.tag for b in cset}
            naive_tags = {t for t in naive.sets[index]["ways"] if t is not None}
            assert engine_tags == naive_tags

    def test_plru_approximates_lru_hit_rate(self):
        geometry = CacheGeometry(4 << 10, 64, 8)
        rng_a, rng_b = make_rng(3, "a"), make_rng(3, "a")
        plru = SharedCache(geometry, 1, policy=PLRUPolicy())
        lru = SharedCache(geometry, 1, policy=LRUPolicy())
        for _ in range(30000):
            plru.access(0, rng_a.randrange(512))
            lru.access(0, rng_b.randrange(512))
        plru_rate = plru.stats.hits[0] / plru.stats.accesses(0)
        lru_rate = lru.stats.hits[0] / lru.stats.accesses(0)
        assert plru_rate == pytest.approx(lru_rate, abs=0.05)


class TestPLRUUnderPriSM:
    def test_prism_composes_with_plru(self):
        """PriSM's core-selection step must work from PLRU's preference
        order (recency_ordered is False, so the manager scans candidates)."""
        geometry = CacheGeometry(4 << 10, 64, 8)
        cache = SharedCache(
            geometry, 2, policy=PLRUPolicy(), scheme=PrismScheme(HitMaxPolicy())
        )
        rng = make_rng(9, "plru-prism")
        for _ in range(30000):
            cache.access(0, rng.randrange(300))
            cache.access(1, rng.randrange(600))
        assert sum(cache.occupancy) <= geometry.num_blocks
        assert cache.scan_occupancy() == list(cache.occupancy)
        assert cache.intervals_completed > 0
