"""Tests for the shadow-tag / UMON monitor."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.shadow import ShadowTagMonitor
from repro.util.rng import make_rng


class TestSampling:
    def test_sample_selection(self):
        monitor = ShadowTagMonitor(2, num_sets=32, assoc=4, sample_shift=3)
        sampled = [i for i in range(32) if monitor.is_sampled(i)]
        assert sampled == [0, 8, 16, 24]
        assert monitor.sample_ratio == 8

    def test_shift_zero_samples_everything(self):
        monitor = ShadowTagMonitor(1, num_sets=8, assoc=4, sample_shift=0)
        assert all(monitor.is_sampled(i) for i in range(8))

    def test_shift_clamped_for_tiny_set_counts(self):
        monitor = ShadowTagMonitor(1, num_sets=4, assoc=64, sample_shift=5)
        assert sum(monitor.is_sampled(i) for i in range(4)) >= 2

    def test_unsampled_sets_ignored(self):
        monitor = ShadowTagMonitor(1, num_sets=32, assoc=4, sample_shift=3)
        monitor.observe(0, 1, tag=5, shared_hit=False)
        assert monitor.sampled_accesses(0) == 0
        assert monitor.standalone_misses(0) == 0

    def test_rejects_negative_shift(self):
        with pytest.raises(ValueError):
            ShadowTagMonitor(1, 8, 4, sample_shift=-1)


class TestStandaloneEmulation:
    def test_first_touch_misses_then_hits(self):
        monitor = ShadowTagMonitor(1, num_sets=8, assoc=4, sample_shift=0)
        monitor.observe(0, 0, tag=7, shared_hit=False)
        assert monitor.standalone_misses(0) == 1
        monitor.observe(0, 0, tag=7, shared_hit=False)
        assert monitor.standalone_hits(0) == 1

    def test_hit_position_tracks_recency_depth(self):
        monitor = ShadowTagMonitor(1, num_sets=8, assoc=4, sample_shift=0)
        for tag in (1, 2, 3):
            monitor.observe(0, 0, tag, shared_hit=False)
        monitor.observe(0, 0, 1, shared_hit=False)  # depth 2 (0-indexed position 2)
        assert monitor.position_hits[0][2] == 1

    def test_lru_eviction_at_assoc(self):
        monitor = ShadowTagMonitor(1, num_sets=8, assoc=2, sample_shift=0)
        for tag in (1, 2, 3):  # tag 1 falls off a 2-way stack
            monitor.observe(0, 0, tag, shared_hit=False)
        monitor.observe(0, 0, 1, shared_hit=False)
        assert monitor.standalone_hits(0) == 0
        assert monitor.standalone_misses(0) == 4

    def test_cores_isolated(self):
        monitor = ShadowTagMonitor(2, num_sets=8, assoc=4, sample_shift=0)
        monitor.observe(0, 0, tag=1, shared_hit=False)
        monitor.observe(1, 0, tag=1, shared_hit=False)
        # Each core's private shadow array misses on its own first touch.
        assert monitor.standalone_misses(0) == 1
        assert monitor.standalone_misses(1) == 1

    def test_utility_curve_is_prefix_sum(self):
        monitor = ShadowTagMonitor(1, num_sets=8, assoc=4, sample_shift=0)
        monitor.position_hits[0] = [10, 5, 2, 1]
        assert monitor.hits_with_ways(0, 0) == 0
        assert monitor.hits_with_ways(0, 1) == 10
        assert monitor.hits_with_ways(0, 3) == 17
        assert monitor.hits_with_ways(0, 4) == 18
        assert monitor.hits_with_ways(0, 99) == 18  # clamped at assoc

    def test_utility_curve_monotone(self):
        monitor = ShadowTagMonitor(1, num_sets=8, assoc=8, sample_shift=0)
        rng = make_rng(5, "util")
        for _ in range(2000):
            monitor.observe(0, rng.randrange(8), rng.randrange(40), shared_hit=False)
        curve = [monitor.hits_with_ways(0, w) for w in range(9)]
        assert curve == sorted(curve)

    def test_negative_ways_rejected(self):
        monitor = ShadowTagMonitor(1, 8, 4, sample_shift=0)
        with pytest.raises(ValueError):
            monitor.hits_with_ways(0, -1)


class TestSharedCounters:
    def test_shared_hit_miss_split(self):
        monitor = ShadowTagMonitor(1, num_sets=8, assoc=4, sample_shift=0)
        monitor.observe(0, 0, 1, shared_hit=True)
        monitor.observe(0, 0, 1, shared_hit=False)
        assert monitor.shared_hits[0] == 1
        assert monitor.shared_misses[0] == 1
        assert monitor.sampled_accesses(0) == 2

    def test_end_interval_resets_counters_keeps_arrays(self):
        monitor = ShadowTagMonitor(1, num_sets=8, assoc=4, sample_shift=0)
        monitor.observe(0, 0, 1, shared_hit=False)
        monitor.end_interval()
        assert monitor.standalone_misses(0) == 0
        assert monitor.shared_misses[0] == 0
        # The warm shadow array survives the reset: the next touch hits.
        monitor.observe(0, 0, 1, shared_hit=False)
        assert monitor.standalone_hits(0) == 1

    def test_lifetime_counters_survive_interval_reset(self):
        monitor = ShadowTagMonitor(1, num_sets=8, assoc=4, sample_shift=0)
        monitor.observe(0, 0, 1, shared_hit=False)
        monitor.observe(0, 0, 1, shared_hit=False)
        monitor.end_interval()
        assert monitor.lifetime_shadow_misses[0] == 1
        assert monitor.lifetime_shadow_hits[0] == 1


class TestAgainstRealCache:
    def test_shadow_matches_private_cache_exactly(self):
        """On sampled sets, the shadow emulation must equal a real private
        LRU cache serving the same single-core stream."""
        geometry = CacheGeometry(4 << 10, 64, 4)  # 16 sets
        cache = SharedCache(geometry, 1)
        monitor = ShadowTagMonitor(1, geometry.num_sets, geometry.assoc, sample_shift=1)
        cache.add_monitor(monitor)
        rng = make_rng(6, "vs-real")
        real_hits_on_sampled = 0
        for _ in range(5000):
            addr = rng.randrange(400)
            result = cache.access(0, addr)
            if monitor.is_sampled(result.set_index) and result.hit:
                real_hits_on_sampled += 1
        # Single core, same replacement policy: shadow == reality.
        assert monitor.standalone_hits(0) == real_hits_on_sampled
        assert monitor.shared_hits[0] == real_hits_on_sampled
