"""Unit tests for cache statistics counters."""

import pytest

from repro.cache.stats import CacheStats


class TestLifetimeCounters:
    def test_initial_state(self):
        stats = CacheStats(2)
        assert stats.hits == [0, 0]
        assert stats.misses == [0, 0]
        assert stats.total_misses() == 0

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            CacheStats(0)

    def test_hit_and_miss_attribution(self):
        stats = CacheStats(3)
        stats.record_hit(0)
        stats.record_miss(1)
        stats.record_miss(1)
        assert stats.hits == [1, 0, 0]
        assert stats.misses == [0, 2, 0]
        assert stats.accesses(1) == 2

    def test_eviction_attribution(self):
        stats = CacheStats(2)
        stats.record_eviction(1)
        assert stats.evictions == [0, 1]

    def test_miss_rate(self):
        stats = CacheStats(1)
        stats.record_hit(0)
        stats.record_miss(0)
        stats.record_miss(0)
        assert stats.miss_rate(0) == pytest.approx(2 / 3)

    def test_miss_rate_no_accesses(self):
        assert CacheStats(1).miss_rate(0) == 0.0

    def test_snapshot_is_a_copy(self):
        stats = CacheStats(2)
        snap = stats.snapshot()
        snap["hits"][0] = 99
        assert stats.hits[0] == 0


class TestIntervalCounters:
    def test_interval_tracks_independently(self):
        stats = CacheStats(2)
        stats.record_miss(0)
        stats.reset_interval()
        stats.record_miss(1)
        assert stats.misses == [1, 1]          # lifetime keeps both
        assert stats.interval_misses == [0, 1]  # interval only the second

    def test_miss_fractions_sum_to_one(self):
        stats = CacheStats(3)
        stats.record_miss(0)
        stats.record_miss(0)
        stats.record_miss(2)
        fractions = stats.interval_miss_fractions()
        assert sum(fractions) == pytest.approx(1.0)
        assert fractions[0] == pytest.approx(2 / 3)
        assert fractions[1] == 0.0

    def test_miss_fractions_uniform_when_no_misses(self):
        # Eq. 1 needs a well-defined M even for an idle interval.
        fractions = CacheStats(4).interval_miss_fractions()
        assert fractions == [0.25] * 4

    def test_reset_clears_all_interval_counters(self):
        stats = CacheStats(2)
        stats.record_hit(0)
        stats.record_miss(1)
        stats.record_eviction(0)
        stats.reset_interval()
        assert stats.interval_hits == [0, 0]
        assert stats.interval_misses == [0, 0]
        assert stats.interval_evictions == [0, 0]
