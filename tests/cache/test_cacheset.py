"""Unit tests for CacheSet mechanics."""

import pytest

from repro.cache.cacheset import CacheSet


@pytest.fixture
def cset():
    return CacheSet(index=0, assoc=4)


class TestFill:
    def test_empty_set_lookup_misses(self, cset):
        assert cset.lookup(1) is None
        assert len(cset) == 0
        assert not cset.full

    def test_fill_inserts_at_mru_by_default(self, cset):
        cset.fill(1, core=0)
        cset.fill(2, core=0)
        assert [b.tag for b in cset.blocks] == [2, 1]

    def test_fill_at_position(self, cset):
        cset.fill(1, core=0)
        cset.fill(2, core=0)
        cset.fill(3, core=0, position=2)  # LRU end
        assert [b.tag for b in cset.blocks] == [2, 1, 3]

    def test_fill_position_past_end_clamps_to_lru(self, cset):
        cset.fill(1, core=0)
        cset.fill(2, core=0, position=99)
        assert [b.tag for b in cset.blocks] == [1, 2]

    def test_fill_duplicate_tag_raises(self, cset):
        cset.fill(7, core=0)
        with pytest.raises(RuntimeError, match="already present"):
            cset.fill(7, core=1)

    def test_fill_full_set_raises(self, cset):
        for tag in range(4):
            cset.fill(tag, core=0)
        assert cset.full
        with pytest.raises(RuntimeError, match="full"):
            cset.fill(99, core=0)

    def test_fill_sets_owner(self, cset):
        block = cset.fill(5, core=3)
        assert block.core == 3
        assert block.valid


class TestEvict:
    def test_evict_frees_way(self, cset):
        for tag in range(4):
            cset.fill(tag, core=0)
        victim = cset.blocks[-1]
        cset.evict(victim)
        assert not cset.full
        assert cset.lookup(victim.tag) is None
        assert len(cset) == 3

    def test_evicted_block_reusable(self, cset):
        block = cset.fill(1, core=0)
        cset.evict(block)
        new = cset.fill(2, core=1)
        assert new is block  # pooled, not reallocated
        assert new.tag == 2 and new.core == 1

    def test_evict_invalidates(self, cset):
        block = cset.fill(1, core=0)
        cset.evict(block)
        assert not block.valid
        assert block.core == -1


class TestRecency:
    def test_move_to_front(self, cset):
        cset.fill(1, core=0)
        cset.fill(2, core=0)
        b1 = cset.lookup(1)
        cset.move_to(b1, 0)
        assert [b.tag for b in cset.blocks] == [1, 2]

    def test_move_to_back(self, cset):
        cset.fill(1, core=0)
        cset.fill(2, core=0)
        b2 = cset.lookup(2)
        cset.move_to(b2, 5)
        assert [b.tag for b in cset.blocks] == [1, 2]

    def test_position_of(self, cset):
        cset.fill(1, core=0)
        cset.fill(2, core=0)
        assert cset.position_of(cset.lookup(2)) == 0
        assert cset.position_of(cset.lookup(1)) == 1

    def test_lru_block(self, cset):
        cset.fill(1, core=0)
        cset.fill(2, core=0)
        assert cset.lru_block().tag == 1

    def test_lru_block_empty_raises(self, cset):
        with pytest.raises(RuntimeError, match="empty"):
            cset.lru_block()


class TestOccupancyQueries:
    def test_count_core(self, cset):
        cset.fill(1, core=0)
        cset.fill(2, core=1)
        cset.fill(3, core=1)
        assert cset.count_core(0) == 1
        assert cset.count_core(1) == 2
        assert cset.count_core(2) == 0

    def test_blocks_of_in_recency_order(self, cset):
        cset.fill(1, core=1)
        cset.fill(2, core=0)
        cset.fill(3, core=1)
        assert [b.tag for b in cset.blocks_of(1)] == [3, 1]

    def test_iteration_covers_valid_blocks(self, cset):
        for tag in range(3):
            cset.fill(tag, core=0)
        assert {b.tag for b in cset} == {0, 1, 2}
