"""Tests for the SRRIP extension policy."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.cacheset import CacheSet
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.srrip import SRRIPPolicy
from repro.util.rng import make_rng


class TestSRRIP:
    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            SRRIPPolicy(m=0)

    def test_fill_gets_long_rereference(self):
        policy = SRRIPPolicy(m=2)
        cset = CacheSet(0, 4)
        block = cset.fill(1, core=0)
        policy.on_fill(cset, block, core=0)
        assert block.rrpv == 2  # 2^m - 2

    def test_hit_resets_rrpv(self):
        policy = SRRIPPolicy(m=2)
        cset = CacheSet(0, 4)
        block = cset.fill(1, core=0)
        policy.on_fill(cset, block, core=0)
        policy.on_hit(cset, block, core=0)
        assert block.rrpv == 0

    def test_victim_is_saturated_block(self):
        policy = SRRIPPolicy(m=2)
        cset = CacheSet(0, 4)
        blocks = [cset.fill(tag, core=0) for tag in range(3)]
        blocks[0].rrpv = 3
        blocks[1].rrpv = 1
        blocks[2].rrpv = 0
        assert policy.victim(cset).tag == 0

    def test_aging_when_nobody_saturated(self):
        policy = SRRIPPolicy(m=2)
        cset = CacheSet(0, 4)
        blocks = [cset.fill(tag, core=0) for tag in range(3)]
        for b in blocks:
            b.rrpv = 1
        victim = policy.victim(cset)
        assert victim.rrpv == 3
        assert all(b.rrpv == 3 for b in blocks)  # everyone aged together

    def test_reused_blocks_survive_scans(self):
        """SRRIP should beat LRU under a mixed reuse + scan stream."""
        geometry = CacheGeometry(2 << 10, 64, 8)

        def run(policy):
            cache = SharedCache(geometry, 1, policy=policy)
            rng = make_rng(13, "srrip")
            hits, scan = 0, 5000
            for _ in range(20000):
                if rng.random() < 0.6:
                    addr = rng.randrange(24)
                else:
                    addr, scan = scan, scan + 1
                hits += cache.access(0, addr).hit
            return hits

        assert run(SRRIPPolicy()) > run(LRUPolicy())
