"""Unit tests for the SharedCache access path."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement.lru import LRUPolicy
from repro.partitioning.base import ManagementScheme
from repro.util.rng import make_rng


def addr_for(geometry, set_index, tag):
    return geometry.block_addr(set_index, tag)


class TestHitsAndMisses:
    def test_first_access_misses(self, tiny_cache):
        result = tiny_cache.access(0, 100)
        assert not result.hit
        assert tiny_cache.stats.misses[0] == 1

    def test_second_access_hits(self, tiny_cache):
        tiny_cache.access(0, 100)
        result = tiny_cache.access(0, 100)
        assert result.hit
        assert tiny_cache.stats.hits[0] == 1

    def test_hit_requires_same_block(self, tiny_cache):
        tiny_cache.access(0, 100)
        assert not tiny_cache.access(0, 101).hit

    def test_cross_core_hit(self, tiny_cache):
        # The cache is shared: core 1 can hit on a block core 0 brought in.
        tiny_cache.access(0, 100)
        assert tiny_cache.access(1, 100).hit
        assert tiny_cache.stats.hits[1] == 1

    def test_hit_does_not_change_owner(self, tiny_cache):
        tiny_cache.access(0, 100)
        tiny_cache.access(1, 100)
        g = tiny_cache.geometry
        block = tiny_cache.sets[g.set_index(100)].lookup(g.tag(100))
        assert block.core == 0

    def test_no_eviction_until_set_full(self, tiny_geometry):
        cache = SharedCache(tiny_geometry, 1)
        s = tiny_geometry.num_sets
        for i in range(tiny_geometry.assoc):
            result = cache.access(0, i * s)  # all map to set 0
            assert result.evicted_core == -1
        result = cache.access(0, tiny_geometry.assoc * s)
        assert result.evicted_core == 0

    def test_lru_victim_selected(self, tiny_geometry):
        cache = SharedCache(tiny_geometry, 1)
        s = tiny_geometry.num_sets
        for i in range(tiny_geometry.assoc):
            cache.access(0, i * s)
        cache.access(0, 0)  # touch the oldest -> now MRU
        cache.access(0, tiny_geometry.assoc * s)  # evicts tag of addr s (2nd oldest)
        assert cache.access(0, 0).hit           # survived
        assert not cache.access(0, s).hit       # evicted


class TestOccupancyAccounting:
    def test_occupancy_counts_fills(self, tiny_cache):
        tiny_cache.access(0, 1)
        tiny_cache.access(0, 2)
        tiny_cache.access(1, 3)
        assert tiny_cache.occupancy == [2, 1]

    def test_occupancy_conserved_under_churn(self, tiny_cache):
        rng = make_rng(7, "churn")
        for _ in range(5000):
            tiny_cache.access(rng.randrange(2), rng.randrange(500))
        assert tiny_cache.occupancy == tiny_cache.scan_occupancy()
        assert sum(tiny_cache.occupancy) <= tiny_cache.geometry.num_blocks

    def test_occupancy_fractions_sum_to_one_when_warm(self, tiny_cache):
        rng = make_rng(8, "warm")
        for _ in range(4000):
            tiny_cache.access(rng.randrange(2), rng.randrange(1000))
        assert sum(tiny_cache.occupancy_fractions()) == pytest.approx(1.0)

    def test_eviction_decrements_victim_core(self, tiny_geometry):
        cache = SharedCache(tiny_geometry, 2)
        s = tiny_geometry.num_sets
        for i in range(tiny_geometry.assoc):
            cache.access(0, i * s)
        cache.access(1, tiny_geometry.assoc * s)
        assert cache.occupancy[0] == tiny_geometry.assoc - 1
        assert cache.occupancy[1] == 1
        assert cache.stats.evictions[0] == 1


class TestMonitors:
    class Recorder:
        def __init__(self):
            self.events = []

        def observe(self, core, set_index, tag, hit):
            self.events.append((core, set_index, tag, hit))

    def test_monitor_sees_every_access(self, tiny_cache):
        recorder = self.Recorder()
        tiny_cache.add_monitor(recorder)
        tiny_cache.access(0, 5)
        tiny_cache.access(0, 5)
        assert len(recorder.events) == 2
        assert recorder.events[0][3] is False
        assert recorder.events[1][3] is True

    def test_monitor_gets_correct_core_and_tag(self, tiny_cache):
        recorder = self.Recorder()
        tiny_cache.add_monitor(recorder)
        g = tiny_cache.geometry
        tiny_cache.access(1, 77)
        core, set_index, tag, hit = recorder.events[0]
        assert core == 1
        assert set_index == g.set_index(77)
        assert tag == g.tag(77)


class _CountingScheme(ManagementScheme):
    """Evicts LRU; counts interval callbacks."""

    name = "counting"

    def __init__(self, interval_len):
        super().__init__()
        self.interval_len = interval_len
        self.calls = 0
        self.interval_miss_snapshot = []

    def end_interval(self, cache):
        self.calls += 1
        self.interval_miss_snapshot = list(cache.stats.interval_misses)


class TestIntervals:
    def test_interval_fires_every_w_misses(self, tiny_geometry):
        cache = SharedCache(tiny_geometry, 1)
        scheme = _CountingScheme(interval_len=10)
        cache.set_scheme(scheme)
        for i in range(35):  # distinct addresses -> all misses
            cache.access(0, i)
        assert scheme.calls == 3
        assert cache.intervals_completed == 3

    def test_hits_do_not_advance_interval(self, tiny_geometry):
        cache = SharedCache(tiny_geometry, 1)
        scheme = _CountingScheme(interval_len=5)
        cache.set_scheme(scheme)
        cache.access(0, 1)
        for _ in range(100):
            cache.access(0, 1)  # hits
        assert scheme.calls == 0

    def test_interval_counters_live_during_callback(self, tiny_geometry):
        cache = SharedCache(tiny_geometry, 1)
        scheme = _CountingScheme(interval_len=4)
        cache.set_scheme(scheme)
        for i in range(4):
            cache.access(0, i)
        assert scheme.interval_miss_snapshot == [4]

    def test_interval_counters_reset_after_callback(self, tiny_geometry):
        cache = SharedCache(tiny_geometry, 1)
        scheme = _CountingScheme(interval_len=4)
        cache.set_scheme(scheme)
        for i in range(5):
            cache.access(0, i)
        assert cache.stats.interval_misses == [1]

    def test_zero_interval_never_fires(self, tiny_geometry):
        cache = SharedCache(tiny_geometry, 1)
        scheme = _CountingScheme(interval_len=0)
        cache.set_scheme(scheme)
        for i in range(50):
            cache.access(0, i)
        assert scheme.calls == 0


class TestValidation:
    def test_rejects_zero_cores(self, tiny_geometry):
        with pytest.raises(ValueError):
            SharedCache(tiny_geometry, 0)

    def test_default_policy_is_lru(self, tiny_geometry):
        cache = SharedCache(tiny_geometry, 1)
        assert isinstance(cache.policy, LRUPolicy)

    def test_unscheme_cache_behaves_like_lru(self):
        g = CacheGeometry(2 << 10, 64, 4)
        managed = SharedCache(g, 1, policy=LRUPolicy())
        rng = make_rng(3, "cmp")
        stream = [rng.randrange(200) for _ in range(3000)]
        hits = sum(managed.access(0, a).hit for a in stream)
        # Re-running the identical stream gives identical hit counts.
        again = SharedCache(g, 1, policy=LRUPolicy())
        assert sum(again.access(0, a).hit for a in stream) == hits
