"""Ordering contracts of the interval machinery.

Allocation policies read interval counters inside ``end_interval``; the
cache must call the scheme *before* resetting statistics and *before*
monitors roll their own interval state. These tests pin that contract —
several schemes silently break if it changes.
"""

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.partitioning.base import ManagementScheme

GEOMETRY = CacheGeometry(4 << 10, 64, 4)


class OrderProbe(ManagementScheme):
    name = "probe"

    def __init__(self):
        super().__init__()
        self.interval_len = 8
        self.events = []

    def end_interval(self, cache):
        self.events.append(("scheme", list(cache.stats.interval_misses)))


class MonitorProbe:
    def __init__(self, events, cache):
        self.events = events
        self.cache = cache

    def observe(self, core, set_index, tag, hit):
        pass

    def end_interval(self):
        self.events.append(("monitor", list(self.cache.stats.interval_misses)))


class TestIntervalOrdering:
    def test_scheme_sees_live_counters_monitor_sees_reset(self):
        cache = SharedCache(GEOMETRY, 1)
        scheme = OrderProbe()
        cache.set_scheme(scheme)
        cache.add_monitor(MonitorProbe(scheme.events, cache))
        for i in range(8):
            cache.access(0, i)
        kinds = [kind for kind, _ in scheme.events]
        assert kinds == ["scheme", "monitor"]
        scheme_view = scheme.events[0][1]
        monitor_view = scheme.events[1][1]
        assert scheme_view == [8]   # live counters during the scheme callback
        assert monitor_view == [0]  # already reset when monitors roll

    def test_interval_counter_restarts_cleanly(self):
        cache = SharedCache(GEOMETRY, 1)
        scheme = OrderProbe()
        cache.set_scheme(scheme)
        for i in range(24):
            cache.access(0, i)
        assert len([e for e in scheme.events if e[0] == "scheme"]) == 3
        assert cache.interval_miss_count == 0
        assert cache.intervals_completed == 3

    def test_multiple_monitors_all_rolled(self):
        cache = SharedCache(GEOMETRY, 1)
        scheme = OrderProbe()
        cache.set_scheme(scheme)
        cache.add_monitor(MonitorProbe(scheme.events, cache))
        cache.add_monitor(MonitorProbe(scheme.events, cache))
        for i in range(8):
            cache.access(0, i)
        assert [kind for kind, _ in scheme.events] == ["scheme", "monitor", "monitor"]
