"""Cross-backend equivalence: the vector engine vs the classic engine.

The vector engine (:mod:`repro.cache.vector`) re-implements the shared
cache over numpy arrays; its contract is *bit-exactness* with the classic
:class:`~repro.cache.cache.SharedCache` — same hits, same victims, same
PriSM draws, same interval boundaries. The heavy certification runs in CI
(``repro-sim check fuzz --backend vector``, 200 cases against both the
classic engine and the reference oracle); here a scaled-down matrix over
scheme kind x geometry x chunk size keeps tier-1 fast while still walking
every supported configuration class, plus direct tests of the batch API
surface and of the ``VectorUnsupported`` rejections ``build_cache`` relies
on for its fallback.
"""

import random

import pytest

from repro.cache.cache import SharedCache
from repro.cache.encode import encode_trace
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement.dip import DIPPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.srrip import SRRIPPolicy
from repro.cache.vector import BatchResults, VectorCache, VectorUnsupported
from repro.core import HitMaxPolicy
from repro.core.prism import PrismScheme
from repro.partitioning.unmanaged import UnmanagedScheme

GEO_S = CacheGeometry(1 << 14, 64, 4)   # 64 sets
GEO_M = CacheGeometry(1 << 16, 64, 8)   # 128 sets
GEO_L = CacheGeometry(1 << 18, 64, 16)  # 256 sets

NUM_CORES = 4


def _build(kind, geo, backend, chunk=None):
    """One (policy, scheme) configuration under either backend."""
    policy = DIPPolicy(seed=3) if kind in ("dip", "prism-dip") else LRUPolicy()
    scheme = None
    if kind == "prism":
        scheme = PrismScheme(HitMaxPolicy(), seed=5, interval_len=257,
                             fallback="resample")
    elif kind == "prism-paper":
        scheme = PrismScheme(HitMaxPolicy(), seed=5, interval_len=193,
                             fallback="paper")
    elif kind == "prism-dip":
        scheme = PrismScheme(HitMaxPolicy(), seed=5, interval_len=257)
    elif kind == "prism-quant":
        scheme = PrismScheme(HitMaxPolicy(), seed=5, interval_len=129,
                             probability_bits=6)
    if backend == "vector":
        return VectorCache(geo, NUM_CORES, policy=policy, scheme=scheme,
                           chunk=chunk)
    return SharedCache(geo, NUM_CORES, policy=policy, scheme=scheme)


def _stream(geo, seed, n):
    rng = random.Random(seed)
    naddr = geo.num_blocks * 2
    return [(rng.randrange(NUM_CORES), rng.randrange(naddr)) for _ in range(n)]


def _assert_equivalent(classic, vector, kind):
    """Every externally visible piece of state must match."""
    assert classic.stats.hits == vector.stats.hits
    assert classic.stats.misses == vector.stats.misses
    assert classic.stats.evictions == vector.stats.evictions
    assert classic.occupancy == vector.occupancy
    assert vector.occupancy == vector.scan_occupancy()
    assert classic.intervals_completed == vector.intervals_completed
    if classic.scheme is not None:
        ma, mb = classic.scheme.manager, vector.scheme.manager
        assert list(ma.probabilities) == list(mb.probabilities)
        assert list(classic.scheme.targets) == list(vector.scheme.targets)
        assert ma.replacements == mb.replacements
        assert ma.victim_not_found == mb.victim_not_found
        shadows_a = [m for m in classic.monitors
                     if hasattr(m, "lifetime_shadow_hits")]
        shadows_b = [m for m in vector.monitors
                     if hasattr(m, "lifetime_shadow_hits")]
        assert len(shadows_a) == len(shadows_b)
        for sa, sb in zip(shadows_a, shadows_b):
            assert sa.shared_hits == sb.shared_hits
            assert sa.shared_misses == sb.shared_misses
            assert sa.lifetime_shadow_hits == sb.lifetime_shadow_hits
            assert sa.lifetime_shadow_misses == sb.lifetime_shadow_misses
    if kind in ("dip", "prism-dip"):
        assert classic.policy.psel == vector.policy.psel


# One (geometry, chunk, seed) pair per kind would leave each axis thinly
# covered; two pairs per kind rotate all three axes while keeping tier-1
# runtime low. The full 6x3x3x2 sweep runs in CI via the fuzzer.
MATRIX = [
    ("lru", GEO_S, None, 0),
    ("lru", GEO_L, 1024, 1),
    ("dip", GEO_S, 37, 0),
    ("dip", GEO_M, None, 1),
    ("prism", GEO_M, None, 0),
    ("prism", GEO_S, 37, 1),
    ("prism-paper", GEO_S, None, 0),
    ("prism-paper", GEO_M, 1024, 1),
    ("prism-dip", GEO_M, 37, 0),
    ("prism-dip", GEO_L, None, 1),
    ("prism-quant", GEO_S, None, 1),
    ("prism-quant", GEO_L, 37, 0),
]


@pytest.mark.parametrize(
    "kind,geo,chunk,seed", MATRIX,
    ids=[f"{k}-{g.num_sets}sets-chunk{c}-s{s}" for k, g, c, s in MATRIX],
)
def test_vector_matches_classic(kind, geo, chunk, seed):
    stream = _stream(geo, seed, 2500)
    classic = _build(kind, geo, "classic")
    vector = _build(kind, geo, "vector", chunk=chunk)
    scalar_results = [classic.access(core, addr) for core, addr in stream]
    batch = vector.access_many(encode_trace(stream, geo), collect=True)
    for i, (a, b) in enumerate(zip(scalar_results, batch)):
        assert (a.hit, a.set_index, a.evicted_core, a.evicted_addr) == (
            b.hit, b.set_index, b.evicted_core, b.evicted_addr
        ), f"{kind} diverges at access {i}: {a} vs {b}"
    _assert_equivalent(classic, vector, kind)


def test_classic_access_many_matches_scalar_drive():
    """The classic batch path is the scalar loop, access for access."""
    stream = _stream(GEO_M, 42, 3000)
    scheme = PrismScheme(HitMaxPolicy(), seed=5, interval_len=257)
    scalar = SharedCache(GEO_M, NUM_CORES, scheme=scheme)
    batched = SharedCache(
        GEO_M, NUM_CORES,
        scheme=PrismScheme(HitMaxPolicy(), seed=5, interval_len=257),
    )
    scalar_results = [scalar.access(core, addr) for core, addr in stream]
    batch = batched.access_many(encode_trace(stream, GEO_M), collect=True)
    assert len(batch) == len(scalar_results)
    for a, b in zip(scalar_results, batch):
        assert (a.hit, a.set_index, a.evicted_core, a.evicted_addr) == (
            b.hit, b.set_index, b.evicted_core, b.evicted_addr
        )
    _assert_equivalent(scalar, batched, "prism")


def test_classic_access_many_cores_addrs_form():
    """access_many(cores, addrs) encodes internally — same as pre-encoded."""
    stream = _stream(GEO_S, 9, 800)
    cores = [c for c, _ in stream]
    addrs = [a for _, a in stream]
    via_pairs = SharedCache(GEO_S, NUM_CORES)
    via_arrays = SharedCache(GEO_S, NUM_CORES)
    via_pairs.access_many(encode_trace(stream, GEO_S))
    via_arrays.access_many(cores, addrs)
    assert via_pairs.stats.hits == via_arrays.stats.hits
    assert via_pairs.stats.misses == via_arrays.stats.misses
    assert via_pairs.occupancy == via_arrays.occupancy


def test_vector_scalar_access_matches_batch():
    """VectorCache.access (one at a time) equals its own batch replay."""
    stream = _stream(GEO_S, 13, 1500)
    one_by_one = _build("prism", GEO_S, "vector")
    batched = _build("prism", GEO_S, "vector", chunk=64)
    scalar_results = [one_by_one.access(core, addr) for core, addr in stream]
    batch = batched.access_many(encode_trace(stream, GEO_S), collect=True)
    for a, b in zip(scalar_results, batch):
        assert (a.hit, a.set_index, a.evicted_core, a.evicted_addr) == (
            b.hit, b.set_index, b.evicted_core, b.evicted_addr
        )
    _assert_equivalent(one_by_one, batched, "prism")


class TestBatchResults:
    def _results(self):
        stream = _stream(GEO_S, 21, 400)
        cache = _build("lru", GEO_S, "vector")
        return cache, stream, cache.access_many(
            encode_trace(stream, GEO_S), collect=True
        )

    def test_len_and_indexing(self):
        _, stream, batch = self._results()
        assert isinstance(batch, BatchResults)
        assert len(batch) == len(stream)
        first = batch.result(0)
        assert not first.hit  # cold cache: the first access must miss

    def test_iteration_yields_access_results(self):
        _, stream, batch = self._results()
        materialised = list(batch)
        assert len(materialised) == len(stream)
        for i, result in enumerate(materialised):
            assert result.hit == bool(batch.hit[i])
            assert result.set_index == int(batch.set_index[i])

    def test_collect_false_returns_none(self):
        stream = _stream(GEO_S, 22, 200)
        cache = _build("lru", GEO_S, "vector")
        assert cache.access_many(encode_trace(stream, GEO_S)) is None
        assert sum(cache.stats.misses) > 0


class TestVectorUnsupported:
    def test_rejects_non_vectorisable_policy(self):
        with pytest.raises(VectorUnsupported):
            VectorCache(GEO_S, NUM_CORES, policy=SRRIPPolicy())

    def test_rejects_non_prism_scheme(self):
        with pytest.raises(VectorUnsupported):
            VectorCache(GEO_S, NUM_CORES, scheme=UnmanagedScheme())

    def test_rejects_per_access_monitor(self):
        cache = VectorCache(GEO_S, NUM_CORES)

        class PerAccessMonitor:
            def observe(self, result):  # pragma: no cover - never called
                pass

        with pytest.raises(VectorUnsupported):
            cache.add_monitor(PerAccessMonitor())

    def test_unsupported_is_a_value_error(self):
        # build_cache's fallback contract: construction failure must be
        # catchable without importing the vector module first.
        assert issubclass(VectorUnsupported, ValueError)

    def test_failed_construction_leaves_scheme_reusable(self):
        """A rejected config must not half-attach the scheme (fallback path)."""
        policy = SRRIPPolicy()
        scheme = PrismScheme(HitMaxPolicy(), seed=5, interval_len=257)
        with pytest.raises(VectorUnsupported):
            VectorCache(GEO_S, NUM_CORES, policy=policy, scheme=scheme)
        classic = SharedCache(GEO_S, NUM_CORES, policy=policy, scheme=scheme)
        for core, addr in _stream(GEO_S, 5, 600):
            classic.access(core, addr)
        assert sum(classic.stats.misses) > 0
