"""Tests for backend selection (``repro.cache.backends``).

``build_cache`` is the single place the classic/vector choice is made;
these tests pin its contract: valid names resolve, unknown names fail
loudly, unsupported vector configurations fall back to the classic engine
with a ``RuntimeWarning`` (or raise under ``strict=True``), and the
fallback re-binds the caller's policy/scheme objects intact.
"""

import random
import warnings

import pytest

from repro.cache import BACKENDS, build_cache, resolve_backend
from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement.srrip import SRRIPPolicy
from repro.cache.vector import VectorCache, VectorUnsupported
from repro.core import HitMaxPolicy
from repro.core.prism import PrismScheme

GEO = CacheGeometry(1 << 14, 64, 4)


class TestResolveBackend:
    def test_none_means_classic(self):
        assert resolve_backend(None) == "classic"

    def test_known_names_pass_through(self):
        for name in BACKENDS:
            assert resolve_backend(name) == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown cache backend"):
            resolve_backend("turbo")


class TestBuildCache:
    def test_classic_default(self):
        cache, used = build_cache(GEO, 4)
        assert isinstance(cache, SharedCache)
        assert used == "classic"

    def test_classic_attaches_scheme(self):
        scheme = PrismScheme(HitMaxPolicy(), seed=1, interval_len=257)
        cache, used = build_cache(GEO, 4, scheme=scheme, backend="classic")
        assert used == "classic"
        assert cache.scheme is scheme

    def test_vector_when_supported(self):
        scheme = PrismScheme(HitMaxPolicy(), seed=1, interval_len=257)
        cache, used = build_cache(GEO, 4, scheme=scheme, backend="vector")
        assert isinstance(cache, VectorCache)
        assert used == "vector"

    def test_vector_fallback_warns_and_builds_classic(self):
        with pytest.warns(RuntimeWarning, match="falling back"):
            cache, used = build_cache(
                GEO, 4, policy=SRRIPPolicy(), backend="vector"
            )
        assert isinstance(cache, SharedCache)
        assert used == "classic"

    def test_strict_reraises_instead_of_falling_back(self):
        with pytest.raises(VectorUnsupported):
            build_cache(GEO, 4, policy=SRRIPPolicy(), backend="vector",
                        strict=True)

    def test_fallback_cache_is_functional(self):
        """After the fallback, the classic cache runs with the same objects."""
        scheme = PrismScheme(HitMaxPolicy(), seed=1, interval_len=129)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            cache, used = build_cache(
                GEO, 4, policy=SRRIPPolicy(), scheme=scheme, backend="vector"
            )
        assert used == "classic"
        assert cache.scheme is scheme
        rng = random.Random(5)
        for _ in range(900):
            cache.access(rng.randrange(4), rng.randrange(GEO.num_blocks * 2))
        assert sum(cache.stats.misses) > 0
        assert cache.intervals_completed > 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown cache backend"):
            build_cache(GEO, 4, backend="gpu")
