"""Shared isolation for the campaign tests."""

import os

import pytest

from repro.experiments.parallel import JOBS_ENV, STORE_ENV
from repro.experiments.runner import DEFAULT_STANDALONE_CACHE


@pytest.fixture(autouse=True)
def _isolate_env(monkeypatch):
    """No ambient jobs/store settings, and a cold stand-alone memo."""
    monkeypatch.delenv(JOBS_ENV, raising=False)
    monkeypatch.delenv(STORE_ENV, raising=False)
    DEFAULT_STANDALONE_CACHE.clear()
    yield
    # monkeypatch records no undo for delenv on an absent variable, so a
    # test that *exports* these (``main()`` does) would leak them into
    # later test files without an explicit scrub here.
    os.environ.pop(JOBS_ENV, None)
    os.environ.pop(STORE_ENV, None)
    DEFAULT_STANDALONE_CACHE.clear()
