"""Status throughput/ETA columns and the columnar (Parquet) export."""

import sys

import pytest

from repro.campaign.campaign import Campaign, completion_rate
from repro.campaign.store import STORE_FORMAT, result_to_dict, spec_to_dict
from repro.experiments.configs import machine

from tests.campaign.test_store_merge import make_result

CONFIG = machine(4, instructions=3_000)


class TestCompletionRate:
    def test_rate_is_completions_over_span(self):
        # 3 records over 60s = 2 observed completions = 2/min.
        assert completion_rate([100.0, 130.0, 160.0]) == 2.0

    def test_order_does_not_matter(self):
        assert completion_rate([160.0, 100.0, 130.0]) == 2.0

    def test_needs_two_stamps(self):
        assert completion_rate([]) is None
        assert completion_rate([100.0]) is None

    def test_zero_span_is_none(self):
        assert completion_rate([100.0, 100.0]) is None

    def test_zero_stamps_filtered(self):
        """Legacy records carry created_at=0.0; they must not anchor the
        clock at the epoch and report absurd rates."""
        assert completion_rate([0.0, 100.0, 160.0]) == 1.0


def stored_record(campaign, spec, fp, created_at):
    """A store-shaped result record with a controlled timestamp."""
    return {
        "record": "result",
        "format": STORE_FORMAT,
        "fingerprint": fp,
        "spec": spec_to_dict(spec),
        "meta": {"wall_seconds": 1.0, "host": "h", "repro_version": "t",
                 "created_at": created_at},
        "result": result_to_dict(make_result(mix=spec.mix, scheme=spec.scheme)),
    }


class TestStatusThroughput:
    def campaign(self, tmp_path):
        return Campaign.grid(
            tmp_path / "s", CONFIG, mixes=["Q1", "Q4"], schemes=["lru", "ucp"]
        )

    def test_rate_and_eta_from_stored_timestamps(self, tmp_path):
        campaign = self.campaign(tmp_path)
        fps = campaign.fingerprints()
        # Two of four specs completed, one minute apart => 1 spec/min,
        # two pending => ETA 2 minutes.
        for spec, fp, ts in zip(campaign.specs[:2], fps[:2], (100.0, 160.0)):
            campaign.store.append_raw(stored_record(campaign, spec, fp, ts))
        status = campaign.status()
        assert status.completed == 2 and status.pending == 2
        assert status.specs_per_min == 1.0
        assert status.eta_seconds == 120.0
        assert "1.0 specs/min" in status.describe()
        assert "ETA 2.0m" in status.describe()

    def test_no_rate_with_single_record(self, tmp_path):
        campaign = self.campaign(tmp_path)
        fps = campaign.fingerprints()
        campaign.store.append_raw(
            stored_record(campaign, campaign.specs[0], fps[0], 100.0)
        )
        status = campaign.status()
        assert status.specs_per_min is None and status.eta_seconds is None
        assert "specs/min" not in status.describe()

    def test_no_eta_when_done(self, tmp_path):
        campaign = self.campaign(tmp_path)
        fps = campaign.fingerprints()
        for i, (spec, fp) in enumerate(zip(campaign.specs, fps)):
            campaign.store.append_raw(
                stored_record(campaign, spec, fp, 100.0 + 10 * i)
            )
        status = campaign.status()
        assert status.done
        assert status.specs_per_min is not None
        assert status.eta_seconds is None

    def test_legacy_zero_timestamps_do_not_anchor_the_rate(self, tmp_path):
        """A store mixing legacy records (created_at=0.0) with stamped ones
        must compute the rate from the stamped records alone — an epoch
        anchor would report a near-zero rate and a multi-decade ETA."""
        campaign = self.campaign(tmp_path)
        fps = campaign.fingerprints()
        stamps = (0.0, 100.0, 160.0)
        for spec, fp, ts in zip(campaign.specs[:3], fps[:3], stamps):
            campaign.store.append_raw(stored_record(campaign, spec, fp, ts))
        status = campaign.status()
        assert status.completed == 3 and status.pending == 1
        assert status.specs_per_min == 1.0
        assert status.eta_seconds == 60.0

    def test_all_legacy_records_yield_no_rate(self, tmp_path):
        campaign = self.campaign(tmp_path)
        fps = campaign.fingerprints()
        for spec, fp in zip(campaign.specs[:2], fps[:2]):
            campaign.store.append_raw(stored_record(campaign, spec, fp, 0.0))
        status = campaign.status()
        assert status.completed == 2
        assert status.specs_per_min is None and status.eta_seconds is None

    def test_clock_skewed_workers_stamps_are_sorted(self, tmp_path):
        """Herd workers stream results with their own clocks; records can
        land in the store out of timestamp order. The rate must come from
        the sorted span, never a negative/garbled first-to-last delta."""
        campaign = self.campaign(tmp_path)
        fps = campaign.fingerprints()
        skewed = (160.0, 100.0, 130.0)  # arrival order != stamp order
        for spec, fp, ts in zip(campaign.specs[:3], fps[:3], skewed):
            campaign.store.append_raw(stored_record(campaign, spec, fp, ts))
        status = campaign.status()
        assert status.specs_per_min == 2.0
        assert status.eta_seconds == 30.0

    def test_eta_formatting(self):
        from repro.campaign.campaign import CampaignStatus

        fmt = CampaignStatus._format_eta
        assert fmt(45.0) == "45s"
        assert fmt(120.0) == "2.0m"
        assert fmt(5400.0) == "1.5h"


class TestParquetExport:
    def completed_campaign(self, tmp_path):
        campaign = Campaign.grid(
            tmp_path / "s", CONFIG, mixes=["Q1"], schemes=["lru"]
        )
        fp = campaign.fingerprints()[0]
        campaign.store.append_raw(
            stored_record(campaign, campaign.specs[0], fp, 100.0)
        )
        return campaign

    def test_missing_pyarrow_falls_back_to_csv_loudly(self, tmp_path,
                                                      monkeypatch, capsys):
        monkeypatch.setitem(sys.modules, "pyarrow", None)  # force ImportError
        campaign = self.completed_campaign(tmp_path)
        with pytest.warns(RuntimeWarning, match="falling back"):
            path = campaign.export(tmp_path / "out.parquet")
        assert path.suffix == ".csv"  # nobody mistakes the bytes for parquet
        assert path.exists()
        assert "WARNING" in capsys.readouterr().err
        assert "Q1" in path.read_text()

    def test_format_dispatch_by_suffix_and_flag(self, tmp_path, monkeypatch):
        monkeypatch.setitem(sys.modules, "pyarrow", None)
        campaign = self.completed_campaign(tmp_path)
        with pytest.warns(RuntimeWarning):
            by_flag = campaign.export(tmp_path / "flagged", fmt="parquet")
        assert by_flag.suffix == ".csv"
        assert campaign.export(tmp_path / "out.csv").suffix == ".csv"
        assert campaign.export(tmp_path / "out.jsonl").name == "out.jsonl"
        with pytest.raises(ValueError, match="unknown export format"):
            campaign.export(tmp_path / "out", fmt="xml")

    def test_real_parquet_round_trip(self, tmp_path):
        pa = pytest.importorskip("pyarrow")
        pq = pytest.importorskip("pyarrow.parquet")
        campaign = self.completed_campaign(tmp_path)
        path = campaign.export(tmp_path / "out.parquet")
        assert path.suffix == ".parquet"
        table = pq.read_table(path)
        assert table.num_rows == 1
        assert "mix" in table.column_names
        del pa  # imported only to skip cleanly when absent
