"""The CI smoke scenario as a test: kill a campaign mid-way, resume it.

A real ``SIGKILL`` — no atexit handlers, no flushing — lands between (or
inside) spec executions; the store must come back with every completed
record intact and the resume must execute exactly the remainder.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro.campaign.executor as executor_module
from repro.campaign import Campaign
from repro.experiments.configs import machine

CONFIG = machine(4, instructions=3_000)

#: Driver script: a 2-spec campaign with instruction windows long enough
#: (~seconds each) that the parent test can kill it between spec 1
#: completing and spec 2 finishing.
_DRIVER = """
import sys
from repro.campaign import Campaign
from repro.experiments.configs import machine

store = sys.argv[1]
config = machine(4, instructions=250_000)
camp = Campaign.grid(store, config, mixes=["Q1"], schemes=["lru", "dip"],
                     seeds=[0], retries=0)
camp.run(jobs=1)
"""


def test_sigkill_mid_campaign_then_resume(tmp_path):
    store = tmp_path / "s"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ["src", env.get("PYTHONPATH", "")] if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", _DRIVER, str(store)],
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    )
    records = store / "results.jsonl"
    try:
        # Wait for the first result record, then SIGKILL the driver while
        # it is simulating the second spec.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                pytest.fail(
                    "campaign driver finished before it could be killed; "
                    "raise the instruction window"
                )
            if records.exists() and records.read_text().count("\n") >= 1:
                break
            time.sleep(0.02)
        else:
            pytest.fail("campaign driver produced no result within 120s")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    # The store alone is enough to resume.
    camp = Campaign.load(store)
    status = camp.status()
    assert status.completed == 1, status.describe()
    assert status.pending == 1

    run = camp.run(jobs=1)
    assert run.executed == 1  # exactly n - k
    assert run.skipped == 1
    assert Campaign.load(store).status().done

    # Zero recomputed fingerprints on the next pass.
    assert Campaign.load(store).run(jobs=1).executed == 0

    # And the record completed before the kill was never re-simulated:
    # the log holds exactly one record per fingerprint.
    lines = [json.loads(line) for line in records.read_text().splitlines()]
    fingerprints = [r["fingerprint"] for r in lines if r["record"] == "result"]
    assert len(fingerprints) == len(set(fingerprints)) == 2


def test_driver_crash_between_specs_equivalent(tmp_path, monkeypatch):
    """Deterministic in-process variant: the driver dies after spec k."""
    camp = Campaign.grid(tmp_path / "s", CONFIG, mixes=["Q1", "Q2"],
                         schemes=["lru"], seeds=[0])

    original = executor_module.run_workload
    calls = []

    def die_after_first(*args, **kwargs):
        if calls:
            raise KeyboardInterrupt("driver interrupted")
        calls.append(args)
        return original(*args, **kwargs)

    monkeypatch.setattr(executor_module, "run_workload", die_after_first)
    with pytest.raises(KeyboardInterrupt):
        camp.run(jobs=1)

    monkeypatch.setattr(executor_module, "run_workload", original)
    resumed = Campaign.load(tmp_path / "s")
    assert resumed.status().completed == 1
    run = resumed.run(jobs=1)
    assert run.executed == 1 and run.skipped == 1
    assert resumed.status().done
