"""Tests for the ``repro-sim campaign`` subcommands and ``--store`` flag."""

import csv

import pytest

from repro.cli import build_parser, main
from repro.experiments.parallel import JOBS_ENV, STORE_ENV


class TestParser:
    def test_campaign_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_campaign_run_defaults(self):
        args = build_parser().parse_args(
            ["campaign", "run", "--store", "s", "--mixes", "Q1", "--schemes", "lru"]
        )
        assert args.seeds == [0]
        assert args.retries == 1
        assert args.timeout is None
        assert args.limit is None

    def test_store_flag_on_fanout_commands(self):
        args = build_parser().parse_args(
            ["compare", "lru", "--mix", "Q1", "--store", "somewhere"]
        )
        assert args.store == "somewhere"


class TestCampaignCommands:
    RUN = ["campaign", "run", "--mixes", "Q1", "--schemes", "lru", "dip",
           "--instructions", "3000", "--quiet"]

    def _store_args(self, tmp_path):
        return ["--store", str(tmp_path / "s")]

    def test_run_status_resume_export(self, capsys, tmp_path):
        store = self._store_args(tmp_path)
        # Run at most one spec (an "interrupted" campaign)...
        assert main(self.RUN + store + ["--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "executed 1" in out and "remaining 1" in out

        # ...status reports the gap (exit 1: incomplete)...
        assert main(["campaign", "status"] + store) == 1
        out = capsys.readouterr().out
        assert "1/2 completed" in out and "1 pending" in out

        # ...resume executes exactly the remainder...
        assert main(["campaign", "resume", "--quiet"] + store) == 0
        out = capsys.readouterr().out
        assert "executed 1" in out and "skipped 1 (cached)" in out

        # ...a second resume recomputes nothing...
        assert main(["campaign", "resume", "--quiet"] + store) == 0
        out = capsys.readouterr().out
        assert "executed 0" in out and "skipped 2 (cached)" in out
        assert main(["campaign", "status"] + store) == 0

        # ...and export writes one row per spec.
        out_csv = tmp_path / "out.csv"
        assert main(["campaign", "export", "-o", str(out_csv)] + store) == 0
        with open(out_csv) as fh:
            rows = list(csv.DictReader(fh))
        assert [r["scheme"] for r in rows] == ["lru", "dip"]
        assert all(r["status"] == "completed" for r in rows)

    def test_run_reports_failures_with_nonzero_exit(self, capsys, tmp_path):
        argv = ["campaign", "run", "--mixes", "Q1", "--schemes", "bogus",
                "--instructions", "3000", "--retries", "0", "--quiet"]
        assert main(argv + self._store_args(tmp_path)) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out and "bogus" in out

    def test_run_rejects_mixed_core_counts(self, tmp_path):
        argv = ["campaign", "run", "--mixes", "Q1", "S1", "--schemes", "lru",
                "--quiet"] + self._store_args(tmp_path)
        with pytest.raises(SystemExit):
            main(argv)

    def test_status_on_non_campaign_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["campaign", "status", "--store", str(tmp_path / "nope")])


class TestStoreEnvExport:
    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        monkeypatch.delenv(STORE_ENV, raising=False)

    def test_compare_store_flag_caches_runs(self, capsys, tmp_path, monkeypatch):
        import os

        store = tmp_path / "s"
        argv = ["compare", "lru", "dip", "--mix", "Q1",
                "--instructions", "3000", "--store", str(store)]
        assert main(argv) == 0
        capsys.readouterr()
        assert os.environ.get(STORE_ENV) == str(store)
        assert (store / "results.jsonl").exists()

        # Second invocation answers from the store without simulating.
        import repro.experiments.parallel as parallel_module

        def boom(*args, **kwargs):
            raise AssertionError("should not simulate: results are cached")

        monkeypatch.setattr(parallel_module, "run_workload", boom)
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "ANTT" in out

    def test_campaign_commands_do_not_export_store_env(self, capsys, tmp_path):
        import os

        argv = (["campaign", "run", "--mixes", "Q1", "--schemes", "lru",
                 "--instructions", "3000", "--quiet",
                 "--store", str(tmp_path / "s")])
        assert main(argv) == 0
        capsys.readouterr()
        assert STORE_ENV not in os.environ
