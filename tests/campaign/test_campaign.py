"""Campaign semantics: resume, fault isolation, zero-recompute caching."""

import pytest

import repro.campaign.executor as executor_module
import repro.experiments.parallel as parallel_module
from repro.campaign import (
    Campaign,
    CampaignRunner,
    ResultStore,
    run_isolated,
    spec_fingerprint,
)
from repro.experiments.configs import machine
from repro.experiments.parallel import RunSpec, run_specs

CONFIG = machine(4, instructions=3_000)

GRID = dict(mixes=["Q1", "Q2"], schemes=["lru", "dip"], seeds=[0])  # 4 specs


def _counting(monkeypatch, module):
    """Patch ``module.run_workload`` to count invocations (serial path)."""
    calls = []
    original = module.run_workload

    def counted(*args, **kwargs):
        calls.append(args)
        return original(*args, **kwargs)

    monkeypatch.setattr(module, "run_workload", counted)
    return calls


class TestResume:
    def test_interrupted_campaign_resumes_remainder(self, tmp_path, monkeypatch):
        """After k of n specs, a new campaign object executes exactly n-k."""
        calls = _counting(monkeypatch, executor_module)
        camp = Campaign.grid(tmp_path / "s", CONFIG, **GRID)
        first = camp.run(jobs=1, limit=1)  # interrupted after k=1 of n=4
        assert first.executed == 1 and first.remaining == 3
        assert len(calls) == 1

        resumed = Campaign.load(tmp_path / "s")  # from the store alone
        assert resumed.config == camp.config
        assert resumed.specs == camp.specs
        second = resumed.run(jobs=1)
        assert second.executed == 3  # exactly n - k
        assert second.skipped == 1
        assert len(calls) == 4
        assert resumed.status().done

    def test_completed_campaign_performs_zero_simulations(self, tmp_path, monkeypatch):
        camp = Campaign.grid(tmp_path / "s", CONFIG, **GRID)
        first = camp.run(jobs=1)
        assert first.executed == 4

        calls = _counting(monkeypatch, executor_module)
        again = Campaign.load(tmp_path / "s").run(jobs=1)
        assert len(calls) == 0  # no simulation at all
        assert again.executed == 0 and again.skipped == 4
        # Field-for-field equal to the original run's results.
        assert again.results == first.results

    def test_duplicate_specs_execute_once(self, tmp_path, monkeypatch):
        calls = _counting(monkeypatch, executor_module)
        spec = RunSpec(mix="Q1", scheme="lru")
        camp = Campaign(tmp_path / "s", CONFIG, [spec, spec, spec])
        run = camp.run(jobs=1)
        assert len(calls) == 1
        assert run.executed == 1
        assert run.results[0] == run.results[1] == run.results[2]

    def test_load_without_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Campaign.load(tmp_path / "nothing")


class TestFaultIsolation:
    BAD = RunSpec(mix="Q1", scheme="no-such-scheme")

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failure_does_not_abort_other_specs(self, tmp_path, jobs):
        specs = [RunSpec(mix="Q1", scheme="lru"), self.BAD, RunSpec(mix="Q2", scheme="lru")]
        camp = Campaign(tmp_path / f"s{jobs}", CONFIG, specs, retries=0)
        run = camp.run(jobs=jobs)
        assert run.executed == 2 and run.failed == 1
        assert run.results[0] is not None and run.results[2] is not None
        assert run.results[1] is None
        [failure] = run.failures
        assert failure.error_type == "KeyError"
        assert "no-such-scheme" in failure.message
        # The failure is typed, persisted, and visible after reopening.
        [stored] = Campaign.load(tmp_path / f"s{jobs}").failures()
        assert stored.error_type == "KeyError"
        assert stored.attempts == 1

    def test_bounded_retries_each_in_fresh_worker(self, tmp_path):
        camp = Campaign(tmp_path / "s", CONFIG, [self.BAD], retries=2)
        run = camp.run(jobs=2)
        [failure] = run.failures
        assert failure.attempts == 3  # 1 + 2 retries

    def test_failed_spec_retried_on_next_run(self, tmp_path):
        camp = Campaign(tmp_path / "s", CONFIG, [self.BAD], retries=0)
        camp.run(jobs=1)
        assert camp.status().failed == 1
        # A stored failure is not a result: the next run attempts it again.
        rerun = Campaign.load(tmp_path / "s").run(jobs=1)
        assert rerun.failed == 1 and rerun.skipped == 0

    def test_timeout_kills_hung_spec(self, tmp_path):
        hung = RunSpec(mix="Q1", scheme="lru", instructions=500_000_000)
        ok = RunSpec(mix="Q1", scheme="lru")
        camp = Campaign(tmp_path / "s", CONFIG, [hung, ok], retries=0, timeout=1.0)
        run = camp.run(jobs=2)
        assert run.executed == 1 and run.failed == 1
        [failure] = run.failures
        assert failure.timed_out
        assert failure.error_type == "Timeout"

    def test_isolated_results_match_plain_run_specs(self, tmp_path):
        """Fault isolation must not change what a run computes."""
        specs = [RunSpec(mix="Q1", scheme="lru"), RunSpec(mix="Q1", scheme="prism-h")]
        plain = run_specs(specs, CONFIG, jobs=1)
        outcomes = run_isolated(specs, CONFIG, jobs=2)
        assert [o.result for o in outcomes] == plain


class TestStoreBackedRunSpecs:
    SPECS = [RunSpec(mix="Q1", scheme="lru"), RunSpec(mix="Q1", scheme="dip")]

    def test_second_call_simulates_nothing(self, tmp_path, monkeypatch):
        first = run_specs(self.SPECS, CONFIG, store=tmp_path / "s")
        calls = _counting(monkeypatch, parallel_module)
        second = run_specs(self.SPECS, CONFIG, store=tmp_path / "s")
        assert len(calls) == 0
        assert second == first

    def test_env_variable_opt_in(self, tmp_path, monkeypatch):
        monkeypatch.setenv(parallel_module.STORE_ENV, str(tmp_path / "s"))
        first = run_specs(self.SPECS, CONFIG)
        calls = _counting(monkeypatch, parallel_module)
        assert run_specs(self.SPECS, CONFIG) == first
        assert len(calls) == 0

    def test_store_results_equal_plain_results(self, tmp_path):
        stored = run_specs(self.SPECS, CONFIG, store=tmp_path / "s")
        plain = run_specs(self.SPECS, CONFIG)
        assert stored == plain
        # And the round-tripped copies on the next call still match.
        assert run_specs(self.SPECS, CONFIG, store=tmp_path / "s") == plain

    def test_run_seeds_on_store(self, tmp_path, monkeypatch):
        from repro.experiments.multi_seed import run_seeds

        sweep = run_seeds("Q1", CONFIG, "lru", seeds=(0, 1), store=tmp_path / "s")
        calls = _counting(monkeypatch, parallel_module)
        again = run_seeds("Q1", CONFIG, "lru", seeds=(0, 1), store=tmp_path / "s")
        assert len(calls) == 0
        assert again.results == sweep.results
        assert again.metrics == sweep.metrics

    def test_telemetry_request_upgrades_cached_result(self, tmp_path):
        """A trace-less cached result does not satisfy a telemetry spec."""
        store = tmp_path / "s"
        plain = RunSpec(mix="Q1", scheme="prism-h")
        traced = RunSpec(mix="Q1", scheme="prism-h", telemetry=True)
        [first] = run_specs([plain], CONFIG, store=store)
        assert first.telemetry is None
        [second] = run_specs([traced], CONFIG, store=store)
        assert second.telemetry is not None
        # The richer result superseded the stored one (same fingerprint).
        fp = spec_fingerprint(traced, CONFIG)
        assert ResultStore(store).get(fp).telemetry is not None


class TestStatusAndExport:
    def test_status_counts(self, tmp_path):
        camp = Campaign.grid(tmp_path / "s", CONFIG, **GRID)
        camp.run(jobs=1, limit=2)
        status = Campaign.load(tmp_path / "s").status()
        assert (status.total, status.completed, status.failed, status.pending) == (4, 2, 0, 2)
        assert not status.done
        assert "2/4 completed" in status.describe()

    def test_export_csv(self, tmp_path):
        camp = Campaign.grid(tmp_path / "s", CONFIG, **GRID)
        camp.run(jobs=1, limit=3)
        path = camp.export_csv(tmp_path / "out.csv")
        import csv

        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 4
        assert sum(1 for r in rows if r["status"] == "completed") == 3
        assert sum(1 for r in rows if r["status"] == "pending") == 1
        done = next(r for r in rows if r["status"] == "completed")
        assert float(done["antt"]) > 0
        assert done["fingerprint"]

    def test_export_jsonl_carries_full_results(self, tmp_path):
        import json

        from repro.campaign.store import result_from_dict

        camp = Campaign.grid(tmp_path / "s", CONFIG, mixes=["Q1"],
                             schemes=["lru"], seeds=[0])
        run = camp.run(jobs=1)
        path = camp.export(tmp_path / "out.jsonl")
        [line] = open(path).read().splitlines()
        record = json.loads(line)
        assert record["status"] == "completed"
        assert result_from_dict(record["result"]) == run.results[0]

    def test_export_unknown_format(self, tmp_path):
        # "parquet" is a real format now (tests/campaign/
        # test_status_and_export.py covers it, fallback included).
        camp = Campaign.grid(tmp_path / "s", CONFIG, mixes=["Q1"],
                             schemes=["lru"], seeds=[0])
        with pytest.raises(ValueError):
            camp.export(tmp_path / "out.bin", fmt="feather")


class TestRunnerDirect:
    def test_runner_progress_reports_completion_and_failure(self, tmp_path):
        messages = []
        runner = CampaignRunner(tmp_path / "s", CONFIG, jobs=1, retries=0)
        runner.run(
            [RunSpec(mix="Q1", scheme="lru"), RunSpec(mix="Q1", scheme="bogus")],
            progress=messages.append,
        )
        assert len(messages) == 2
        assert any("FAILED" in m for m in messages)
