"""ResultStore round-trip and durability semantics."""

import json

import pytest

from repro.campaign.fingerprint import spec_fingerprint
from repro.campaign.store import (
    FailedRun,
    ResultStore,
    result_from_dict,
    result_to_dict,
)
from repro.experiments.configs import machine
from repro.experiments.parallel import RunSpec
from repro.experiments.runner import run_workload

CONFIG = machine(4, instructions=3_000)


@pytest.fixture(scope="module")
def prism_result():
    """A result rich in optional diagnostics (probabilities, stats...)."""
    return run_workload("Q1", CONFIG, "prism-h", seed=1)


@pytest.fixture(scope="module")
def telemetry_result():
    return run_workload("Q1", CONFIG, "prism-h", seed=1, telemetry=True)


@pytest.fixture(scope="module")
def tenant_result():
    """A multi-tenant result: the tenant_slo scorecard must round-trip."""
    return run_workload("tenants:smoke4", CONFIG, "prism-h", seed=1)


class TestRoundTrip:
    def test_result_dict_round_trip_field_for_field(self, prism_result):
        clone = result_from_dict(result_to_dict(prism_result))
        assert clone == prism_result  # dataclass eq: every field, exactly

    def test_round_trip_survives_json(self, prism_result):
        text = json.dumps(result_to_dict(prism_result))
        clone = result_from_dict(json.loads(text))
        assert clone == prism_result

    def test_telemetry_round_trips(self, telemetry_result):
        clone = result_from_dict(result_to_dict(telemetry_result))
        assert clone.telemetry is not None
        assert clone.telemetry == telemetry_result.telemetry
        assert clone == telemetry_result

    def test_tenant_slo_round_trips(self, tenant_result):
        assert tenant_result.tenant_slo is not None
        clone = result_from_dict(result_to_dict(tenant_result))
        assert clone.tenant_slo == tenant_result.tenant_slo
        assert clone == tenant_result

    def test_tenant_result_survives_json(self, tenant_result):
        text = json.dumps(result_to_dict(tenant_result))
        assert result_from_dict(json.loads(text)) == tenant_result

    def test_pre_tenancy_records_load_without_slo(self, prism_result):
        """Stores written before the tenant_slo field must still load."""
        data = result_to_dict(prism_result)
        del data["tenant_slo"]
        clone = result_from_dict(data)
        assert clone.tenant_slo is None
        assert clone == prism_result

    def test_tenant_store_round_trip(self, tmp_path, tenant_result):
        spec = RunSpec(mix="tenants:smoke4", scheme="prism-h", seed=1)
        fp = spec_fingerprint(spec, CONFIG)
        store = ResultStore(tmp_path / "s")
        store.add_result(fp, spec, tenant_result)
        reopened = ResultStore(tmp_path / "s")
        assert reopened.get(fp) == tenant_result
        assert reopened.get(fp).tenant_slo.tenants == [
            "alpha", "bravo", "sweeper", "shifty",
        ]

    def test_store_round_trip(self, tmp_path, prism_result):
        spec = RunSpec(mix="Q1", scheme="prism-h", seed=1)
        fp = spec_fingerprint(spec, CONFIG)
        store = ResultStore(tmp_path / "s")
        store.add_result(fp, spec, prism_result, wall_seconds=1.5)
        reopened = ResultStore(tmp_path / "s")
        assert fp in reopened
        assert reopened.get(fp) == prism_result
        stored = reopened.record_for(fp)
        assert stored.spec == spec
        assert stored.meta.wall_seconds == 1.5
        assert stored.meta.repro_version
        assert stored.meta.host

    def test_trace_lands_next_to_store(self, tmp_path, telemetry_result):
        spec = RunSpec(mix="Q1", scheme="prism-h", seed=1, telemetry=True)
        fp = spec_fingerprint(spec, CONFIG)
        store = ResultStore(tmp_path / "s")
        store.add_result(fp, spec, telemetry_result)
        trace = store.trace_path(fp)
        assert trace.exists()
        # The stored trace is byte-identical to a fresh write of the run.
        fresh = tmp_path / "fresh.jsonl"
        telemetry_result.telemetry.write(fresh)
        assert trace.read_bytes() == fresh.read_bytes()


class TestFailures:
    SPEC = RunSpec(mix="Q1", scheme="nope", seed=0)

    def _failure(self, fp):
        return FailedRun(
            fingerprint=fp,
            spec=self.SPEC,
            error_type="KeyError",
            message="unknown scheme 'nope'",
            traceback="Traceback ...",
            attempts=2,
            timed_out=False,
        )

    def test_failure_round_trip(self, tmp_path):
        fp = spec_fingerprint(self.SPEC, CONFIG)
        store = ResultStore(tmp_path / "s")
        store.add_failure(self._failure(fp))
        reopened = ResultStore(tmp_path / "s")
        assert fp not in reopened  # failures are not results
        failure = reopened.failure_for(fp)
        assert failure == self._failure(fp)
        assert "after 2 attempts" in failure.describe()

    def test_result_supersedes_failure(self, tmp_path, prism_result):
        spec = RunSpec(mix="Q1", scheme="prism-h", seed=1)
        fp = spec_fingerprint(spec, CONFIG)
        store = ResultStore(tmp_path / "s")
        store.add_failure(self._failure(fp))
        store.add_result(fp, spec, prism_result)
        reopened = ResultStore(tmp_path / "s")
        assert reopened.failure_for(fp) is None
        assert reopened.get(fp) == prism_result


class TestDurability:
    def test_torn_trailing_line_is_skipped(self, tmp_path, prism_result):
        """A SIGKILL mid-append must not poison the completed records."""
        spec = RunSpec(mix="Q1", scheme="prism-h", seed=1)
        fp = spec_fingerprint(spec, CONFIG)
        store = ResultStore(tmp_path / "s")
        store.add_result(fp, spec, prism_result)
        with open(store.records_path, "a") as fh:
            fh.write('{"record": "result", "fingerprint": "abc", "trunc')
        reopened = ResultStore(tmp_path / "s")
        assert len(reopened) == 1
        assert reopened.get(fp) == prism_result

    def test_last_record_wins(self, tmp_path, prism_result, telemetry_result):
        spec = RunSpec(mix="Q1", scheme="prism-h", seed=1)
        fp = spec_fingerprint(spec, CONFIG)
        store = ResultStore(tmp_path / "s")
        store.add_result(fp, spec, prism_result)
        store.add_result(fp, spec, telemetry_result)
        reopened = ResultStore(tmp_path / "s")
        assert reopened.get(fp) == telemetry_result
        assert reopened.get(fp).telemetry is not None

    def test_empty_directory_is_a_valid_store(self, tmp_path):
        store = ResultStore(tmp_path / "fresh")
        assert len(store) == 0
        assert store.failures() == []
