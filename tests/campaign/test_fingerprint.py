"""Fingerprint stability and canonicalisation guarantees.

The fingerprint is a *content address*: stores written today must still be
readable by tomorrow's checkout, so the digest for a reference spec is
pinned here byte for byte. If this test fails, either restore the
canonicalisation rules or bump ``FINGERPRINT_VERSION`` (never let old and
new rules share a version).
"""

from repro.campaign.fingerprint import (
    FINGERPRINT_VERSION,
    canonical_payload,
    spec_fingerprint,
)
from repro.experiments.configs import machine
from repro.experiments.parallel import RunSpec

CONFIG = machine(4, instructions=3_000)

#: The reference digest for (Q1, prism-h, seed 3, kwargs, the machine
#: above) under FINGERPRINT_VERSION 1. Pinned: a silent change here would
#: orphan every existing store.
REFERENCE_SPEC = RunSpec(
    mix="Q1", scheme="prism-h", seed=3, scheme_kwargs={"probability_bits": 6}
)
REFERENCE_DIGEST = "341bf5587edd2ed2c3d6658189ccd5c06b39cb027c3af60831593d819b3e89aa"


class TestStability:
    def test_reference_digest_is_pinned(self):
        assert FINGERPRINT_VERSION == 1
        assert spec_fingerprint(REFERENCE_SPEC, CONFIG) == REFERENCE_DIGEST

    def test_deterministic_across_calls(self):
        spec = RunSpec(mix="Q7", scheme="lru", seed=1)
        assert spec_fingerprint(spec, CONFIG) == spec_fingerprint(spec, CONFIG)

    def test_payload_is_versioned(self):
        assert canonical_payload(REFERENCE_SPEC, CONFIG)["version"] == FINGERPRINT_VERSION


class TestCanonicalisation:
    def test_default_instructions_fold_into_effective(self):
        """spec(None) and spec(config default) are the same run -> same key."""
        implicit = RunSpec(mix="Q1", scheme="lru")
        explicit = RunSpec(mix="Q1", scheme="lru", instructions=CONFIG.instructions)
        assert spec_fingerprint(implicit, CONFIG) == spec_fingerprint(explicit, CONFIG)

    def test_scheme_kwargs_order_irrelevant(self):
        a = RunSpec(mix="Q1", scheme="prism-h",
                    scheme_kwargs={"probability_bits": 6, "sample_shift": 2})
        b = RunSpec(mix="Q1", scheme="prism-h",
                    scheme_kwargs={"sample_shift": 2, "probability_bits": 6})
        assert spec_fingerprint(a, CONFIG) == spec_fingerprint(b, CONFIG)

    def test_empty_kwargs_equal_none(self):
        a = RunSpec(mix="Q1", scheme="lru", scheme_kwargs=None)
        b = RunSpec(mix="Q1", scheme="lru", scheme_kwargs={})
        assert spec_fingerprint(a, CONFIG) == spec_fingerprint(b, CONFIG)

    def test_mix_sequence_kinds_equal(self):
        """A list or tuple of benchmark names canonicalises identically."""
        names = ["179.art", "181.mcf", "179.art", "181.mcf"]
        assert spec_fingerprint(RunSpec(mix=tuple(names)), CONFIG) == spec_fingerprint(
            RunSpec(mix=list(names)), CONFIG
        )

    def test_telemetry_flag_excluded(self):
        """Recording a trace observes a run; it does not change it."""
        a = RunSpec(mix="Q1", scheme="lru", telemetry=False)
        b = RunSpec(mix="Q1", scheme="lru", telemetry=True)
        assert spec_fingerprint(a, CONFIG) == spec_fingerprint(b, CONFIG)

    def test_backend_excluded(self):
        """Classic and vector engines are certified bit-exact, so a stored
        result satisfies a spec under either backend — same cache key."""
        classic = RunSpec(mix="Q1", scheme="prism-h", seed=3, backend="classic")
        vector = RunSpec(mix="Q1", scheme="prism-h", seed=3, backend="vector")
        assert spec_fingerprint(classic, CONFIG) == spec_fingerprint(vector, CONFIG)
        assert "backend" not in canonical_payload(classic, CONFIG)


class TestSensitivity:
    """Everything the outcome depends on must move the digest."""

    BASE = RunSpec(mix="Q1", scheme="lru", seed=0)

    def _base(self):
        return spec_fingerprint(self.BASE, CONFIG)

    def test_mix(self):
        assert spec_fingerprint(RunSpec(mix="Q2", scheme="lru"), CONFIG) != self._base()

    def test_scheme(self):
        assert spec_fingerprint(RunSpec(mix="Q1", scheme="dip"), CONFIG) != self._base()

    def test_seed(self):
        assert spec_fingerprint(RunSpec(mix="Q1", scheme="lru", seed=1), CONFIG) != self._base()

    def test_instructions(self):
        spec = RunSpec(mix="Q1", scheme="lru", instructions=5_000)
        assert spec_fingerprint(spec, CONFIG) != self._base()

    def test_scheme_kwargs(self):
        spec = RunSpec(mix="Q1", scheme="lru", scheme_kwargs={"interval_len": 512})
        assert spec_fingerprint(spec, CONFIG) != self._base()

    def test_machine_geometry(self):
        other = machine(4, instructions=3_000, assoc=8)
        assert spec_fingerprint(self.BASE, other) != self._base()

    def test_machine_core_count(self):
        other = machine(8, instructions=3_000)
        assert spec_fingerprint(self.BASE, other) != self._base()
