"""Fingerprint stability and canonicalisation guarantees.

The fingerprint is a *content address*: stores written today must still be
readable by tomorrow's checkout, so the digest for a reference spec is
pinned here byte for byte. If this test fails, either restore the
canonicalisation rules or bump ``FINGERPRINT_VERSION`` (never let old and
new rules share a version).
"""

from repro.campaign.fingerprint import (
    FINGERPRINT_VERSION,
    canonical_payload,
    spec_fingerprint,
)
from repro.experiments.configs import machine
from repro.experiments.parallel import RunSpec
from repro.workloads.tenants import TenantSpec, TenantWorkload, get_tenant_workload

CONFIG = machine(4, instructions=3_000)

#: The reference digest for (Q1, prism-h, seed 3, kwargs, the machine
#: above) under FINGERPRINT_VERSION 3 (v2 digests were invalidated when
#: the payload grew the ``clusters`` field for cluster-granular
#: management). Pinned: a silent change here would orphan every existing
#: store.
REFERENCE_SPEC = RunSpec(
    mix="Q1", scheme="prism-h", seed=3, scheme_kwargs={"probability_bits": 6}
)
REFERENCE_DIGEST = "16ef8ea4e80dcbd9f652d87f9c2b1af226beef3c86b17de3c322fdbac5322e56"


class TestStability:
    def test_reference_digest_is_pinned(self):
        assert FINGERPRINT_VERSION == 3
        assert spec_fingerprint(REFERENCE_SPEC, CONFIG) == REFERENCE_DIGEST

    def test_deterministic_across_calls(self):
        spec = RunSpec(mix="Q7", scheme="lru", seed=1)
        assert spec_fingerprint(spec, CONFIG) == spec_fingerprint(spec, CONFIG)

    def test_payload_is_versioned(self):
        assert canonical_payload(REFERENCE_SPEC, CONFIG)["version"] == FINGERPRINT_VERSION


class TestCanonicalisation:
    def test_default_instructions_fold_into_effective(self):
        """spec(None) and spec(config default) are the same run -> same key."""
        implicit = RunSpec(mix="Q1", scheme="lru")
        explicit = RunSpec(mix="Q1", scheme="lru", instructions=CONFIG.instructions)
        assert spec_fingerprint(implicit, CONFIG) == spec_fingerprint(explicit, CONFIG)

    def test_scheme_kwargs_order_irrelevant(self):
        a = RunSpec(mix="Q1", scheme="prism-h",
                    scheme_kwargs={"probability_bits": 6, "sample_shift": 2})
        b = RunSpec(mix="Q1", scheme="prism-h",
                    scheme_kwargs={"sample_shift": 2, "probability_bits": 6})
        assert spec_fingerprint(a, CONFIG) == spec_fingerprint(b, CONFIG)

    def test_empty_kwargs_equal_none(self):
        a = RunSpec(mix="Q1", scheme="lru", scheme_kwargs=None)
        b = RunSpec(mix="Q1", scheme="lru", scheme_kwargs={})
        assert spec_fingerprint(a, CONFIG) == spec_fingerprint(b, CONFIG)

    def test_mix_sequence_kinds_equal(self):
        """A list or tuple of benchmark names canonicalises identically."""
        names = ["179.art", "181.mcf", "179.art", "181.mcf"]
        assert spec_fingerprint(RunSpec(mix=tuple(names)), CONFIG) == spec_fingerprint(
            RunSpec(mix=list(names)), CONFIG
        )

    def test_telemetry_flag_excluded(self):
        """Recording a trace observes a run; it does not change it."""
        a = RunSpec(mix="Q1", scheme="lru", telemetry=False)
        b = RunSpec(mix="Q1", scheme="lru", telemetry=True)
        assert spec_fingerprint(a, CONFIG) == spec_fingerprint(b, CONFIG)

    def test_backend_excluded(self):
        """Classic and vector engines are certified bit-exact, so a stored
        result satisfies a spec under either backend — same cache key."""
        classic = RunSpec(mix="Q1", scheme="prism-h", seed=3, backend="classic")
        vector = RunSpec(mix="Q1", scheme="prism-h", seed=3, backend="vector")
        assert spec_fingerprint(classic, CONFIG) == spec_fingerprint(vector, CONFIG)
        assert "backend" not in canonical_payload(classic, CONFIG)


class TestWorkloadSourceIdentity:
    """Fingerprints for registry-resolved workload sources.

    The tenant digest is pinned exactly like the classic reference above:
    changing trace generation without bumping TENANT_FAMILY_VERSION (or
    the fingerprint canonicalisation without bumping FINGERPRINT_VERSION)
    must fail here before it silently orphans a store.
    """

    TENANT_SPEC = RunSpec(mix="tenants:smoke4", scheme="prism-h", seed=3)
    TENANT_DIGEST = (
        "76262ebfdbf4a7ecb5a9c7d44a17da8a66b15d2f0a27ad74650d71c884612b83"
    )

    def test_tenant_digest_is_pinned(self):
        assert spec_fingerprint(self.TENANT_SPEC, CONFIG) == self.TENANT_DIGEST

    def test_reference_string_and_source_object_hash_identically(self):
        """"tenants:smoke4" and the built TenantWorkload are the same run."""
        via_object = RunSpec(
            mix=get_tenant_workload("smoke4"), scheme="prism-h", seed=3
        )
        assert spec_fingerprint(via_object, CONFIG) == self.TENANT_DIGEST

    def test_payload_embeds_the_full_identity(self):
        payload = canonical_payload(self.TENANT_SPEC, CONFIG)
        assert payload["mix"]["kind"] == "tenants"
        assert [t["name"] for t in payload["mix"]["tenants"]] == [
            "alpha", "bravo", "sweeper", "shifty",
        ]

    def test_tenant_parameters_move_the_digest(self):
        base = TenantWorkload("w", [TenantSpec("a", keys=100)])
        tweaked = TenantWorkload("w", [TenantSpec("a", keys=101)])
        a = spec_fingerprint(RunSpec(mix=base, scheme="lru"), CONFIG)
        b = spec_fingerprint(RunSpec(mix=tweaked, scheme="lru"), CONFIG)
        assert a != b

    def test_plain_mix_digest_unmoved_by_the_resolver(self):
        """Promoting the resolver must not re-key existing stores: the
        pinned reference digest (plain "Q1" string) is asserted
        byte-for-byte in TestStability, and MixSource identity stays that
        same string."""
        via_string = spec_fingerprint(REFERENCE_SPEC, CONFIG)
        assert via_string == REFERENCE_DIGEST
        assert canonical_payload(REFERENCE_SPEC, CONFIG)["mix"] == "Q1"


class TestSensitivity:
    """Everything the outcome depends on must move the digest."""

    BASE = RunSpec(mix="Q1", scheme="lru", seed=0)

    def _base(self):
        return spec_fingerprint(self.BASE, CONFIG)

    def test_mix(self):
        assert spec_fingerprint(RunSpec(mix="Q2", scheme="lru"), CONFIG) != self._base()

    def test_scheme(self):
        assert spec_fingerprint(RunSpec(mix="Q1", scheme="dip"), CONFIG) != self._base()

    def test_seed(self):
        assert spec_fingerprint(RunSpec(mix="Q1", scheme="lru", seed=1), CONFIG) != self._base()

    def test_instructions(self):
        spec = RunSpec(mix="Q1", scheme="lru", instructions=5_000)
        assert spec_fingerprint(spec, CONFIG) != self._base()

    def test_scheme_kwargs(self):
        spec = RunSpec(mix="Q1", scheme="lru", scheme_kwargs={"interval_len": 512})
        assert spec_fingerprint(spec, CONFIG) != self._base()

    def test_machine_geometry(self):
        other = machine(4, instructions=3_000, assoc=8)
        assert spec_fingerprint(self.BASE, other) != self._base()

    def test_machine_core_count(self):
        other = machine(8, instructions=3_000)
        assert spec_fingerprint(self.BASE, other) != self._base()

    def test_machine_l1_hierarchy(self):
        inclusive = machine(4, instructions=3_000, l1="inclusive")
        non_inclusive = machine(4, instructions=3_000, l1="non-inclusive")
        assert spec_fingerprint(self.BASE, inclusive) != self._base()
        assert spec_fingerprint(self.BASE, inclusive) != spec_fingerprint(
            self.BASE, non_inclusive
        )

    def test_machine_dram_banks(self):
        other = machine(4, instructions=3_000, dram_banks=4, dram_row_blocks=8)
        assert spec_fingerprint(self.BASE, other) != self._base()

    def test_clusters(self):
        """Cluster-granular management changes results -> must key the store."""
        spec = RunSpec(mix="Q1", scheme="lru", clusters=2)
        assert spec_fingerprint(spec, CONFIG) != self._base()
        assert canonical_payload(spec, CONFIG)["clusters"] == 2

    def test_clusters_none_is_the_per_core_default(self):
        explicit = RunSpec(mix="Q1", scheme="lru", clusters=None)
        assert spec_fingerprint(explicit, CONFIG) == self._base()
