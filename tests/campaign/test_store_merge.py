"""ResultStore.merge semantics and concurrent-append locking.

Merge is the herd's consistency keystone: per-worker shard stores fold
into the canonical store with last-record-wins, byte-identical duplicates
deduplicate, and *conflicting* payloads for one fingerprint — impossible
under determinism — fail loudly instead of silently blessing one side.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.campaign.fingerprint import spec_fingerprint
from repro.campaign.store import (
    FailedRun,
    ResultStore,
    StoreMergeError,
    result_to_dict,
)
from repro.cpu.system import CoreResult
from repro.experiments.configs import machine
from repro.experiments.parallel import RunSpec
from repro.experiments.runner import WorkloadResult

CONFIG = machine(4, instructions=3_000)


def make_result(mix="Q1", scheme="lru", antt=1.5):
    """A synthetic WorkloadResult (no simulation; merge tests only care
    about payload identity, not physics)."""
    cores = [
        CoreResult(
            name=f"prog{i}", ipc=0.5 + i / 10, cpi=2.0, llc_stall_cpi=0.4,
            instructions=3_000, cycles=6_000.0, hits=100 + i, misses=10 + i,
            occupancy_at_finish=0.25,
        )
        for i in range(4)
    ]
    return WorkloadResult(
        mix=mix, scheme=scheme, benchmarks=[c.name for c in cores],
        cores=cores, standalone=[1.0, 1.1, 1.2, 1.3], antt=antt,
        fairness=0.9, throughput=2.4, weighted_speedup=3.1, intervals=12,
    )


def fp_of(mix, scheme, seed=0):
    return spec_fingerprint(RunSpec(mix=mix, scheme=scheme, seed=seed), CONFIG)


def store_with(tmp_path, name, entries):
    store = ResultStore(tmp_path / name)
    for mix, scheme, result in entries:
        spec = RunSpec(mix=mix, scheme=scheme)
        store.add_result(spec_fingerprint(spec, CONFIG), spec, result)
    return store


class TestMergeDisjoint:
    def test_disjoint_shards_union(self, tmp_path):
        canon = store_with(tmp_path, "canon", [("Q1", "lru", make_result())])
        shard = store_with(
            tmp_path, "shard", [("Q7", "lru", make_result(mix="Q7"))]
        )
        appended = canon.merge(shard)
        assert appended == 1
        assert len(canon) == 2
        assert fp_of("Q1", "lru") in canon and fp_of("Q7", "lru") in canon

    def test_merge_survives_reopen(self, tmp_path):
        canon = store_with(tmp_path, "canon", [("Q1", "lru", make_result())])
        shard = store_with(
            tmp_path, "shard", [("Q7", "lru", make_result(mix="Q7"))]
        )
        canon.merge(shard)
        reopened = ResultStore(tmp_path / "canon")
        assert result_to_dict(reopened.get(fp_of("Q7", "lru"))) == result_to_dict(
            make_result(mix="Q7")
        )


class TestMergeOverlap:
    def test_identical_payload_deduplicates(self, tmp_path):
        canon = store_with(tmp_path, "canon", [("Q1", "lru", make_result())])
        shard = store_with(tmp_path, "shard", [("Q1", "lru", make_result())])
        before = canon.records_path.read_text()
        assert canon.merge(shard) == 0
        assert canon.records_path.read_text() == before  # nothing appended

    def test_conflicting_payload_raises(self, tmp_path):
        canon = store_with(tmp_path, "canon", [("Q1", "lru", make_result())])
        shard = store_with(
            tmp_path, "shard", [("Q1", "lru", make_result(antt=9.9))]
        )
        with pytest.raises(StoreMergeError) as excinfo:
            canon.merge(shard)
        assert excinfo.value.fingerprint == fp_of("Q1", "lru")

    def test_conflict_theirs_last_record_wins(self, tmp_path):
        canon = store_with(tmp_path, "canon", [("Q1", "lru", make_result())])
        shard = store_with(
            tmp_path, "shard", [("Q1", "lru", make_result(antt=9.9))]
        )
        assert canon.merge(shard, on_conflict="theirs") == 1
        assert canon.get(fp_of("Q1", "lru")).antt == 9.9
        # ... and the log replays to the same answer.
        assert ResultStore(tmp_path / "canon").get(fp_of("Q1", "lru")).antt == 9.9

    def test_bad_on_conflict_rejected(self, tmp_path):
        canon = ResultStore(tmp_path / "canon")
        with pytest.raises(ValueError):
            canon.merge(ResultStore(tmp_path / "shard"), on_conflict="mine")


class TestMergeFailures:
    def failure(self, mix="Q1", scheme="lru", attempts=1):
        spec = RunSpec(mix=mix, scheme=scheme)
        return FailedRun(
            fingerprint=spec_fingerprint(spec, CONFIG), spec=spec,
            error_type="ValueError", message="boom", attempts=attempts,
        )

    def test_shard_result_supersedes_stored_failure(self, tmp_path):
        canon = ResultStore(tmp_path / "canon")
        canon.add_failure(self.failure())
        shard = store_with(tmp_path, "shard", [("Q1", "lru", make_result())])
        assert canon.merge(shard) == 1
        fp = fp_of("Q1", "lru")
        assert fp in canon
        assert canon.failure_for(fp) is None

    def test_shard_failure_never_displaces_result(self, tmp_path):
        canon = store_with(tmp_path, "canon", [("Q1", "lru", make_result())])
        shard = ResultStore(tmp_path / "shard")
        shard.add_failure(self.failure())
        assert canon.merge(shard) == 0
        assert fp_of("Q1", "lru") in canon

    def test_shard_failure_supersedes_failure(self, tmp_path):
        canon = ResultStore(tmp_path / "canon")
        canon.add_failure(self.failure(attempts=1))
        shard = ResultStore(tmp_path / "shard")
        shard.add_failure(self.failure(attempts=3))
        assert canon.merge(shard) == 1
        assert canon.failure_for(fp_of("Q1", "lru")).attempts == 3


class TestMergeTornLine:
    def test_torn_trailing_line_in_shard_is_dropped(self, tmp_path):
        shard = store_with(
            tmp_path, "shard", [("Q1", "lru", make_result()),
                                ("Q7", "lru", make_result(mix="Q7"))]
        )
        with open(shard.records_path, "a") as fh:
            fh.write('{"record": "result", "fingerprint": "dead')  # SIGKILL
        canon = ResultStore(tmp_path / "canon")
        assert canon.merge(ResultStore(shard.root)) == 2
        assert len(canon) == 2
        for record in canon.iter_records():
            json.loads(json.dumps(record))  # every merged line is intact

    def test_trace_files_travel_with_records(self, tmp_path):
        shard = store_with(tmp_path, "shard", [("Q1", "lru", make_result())])
        fp = fp_of("Q1", "lru")
        shard.traces_dir.mkdir(parents=True, exist_ok=True)
        shard.trace_path(fp).write_text('{"sample": 1}\n')
        canon = ResultStore(tmp_path / "canon")
        canon.merge(ResultStore(shard.root))
        assert canon.trace_path(fp).read_text() == '{"sample": 1}\n'


_APPENDER = """
import sys
from repro.campaign.store import ResultStore
from tests.campaign.test_store_merge import CONFIG, make_result
from repro.campaign.fingerprint import spec_fingerprint
from repro.experiments.parallel import RunSpec

root, tag, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
store = ResultStore(root)
for i in range(count):
    # A distinct seed per record => distinct fingerprint; the large
    # telemetry-free payload still spans several kilobytes, which is what
    # would tear under unlocked interleaved appends.
    spec = RunSpec(mix="Q1", scheme=tag, seed=i)
    store.add_result(spec_fingerprint(spec, CONFIG), spec, make_result(scheme=tag))
"""


class TestConcurrentAppend:
    def test_two_processes_append_without_torn_lines(self, tmp_path):
        """Regression: pre-flock, concurrent appenders could interleave
        torn lines mid-file; now every line must parse and every record
        must survive."""
        root = tmp_path / "shared"
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _APPENDER, str(root), tag, "25"],
                env={**os.environ,
                     "PYTHONPATH": os.pathsep.join(sys.path)},
            )
            for tag in ("lru", "ucp")
        ]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        lines = (root / "results.jsonl").read_text().splitlines()
        assert len(lines) == 50
        for line in lines:
            json.loads(line)  # no torn / interleaved lines anywhere
        reopened = ResultStore(root)
        assert len(reopened) == 50
