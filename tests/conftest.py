"""Shared fixtures for the test suite."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement.lru import LRUPolicy
from repro.experiments.runner import DEFAULT_STANDALONE_CACHE
from repro.workloads.benchmark import BenchmarkProfile
from repro.workloads.zones import ScanZone, UniformZone


@pytest.fixture(autouse=True)
def _fresh_standalone_cache():
    """Isolate tests from the runner's cross-test IPC memoisation."""
    DEFAULT_STANDALONE_CACHE.clear()
    yield
    DEFAULT_STANDALONE_CACHE.clear()


@pytest.fixture
def tiny_geometry():
    """4 KB, 4-way, 64 B blocks -> 64 blocks, 16 sets."""
    return CacheGeometry(4 << 10, block_bytes=64, assoc=4)


@pytest.fixture
def small_geometry():
    """16 KB, 8-way -> 256 blocks, 32 sets."""
    return CacheGeometry(16 << 10, block_bytes=64, assoc=8)


@pytest.fixture
def tiny_cache(tiny_geometry):
    """Unmanaged 2-core LRU cache on the tiny geometry."""
    return SharedCache(tiny_geometry, num_cores=2, policy=LRUPolicy())


@pytest.fixture
def quad_cache(small_geometry):
    """Unmanaged 4-core LRU cache on the small geometry."""
    return SharedCache(small_geometry, num_cores=4, policy=LRUPolicy())


@pytest.fixture
def friendly_profile():
    """A small cache-friendly benchmark for fast timing runs."""
    return BenchmarkProfile(
        "test.friendly",
        (UniformZone(0.9, 120), UniformZone(0.1, 8)),
        mem_ratio=0.05,
        mlp=1.5,
        cpi_base=0.5,
        category="friendly",
    )


@pytest.fixture
def streaming_profile():
    """A streaming benchmark (scan far larger than any test cache)."""
    return BenchmarkProfile(
        "test.streaming",
        (ScanZone(0.95, 2000), UniformZone(0.05, 4)),
        mem_ratio=0.05,
        mlp=3.0,
        cpi_base=0.4,
        category="streaming",
    )


@pytest.fixture
def insensitive_profile():
    """A compute-bound benchmark with a tiny footprint."""
    return BenchmarkProfile(
        "test.insensitive",
        (UniformZone(1.0, 8),),
        mem_ratio=0.005,
        mlp=1.0,
        cpi_base=0.4,
        category="insensitive",
    )
