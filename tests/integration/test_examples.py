"""Smoke tests: every example script runs end-to-end at tiny scale."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--instructions", "60000")
        assert "ANTT" in out
        assert "PriSM-H" in out

    def test_hitmax_study(self):
        out = run_example(
            "hitmax_study.py", "--cores", "4", "--mixes", "2",
            "--instructions", "60000",
        )
        assert "geomean" in out
        assert "PriSM-H" in out

    def test_fairness_and_qos(self):
        out = run_example("fairness_and_qos.py", "--instructions", "60000")
        assert "fairness" in out
        assert "QoS target" in out

    def test_custom_policy(self):
        out = run_example("custom_policy.py", "--instructions", "60000")
        assert "achieved" in out

    def test_trace_replay(self, tmp_path):
        out = run_example(
            "trace_replay.py", "--length", "5000",
            "--instructions", "60000", "--dir", str(tmp_path),
        )
        assert "throughput" in out
        assert (tmp_path / "179.art.npz").exists()

    @pytest.mark.parametrize("experiment", ["fig12", "sec56"])
    def test_reproduce_paper_single(self, experiment):
        out = run_example("reproduce_paper.py", "--only", experiment)
        assert experiment in out
