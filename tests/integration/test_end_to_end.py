"""End-to-end claims: the paper's qualitative results at reduced scale.

These use small instruction windows, so they assert *directions* (who
wins), not magnitudes — magnitudes are the benchmarks' job.
"""

import pytest

from repro.experiments.configs import machine
from repro.experiments.runner import run_workload

CFG4 = machine(4, instructions=250_000)


@pytest.fixture(scope="module")
def q7_runs():
    """Q7 (the paper's headline mix) under the main schemes, shared across
    the assertions below to keep the suite fast."""
    return {
        name: run_workload("Q7", machine(4, instructions=250_000), name)
        for name in ("lru", "prism-h", "ucp")
    }


class TestHitMaximisation:
    def test_prism_h_beats_lru_on_q7(self, q7_runs):
        assert q7_runs["prism-h"].antt < q7_runs["lru"].antt

    def test_prism_h_competitive_with_ucp_on_q7(self, q7_runs):
        # Both schemes find the same headline allocation on Q7 (feed
        # 179.art); UCP's lookahead retains a small edge in this substrate
        # (EXPERIMENTS.md discusses why), but PriSM-H must stay in the same
        # league — far closer to UCP than to LRU.
        lru, ucp, prism = (q7_runs[s].antt for s in ("lru", "ucp", "prism-h"))
        assert prism < ucp * 1.12
        assert (lru - prism) > 0.5 * (lru - ucp)

    def test_art_gains_most_cache(self, q7_runs):
        """PriSM-H should hand 179.art (huge reuse potential) the largest
        share, starving the streamer and the insensitive core."""
        prism = q7_runs["prism-h"]
        art = prism.benchmarks.index("179.art")
        occupancies = [c.occupancy_at_finish for c in prism.cores]
        assert occupancies[art] == max(occupancies)
        assert occupancies[art] > 0.4

    def test_streamer_gets_high_eviction_probability(self, q7_runs):
        prism = q7_runs["prism-h"]
        probs = prism.eviction_probabilities
        lbm = prism.benchmarks.index("470.lbm")
        art = prism.benchmarks.index("179.art")
        assert probs[lbm] > probs[art]

    def test_art_misses_reduced_vs_lru(self, q7_runs):
        art = q7_runs["lru"].benchmarks.index("179.art")
        assert q7_runs["prism-h"].cores[art].misses < q7_runs["lru"].cores[art].misses


class TestFairnessGoal:
    def test_prism_f_improves_fairness_over_lru(self):
        cfg = machine(4, instructions=250_000)
        lru = run_workload("Q5", cfg, "lru")
        prism_f = run_workload("Q5", cfg, "prism-f")
        assert prism_f.fairness > lru.fairness


class TestQOSGoal:
    def test_qos_controller_lifts_core0_toward_target(self):
        cfg = machine(4, instructions=300_000)
        lru = run_workload("Q8", cfg, "lru")
        result = run_workload(
            "Q8", cfg, "prism-q", scheme_kwargs={"target_ipc_fraction": 0.8}
        )
        # Q8's core 0 is 179.art: highly cache-sensitive. At this scale the
        # 80% target is not fully reachable for art in a quad mix (memory
        # contention + its near-cache-size footprint), but the controller
        # must push core 0 far above its LRU slowdown and hand it most of
        # the cache trying.
        assert result.benchmarks[0] == "179.art"
        assert result.slowdown(0) > lru.slowdown(0) * 1.3
        assert result.cores[0].occupancy_at_finish > 0.6

    def test_qos_target_scales_allocation(self):
        # The controller's multiplicative rule must hand the QoS core far
        # more cache under a demanding target than under an easy one.
        cfg = machine(4, instructions=300_000)
        mix = ["300.twolf", "429.mcf", "470.lbm", "416.gamess"]
        demanding = run_workload(
            mix, cfg, "prism-q", scheme_kwargs={"target_ipc_fraction": 0.8}
        )
        easy = run_workload(
            mix, cfg, "prism-q", scheme_kwargs={"target_ipc_fraction": 0.3}
        )
        assert demanding.cores[0].occupancy_at_finish > 2 * easy.cores[0].occupancy_at_finish
        assert demanding.slowdown(0) > easy.slowdown(0)
        # The easy target is actually met.
        assert easy.slowdown(0) >= 0.3

    def test_insensitive_core_exceeds_target(self):
        cfg = machine(4, instructions=200_000)
        result = run_workload(
            ["416.gamess", "179.art", "470.lbm", "429.mcf"],
            cfg,
            "prism-q",
            scheme_kwargs={"target_ipc_fraction": 0.8},
        )
        # A cache-insensitive core barely slows down at all (Fig. 10's
        # above-target points).
        assert result.slowdown(0) > 0.8


class TestFineGrainedAdvantage:
    def test_prism_beats_waypart_with_same_policy_at_16_cores(self):
        cfg = machine(16, instructions=120_000)
        prism = run_workload("S2", cfg, "prism-h")
        waypart = run_workload("S2", cfg, "waypart-hitmax")
        assert prism.antt < waypart.antt * 1.05

    def test_prism_works_when_cores_equal_ways(self):
        cfg = machine(16, assoc=16, llc_bytes=8 << 20, instructions=120_000)
        lru = run_workload("S2", cfg, "lru")
        prism = run_workload("S2", cfg, "prism-h")
        assert prism.antt < lru.antt


class TestReplacementAgnosticism:
    def test_prism_improves_dip_baseline(self):
        cfg = machine(4, instructions=250_000)
        dip = run_workload("Q7", cfg, "dip")
        prism_dip = run_workload("Q7", cfg, "prism-h-dip")
        assert prism_dip.antt < dip.antt


class TestVantageComparison:
    def test_prism_beats_vantage_geomean_on_selected_mixes(self):
        cfg = machine(4, instructions=250_000)
        ratios = []
        for mix in ("Q7", "Q11"):
            vantage = run_workload(mix, cfg, "vantage")
            prism = run_workload(mix, cfg, "prism-ucpx")
            ratios.append(prism.antt / vantage.antt)
        assert min(ratios) < 1.0  # PriSM wins at least one outright
        assert sum(ratios) / len(ratios) < 1.02
