"""The paper's qualitative per-mix narratives, as executable assertions.

Section 5.1's discussion names specific programs and mixes; these tests
check the same stories play out in the reproduction (at reduced scale, so
directions rather than magnitudes).
"""

import pytest

from repro.experiments.configs import machine
from repro.experiments.runner import run_workload

CFG = machine(4, instructions=300_000)


@pytest.fixture(scope="module")
def runs():
    """Shared runs for the narrative mixes."""
    mixes = ("Q1", "Q4", "Q7")
    return {
        (mix, scheme): run_workload(mix, machine(4, instructions=300_000), scheme)
        for mix in mixes
        for scheme in ("lru", "prism-h")
    }


class TestSection51Narratives:
    def test_q1_wupwise_gets_space(self, runs):
        """'In workload Q1, PriSM allocates more space to the relatively
        memory intensive benchmark 168.wupwise.'"""
        prism = runs[("Q1", "prism-h")]
        wupwise = prism.benchmarks.index("168.wupwise")
        occupancies = [c.occupancy_at_finish for c in prism.cores]
        assert occupancies[wupwise] == max(occupancies)

    def test_q4_omnetpp_and_vpr_over_streamers(self, runs):
        """'In workload Q4, PriSM allocates more space to benchmarks
        175.vpr and 471.omnetpp ... at the expense of 410.bwaves and
        470.lbm.'"""
        prism = runs[("Q4", "prism-h")]
        occ = {name: prism.cores[i].occupancy_at_finish
               for i, name in enumerate(prism.benchmarks)}
        assert occ["471.omnetpp"] > occ["410.bwaves"]
        assert occ["471.omnetpp"] > occ["470.lbm"]
        assert occ["175.vpr"] + occ["471.omnetpp"] > occ["410.bwaves"] + occ["470.lbm"]

    def test_q7_headline_gain(self, runs):
        """Q7 is the paper's best quad mix for PriSM (~50% there; a solid
        double-digit win here)."""
        ratio = runs[("Q7", "prism-h")].antt / runs[("Q7", "lru")].antt
        assert ratio < 0.88

    def test_streamers_never_dominate_under_prism(self, runs):
        """Across all narrative mixes, no streaming program ends up holding
        the largest share under PriSM-H."""
        from repro.workloads.spec import get_profile

        for mix in ("Q1", "Q4", "Q7"):
            prism = runs[(mix, "prism-h")]
            occupancies = [c.occupancy_at_finish for c in prism.cores]
            biggest = prism.benchmarks[occupancies.index(max(occupancies))]
            assert get_profile(biggest).category != "streaming", (mix, biggest)

    def test_eviction_probabilities_rank_streamers_highest(self, runs):
        """Streaming programs carry the largest E_i (they recycle their own
        insertions), cache-insensitive programs the smallest."""
        from repro.workloads.spec import get_profile

        prism = runs[("Q7", "prism-h")]
        probs = prism.eviction_probabilities
        by_cat = {}
        for i, name in enumerate(prism.benchmarks):
            by_cat.setdefault(get_profile(name).category, []).append(probs[i])
        assert max(by_cat["streaming"]) > max(by_cat.get("insensitive", [0.0]))
