"""Trace-driven runs through the full system (the trace_replay workflow)."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.core import HitMaxPolicy, PrismScheme
from repro.cpu.system import MultiCoreSystem
from repro.workloads.spec import get_profile
from repro.workloads.trace import record_trace

GEOMETRY = CacheGeometry(16 << 10, 64, 8)


def build_system(scheme, traces, profiles):
    cache = SharedCache(GEOMETRY, len(profiles))
    if scheme is not None:
        cache.set_scheme(scheme)
    system = MultiCoreSystem(cache, profiles)
    system.streams = traces  # Trace satisfies the next_access protocol
    return system, cache


class TestTraceDrivenRuns:
    def test_traces_drive_the_system(self):
        profiles = [get_profile("179.art"), get_profile("470.lbm")]
        traces = [record_trace(p, 5000, seed=i) for i, p in enumerate(profiles)]
        system, cache = build_system(None, traces, profiles)
        result = system.run(50_000)
        assert all(c.instructions >= 50_000 for c in result.cores)
        assert cache.stats.total_misses() > 0

    def test_identical_traces_identical_results_across_schemes_inputs(self):
        """The replay guarantee: two runs from the same trace see the same
        per-core input sequence, so an unmanaged cache reproduces hit
        counts exactly."""
        profiles = [get_profile("300.twolf"), get_profile("403.gcc")]

        def run_once():
            traces = [record_trace(p, 4000, seed=7 + i) for i, p in enumerate(profiles)]
            system, cache = build_system(None, traces, profiles)
            system.run(40_000)
            return cache.stats.snapshot()

        assert run_once() == run_once()

    def test_prism_on_traces(self):
        profiles = [get_profile("179.art"), get_profile("470.lbm")]
        traces = [record_trace(p, 5000, seed=i) for i, p in enumerate(profiles)]
        scheme = PrismScheme(HitMaxPolicy(), interval_len=64, sample_shift=1)
        system, cache = build_system(scheme, traces, profiles)
        system.run(50_000)
        assert cache.intervals_completed > 0
        assert cache.occupancy == cache.scan_occupancy()
        # Hit-max starves the streamer here too.
        assert cache.occupancy[0] > cache.occupancy[1]

    def test_trace_wraps_for_long_runs(self):
        profile = get_profile("416.gamess")
        trace = record_trace(profile, 100, seed=1)
        system, cache = build_system(None, [trace], [profile])
        system.run(200_000)  # needs far more than 100 accesses
        assert trace.generated > 100
