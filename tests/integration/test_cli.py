"""Tests for the repro-sim CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--mix", "Q7"])
        assert args.scheme == "prism-h"
        assert args.seed == 0

    def test_experiment_rejects_unknown_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_run_check_flag(self):
        args = build_parser().parse_args(["run", "--mix", "Q7", "--check"])
        assert args.check is True
        assert build_parser().parse_args(["run", "--mix", "Q7"]).check is False

    def test_campaign_run_check_flag(self):
        args = build_parser().parse_args(
            ["campaign", "run", "--store", "s", "--mixes", "Q1",
             "--schemes", "lru", "--check"]
        )
        assert args.check is True

    def test_check_fuzz_defaults(self):
        args = build_parser().parse_args(["check", "fuzz"])
        assert args.cases == 200
        assert args.seed == 0
        assert args.schemes is None
        assert args.backend == "classic"

    def test_run_backend_flag(self):
        args = build_parser().parse_args(["run", "--mix", "Q1",
                                          "--backend", "vector"])
        assert args.backend == "vector"
        assert build_parser().parse_args(["run", "--mix", "Q1"]).backend == "classic"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--mix", "Q1",
                                       "--backend", "turbo"])

    def test_check_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check"])


class TestCommands:
    def test_list_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "prism-h" in out
        assert "Q1-Q21" in out
        assert "179.art" in out
        assert "fig13" in out

    def test_list_schemes_only(self, capsys):
        main(["list", "schemes"])
        out = capsys.readouterr().out
        assert "vantage" in out
        assert "179.art" not in out

    def test_run_named_mix(self, capsys):
        assert main(["run", "--mix", "Q1", "--instructions", "20000"]) == 0
        out = capsys.readouterr().out
        assert "ANTT=" in out
        assert "eviction probabilities" in out

    def test_run_custom_mix(self, capsys):
        mix = "179.art,470.lbm,416.gamess,403.gcc"
        assert main(["run", "--mix", mix, "--scheme", "lru",
                     "--instructions", "20000"]) == 0
        out = capsys.readouterr().out
        assert "179.art" in out

    def test_run_telemetry_out(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "trace.jsonl"
        assert main(["run", "--mix", "Q1", "--instructions", "60000",
                     "--telemetry-out", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert "in allocation policy" in out
        rows = [json.loads(line) for line in trace_path.read_text().splitlines()]
        kinds = {row["record"] for row in rows}
        assert kinds == {"interval", "finish"}
        assert sum(1 for r in rows if r["record"] == "finish") == 4

    def test_compare(self, capsys):
        assert main(["compare", "lru", "prism-h", "--mix", "Q1",
                     "--instructions", "20000"]) == 0
        out = capsys.readouterr().out
        assert "lru" in out and "prism-h" in out
        assert "ANTT" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "470.lbm", "--accesses", "5000"]) == 0
        out = capsys.readouterr().out
        assert "streaming" in out
        assert "miss rate vs cache size" in out
        assert "reuse-distance" in out

    def test_report(self, capsys, tmp_path):
        out = tmp_path / "r.md"
        assert main(["report", "-o", str(out), "--budget", "micro",
                     "--only", "fig12", "--quiet"]) == 0
        assert "## fig12" in out.read_text()

    def test_cost(self, capsys):
        assert main(["cost", "--cores", "16", "--paper-scale"]) == 0
        out = capsys.readouterr().out
        assert "vantage" in out and "prism" in out
        # PriSM's line sits at way-partitioning-class cost, below Vantage.
        lines = {line.split()[0]: line for line in out.splitlines() if line.strip()}
        assert float(lines["prism"].split()[-1]) < float(lines["vantage"].split()[-1])

    def test_sweep(self, capsys):
        assert main(["sweep", "probability_bits", "6", "8", "--mix", "Q1",
                     "--instructions", "20000"]) == 0
        out = capsys.readouterr().out
        assert "probability_bits" in out
        assert "vs LRU" in out

    def test_run_with_check(self, capsys):
        assert main(["run", "--mix", "Q1", "--instructions", "20000",
                     "--check"]) == 0
        out = capsys.readouterr().out
        assert "ANTT=" in out

    def test_check_fuzz(self, capsys):
        assert main(["check", "fuzz", "--cases", "4", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "4 cases" in out
        assert "agree on every case" in out

    def test_check_fuzz_vector_backend(self, capsys):
        assert main(["check", "fuzz", "--cases", "3", "--backend", "vector",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "[backend=vector]" in out
        assert "vector engine agrees" in out

    def test_run_vector_backend(self, capsys):
        assert main(["run", "--mix", "Q1", "--scheme", "prism-h",
                     "--instructions", "20000", "--backend", "vector"]) == 0
        out = capsys.readouterr().out
        assert "ANTT=" in out

    def test_check_fuzz_scheme_filter(self, capsys):
        assert main(["check", "fuzz", "--cases", "3", "--schemes", "lru",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "lru=3" in out

    def test_check_fuzz_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit, match="no reference simulator"):
            main(["check", "fuzz", "--cases", "1", "--schemes", "ucp"])

    def test_experiment_with_csv(self, capsys, tmp_path):
        prefix = tmp_path / "fig12"
        assert main(["experiment", "fig12", "--instructions", "15000",
                     "--csv", str(prefix)]) == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out
        assert "wrote" in out
        assert list(tmp_path.glob("fig12*.csv"))
