"""Property-based invariants over the full cache + scheme stack.

Hypothesis drives randomized access streams through every management
scheme and checks the invariants DESIGN.md §6 lists: occupancy
conservation, lookup-structure integrity, statistics consistency, and
distribution validity — the properties that must hold for *any* input,
not just the workloads the figures use.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import (
    DIPPolicy,
    LRUPolicy,
    RandomPolicy,
    SRRIPPolicy,
    TimestampLRUPolicy,
)
from repro.core import HitMaxPolicy, PrismScheme
from repro.partitioning import (
    FairWayPartitionScheme,
    PIPPScheme,
    UCPScheme,
    VantageScheme,
    WayPartitionScheme,
)

GEOMETRY = CacheGeometry(8 << 10, 64, 8)  # 128 blocks, 16 sets
NUM_CORES = 3


def build_cache(scheme_name: str) -> SharedCache:
    """A 3-core cache under the named scheme (fresh state)."""
    if scheme_name == "vantage":
        cache = SharedCache(GEOMETRY, NUM_CORES, policy=TimestampLRUPolicy())
        cache.set_scheme(VantageScheme(interval_len=64, sample_shift=1))
        return cache
    cache = SharedCache(GEOMETRY, NUM_CORES, policy=LRUPolicy())
    schemes = {
        "none": None,
        "waypart": WayPartitionScheme(),
        "ucp": UCPScheme(interval_len=64, sample_shift=1),
        "pipp": PIPPScheme(interval_len=64, sample_shift=1),
        "fair": FairWayPartitionScheme(interval_len=64, sample_shift=1),
        "prism": PrismScheme(HitMaxPolicy(), interval_len=64, sample_shift=1),
        "prism-paper": PrismScheme(
            HitMaxPolicy(pure=True),
            interval_len=64,
            sample_shift=1,
            fallback="paper",
            bias_correction=False,
        ),
    }
    scheme = schemes[scheme_name]
    if scheme is not None:
        cache.set_scheme(scheme)
    return cache


access_streams = st.lists(
    st.tuples(st.integers(0, NUM_CORES - 1), st.integers(0, 400)),
    min_size=50,
    max_size=1500,
)

ALL_SCHEMES = ["none", "waypart", "ucp", "pipp", "fair", "prism", "prism-paper", "vantage"]


@pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(stream=access_streams)
def test_stack_invariants(scheme_name, stream):
    cache = build_cache(scheme_name)
    for core, addr in stream:
        # Per-core address offset, as the system driver applies.
        cache.access(core, (core << 20) + addr)

    # Occupancy conservation: counters match a full scan and never exceed
    # the cache; per-set the lookup dict matches the recency list.
    assert cache.occupancy == cache.scan_occupancy()
    assert sum(cache.occupancy) <= cache.geometry.num_blocks
    for cset in cache.sets:
        assert len(cset.blocks) <= cset.assoc
        assert len(cset._by_tag) == len(cset.blocks)
        for block in cset.blocks:
            assert block.valid
            assert cset.lookup(block.tag) is block
            assert 0 <= block.core < NUM_CORES

    # Statistics consistency.
    stats = cache.stats
    assert sum(stats.hits) + sum(stats.misses) == len(stream)
    assert sum(stats.evictions) == sum(stats.misses) - sum(cache.occupancy)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(stream=access_streams)
def test_prism_distribution_stays_valid(stream):
    cache = build_cache("prism")
    scheme = cache.scheme
    for core, addr in stream:
        cache.access(core, (core << 20) + addr)
        probs = scheme.manager.probabilities
        assert sum(probs) == pytest.approx(1.0)
        assert all(0.0 <= p <= 1.0 + 1e-9 for p in probs)
        assert sum(scheme.targets) == pytest.approx(1.0, abs=1e-6)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(stream=access_streams)
def test_waypart_eviction_attribution(stream):
    """Way-partitioning never victimises a strictly-under-quota core on
    behalf of another core: the victim is either the requester itself or a
    core holding at least its quota in that set. (Quotas bind only under
    competition — a lone core may legitimately fill a whole set.)"""
    cache = build_cache("waypart")
    quotas = cache.scheme.quotas
    geometry = cache.geometry
    for core, addr in stream:
        block_addr = (core << 20) + addr
        cset = cache.sets[geometry.set_index(block_addr)]
        counts = [cset.count_core(c) for c in range(NUM_CORES)]
        full_before = cset.full
        result = cache.access(core, block_addr)
        if not full_before or result.hit:
            continue
        victim = result.evicted_core
        assert victim == core or counts[victim] >= quotas[victim]


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(stream=access_streams, seed=st.integers(0, 2**31))
def test_same_stream_same_result(stream, seed):
    """Bit-level determinism of the managed cache under a fixed seed."""

    def run():
        cache = SharedCache(GEOMETRY, NUM_CORES, policy=LRUPolicy())
        cache.set_scheme(
            PrismScheme(HitMaxPolicy(), interval_len=64, sample_shift=1, seed=seed)
        )
        hits = 0
        for core, addr in stream:
            hits += cache.access(core, (core << 20) + addr).hit
        return hits, list(cache.occupancy), list(cache.scheme.manager.probabilities)

    assert run() == run()


@pytest.mark.parametrize("policy_cls", [LRUPolicy, DIPPolicy, SRRIPPolicy, RandomPolicy])
@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(stream=access_streams)
def test_prism_agnostic_to_policy(policy_cls, stream):
    """PriSM's invariants hold over every baseline replacement policy."""
    cache = SharedCache(GEOMETRY, NUM_CORES, policy=policy_cls())
    cache.set_scheme(PrismScheme(HitMaxPolicy(), interval_len=64, sample_shift=1))
    for core, addr in stream:
        cache.access(core, (core << 20) + addr)
    assert cache.occupancy == cache.scan_occupancy()
    probs = cache.scheme.manager.probabilities
    assert sum(probs) == pytest.approx(1.0)
