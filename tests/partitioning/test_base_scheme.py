"""Tests for the scheme base class and the unmanaged scheme."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement.lru import LRUPolicy
from repro.partitioning.base import ManagementScheme
from repro.partitioning.unmanaged import UnmanagedScheme
from repro.util.rng import make_rng

GEOMETRY = CacheGeometry(4 << 10, 64, 4)


class TestBaseScheme:
    def test_default_victim_is_policy_victim(self):
        cache = SharedCache(GEOMETRY, 2)
        scheme = ManagementScheme()
        cache.set_scheme(scheme)
        s = GEOMETRY.num_sets
        for i in range(4):
            cache.access(0, i * s)
        result = cache.access(0, 4 * s)
        assert result.evicted_core == 0  # LRU victim

    def test_first_victim_of_filters_by_core(self):
        cache = SharedCache(GEOMETRY, 3)
        scheme = ManagementScheme()
        cache.set_scheme(scheme)
        cset = cache.sets[0]
        s = GEOMETRY.num_sets
        cache.access(0, 0)
        cache.access(1, s)
        cache.access(2, 2 * s)
        cache.access(0, 3 * s)
        # LRU order (best victim first): core0(addr 0), core1, core2, core0.
        assert scheme.first_victim_of(cset, {1}).core == 1
        assert scheme.first_victim_of(cset, {0, 2}).core == 0
        assert scheme.first_victim_of(cset, {9}) is None

    def test_attach_invokes_on_attach(self):
        events = []

        class Probe(ManagementScheme):
            def on_attach(self):
                events.append(self.cache)

        cache = SharedCache(GEOMETRY, 1)
        cache.set_scheme(Probe())
        assert events == [cache]


class TestUnmanagedEquivalence:
    def test_unmanaged_scheme_equals_no_scheme(self):
        """Attaching UnmanagedScheme must be behaviourally identical to a
        bare cache: same hits, same final contents."""
        rng = make_rng(10, "unmanaged")
        stream = [(rng.randrange(2), rng.randrange(300)) for _ in range(6000)]

        def run(scheme):
            cache = SharedCache(GEOMETRY, 2, policy=LRUPolicy())
            if scheme is not None:
                cache.set_scheme(scheme)
            hits = sum(cache.access(c, (c << 20) + a).hit for c, a in stream)
            contents = [
                sorted((b.tag, b.core) for b in cset.blocks) for cset in cache.sets
            ]
            return hits, contents

        assert run(None) == run(UnmanagedScheme())

    def test_unmanaged_has_no_intervals(self):
        cache = SharedCache(GEOMETRY, 1)
        cache.set_scheme(UnmanagedScheme())
        for i in range(500):
            cache.access(0, i)
        assert cache.intervals_completed == 0
