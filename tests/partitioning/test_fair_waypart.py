"""Tests for the Kim et al. fairness repartitioner."""

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.partitioning.fair_waypart import FairWayPartitionScheme
from repro.util.rng import make_rng


def make(num_cores=2, interval=128, threshold=0.05):
    geometry = CacheGeometry(8 << 10, 64, 8)
    cache = SharedCache(geometry, num_cores)
    scheme = FairWayPartitionScheme(
        threshold=threshold, interval_len=interval, sample_shift=1
    )
    cache.set_scheme(scheme)
    return cache, scheme


class TestRepartitioning:
    def test_moves_way_to_most_slowed_core(self):
        cache, scheme = make()
        scheme.shadow.shadow_misses = [10, 10]       # stand-alone misses
        scheme.shadow.shared_misses = [10, 100]      # core 1 hurt by sharing
        quotas_before = list(scheme.quotas)
        scheme.end_interval(cache)
        assert scheme.quotas[1] == quotas_before[1] + 1
        assert scheme.quotas[0] == quotas_before[0] - 1

    def test_threshold_blocks_tiny_gaps(self):
        cache, scheme = make(threshold=0.5)
        scheme.shadow.shadow_misses = [10, 10]
        scheme.shadow.shared_misses = [10, 11]  # ratio gap 0.1 < 50% threshold
        quotas_before = list(scheme.quotas)
        scheme.end_interval(cache)
        assert scheme.quotas == quotas_before

    def test_donor_never_goes_below_one_way(self):
        cache, scheme = make()
        scheme.set_quotas([1, 7])
        scheme.shadow.shadow_misses = [10, 10]
        scheme.shadow.shared_misses = [10, 100]
        scheme.end_interval(cache)
        # Core 0 is the only candidate donor but holds 1 way; nothing moves.
        assert scheme.quotas == [1, 7]

    def test_zero_standalone_misses_treated_as_pure_interference(self):
        cache, scheme = make()
        assert scheme._miss_increase(0) >= 1.0 or scheme._miss_increase(0) == 1.0
        scheme.shadow.shadow_misses = [0, 10]
        scheme.shadow.shared_misses = [50, 10]
        # Core 0: alone it never missed, shared it misses a lot -> max ratio.
        assert scheme._miss_increase(0) > scheme._miss_increase(1)

    def test_equalises_slowdown_end_to_end(self):
        """A big-footprint core squeezing a small one should lose ways over
        time, compressing the miss-increase spread."""
        cache, scheme = make(interval=128)
        rng = make_rng(9, "fair")
        for _ in range(40000):
            if rng.random() < 0.5:
                cache.access(0, rng.randrange(64))          # small working set
            else:
                cache.access(1, (1 << 20) + rng.randrange(2000))  # giant set
        # The small core keeps enough ways for its set: its miss increase
        # stays near 1 and it retains at least the equal split.
        assert scheme.repartitions > 0
        assert scheme.quotas[0] >= 1
        assert sum(scheme.quotas) == cache.geometry.assoc
