"""Property-based tests for UCP's lookahead allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.partitioning.ucp import lookahead_allocate


def prefix_curves(rng, num_cores, budget, max_gain=50):
    """Random non-decreasing utility curves as prefix-sum lists."""
    curves = []
    for _ in range(num_cores):
        increments = [rng.randint(0, max_gain) for _ in range(budget + 1)]
        prefix = [0]
        for inc in increments:
            prefix.append(prefix[-1] + inc)
        curves.append(prefix)
    return curves


@settings(max_examples=40, deadline=None)
@given(
    rng=st.randoms(use_true_random=False),
    num_cores=st.integers(2, 8),
    budget=st.integers(8, 64),
)
def test_allocation_feasible_for_any_monotone_curves(rng, num_cores, budget):
    if budget < num_cores:
        budget = num_cores
    curves = prefix_curves(rng, num_cores, budget)
    alloc = lookahead_allocate(
        lambda core, units: curves[core][min(units, budget)], num_cores, budget
    )
    assert sum(alloc) == budget
    assert all(a >= 1 for a in alloc)


@settings(max_examples=25, deadline=None)
@given(rng=st.randoms(use_true_random=False), budget=st.integers(8, 32))
def test_dominant_core_gets_majority(rng, budget):
    """A core whose marginal utility dominates everywhere takes most of
    the budget."""
    flat = [0] * (budget + 1)
    steep = [i * 100 for i in range(budget + 1)]
    alloc = lookahead_allocate(
        lambda core, units: (steep if core == 0 else flat)[min(units, budget)],
        2,
        budget,
    )
    assert alloc[0] == budget - 1
    assert alloc[1] == 1


def test_plateau_then_cliff_curves():
    """Two cliff cores with different cliff positions both get served when
    the budget allows — lookahead's reason to exist."""
    def cliff_at(position, height):
        return [0 if u < position else height for u in range(17)]

    a = cliff_at(4, 100)
    b = cliff_at(8, 150)
    alloc = lookahead_allocate(
        lambda core, units: (a if core == 0 else b)[min(units, 16)], 2, 16
    )
    assert alloc[0] >= 4
    assert alloc[1] >= 8

    # With a budget of 10, only one cliff fits; the better per-unit one
    # (100/4 = 25 > 150/8 = 18.75) wins.
    alloc_small = lookahead_allocate(
        lambda core, units: (a if core == 0 else b)[min(units, 16)], 2, 10
    )
    assert alloc_small[0] >= 4


def test_identical_strictly_concave_curves_split_evenly():
    """With strictly decreasing marginal utility (no ties), two identical
    cores alternate wins and split the budget evenly. (With tied marginals
    the fixed-priority arbiter legitimately skews toward core 0 — that is
    hardware behaviour, not a bug.)"""
    increments = list(range(100, 84, -1))  # 16 strictly decreasing steps
    prefix = [0]
    for inc in increments:
        prefix.append(prefix[-1] + inc)
    alloc = lookahead_allocate(
        lambda core, units: prefix[min(units, 16)], 2, 16
    )
    assert alloc == [8, 8]


def test_flat_marginals_skew_to_lowest_core():
    """All-equal marginal utility: the fixed-priority tie break hands the
    whole balance to core 0 (documents the arbiter's determinism)."""
    alloc = lookahead_allocate(lambda core, units: units * 10.0, 2, 16)
    assert alloc == [15, 1]
