"""Tests for the set-associative Vantage adaptation."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.timestamp_lru import TimestampLRUPolicy
from repro.partitioning.vantage import VantageScheme
from repro.util.rng import make_rng


def make(num_cores=2, **kwargs):
    geometry = CacheGeometry(8 << 10, 64, 8)
    cache = SharedCache(geometry, num_cores, policy=TimestampLRUPolicy())
    scheme = VantageScheme(interval_len=kwargs.pop("interval_len", 128),
                           sample_shift=1, **kwargs)
    cache.set_scheme(scheme)
    return cache, scheme


class TestConstruction:
    def test_requires_timestamp_lru(self):
        geometry = CacheGeometry(8 << 10, 64, 8)
        cache = SharedCache(geometry, 2, policy=LRUPolicy())
        with pytest.raises(TypeError, match="timestamp-LRU"):
            cache.set_scheme(VantageScheme())

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            VantageScheme(unmanaged_frac=1.5)
        with pytest.raises(ValueError):
            VantageScheme(max_aperture=-0.1)
        with pytest.raises(ValueError):
            VantageScheme(granularity=0)

    def test_initial_targets_split_managed_region(self):
        cache, scheme = make(unmanaged_frac=0.2)
        expected = cache.geometry.num_blocks * 0.8 / 2
        assert scheme.targets == [expected, expected]


class TestAperture:
    def test_zero_below_target(self):
        cache, scheme = make()
        scheme.targets = [100.0, 100.0]
        scheme.managed_count = [50, 100]
        assert scheme.aperture(0) == 0.0
        assert scheme.aperture(1) == 0.0

    def test_grows_with_overshoot(self):
        cache, scheme = make(max_aperture=0.4, slack=0.1)
        scheme.targets = [100.0, 100.0]
        scheme.managed_count = [105, 100]
        assert scheme.aperture(0) == pytest.approx(0.2)

    def test_saturates_at_max(self):
        cache, scheme = make(max_aperture=0.4, slack=0.1)
        scheme.targets = [100.0, 100.0]
        scheme.managed_count = [200, 100]
        assert scheme.aperture(0) == 0.4

    def test_zero_target_means_full_aperture(self):
        cache, scheme = make()
        scheme.targets = [0.0, 200.0]
        scheme.managed_count = [5, 0]
        assert scheme.aperture(0) == scheme.max_aperture


class TestReplacementBehaviour:
    def test_fill_enters_managed(self):
        cache, scheme = make()
        cache.access(0, 1)
        assert scheme.managed_count[0] == 1

    def test_unmanaged_hit_promotes(self):
        cache, scheme = make()
        cache.access(0, 1)
        g = cache.geometry
        block = cache.sets[g.set_index(1)].lookup(g.tag(1))
        block.managed = False
        scheme.managed_count[0] -= 1
        cache.access(0, 1)  # hit promotes back
        assert block.managed
        assert scheme.managed_count[0] == 1

    def test_victim_prefers_unmanaged(self):
        cache, scheme = make()
        cset = cache.sets[0]
        s = cache.geometry.num_sets
        for i in range(8):
            cache.access(0, i * s)
        # Demote one specific block by hand.
        target = cset.blocks[3]
        target.managed = False
        scheme.managed_count[0] -= 1
        scheme.targets = [1e9, 1e9]  # apertures 0: no further demotions
        victim = scheme.select_victim(cset, 1)
        assert victim is target

    def test_forced_eviction_counted_when_no_unmanaged(self):
        cache, scheme = make()
        scheme.targets = [1e9, 1e9]  # nothing ever demotes
        cset = cache.sets[0]
        s = cache.geometry.num_sets
        for i in range(9):  # 9th access forces an eviction
            cache.access(0, i * s)
        assert scheme.forced_evictions == 1

    def test_managed_count_stays_consistent(self):
        cache, scheme = make(interval_len=64)
        rng = make_rng(11, "vantage")
        for _ in range(20000):
            core = rng.randrange(2)
            cache.access(core, (core << 20) + rng.randrange(1500))
        actual = [0, 0]
        for cset in cache.sets:
            for block in cset.blocks:
                if block.managed:
                    actual[block.core] += 1
        assert scheme.managed_count == actual

    def test_partition_sizes_track_targets(self):
        """The aperture feedback should hold a partition near its target."""
        cache, scheme = make(interval_len=1 << 30)  # freeze targets
        n = cache.geometry.num_blocks
        scheme.targets = [0.7 * 0.9 * n, 0.3 * 0.9 * n]
        rng = make_rng(12, "vtg")
        for _ in range(50000):
            core = rng.randrange(2)
            cache.access(core, (core << 20) + rng.randrange(2000))
        share0 = scheme.managed_count[0] / max(1, sum(scheme.managed_count))
        assert share0 == pytest.approx(0.7, abs=0.12)

    def test_demotions_counted(self):
        cache, scheme = make(interval_len=64)
        rng = make_rng(13, "vtg2")
        for _ in range(10000):
            core = rng.randrange(2)
            cache.access(core, (core << 20) + rng.randrange(1500))
        assert scheme.demotions > 0
