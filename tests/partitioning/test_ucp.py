"""Tests for UCP: the lookahead algorithm and the full scheme."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.partitioning.ucp import UCPScheme, lookahead_allocate
from repro.util.rng import make_rng


def curve(values):
    """utility(core, ways) from a per-core list of prefix-sum curves."""
    def utility(core, ways):
        c = values[core]
        return c[min(ways, len(c) - 1)]
    return utility


class TestLookahead:
    def test_budget_split_exactly(self):
        alloc = lookahead_allocate(curve([[0, 1, 2, 3, 4]] * 2), 2, 4)
        assert sum(alloc) == 4

    def test_minimum_enforced(self):
        # Core 1 has zero utility but still receives its minimum way.
        alloc = lookahead_allocate(curve([[0, 10, 20, 30, 40], [0, 0, 0, 0, 0]]), 2, 4)
        assert alloc[1] == 1
        assert alloc[0] == 3

    def test_budget_too_small_raises(self):
        with pytest.raises(ValueError):
            lookahead_allocate(curve([[0, 1]] * 4), 4, 3)

    def test_marginal_utility_wins(self):
        # Core 0: diminishing returns. Core 1: flat. Core 0 takes the extras.
        u = curve([[0, 100, 150, 175, 185], [0, 10, 20, 30, 40]])
        alloc = lookahead_allocate(u, 2, 4)
        assert alloc[0] >= 2

    def test_lookahead_sees_past_a_cliff(self):
        """The reason it's 'lookahead' not plain greedy: a core whose
        utility is zero until 3 ways then jumps must still win them."""
        cliff = [0, 0, 0, 300, 300]
        flat = [0, 10, 20, 30, 40]
        alloc = lookahead_allocate(curve([cliff, flat]), 2, 4)
        assert alloc[0] == 3
        assert alloc[1] == 1

    def test_ties_go_to_lowest_core(self):
        u = curve([[0, 10, 20], [0, 10, 20]])
        alloc = lookahead_allocate(u, 2, 3)
        assert alloc == [2, 1]

    def test_large_budget_power_of_two_search(self):
        # 128 units with a cliff at 64: the coarse search must still find it.
        cliff = [0] * 64 + [1000] * 65
        flat = list(range(129))
        alloc = lookahead_allocate(curve([cliff, flat]), 2, 128)
        assert alloc[0] >= 64


class TestUCPScheme:
    def make(self, num_cores=2, interval=128):
        geometry = CacheGeometry(8 << 10, 64, 8)  # 16 sets
        cache = SharedCache(geometry, num_cores)
        scheme = UCPScheme(interval_len=interval, sample_shift=1)
        cache.set_scheme(scheme)
        return cache, scheme

    def test_umon_registered(self):
        cache, scheme = self.make()
        assert scheme.umon in cache.monitors

    def test_interval_default_is_num_blocks(self):
        geometry = CacheGeometry(8 << 10, 64, 8)
        cache = SharedCache(geometry, 2)
        scheme = UCPScheme()
        cache.set_scheme(scheme)
        assert scheme.interval_len == geometry.num_blocks

    def test_repartitions_happen(self):
        cache, scheme = self.make()
        rng = make_rng(3, "ucp")
        for _ in range(3000):
            core = rng.randrange(2)
            cache.access(core, (core << 20) + rng.randrange(500))
        assert scheme.repartitions > 0
        assert sum(scheme.quotas) == cache.geometry.assoc

    def test_reuse_core_gets_more_ways_than_streamer(self):
        cache, scheme = self.make(interval=256)
        rng = make_rng(4, "ucp2")
        scan = 0
        for _ in range(30000):
            if rng.random() < 0.5:
                cache.access(0, rng.randrange(100))      # high-reuse core
            else:
                cache.access(1, (1 << 20) + scan)        # streamer
                scan += 1
        assert scheme.quotas[0] > scheme.quotas[1]

    def test_quota_steers_occupancy(self):
        cache, scheme = self.make(interval=256)
        rng = make_rng(5, "ucp3")
        scan = 0
        for _ in range(40000):
            if rng.random() < 0.5:
                cache.access(0, rng.randrange(100))
            else:
                cache.access(1, (1 << 20) + scan)
                scan += 1
        fractions = cache.occupancy_fractions()
        assert fractions[0] > fractions[1]
