"""Tests for way-partitioning enforcement and quota rounding."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.partitioning.waypart import WayPartitionScheme, round_to_way_quotas
from repro.util.rng import make_rng


class TestRounding:
    def test_exact_fractions(self):
        assert round_to_way_quotas([0.5, 0.25, 0.125, 0.125], 16) == [8, 4, 2, 2]

    def test_sums_to_assoc(self):
        quotas = round_to_way_quotas([0.4, 0.35, 0.25], 16)
        assert sum(quotas) == 16

    def test_minimum_one_way_each(self):
        quotas = round_to_way_quotas([0.97, 0.01, 0.01, 0.01], 16)
        assert all(q >= 1 for q in quotas)
        assert sum(quotas) == 16

    def test_zero_fraction_core_still_gets_a_way(self):
        quotas = round_to_way_quotas([1.0, 0.0], 4)
        assert quotas == [3, 1]

    def test_too_many_cores_raises(self):
        with pytest.raises(ValueError):
            round_to_way_quotas([0.5] * 8, 4)

    def test_cores_equal_ways_is_trivial(self):
        # The Fig. 6 degenerate case: the only feasible partition.
        assert round_to_way_quotas([0.9] + [0.1 / 15] * 15, 16) == [1] * 16

    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=16),
           st.sampled_from([16, 32, 64]))
    def test_rounding_properties(self, fractions, assoc):
        quotas = round_to_way_quotas(fractions, assoc)
        assert sum(quotas) == assoc
        assert all(q >= 1 for q in quotas)

    @given(st.integers(2, 8))
    def test_uniform_fractions_give_uniform_quotas(self, cores):
        quotas = round_to_way_quotas([1.0 / cores] * cores, 16)
        assert max(quotas) - min(quotas) <= 1


class TestEnforcement:
    @pytest.fixture
    def cache(self):
        geometry = CacheGeometry(4 << 10, 64, 4)  # 16 sets, 4 ways
        cache = SharedCache(geometry, 2)
        cache.set_scheme(WayPartitionScheme(quotas=[3, 1]))
        return cache

    def test_default_equal_split(self):
        geometry = CacheGeometry(4 << 10, 64, 4)
        cache = SharedCache(geometry, 2)
        scheme = WayPartitionScheme()
        cache.set_scheme(scheme)
        assert scheme.quotas == [2, 2]

    def test_default_split_with_remainder(self):
        geometry = CacheGeometry(8 << 10, 64, 8)
        cache = SharedCache(geometry, 3)
        scheme = WayPartitionScheme()
        cache.set_scheme(scheme)
        assert scheme.quotas == [3, 3, 2]
        assert sum(scheme.quotas) == 8

    def test_rejects_quota_sum_mismatch(self):
        geometry = CacheGeometry(4 << 10, 64, 4)
        cache = SharedCache(geometry, 2)
        with pytest.raises(ValueError, match="sum"):
            cache.set_scheme(WayPartitionScheme(quotas=[2, 1]))

    def test_rejects_zero_quota(self):
        geometry = CacheGeometry(4 << 10, 64, 4)
        cache = SharedCache(geometry, 2)
        with pytest.raises(ValueError, match=">= 1"):
            cache.set_scheme(WayPartitionScheme(quotas=[4, 0]))

    def test_rejects_more_cores_than_ways(self):
        geometry = CacheGeometry(4 << 10, 64, 4)
        cache = SharedCache(geometry, 8)
        with pytest.raises(ValueError):
            cache.set_scheme(WayPartitionScheme())

    def test_steady_state_respects_quotas(self, cache):
        """After churn, each set holds exactly the quota split."""
        rng = make_rng(1, "wp")
        for _ in range(20000):
            core = rng.randrange(2)
            cache.access(core, (core << 20) + rng.randrange(3000))
        for cset in cache.sets:
            assert cset.count_core(0) == 3
            assert cset.count_core(1) == 1

    def test_over_quota_core_evicts_itself(self, cache):
        geometry = cache.geometry
        s = geometry.num_sets
        # Core 1 (quota 1) fills two ways of set 0 while the set has room.
        cache.access(1, 0)
        cache.access(1, s)
        cache.access(0, 2 * s)
        cache.access(0, 3 * s)  # set 0 now full: [c1, c1, c0, c0]
        # Core 0 misses; core 1 is over quota -> a core-1 block must go.
        result = cache.access(0, 4 * s)
        assert result.evicted_core == 1

    def test_at_quota_requester_evicts_own_lru(self, cache):
        geometry = cache.geometry
        s = geometry.num_sets
        for i in range(3):
            cache.access(0, i * s)
        cache.access(1, 3 * s)  # set full: core0 at quota 3, core1 at quota 1
        result = cache.access(0, 4 * s)
        assert result.evicted_core == 0
        # Core 0's oldest block was the victim.
        assert cache.sets[0].lookup(geometry.tag(0)) is None

    def test_quota_update_shifts_occupancy(self, cache):
        rng = make_rng(2, "wp2")
        for _ in range(8000):
            core = rng.randrange(2)
            cache.access(core, (core << 20) + rng.randrange(3000))
        cache.scheme.set_quotas([1, 3])
        for _ in range(8000):
            core = rng.randrange(2)
            cache.access(core, (core << 20) + rng.randrange(3000))
        for cset in cache.sets:
            assert cset.count_core(1) == 3
