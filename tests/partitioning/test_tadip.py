"""Tests for TA-DIP (thread-aware dynamic insertion)."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.partitioning.tadip import TADIPPolicy
from repro.util.rng import make_rng


def make(num_cores=2, **kwargs):
    geometry = CacheGeometry(16 << 10, 64, 4)  # 64 sets
    policy = TADIPPolicy(num_cores, **kwargs)
    cache = SharedCache(geometry, num_cores, policy=policy)
    return cache, policy


class TestLeaderLayout:
    def test_every_core_has_both_leader_kinds(self):
        cache, policy = make(num_cores=4, leader_sets=2)
        kinds = {}
        for role in policy._role.values():
            kinds.setdefault(role[0], set()).add(role[1])
        for core in range(4):
            assert kinds[core] == {"lru", "bip"}

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            TADIPPolicy(0)


class TestPerCorePsel:
    def test_psel_updates_only_for_owner_core(self):
        cache, policy = make()
        lru_leader = next(
            s for s, (core, kind) in policy._role.items() if core == 0 and kind == "lru"
        )
        start = list(policy.psel)
        policy.record_miss(cache.sets[lru_leader], core=1)  # not the owner
        assert policy.psel == start
        policy.record_miss(cache.sets[lru_leader], core=0)
        assert policy.psel[0] == start[0] + 1
        assert policy.psel[1] == start[1]

    def test_bip_leader_decrements(self):
        cache, policy = make()
        bip_leader = next(
            s for s, (core, kind) in policy._role.items() if core == 0 and kind == "bip"
        )
        start = policy.psel[0]
        policy.record_miss(cache.sets[bip_leader], core=0)
        assert policy.psel[0] == start - 1

    def test_follower_obeys_own_psel(self):
        cache, policy = make()
        follower = next(s for s in range(64) if s not in policy._role)
        cset = cache.sets[follower]
        policy.psel[0] = policy.psel_max  # core 0 -> BIP
        policy.psel[1] = 0                # core 1 -> LRU
        assert policy.insertion_position(cset, 1) == 0
        positions = {policy.insertion_position(cset, 0) for _ in range(100)}
        assert cset.assoc in positions  # mostly LRU-insert under BIP

    def test_leader_set_pins_owner_policy(self):
        cache, policy = make()
        lru_leader = next(
            s for s, (core, kind) in policy._role.items() if core == 0 and kind == "lru"
        )
        policy.psel[0] = policy.psel_max  # PSEL says BIP...
        # ...but in its own LRU leader set, core 0 must use LRU insertion.
        assert policy.insertion_position(cache.sets[lru_leader], 0) == 0


class TestEndToEnd:
    def test_thrashing_core_learns_bip(self):
        """A core cycling a too-big working set should drive its PSEL toward
        BIP while a reuse-friendly core stays on LRU."""
        cache, policy = make(num_cores=2)
        rng = make_rng(14, "tadip")
        for i in range(60000):
            if rng.random() < 0.5:
                cache.access(0, rng.randrange(40))          # fits: LRU fine
            else:
                cache.access(1, (1 << 20) + (i % 6000))      # cyclic thrash
        mid = policy.psel_max // 2
        assert policy.psel[1] > mid  # thrasher wants BIP

    def test_shared_cache_functional_under_tadip(self):
        cache, policy = make(num_cores=2)
        rng = make_rng(15, "tadip2")
        for _ in range(10000):
            core = rng.randrange(2)
            cache.access(core, (core << 20) + rng.randrange(800))
        assert cache.occupancy == cache.scan_occupancy()
        assert cache.stats.total_hits() > 0
