"""Tests for PIPP."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.partitioning.pipp import PIPPScheme
from repro.util.rng import make_rng


def make(num_cores=2, **kwargs):
    geometry = CacheGeometry(8 << 10, 64, 8)
    cache = SharedCache(geometry, num_cores)
    scheme = PIPPScheme(interval_len=kwargs.pop("interval_len", 128),
                        sample_shift=1, **kwargs)
    cache.set_scheme(scheme)
    return cache, scheme


class TestInsertion:
    def test_insertion_position_inverts_priority(self):
        cache, scheme = make()
        scheme.pi = [6, 2]
        cset = cache.sets[0]
        for tag in range(8):
            cset.fill(tag, core=0, position=len(cset.blocks))
        assert scheme.insertion_position(cset, 0) == 2  # assoc 8 - pi 6
        assert scheme.insertion_position(cset, 1) == 6

    def test_streaming_core_inserts_at_priority_one(self):
        cache, scheme = make()
        scheme.pi = [6, 6]
        scheme.streaming[1] = True
        cset = cache.sets[0]
        assert scheme.insertion_position(cset, 1) == 7  # assoc 8 - 1

    def test_initial_pi_is_equal_split(self):
        cache, scheme = make(num_cores=4)
        assert scheme.pi == [2, 2, 2, 2]


class TestPromotion:
    def test_single_step_promotion(self):
        cache, scheme = make(prom_prob=1.0)
        cset = cache.sets[0]
        for tag in range(4):
            cset.fill(tag, core=0, position=len(cset.blocks))
        block = cset.blocks[2]
        scheme.on_hit(cset, block, core=0)
        assert cset.position_of(block) == 1

    def test_no_promotion_past_mru(self):
        cache, scheme = make(prom_prob=1.0)
        cset = cache.sets[0]
        cset.fill(1, core=0)
        block = cset.blocks[0]
        scheme.on_hit(cset, block, core=0)
        assert cset.position_of(block) == 0

    def test_promotion_probability_respected(self):
        cache, scheme = make(prom_prob=0.0)
        cset = cache.sets[0]
        for tag in range(4):
            cset.fill(tag, core=0, position=len(cset.blocks))
        block = cset.blocks[3]
        for _ in range(20):
            scheme.on_hit(cset, block, core=0)
        assert cset.position_of(block) == 3  # never promoted


class TestAllocationAndStreaming:
    def test_streaming_detection(self):
        cache, scheme = make(interval_len=64)
        rng = make_rng(6, "pipp")
        scan = 0
        for _ in range(6000):
            if rng.random() < 0.5:
                cache.access(0, rng.randrange(60))      # high reuse
            else:
                cache.access(1, (1 << 20) + scan)       # pure stream
                scan += 1
        assert scheme.streaming[1]
        assert not scheme.streaming[0]

    def test_pi_tracks_utility(self):
        cache, scheme = make(interval_len=128)
        rng = make_rng(7, "pipp2")
        scan = 0
        for _ in range(20000):
            if rng.random() < 0.5:
                cache.access(0, rng.randrange(100))
            else:
                cache.access(1, (1 << 20) + scan)
                scan += 1
        assert scheme.pi[0] > scheme.pi[1]

    def test_victim_is_baseline_lru(self):
        cache, scheme = make()
        cset = cache.sets[0]
        for tag in range(8):
            cset.fill(tag, core=0, position=len(cset.blocks))
        assert scheme.select_victim(cset, 1) is cset.blocks[-1]

    def test_pseudo_partition_protects_reuse_core(self):
        """End-to-end: the reuse core keeps a larger share than the
        streamer under PIPP's insertion discipline."""
        cache, scheme = make(interval_len=128)
        rng = make_rng(8, "pipp3")
        scan = 0
        for _ in range(30000):
            if rng.random() < 0.5:
                cache.access(0, rng.randrange(100))
            else:
                cache.access(1, (1 << 20) + scan)
                scan += 1
        fractions = cache.occupancy_fractions()
        assert fractions[0] > fractions[1]
