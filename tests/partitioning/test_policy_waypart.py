"""Tests for way-partitioning driven by a PriSM allocation policy (Fig. 5 arm)."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.core.allocation import AllocationPolicy, HitMaxPolicy
from repro.partitioning.policy_waypart import AllocationWayPartitionScheme
from repro.util.rng import make_rng


class StaticPolicy(AllocationPolicy):
    name = "static"

    def __init__(self, targets):
        self.targets = targets

    def compute_targets(self, ctx):
        return list(self.targets)


def make(policy, num_cores=2, interval=64):
    geometry = CacheGeometry(8 << 10, 64, 8)
    cache = SharedCache(geometry, num_cores)
    scheme = AllocationWayPartitionScheme(policy, interval_len=interval, sample_shift=1)
    cache.set_scheme(scheme)
    return cache, scheme


class TestAllocationWayPartition:
    def test_name_includes_policy(self):
        _, scheme = make(HitMaxPolicy())
        assert scheme.name_with_policy == "waypart-alloc[prism-hitmax]"

    def test_targets_rounded_to_ways(self):
        cache, scheme = make(StaticPolicy([0.70, 0.30]))
        rng = make_rng(1, "pw")
        for _ in range(500):
            core = rng.randrange(2)
            cache.access(core, (core << 20) + rng.randrange(400))
        # 0.70 * 8 ways = 5.6 -> 6 ways (largest remainder), 0.30 -> 2.
        assert scheme.quotas in ([6, 2], [5, 3])
        assert sum(scheme.quotas) == 8

    def test_quota_tracks_policy_changes(self):
        policy = StaticPolicy([0.75, 0.25])
        cache, scheme = make(policy)
        rng = make_rng(2, "pw2")
        for _ in range(500):
            core = rng.randrange(2)
            cache.access(core, (core << 20) + rng.randrange(400))
        first = list(scheme.quotas)
        policy.targets = [0.25, 0.75]
        for _ in range(500):
            core = rng.randrange(2)
            cache.access(core, (core << 20) + rng.randrange(400))
        assert scheme.quotas != first
        assert scheme.quotas[1] > scheme.quotas[0]

    def test_shadow_registered_and_perf_slot(self):
        cache, scheme = make(HitMaxPolicy())
        assert scheme.shadow in cache.monitors
        assert hasattr(scheme, "perf")

    def test_interval_defaults_to_num_blocks(self):
        geometry = CacheGeometry(8 << 10, 64, 8)
        cache = SharedCache(geometry, 2)
        scheme = AllocationWayPartitionScheme(HitMaxPolicy())
        cache.set_scheme(scheme)
        assert scheme.interval_len == geometry.num_blocks

    def test_enforcement_matches_rounded_targets(self):
        """Occupancy under way enforcement converges to the rounded quota
        fractions, not the fine-grained targets — the Fig. 5 contrast."""
        cache, scheme = make(StaticPolicy([0.70, 0.30]))
        rng = make_rng(3, "pw3")
        for _ in range(30000):
            core = rng.randrange(2)
            cache.access(core, (core << 20) + rng.randrange(2000))
        fractions = cache.occupancy_fractions()
        assert fractions[0] == pytest.approx(scheme.quotas[0] / 8, abs=0.05)
