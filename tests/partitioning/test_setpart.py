"""Tests for set partitioning / page colouring."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.partitioning.setpart import SetPartitionedCache, proportional_set_split
from repro.util.rng import make_rng

GEOMETRY = CacheGeometry(8 << 10, 64, 8)  # 16 sets


class TestSplit:
    def test_equal_split(self):
        assert proportional_set_split([0.5, 0.5], 16) == [8, 8]

    def test_proportional(self):
        assert proportional_set_split([0.75, 0.25], 16) == [12, 4]

    def test_minimum_one_set(self):
        counts = proportional_set_split([0.99, 0.005, 0.005], 16)
        assert all(c >= 1 for c in counts)
        assert sum(counts) == 16

    def test_too_many_cores(self):
        with pytest.raises(ValueError):
            proportional_set_split([0.1] * 20, 16)


class TestSetPartitionedCache:
    def test_cores_confined_to_their_ranges(self):
        cache = SetPartitionedCache(GEOMETRY, 2)
        rng = make_rng(1, "sp")
        for _ in range(5000):
            core = rng.randrange(2)
            cache.access(core, rng.randrange(1000))
        for set_index, cset in enumerate(cache.sets):
            owner = 0 if set_index < cache.set_counts[0] else 1
            for block in cset.blocks:
                assert block.core == owner

    def test_no_cross_core_interference(self):
        """A streaming core cannot evict a confined neighbour's blocks."""
        cache = SetPartitionedCache(GEOMETRY, 2, fractions=[0.5, 0.5])
        # Core 0: small working set that fits its half (8 sets x 8 ways).
        for _ in range(3):
            for addr in range(40):
                cache.access(0, addr)
        hits_before = cache.stats.hits[0]
        # Core 1: massive stream.
        for addr in range(5000):
            cache.access(1, addr)
        # Core 0 still hits on everything.
        for addr in range(40):
            assert cache.access(0, addr).hit

    def test_distinct_blocks_remain_distinct(self):
        # Two addresses that collapse onto the same local set must keep
        # separate tags (both can be resident simultaneously).
        cache = SetPartitionedCache(GEOMETRY, 2)
        count = cache.set_counts[0]
        cache.access(0, 0)
        cache.access(0, count)      # same local set, different block
        assert cache.access(0, 0).hit
        assert cache.access(0, count).hit

    def test_fraction_validation(self):
        with pytest.raises(ValueError, match="fractions"):
            SetPartitionedCache(GEOMETRY, 2, fractions=[1.0])

    def test_occupancy_accounting(self):
        cache = SetPartitionedCache(GEOMETRY, 2, fractions=[0.75, 0.25])
        rng = make_rng(2, "sp2")
        for _ in range(8000):
            core = rng.randrange(2)
            cache.access(core, rng.randrange(2000))
        assert cache.occupancy == cache.scan_occupancy()
        # Steady-state occupancy reflects the set split.
        fractions = cache.occupancy_fractions()
        assert fractions[0] == pytest.approx(0.75, abs=0.05)

    def test_small_partition_thrashes(self):
        """The known set-partitioning weakness: a confined working set that
        exceeds its range misses heavily even though the rest of the cache
        is idle."""
        cache = SetPartitionedCache(GEOMETRY, 2, fractions=[0.125, 0.875])
        # Core 0 gets 2 sets x 8 ways = 16 blocks; working set of 64.
        rng = make_rng(3, "sp3")
        for _ in range(8000):
            cache.access(0, rng.randrange(64))
        assert cache.stats.miss_rate(0) > 0.5
