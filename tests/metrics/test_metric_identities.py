"""Cross-metric identities (property-based)."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    antt,
    fairness,
    harmonic_speedup,
    slowdowns,
    weighted_speedup,
)

ipcs = st.lists(st.floats(0.01, 10.0), min_size=1, max_size=24)


@given(ipcs, ipcs)
def test_harmonic_speedup_is_reciprocal_of_antt(a, b):
    n = min(len(a), len(b))
    sp, mp = a[:n], b[:n]
    assert harmonic_speedup(sp, mp) == pytest.approx(1.0 / antt(sp, mp))


@given(ipcs)
def test_weighted_speedup_equals_n_when_unslowed(sp):
    assert weighted_speedup(sp, sp) == pytest.approx(len(sp))


@given(ipcs, st.floats(0.05, 1.0))
def test_uniform_scaling_invariants(sp, factor):
    """Scaling every shared IPC by the same factor: fairness is perfect,
    ANTT is exactly 1/factor."""
    mp = [x * factor for x in sp]
    assert fairness(sp, mp) == pytest.approx(1.0)
    assert antt(sp, mp) == pytest.approx(1.0 / factor)


@given(ipcs, ipcs)
def test_slowdowns_bound_the_metrics(a, b):
    n = min(len(a), len(b))
    sp, mp = a[:n], b[:n]
    progress = slowdowns(sp, mp)
    assert antt(sp, mp) >= 1.0 / max(progress) - 1e-9
    assert antt(sp, mp) <= 1.0 / min(progress) + 1e-9


@given(ipcs, ipcs)
def test_antt_permutation_invariant(a, b):
    n = min(len(a), len(b))
    sp, mp = a[:n], b[:n]
    paired = sorted(zip(sp, mp))
    sp2 = [x for x, _ in paired]
    mp2 = [y for _, y in paired]
    assert antt(sp, mp) == pytest.approx(antt(sp2, mp2))
    assert fairness(sp, mp) == pytest.approx(fairness(sp2, mp2))
