"""Tests for the multiprogram metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    antt,
    fairness,
    geomean,
    harmonic_speedup,
    ipc_throughput,
    slowdowns,
    weighted_speedup,
)

ipc_lists = st.lists(st.floats(0.01, 10.0), min_size=1, max_size=32)


class TestANTT:
    def test_no_slowdown_gives_one(self):
        assert antt([1.0, 2.0], [1.0, 2.0]) == 1.0

    def test_uniform_halving_gives_two(self):
        assert antt([1.0, 2.0], [0.5, 1.0]) == 2.0

    def test_is_mean_of_per_program_turnaround(self):
        assert antt([1.0, 1.0], [0.5, 1.0]) == pytest.approx(1.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            antt([1.0], [1.0, 2.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            antt([1.0, 0.0], [1.0, 1.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            antt([], [])

    @given(ipc_lists)
    def test_at_least_one_when_shared_never_faster(self, sp):
        mp = [x * 0.8 for x in sp]
        assert antt(sp, mp) >= 1.0


class TestFairness:
    def test_equal_slowdowns_perfectly_fair(self):
        assert fairness([2.0, 4.0], [1.0, 2.0]) == 1.0

    def test_range(self):
        value = fairness([1.0, 1.0], [0.2, 0.9])
        assert value == pytest.approx(0.2 / 0.9)

    def test_order_invariant(self):
        assert fairness([1.0, 2.0], [0.5, 1.8]) == fairness([2.0, 1.0], [1.8, 0.5])

    @given(ipc_lists, st.floats(0.1, 1.0))
    def test_bounded_by_one(self, sp, factor):
        mp = [x * factor for x in sp]
        assert 0.0 < fairness(sp, mp) <= 1.0 + 1e-12

    def test_single_program_always_fair(self):
        assert fairness([1.0], [0.5]) == 1.0


class TestThroughputAndSpeedups:
    def test_throughput_is_sum(self):
        assert ipc_throughput([1.0, 2.0, 0.5]) == 3.5

    def test_throughput_empty(self):
        with pytest.raises(ValueError):
            ipc_throughput([])

    def test_weighted_speedup(self):
        assert weighted_speedup([1.0, 2.0], [0.5, 1.0]) == pytest.approx(1.0)

    def test_harmonic_speedup_no_slowdown(self):
        assert harmonic_speedup([1.0, 2.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_harmonic_leq_arithmetic(self):
        sp = [1.0, 1.0]
        mp = [0.25, 1.0]
        hs = harmonic_speedup(sp, mp)
        ws = weighted_speedup(sp, mp) / 2
        assert hs <= ws + 1e-12

    def test_slowdowns_vector(self):
        assert slowdowns([2.0, 4.0], [1.0, 1.0]) == pytest.approx([0.5, 0.25])


class TestGeomean:
    def test_simple(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    @given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=50))
    def test_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    def test_antt_fairness_consistency(self):
        """A run where one program is crushed: ANTT blows up while fairness
        collapses — the two metrics must move in opposite directions."""
        sp = [1.0, 1.0]
        balanced = [0.8, 0.8]
        skewed = [0.99, 0.2]
        assert antt(sp, skewed) > antt(sp, balanced)
        assert fairness(sp, skewed) < fairness(sp, balanced)
