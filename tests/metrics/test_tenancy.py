"""Tests for the per-tenant SLO metrics."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.metrics.tenancy import (
    DEFAULT_SLO_FRACTION,
    MissRunTracker,
    TenantSLOReport,
    jain_fairness,
    slo_attainment,
    tenant_hit_rates,
)


def sample(core, hits, misses):
    return SimpleNamespace(core=core, hits=hits, misses=misses)


class TestHitRates:
    def test_basic(self):
        assert tenant_hit_rates([9, 0], [1, 0]) == [0.9, 0.0]

    def test_idle_tenant_reports_zero(self):
        assert tenant_hit_rates([0], [0]) == [0.0]


class TestJainFairness:
    def test_equal_is_one(self):
        assert jain_fairness([0.5, 0.5, 0.5]) == pytest.approx(1.0)

    def test_one_takes_all_is_one_over_n(self):
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_degenerate_inputs(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0


def naive_percentile(cores, hit, num_tenants, q=0.99):
    """Reference miss-run p-quantile: explicit run list, open run included."""
    runs = [[] for _ in range(num_tenants)]
    open_run = [0] * num_tenants
    for core, h in zip(cores, hit):
        if h:
            if open_run[core]:
                runs[core].append(open_run[core])
                open_run[core] = 0
        else:
            open_run[core] += 1
    out = []
    for tenant in range(num_tenants):
        lengths = sorted(runs[tenant] + ([open_run[tenant]] if open_run[tenant] else []))
        if not lengths:
            out.append(0)
            continue
        threshold = q * len(lengths)
        cumulative = 0
        for length in lengths:
            cumulative += 1
            if cumulative >= threshold:
                out.append(length)
                break
    return out


class TestMissRunTracker:
    def test_empty_is_zero(self):
        assert MissRunTracker(3).p99_all() == [0, 0, 0]

    def test_single_run(self):
        tracker = MissRunTracker(1)
        tracker.update(np.zeros(5, dtype=np.int64),
                       np.array([True, False, False, False, True]))
        assert tracker.percentile(0) == 3

    def test_open_run_counts(self):
        """A trace ending mid-miss-run still reports that run."""
        tracker = MissRunTracker(1)
        tracker.update(np.zeros(4, dtype=np.int64),
                       np.array([True, False, False, False]))
        assert tracker.percentile(0) == 3

    def test_runs_carry_across_chunk_boundaries(self):
        cores = np.zeros(6, dtype=np.int64)
        hit = np.array([True, False, False, False, False, True])
        whole = MissRunTracker(1)
        whole.update(cores, hit)
        split = MissRunTracker(1)
        split.update(cores[:3], hit[:3])
        split.update(cores[3:], hit[3:])
        assert split.percentile(0) == whole.percentile(0) == 4

    @pytest.mark.parametrize("chunk", [1, 3, 17, 1000])
    def test_matches_naive_reference_under_any_chunking(self, chunk):
        rng = np.random.Generator(np.random.PCG64(42))
        cores = rng.integers(0, 3, size=1000).astype(np.int64)
        hit = rng.random(1000) < 0.6
        tracker = MissRunTracker(3)
        for start in range(0, 1000, chunk):
            tracker.update(cores[start:start + chunk], hit[start:start + chunk])
        assert tracker.p99_all() == naive_percentile(cores, hit, 3)
        for q in (0.5, 0.9):
            expected = naive_percentile(cores, hit, 3, q=q)
            assert [tracker.percentile(t, q) for t in range(3)] == expected


class TestSLOAttainment:
    def test_counts_only_active_intervals(self):
        samples = [
            sample(0, hits=9, misses=1),   # 0.9 -> met (target 0.5)
            sample(0, hits=1, misses=9),   # 0.1 -> missed
            sample(0, hits=0, misses=0),   # idle: not counted
        ]
        assert slo_attainment(samples, 2, [0.5, 0.5]) == [0.5, 1.0]

    def test_idle_tenant_attains_by_default(self):
        assert slo_attainment([], 2, [0.5, 0.5]) == [1.0, 1.0]

    def test_boundary_interval_meets_target(self):
        samples = [sample(0, hits=5, misses=5)]
        assert slo_attainment(samples, 1, [0.5]) == [1.0]


class TestTenantSLOReport:
    def _report(self):
        tracker = MissRunTracker(2)
        tracker.update(np.array([0, 0, 1, 1]),
                       np.array([True, False, True, False]))
        samples = [sample(0, hits=8, misses=2), sample(1, hits=2, misses=8)]
        return TenantSLOReport.build(
            ["a", "b"], hits=[80, 20], misses=[20, 80],
            solo_hit_rates=[0.9, 0.5], samples=samples, miss_runs=tracker,
        )

    def test_build_shapes(self):
        report = self._report()
        assert report.tenants == ["a", "b"]
        assert report.slo_fraction == DEFAULT_SLO_FRACTION
        assert report.hit_rates == [0.8, 0.2]
        assert report.slo_targets == pytest.approx([0.72, 0.4])
        assert report.slo_attainment == [1.0, 0.0]
        assert report.p99_miss_run == [1, 1]
        assert report.requests == [100, 100]
        assert 0.0 < report.fairness <= 1.0

    def test_round_trip(self):
        report = self._report()
        assert TenantSLOReport.from_dict(report.to_dict()) == report

    def test_from_dict_tolerates_missing_requests(self):
        """Stores written before the requests field must still load."""
        data = self._report().to_dict()
        del data["requests"]
        assert TenantSLOReport.from_dict(data).requests == []

    def test_zero_solo_rate_scores_full_service(self):
        """A tenant that never hits solo (pure scan) cannot be starved."""
        tracker = MissRunTracker(1)
        report = TenantSLOReport.build(
            ["scan"], hits=[0], misses=[10], solo_hit_rates=[0.0],
            samples=[], miss_runs=tracker,
        )
        assert report.fairness == 1.0
        assert report.slo_targets == [0.0]
