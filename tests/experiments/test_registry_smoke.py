"""Registry-wide smoke: every scheme runs and conserves occupancy.

One tiny 4-core workload drives every registered scheme end to end. A
cache-level monitor audits occupancy conservation at every interval
boundary (the moment re-allocation mutates scheme state), so a scheme
whose bookkeeping drifts exactly at its own boundary cannot pass by
luck of the final-state check alone.
"""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.check.differential import SyntheticPerf
from repro.experiments.schemes import SCHEMES, build_scheme
from repro.util.rng import make_rng

GEOMETRY = CacheGeometry(16 << 10, 64, 8)  # 256 blocks, 32 sets
NUM_CORES = 4
STANDALONE_IPCS = [1.0, 0.9, 0.8, 0.7]

#: Schemes that re-allocate on an interval; pinned short so the smoke run
#: crosses many boundaries. The rest take no interval knobs.
INTERVAL_KWARGS = {"interval_len": 64, "sample_shift": 1}
SCHEME_KWARGS = {
    name: INTERVAL_KWARGS
    for name in (
        "prism-h", "prism-f", "prism-q", "prism-ucpx", "prism-h-dip",
        "ucp", "pipp", "fair-waypart", "vantage",
        "waypart-hitmax", "waypart-fair",
    )
}


class ConservationMonitor:
    """Asserts the occupancy counters survive every interval boundary."""

    def __init__(self, cache):
        self.cache = cache
        self.boundaries = 0

    def observe(self, core, set_index, tag, hit):
        pass

    def end_interval(self):
        self.boundaries += 1
        cache = self.cache
        assert cache.occupancy == cache.scan_occupancy()
        assert 0 <= sum(cache.occupancy) <= cache.geometry.num_blocks


def build(name):
    scheme, policy = build_scheme(
        name, NUM_CORES, STANDALONE_IPCS, **SCHEME_KWARGS.get(name, {})
    )
    cache = SharedCache(GEOMETRY, NUM_CORES, policy=policy)
    if scheme is not None:
        if hasattr(scheme, "perf"):
            scheme.perf = SyntheticPerf(NUM_CORES, seed=0)
        cache.set_scheme(scheme)
    monitor = ConservationMonitor(cache)
    cache.add_monitor(monitor)
    return cache, monitor


@pytest.mark.parametrize("name", sorted(SCHEMES))
def test_scheme_completes_and_conserves_occupancy(name):
    cache, monitor = build(name)
    rng = make_rng(0, "registry-smoke", name)
    for _ in range(4000):
        core = rng.randrange(NUM_CORES)
        # Per-core hot region plus a shared tail: hits, misses and
        # cross-core contention for every scheme.
        if rng.random() < 0.7:
            addr = (core << 16) | (rng.getrandbits(12) & ~0x3F)
        else:
            addr = rng.getrandbits(14)
        cache.access(core, addr)

    assert cache.occupancy == cache.scan_occupancy()
    assert 0 < sum(cache.occupancy) <= GEOMETRY.num_blocks
    stats = cache.stats
    assert sum(stats.hits) + sum(stats.misses) == 4000
    if name.startswith("prism"):
        # PriSM schemes must actually cross boundaries in 4000 accesses
        # with a 64-miss interval, and every boundary was audited.
        assert monitor.boundaries > 0
        assert monitor.boundaries == cache.intervals_completed
        probs = cache.scheme.manager.probabilities
        assert sum(probs) == pytest.approx(1.0)
