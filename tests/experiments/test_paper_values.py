"""Tests tying the paper-claims data to the experiment registry."""

from repro.experiments.paper_values import PAPER_CLAIMS, claims_for
from repro.experiments.registry import EXPERIMENTS


class TestPaperClaims:
    def test_every_claim_maps_to_a_registered_experiment(self):
        for claim in PAPER_CLAIMS:
            assert claim.experiment in EXPERIMENTS, claim

    def test_every_quantified_eval_experiment_has_claims(self):
        # fig4 is purely qualitative (occupancy snapshots); the tenants
        # scenario, the Belady headroom bound and the cluster-granular
        # scale-out panels extend beyond the paper (no numbers to
        # transcribe); all others carry at least one transcribed claim.
        for experiment_id in EXPERIMENTS:
            if experiment_id in ("fig4", "tenants", "headroom", "scaleout"):
                continue
            assert claims_for(experiment_id), experiment_id

    def test_headline_numbers(self):
        by_metric = {c.metric: c for c in PAPER_CLAIMS}
        assert by_metric["prism-h-vs-lru-16c"].value == 0.187
        assert by_metric["vs-vantage-16c"].value == 0.118
        assert by_metric["fairness-vs-waypart-16c"].value == 0.233
        assert by_metric["prism-over-dip"].value == 0.089

    def test_claims_have_text(self):
        assert all(c.text for c in PAPER_CLAIMS)

    def test_claims_frozen(self):
        import dataclasses
        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            PAPER_CLAIMS[0].value = 1.0
