"""Registry checks plus a micro-scale smoke run of every experiment."""

import pytest

from repro.experiments.options import RunOptions
from repro.experiments.registry import EXPERIMENTS, get_experiment

#: Micro budgets: one or two mixes, tiny instruction windows. These verify
#: that every figure's pipeline runs end to end and produces shaped rows;
#: the benchmarks/ tree runs them at meaningful scale.
MICRO = {
    "fig1": {"instructions": 25_000, "mixes_per_count": 1},
    "fig2": {"instructions": 25_000, "mixes_per_count": 1, "core_counts": (4, 8)},
    "fig3": {"instructions": 25_000, "quad_mixes": ["Q7"], "big_mixes": ["T1"]},
    "fig4": {"instructions": 25_000, "mixes": ["Q7"]},
    "fig5": {"instructions": 25_000, "mixes": ["S1"]},
    "fig6": {"instructions": 25_000, "mixes": ["S1"]},
    "fig7": {"instructions": 25_000, "quad_mixes": ["Q7"], "sixteen_mixes": ["S1"]},
    "fig8": {"instructions": 25_000, "mixes": ["Q7"]},
    "fig9": {"instructions": 25_000, "mixes": ["S1"]},
    "fig10": {"instructions": 25_000, "mixes": ["S1"]},
    "fig11": {"instructions": 50_000, "mixes": ["Q7"]},
    "fig12": {"instructions": 25_000, "mixes": ["Q7"], "bit_widths": (6,)},
    "fig13": {"instructions": 50_000, "mixes": ["Q7"], "interval_multipliers": (0.5, 1.0)},
    "sec56": {"instructions": 25_000, "mixes": ["Q7"]},
    "tenants": {"instructions": 30_000, "workload": "smoke4",
                "schemes": ["lru", "cliff", "prism-h"]},
    "headroom": {"instructions": 25_000, "mixes": ["Q7"],
                 "schemes": ["lru", "prism-h"]},
    "scaleout": {"instructions": 30_000, "workloads": ["smoke4"],
                 "schemes": ["lru", "prism-h"], "clusters": 2},
}


class TestRegistry:
    def test_all_seventeen_experiments_registered(self):
        assert len(EXPERIMENTS) == 17
        for fig in range(1, 14):
            assert f"fig{fig}" in EXPERIMENTS
        assert "sec56" in EXPERIMENTS
        assert "tenants" in EXPERIMENTS
        assert "headroom" in EXPERIMENTS
        assert "scaleout" in EXPERIMENTS

    def test_lookup(self):
        assert get_experiment("fig7").title.startswith("PriSM vs Vantage")

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="known"):
            get_experiment("fig99")

    def test_micro_budgets_cover_registry(self):
        assert set(MICRO) == set(EXPERIMENTS)


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_smoke(experiment_id):
    """Every experiment runs at micro scale and formats to a non-trivial
    paper-style table."""
    experiment = EXPERIMENTS[experiment_id]
    kwargs = dict(MICRO[experiment_id])
    options = RunOptions(instructions=kwargs.pop("instructions"))
    result = experiment.run(options=options, **kwargs)
    assert result["id"].startswith(experiment_id[:4]) or result["id"] == experiment_id
    text = experiment.format(result)
    assert len(text.splitlines()) >= 3
    assert any(ch.isdigit() for ch in text)
