"""Tests for seed sweeps and confidence intervals."""

import pytest

from repro.experiments.configs import machine
from repro.experiments.multi_seed import (
    MetricSummary,
    _summarise,
    compare_with_confidence,
    run_seeds,
)

CFG = machine(4, instructions=60_000)


class TestSummarise:
    def test_single_value_degenerate(self):
        s = _summarise([2.0], 0.95)
        assert s.mean == 2.0
        assert s.std == 0.0
        assert s.ci_low == s.ci_high == 2.0

    def test_known_values(self):
        s = _summarise([1.0, 2.0, 3.0], 0.95)
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.ci_low < 2.0 < s.ci_high

    def test_wider_confidence_wider_interval(self):
        narrow = _summarise([1.0, 2.0, 3.0, 4.0], 0.80)
        wide = _summarise([1.0, 2.0, 3.0, 4.0], 0.99)
        assert wide.ci_high - wide.ci_low > narrow.ci_high - narrow.ci_low

    def test_overlap_logic(self):
        a = MetricSummary(1.0, 0.1, 0.9, 1.1, 5)
        b = MetricSummary(1.05, 0.1, 0.95, 1.15, 5)
        c = MetricSummary(2.0, 0.1, 1.9, 2.1, 5)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_overlap_is_symmetric(self):
        a = MetricSummary(1.0, 0.1, 0.9, 1.1, 5)
        b = MetricSummary(1.05, 0.1, 0.95, 1.15, 5)
        c = MetricSummary(2.0, 0.1, 1.9, 2.1, 5)
        assert b.overlaps(a)
        assert not c.overlaps(a)

    def test_overlap_touching_intervals_counts(self):
        """Closed-interval semantics: a shared endpoint is an overlap."""
        a = MetricSummary(1.0, 0.1, 0.9, 1.1, 5)
        b = MetricSummary(1.2, 0.1, 1.1, 1.3, 5)
        assert a.overlaps(b)
        assert b.overlaps(a)

    def test_overlap_degenerate_points(self):
        """n=1 summaries collapse to points; equality is the only overlap."""
        point = MetricSummary(2.0, 0.0, 2.0, 2.0, 1)
        same = MetricSummary(2.0, 0.0, 2.0, 2.0, 1)
        other = MetricSummary(2.1, 0.0, 2.1, 2.1, 1)
        wide = MetricSummary(2.5, 1.0, 1.5, 3.5, 5)
        assert point.overlaps(same)
        assert not point.overlaps(other)
        assert point.overlaps(wide)  # point inside an interval
        assert wide.overlaps(point)

    def test_overlap_nested_intervals(self):
        inner = MetricSummary(2.0, 0.05, 1.95, 2.05, 5)
        outer = MetricSummary(2.0, 1.0, 1.0, 3.0, 5)
        assert inner.overlaps(outer)
        assert outer.overlaps(inner)

    def test_zero_variance_values_collapse_ci(self):
        """Identical samples: std 0, CI degenerates to the mean even
        though n >= 2 takes the Student-t path."""
        s = _summarise([3.5, 3.5, 3.5, 3.5], 0.95)
        assert s.std == 0.0
        assert s.ci_low == s.ci_high == s.mean == 3.5
        assert s.n == 4


class TestRunSeeds:
    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_seeds("Q1", CFG, "lru", seeds=())

    def test_summary_shape(self):
        sweep = run_seeds("Q1", CFG, "lru", seeds=(0, 1, 2))
        assert len(sweep.results) == 3
        for metric in ("antt", "fairness", "throughput", "weighted_speedup"):
            summary = sweep.metrics[metric]
            assert summary.n == 3
            assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_seed_variation_is_small_but_nonzero(self):
        """Different seeds give different (but close) results; identical
        seeds give identical results."""
        sweep = run_seeds("Q1", CFG, "prism-h", seeds=(0, 1, 2))
        antts = [r.antt for r in sweep.results]
        assert len(set(antts)) > 1
        assert sweep.metrics["antt"].std / sweep.metrics["antt"].mean < 0.2

    def test_single_seed_sweep_degenerates(self):
        """n=1: every metric summary is a zero-width point at the value."""
        sweep = run_seeds("Q1", CFG, "lru", seeds=(0,))
        assert len(sweep.results) == 1
        for metric, summary in sweep.metrics.items():
            value = getattr(sweep.results[0], metric)
            assert summary.n == 1
            assert summary.std == 0.0
            assert summary.ci_low == summary.mean == summary.ci_high == value

    def test_prism_vs_lru_separates_on_contended_mix(self):
        cfg = machine(4, instructions=150_000)
        a, b, separated = compare_with_confidence(
            "Q7", cfg, "prism-h", "lru", seeds=(0, 1, 2), metric="antt"
        )
        assert a.metrics["antt"].mean < b.metrics["antt"].mean
        assert separated  # PriSM's win on Q7 is not seed noise


class TestCompareWithConfidence:
    def test_single_seed_separation_is_mean_inequality(self):
        """With one seed both CIs are points, so "significant" reduces to
        the means differing — the docstring's documented caveat."""
        a, b, separated = compare_with_confidence(
            "Q1", CFG, "prism-h", "lru", seeds=(0,), metric="antt"
        )
        assert a.metrics["antt"].n == b.metrics["antt"].n == 1
        means_differ = a.metrics["antt"].mean != b.metrics["antt"].mean
        assert separated == means_differ

    def test_same_scheme_never_separates(self):
        """A scheme against itself is identical per seed: zero-width gap,
        overlapping (equal) intervals, not significant."""
        a, b, separated = compare_with_confidence(
            "Q1", CFG, "lru", "lru", seeds=(0, 1), metric="antt"
        )
        assert a.metrics["antt"] == b.metrics["antt"]
        assert not separated
