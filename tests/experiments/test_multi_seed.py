"""Tests for seed sweeps and confidence intervals."""

import pytest

from repro.experiments.configs import machine
from repro.experiments.multi_seed import (
    MetricSummary,
    _summarise,
    compare_with_confidence,
    run_seeds,
)

CFG = machine(4, instructions=60_000)


class TestSummarise:
    def test_single_value_degenerate(self):
        s = _summarise([2.0], 0.95)
        assert s.mean == 2.0
        assert s.std == 0.0
        assert s.ci_low == s.ci_high == 2.0

    def test_known_values(self):
        s = _summarise([1.0, 2.0, 3.0], 0.95)
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.ci_low < 2.0 < s.ci_high

    def test_wider_confidence_wider_interval(self):
        narrow = _summarise([1.0, 2.0, 3.0, 4.0], 0.80)
        wide = _summarise([1.0, 2.0, 3.0, 4.0], 0.99)
        assert wide.ci_high - wide.ci_low > narrow.ci_high - narrow.ci_low

    def test_overlap_logic(self):
        a = MetricSummary(1.0, 0.1, 0.9, 1.1, 5)
        b = MetricSummary(1.05, 0.1, 0.95, 1.15, 5)
        c = MetricSummary(2.0, 0.1, 1.9, 2.1, 5)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestRunSeeds:
    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_seeds("Q1", CFG, "lru", seeds=())

    def test_summary_shape(self):
        sweep = run_seeds("Q1", CFG, "lru", seeds=(0, 1, 2))
        assert len(sweep.results) == 3
        for metric in ("antt", "fairness", "throughput", "weighted_speedup"):
            summary = sweep.metrics[metric]
            assert summary.n == 3
            assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_seed_variation_is_small_but_nonzero(self):
        """Different seeds give different (but close) results; identical
        seeds give identical results."""
        sweep = run_seeds("Q1", CFG, "prism-h", seeds=(0, 1, 2))
        antts = [r.antt for r in sweep.results]
        assert len(set(antts)) > 1
        assert sweep.metrics["antt"].std / sweep.metrics["antt"].mean < 0.2

    def test_prism_vs_lru_separates_on_contended_mix(self):
        cfg = machine(4, instructions=150_000)
        a, b, separated = compare_with_confidence(
            "Q7", cfg, "prism-h", "lru", seeds=(0, 1, 2), metric="antt"
        )
        assert a.metrics["antt"].mean < b.metrics["antt"].mean
        assert separated  # PriSM's win on Q7 is not seed noise
