"""Tests for the design-choice ablation harness."""

from repro.experiments import ablation


class TestAblation:
    def test_variants_cover_design_md_choices(self):
        assert {"default", "pure-alg1", "paper-fallback", "no-bias-feedback",
                "sparse-shadow", "all-paper-literal"} == set(ablation.VARIANTS)
        assert ablation.VARIANTS["default"] == {}

    def test_micro_run_and_format(self):
        result = ablation.run(instructions=20_000, mixes=["S1"], cores=16)
        assert set(result["geomean"]) == set(ablation.VARIANTS)
        for value in result["geomean"].values():
            assert value > 0
        text = ablation.format_result(result)
        assert "pure-alg1" in text
        assert "geomean" in text
