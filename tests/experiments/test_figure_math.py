"""Deterministic unit tests for the figure modules' aggregation math.

The smoke tests run the real simulator; these instead feed canned
WorkloadResults through the figure code so normalisation, geomeans and
achievement counting are checked exactly.
"""

import pytest

from repro.cpu.system import CoreResult
from repro.experiments import (
    fig03_percore,
    fig04_occupancy,
    fig05_vs_waypart,
    fig06_cores_eq_ways,
    fig07_vantage,
    fig08_vantage_misses,
    fig09_fairness,
    fig10_qos,
    fig11_evprob,
    fig12_kbit,
    fig13_victim_notfound,
)
from repro.experiments.runner import WorkloadResult
from repro.metrics import geomean
from repro.telemetry import FinishSample, IntervalSample, RunTelemetry


def fake_telemetry(benchmarks, occupancy):
    """A RunTelemetry holding only finish samples (what fig4 reads)."""
    trace = RunTelemetry(num_cores=len(benchmarks), benchmarks=list(benchmarks))
    for core, name in enumerate(benchmarks):
        trace.finishes.append(
            FinishSample(
                core=core, benchmark=name, instructions=1000, cycles=1000.0,
                occupancy=occupancy,
            )
        )
    return trace


def fake_result(mix, scheme, antt, benchmarks=None, slowdown0=0.8, misses=100):
    benchmarks = benchmarks or ["a", "b", "c", "d"]
    cores = [
        CoreResult(
            name=name,
            ipc=slowdown0 if i == 0 else 1.0,
            cpi=1.0,
            llc_stall_cpi=0.1,
            instructions=1000,
            cycles=1000.0,
            hits=100,
            misses=misses,
            occupancy_at_finish=1.0 / len(benchmarks),
        )
        for i, name in enumerate(benchmarks)
    ]
    return WorkloadResult(
        mix=mix,
        scheme=scheme,
        benchmarks=benchmarks,
        cores=cores,
        standalone=[1.0] * len(benchmarks),
        antt=antt,
        fairness=0.5,
        throughput=2.0,
        weighted_speedup=2.0,
        intervals=10,
        telemetry=fake_telemetry(benchmarks, 1.0 / len(benchmarks)),
    )


class TestFig3Math(object):
    def test_normalisation_and_geomean(self, monkeypatch):
        canned = {
            "Q1": {"lru": fake_result("Q1", "lru", 2.0),
                   "prism-h": fake_result("Q1", "prism-h", 1.0),
                   "ucp": fake_result("Q1", "ucp", 1.5),
                   "pipp": fake_result("Q1", "pipp", 2.0)},
            "Q2": {"lru": fake_result("Q2", "lru", 4.0),
                   "prism-h": fake_result("Q2", "prism-h", 2.0),
                   "ucp": fake_result("Q2", "ucp", 3.0),
                   "pipp": fake_result("Q2", "pipp", 4.0)},
        }
        monkeypatch.setattr(
            fig03_percore, "compare_schemes", lambda mixes, *a, **k: canned
        )
        panel = fig03_percore._panel(4, None, ["Q1", "Q2"], 0, None)
        assert panel["rows"][0]["prism_h"] == pytest.approx(0.5)
        assert panel["rows"][0]["ucp"] == pytest.approx(0.75)
        assert panel["geomean"]["prism_h"] == pytest.approx(0.5)
        assert panel["geomean"]["pipp"] == pytest.approx(1.0)


class TestFig5Math:
    def test_rows_and_geomean(self, monkeypatch):
        canned = {
            "S1": {"lru": fake_result("S1", "lru", 2.0),
                   "prism-h": fake_result("S1", "prism-h", 1.6),
                   "waypart-hitmax": fake_result("S1", "waypart-hitmax", 1.8)},
        }
        monkeypatch.setattr(
            fig05_vs_waypart, "compare_schemes", lambda *a, **k: canned
        )
        result = fig05_vs_waypart.run(mixes=["S1"])
        assert result["rows"][0]["prism"] == pytest.approx(0.8)
        assert result["rows"][0]["waypart"] == pytest.approx(0.9)
        assert result["geomean"]["prism"] == pytest.approx(0.8)


class TestFig10Math:
    def test_achievement_counting(self, monkeypatch):
        def fake_run(mix, config, scheme, **kwargs):
            slowdowns = {"S1": 0.82, "S2": 0.70, "S3": 0.40}
            if scheme == "lru":
                return fake_result(mix, "lru", 2.0, slowdown0=0.3)
            return fake_result(mix, scheme, 1.5, slowdown0=slowdowns[mix])

        monkeypatch.setattr(fig10_qos, "run_workload", fake_run)
        result = fig10_qos.run(mixes=["S1", "S2", "S3"], target_fraction=0.8,
                               tolerance=0.15)
        # 0.82 >= 0.8; 0.70 >= 0.8*0.85=0.68; 0.40 < 0.68.
        assert result["achieved"] == 2
        assert [r["achieved"] for r in result["rows"]] == [True, True, False]
        assert all(r["lru_slowdown"] == pytest.approx(0.3) for r in result["rows"])

    def test_format_marks_misses(self, monkeypatch):
        def fake_run(mix, config, scheme, **kwargs):
            return fake_result(mix, scheme, 1.5, slowdown0=0.4)

        monkeypatch.setattr(fig10_qos, "run_workload", fake_run)
        result = fig10_qos.run(mixes=["S1"], target_fraction=0.8)
        text = fig10_qos.format_result(result)
        assert "NO" in text


class TestFig4Math:
    def test_occupancy_rows(self, monkeypatch):
        canned = {
            "Q1": {"prism-h": fake_result("Q1", "prism-h", 1.0),
                   "ucp": fake_result("Q1", "ucp", 1.2)},
        }
        monkeypatch.setattr(fig04_occupancy, "compare_schemes", lambda *a, **k: canned)
        result = fig04_occupancy.run(mixes=["Q1"])
        assert len(result["rows"]) == 4
        assert result["rows"][0]["prism_occupancy"] == pytest.approx(0.25)
        text = fig04_occupancy.format_result(result)
        assert "Q1" in text


class TestFig6Math:
    def test_single_ratio_column(self, monkeypatch):
        canned = {
            "S1": {"lru": fake_result("S1", "lru", 3.0),
                   "prism-h": fake_result("S1", "prism-h", 2.4)},
            "S2": {"lru": fake_result("S2", "lru", 2.0),
                   "prism-h": fake_result("S2", "prism-h", 1.9)},
        }
        monkeypatch.setattr(fig06_cores_eq_ways, "compare_schemes",
                            lambda *a, **k: canned)
        result = fig06_cores_eq_ways.run(mixes=["S1", "S2"])
        assert result["rows"][0]["prism_vs_lru"] == pytest.approx(0.8)
        assert result["geomean"] == pytest.approx(geomean([0.8, 0.95]))
        assert "16way" in result["geometry"]


class TestFig7Math:
    def test_timestamp_lru_normalisation(self, monkeypatch):
        canned = {
            "Q1": {"tslru": fake_result("Q1", "tslru", 2.0),
                   "vantage": fake_result("Q1", "vantage", 1.8),
                   "prism-ucpx": fake_result("Q1", "prism-ucpx", 1.6)},
        }
        monkeypatch.setattr(fig07_vantage, "compare_schemes", lambda *a, **k: canned)
        panel = fig07_vantage._panel(4, None, ["Q1"], 0, None)
        assert panel["rows"][0]["vantage"] == pytest.approx(0.9)
        assert panel["rows"][0]["prism"] == pytest.approx(0.8)
        assert panel["geomean"]["prism"] == pytest.approx(0.8)


class TestFig11Math:
    def test_stats_flattened_per_benchmark(self, monkeypatch):
        def fake_run(mix, config, scheme, **kwargs):
            r = fake_result(mix, scheme, 1.0)
            # 40 intervals with constant E_i = 0.1*(core+1): the figure's
            # probability_stats() must report exactly that mean per core.
            trace = RunTelemetry(num_cores=4, benchmarks=r.benchmarks)
            for interval in range(40):
                for core, name in enumerate(r.benchmarks):
                    trace.samples.append(
                        IntervalSample(
                            interval=interval, core=core, benchmark=name,
                            occupancy=0.25, miss_fraction=0.25,
                            eviction_probability=0.1 * (core + 1), target=0.25,
                            hits=0, misses=0, evictions=0, instructions=0,
                            ipc=0.0,
                        )
                    )
            return WorkloadResult(
                **{**r.__dict__, "intervals": 40, "telemetry": trace}
            )

        monkeypatch.setattr(fig11_evprob, "run_workload", fake_run)
        result = fig11_evprob.run(mixes=["Q1", "Q2"])
        assert len(result["rows"]) == 8
        assert result["rows"][1]["mean"] == pytest.approx(0.2)
        assert result["recomputations_min"] == result["recomputations_max"] == 40


class TestFig8Math:
    def test_majority_counting(self, monkeypatch):
        def result_with_misses(mix, scheme, misses_by_core):
            r = fake_result(mix, scheme, 1.0)
            for core, misses in enumerate(misses_by_core):
                r.cores[core] = r.cores[core].__class__(
                    **{**r.cores[core].__dict__, "misses": misses}
                )
            return r

        canned = {
            # 3 of 4 improve in Q1; only 1 of 4 in Q2.
            "Q1": {"vantage": result_with_misses("Q1", "vantage", [100, 100, 100, 100]),
                   "prism-ucpx": result_with_misses("Q1", "prism-ucpx", [50, 60, 70, 150])},
            "Q2": {"vantage": result_with_misses("Q2", "vantage", [100, 100, 100, 100]),
                   "prism-ucpx": result_with_misses("Q2", "prism-ucpx", [50, 150, 150, 150])},
        }
        monkeypatch.setattr(
            fig08_vantage_misses, "compare_schemes", lambda *a, **k: canned
        )
        result = fig08_vantage_misses.run(mixes=["Q1", "Q2"])
        assert result["mixes_with_3plus_improved"] == 1
        ratios = {(r["mix"], r["core"]): r["miss_ratio"] for r in result["rows"]}
        assert ratios[("Q1", 0)] == pytest.approx(0.5)
        assert ratios[("Q2", 3)] == pytest.approx(1.5)


class TestFig9Math:
    def test_fairness_rows_and_geomean(self, monkeypatch):
        def result_with_fairness(mix, scheme, fairness, antt):
            r = fake_result(mix, scheme, antt)
            return WorkloadResult(**{**r.__dict__, "fairness": fairness})

        canned = {
            "S1": {"lru": result_with_fairness("S1", "lru", 0.30, 2.0),
                   "fair-waypart": result_with_fairness("S1", "fair-waypart", 0.36, 1.9),
                   "prism-f": result_with_fairness("S1", "prism-f", 0.45, 1.8)},
            "S2": {"lru": result_with_fairness("S2", "lru", 0.40, 2.0),
                   "fair-waypart": result_with_fairness("S2", "fair-waypart", 0.44, 1.9),
                   "prism-f": result_with_fairness("S2", "prism-f", 0.50, 1.6)},
        }
        monkeypatch.setattr(fig09_fairness, "compare_schemes", lambda *a, **k: canned)
        result = fig09_fairness.run(mixes=["S1", "S2"])
        g = result["geomean"]
        assert g["lru"] == pytest.approx(geomean([0.30, 0.40]))
        assert g["prism_f"] == pytest.approx(geomean([0.45, 0.50]))
        assert g["prism_f_antt_vs_lru"] == pytest.approx(geomean([0.9, 0.8]))


class TestFig13Math:
    def test_interval_sweep_and_averages(self, monkeypatch):
        def fake_run(mix, config, scheme, **kwargs):
            interval = kwargs["scheme_kwargs"]["interval_len"]
            # Not-found rate inversely related to interval in this fake.
            r = fake_result(mix, scheme, 1.0)
            r.victim_not_found_rate = 100.0 / interval
            return r

        monkeypatch.setattr(fig13_victim_notfound, "run_workload", fake_run)
        result = fig13_victim_notfound.run(
            mixes=["Q1", "Q2"], interval_multipliers=(0.5, 1.0)
        )
        n = result["num_blocks"]
        assert result["average"]["w0.5"] == pytest.approx(100.0 / (n // 2))
        assert result["average"]["w1.0"] == pytest.approx(100.0 / n)
        assert result["average"]["w0.5"] > result["average"]["w1.0"]


class TestFig12Math:
    def test_ratio_against_float_reference(self, monkeypatch):
        def fake_run(mix, config, scheme, **kwargs):
            bits = (kwargs.get("scheme_kwargs") or {}).get("probability_bits")
            antt = {None: 2.0, 6: 2.2, 8: 2.0}[bits]
            return fake_result(mix, scheme, antt)

        monkeypatch.setattr(fig12_kbit, "run_workload", fake_run)
        result = fig12_kbit.run(mixes=["Q1"], bit_widths=(6, 8))
        assert result["rows"][0]["bits6"] == pytest.approx(1.1)
        assert result["rows"][0]["bits8"] == pytest.approx(1.0)
        assert result["geomean"]["bits6"] == pytest.approx(1.1)
