"""Tests for the scheme registry."""

import pytest

from repro.cache.replacement.dip import DIPPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.timestamp_lru import TimestampLRUPolicy
from repro.core.prism import PrismScheme
from repro.experiments.schemes import SCHEMES, build_scheme
from repro.partitioning import (
    FairWayPartitionScheme,
    PIPPScheme,
    TADIPPolicy,
    UCPScheme,
    VantageScheme,
)


class TestRegistry:
    def test_all_paper_schemes_present(self):
        for name in ["lru", "prism-h", "prism-f", "prism-q", "ucp", "pipp",
                     "fair-waypart", "vantage", "prism-ucpx", "dip",
                     "prism-h-dip", "tadip", "waypart-hitmax", "tslru"]:
            assert name in SCHEMES

    def test_unknown_scheme_raises_with_listing(self):
        with pytest.raises(KeyError, match="known"):
            build_scheme("bogus", 4)

    def test_lru_is_unmanaged(self):
        scheme, policy = build_scheme("lru", 4)
        assert scheme is None
        assert isinstance(policy, LRUPolicy)

    def test_prism_h(self):
        scheme, policy = build_scheme("prism-h", 4)
        assert isinstance(scheme, PrismScheme)
        assert scheme.policy_alloc.name == "prism-hitmax"
        assert isinstance(policy, LRUPolicy)

    def test_prism_q_needs_standalone_ipcs(self):
        with pytest.raises(ValueError, match="stand-alone"):
            build_scheme("prism-q", 4, None)

    def test_prism_q_target_computed_from_fraction(self):
        scheme, _ = build_scheme(
            "prism-q", 4, [2.0, 1.0, 1.0, 1.0], target_ipc_fraction=0.8
        )
        assert scheme.policy_alloc.target_ipc == pytest.approx(1.6)

    def test_vantage_paired_with_timestamp_lru(self):
        scheme, policy = build_scheme("vantage", 4)
        assert isinstance(scheme, VantageScheme)
        assert isinstance(policy, TimestampLRUPolicy)

    def test_prism_ucpx_paired_with_timestamp_lru(self):
        scheme, policy = build_scheme("prism-ucpx", 4)
        assert isinstance(scheme, PrismScheme)
        assert isinstance(policy, TimestampLRUPolicy)

    def test_dip_pairings(self):
        scheme, policy = build_scheme("dip", 4)
        assert scheme is None and isinstance(policy, DIPPolicy)
        scheme, policy = build_scheme("prism-h-dip", 4)
        assert isinstance(scheme, PrismScheme) and isinstance(policy, DIPPolicy)

    def test_tadip_gets_core_count(self):
        scheme, policy = build_scheme("tadip", 8)
        assert scheme is None
        assert isinstance(policy, TADIPPolicy)
        assert policy.num_cores == 8

    def test_baseline_schemes(self):
        assert isinstance(build_scheme("ucp", 4)[0], UCPScheme)
        assert isinstance(build_scheme("pipp", 4)[0], PIPPScheme)
        assert isinstance(build_scheme("fair-waypart", 4)[0], FairWayPartitionScheme)

    def test_kwargs_forwarded(self):
        scheme, _ = build_scheme("prism-h", 4, probability_bits=6)
        assert scheme.probability_bits == 6
        scheme, _ = build_scheme("prism-h", 4, interval_len=99)
        assert scheme._interval_override == 99

    def test_specs_have_descriptions(self):
        for spec in SCHEMES.values():
            assert spec.description
