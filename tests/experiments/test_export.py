"""Tests for the CSV exporter."""

import csv

import pytest

from repro.experiments.export import collect_tables, export_csv, rows_to_csv


class TestCollectTables:
    def test_top_level_rows(self):
        result = {"id": "fig9", "rows": [{"mix": "S1", "lru": 0.4}]}
        tables = collect_tables(result)
        assert set(tables) == {"fig9"}

    def test_nested_panels(self):
        result = {
            "id": "fig3",
            "quad": {"rows": [{"mix": "Q1"}], "geomean": {}},
            "thirtytwo": {"rows": [{"mix": "T1"}]},
        }
        tables = collect_tables(result)
        assert set(tables) == {"fig3_quad", "fig3_thirtytwo"}

    def test_ignores_non_tables(self):
        result = {"id": "x", "rows": [], "geomean": {"a": 1.0}, "count": 3}
        assert collect_tables(result) == {}


class TestWrite:
    def test_roundtrip(self, tmp_path):
        rows = [{"mix": "Q1", "value": 0.5}, {"mix": "Q2", "value": 0.7, "extra": 1}]
        path = rows_to_csv(rows, tmp_path / "t.csv")
        with open(path) as handle:
            read = list(csv.DictReader(handle))
        assert read[0]["mix"] == "Q1"
        assert read[1]["extra"] == "1"
        assert read[0]["extra"] == ""  # union header, missing cell empty

    def test_empty_table_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            rows_to_csv([], tmp_path / "t.csv")

    def test_export_csv_end_to_end(self, tmp_path):
        from repro.experiments import fig13_victim_notfound
        from repro.experiments.options import RunOptions

        result = fig13_victim_notfound.run(
            options=RunOptions(instructions=15_000),
            mixes=["Q1"], interval_multipliers=(1.0,),
        )
        paths = export_csv(result, tmp_path / "fig13")
        assert len(paths) == 1
        assert paths[0].exists()
        with open(paths[0]) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["mix"] == "Q1"
