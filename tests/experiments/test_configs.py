"""Tests for machine configurations (Table 2)."""

import pytest

from repro.experiments.configs import PAPER_LLC, MachineConfig, machine


class TestTable2:
    def test_paper_table(self):
        assert PAPER_LLC[4] == (4 << 20, 16, 1)
        assert PAPER_LLC[16] == (8 << 20, 32, 4)
        assert PAPER_LLC[32] == (16 << 20, 64, 8)

    @pytest.mark.parametrize("cores,size_kb,assoc,mc", [
        (4, 64, 16, 1),
        (8, 64, 16, 2),
        (16, 128, 32, 4),
        (32, 256, 64, 8),
    ])
    def test_scaled_defaults(self, cores, size_kb, assoc, mc):
        config = machine(cores)
        assert config.geometry.size_bytes == size_kb << 10
        assert config.geometry.assoc == assoc
        assert config.num_controllers == mc
        assert config.num_cores == cores

    def test_unknown_core_count(self):
        with pytest.raises(ValueError):
            machine(6)

    def test_scale_factor_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            machine(4, scale_factor=10)

    def test_assoc_override_for_fig1b(self):
        config = machine(4, assoc=256)
        assert config.geometry.assoc == 256
        assert config.geometry.size_bytes == 64 << 10  # capacity unchanged

    def test_llc_override_for_fig6(self):
        config = machine(16, assoc=16, llc_bytes=8 << 20)
        assert config.geometry.assoc == 16
        assert config.geometry.size_bytes == (8 << 20) // 64
        assert config.geometry.num_blocks == 2048

    def test_instructions_override(self):
        assert machine(4, instructions=123).instructions == 123

    def test_default_instructions_decrease_with_cores(self):
        assert machine(4).instructions > machine(32).instructions

    def test_str_representation(self):
        text = str(machine(4))
        assert "4core" in text and "64KB" in text

    def test_config_is_frozen(self):
        config = machine(4)
        with pytest.raises(AttributeError):
            config.num_cores = 8
