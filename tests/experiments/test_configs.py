"""Tests for machine configurations (Table 2)."""

import pytest

from repro.experiments.configs import PAPER_LLC, MachineConfig, machine


class TestTable2:
    def test_paper_table(self):
        assert PAPER_LLC[4] == (4 << 20, 16, 1)
        assert PAPER_LLC[16] == (8 << 20, 32, 4)
        assert PAPER_LLC[32] == (16 << 20, 64, 8)
        # Extrapolated one step past Table 2 for the scale-out runs.
        assert PAPER_LLC[64] == (32 << 20, 64, 16)

    @pytest.mark.parametrize("cores,size_kb,assoc,mc", [
        (4, 64, 16, 1),
        (8, 64, 16, 2),
        (16, 128, 32, 4),
        (32, 256, 64, 8),
        (64, 512, 64, 16),
    ])
    def test_scaled_defaults(self, cores, size_kb, assoc, mc):
        config = machine(cores)
        assert config.geometry.size_bytes == size_kb << 10
        assert config.geometry.assoc == assoc
        assert config.num_controllers == mc
        assert config.num_cores == cores

    def test_unknown_core_count(self):
        with pytest.raises(ValueError):
            machine(6)

    def test_scale_factor_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            machine(4, scale_factor=10)

    def test_assoc_override_for_fig1b(self):
        config = machine(4, assoc=256)
        assert config.geometry.assoc == 256
        assert config.geometry.size_bytes == 64 << 10  # capacity unchanged

    def test_llc_override_for_fig6(self):
        config = machine(16, assoc=16, llc_bytes=8 << 20)
        assert config.geometry.assoc == 16
        assert config.geometry.size_bytes == (8 << 20) // 64
        assert config.geometry.num_blocks == 2048

    def test_instructions_override(self):
        assert machine(4, instructions=123).instructions == 123

    def test_default_instructions_decrease_with_cores(self):
        assert machine(4).instructions > machine(32).instructions

    def test_str_representation(self):
        text = str(machine(4))
        assert "4core" in text and "64KB" in text

    def test_config_is_frozen(self):
        config = machine(4)
        with pytest.raises(AttributeError):
            config.num_cores = 8


class TestHierarchy:
    def test_default_machine_has_no_l1(self):
        config = machine(4)
        assert config.l1_geometry is None
        assert config.l1_inclusive is False
        assert config.dram_banks == 1 and config.dram_row_blocks == 0

    def test_inclusive_l1_scales_with_the_llc(self):
        config = machine(4, l1="inclusive")
        # 64 KB unscaled / scale 64 = 1 KB, 2-way.
        assert config.l1_geometry.size_bytes == 1 << 10
        assert config.l1_geometry.assoc == 2
        assert config.l1_inclusive is True

    def test_non_inclusive_mode(self):
        config = machine(4, l1="non-inclusive")
        assert config.l1_geometry is not None
        assert config.l1_inclusive is False

    def test_l1_overrides(self):
        config = machine(4, l1="inclusive", l1_bytes=128 << 10, l1_assoc=4)
        assert config.l1_geometry.size_bytes == 2 << 10
        assert config.l1_geometry.assoc == 4

    def test_l1_bytes_without_mode_rejected(self):
        with pytest.raises(ValueError, match="l1_bytes"):
            machine(4, l1_bytes=64 << 10)

    def test_unknown_l1_mode_rejected(self):
        with pytest.raises(ValueError, match="inclusive"):
            machine(4, l1="exclusive")

    def test_str_shows_hierarchy_and_dram(self):
        text = str(machine(4, l1="inclusive", dram_banks=4, dram_row_blocks=8))
        assert "/l1-" in text and "-incl" in text
        assert "/dram-4b-8r" in text
        assert "/l1-" not in str(machine(4))
