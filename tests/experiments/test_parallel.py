"""Tests for the parallel experiment executor.

The load-bearing property is *bit-identical determinism*: a parallel run
must be indistinguishable from the serial loop it replaces, whatever the
worker count or completion order. ``WorkloadResult`` and ``CoreResult``
are plain dataclasses of primitives, so ``==`` compares every reported
figure exactly (no tolerances).
"""

import os

import pytest

from repro.experiments.common import compare_schemes
from repro.experiments.configs import machine
from repro.experiments.multi_seed import run_seeds
from repro.experiments.parallel import (
    JOBS_ENV,
    RunSpec,
    SpecRunError,
    parallel_compare_schemes,
    resolve_jobs,
    run_specs,
)
from repro.experiments.runner import DEFAULT_STANDALONE_CACHE, run_workload

CONFIG = machine(4, instructions=3_000)
INSTR = 3_000


@pytest.fixture(autouse=True)
def _fresh_caches(monkeypatch):
    """Isolate the memoised stand-alone IPCs and the jobs environment."""
    monkeypatch.delenv(JOBS_ENV, raising=False)
    DEFAULT_STANDALONE_CACHE.clear()
    yield
    DEFAULT_STANDALONE_CACHE.clear()


class TestResolveJobs:
    def test_default_is_serial(self):
        assert resolve_jobs(None) == 1

    def test_explicit_value(self):
        assert resolve_jobs(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs(None) == 5

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs(2) == 2

    def test_invalid_env_is_serial(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        assert resolve_jobs(None) == 1

    def test_zero_means_all_cpus(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(-1) >= 1

    def test_resolution_matrix(self, monkeypatch):
        """The full None/garbage/0/negative matrix, explicit and via env.

        Documented semantics: ``None`` consults ``REPRO_JOBS`` (unset or
        invalid means serial); any value ``<= 0`` — explicit or from the
        environment — means all cores.
        """
        all_cpus = os.cpu_count() or 1
        # explicit argument
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == all_cpus
        assert resolve_jobs(-1) == all_cpus
        assert resolve_jobs(-128) == all_cpus
        assert resolve_jobs(3) == 3
        # environment variable (jobs=None)
        for env_value, expected in [
            ("garbage", 1),
            ("", 1),
            ("1.5", 1),
            ("0", all_cpus),
            ("-1", all_cpus),
            ("-128", all_cpus),
            ("4", 4),
        ]:
            monkeypatch.setenv(JOBS_ENV, env_value)
            assert resolve_jobs(None) == expected, f"REPRO_JOBS={env_value!r}"
        # an explicit value always beats the environment
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(2) == 2
        assert resolve_jobs(0) == all_cpus


class TestSpecRunError:
    """Worker failures must name the spec that died (satellite fix)."""

    GOOD = RunSpec(mix="Q1", scheme="lru", instructions=INSTR)
    BAD = RunSpec(mix="Q2", scheme="no-such-scheme", instructions=INSTR)

    def test_serial_failure_wrapped_with_spec_context(self):
        with pytest.raises(SpecRunError) as excinfo:
            run_specs([self.GOOD, self.BAD], CONFIG, jobs=1)
        error = excinfo.value
        assert error.spec == self.BAD
        assert error.index == 1
        assert error.error_type == "KeyError"
        assert self.BAD.describe() in str(error)
        assert "no-such-scheme" in str(error)
        # The original exception is chained on the serial path.
        assert isinstance(error.__cause__, KeyError)

    def test_pool_failure_wrapped_with_spec_context(self):
        with pytest.raises(SpecRunError) as excinfo:
            run_specs([self.GOOD, self.BAD, self.GOOD], CONFIG, jobs=2)
        error = excinfo.value
        assert error.spec == self.BAD
        assert error.index == 1
        assert self.BAD.describe() in str(error)
        # The worker's formatted traceback crosses the process boundary.
        assert "KeyError" in error.worker_traceback
        assert "no-such-scheme" in error.worker_traceback


class TestRunSpecs:
    def test_serial_matches_run_workload(self):
        spec = RunSpec(mix="Q1", scheme="lru", instructions=INSTR)
        [result] = run_specs([spec], CONFIG, jobs=1)
        expected = run_workload("Q1", CONFIG, "lru", instructions=INSTR)
        assert result == expected

    def test_results_in_spec_order(self):
        specs = [
            RunSpec(mix="Q1", scheme="lru", instructions=INSTR),
            RunSpec(mix="Q2", scheme="lru", instructions=INSTR),
            RunSpec(mix="Q1", scheme="prism-h", instructions=INSTR),
        ]
        results = run_specs(specs, CONFIG, jobs=2)
        assert [r.mix for r in results] == ["Q1", "Q2", "Q1"]
        assert [r.scheme for r in results] == ["lru", "lru", "prism-h"]

    def test_empty_specs(self):
        assert run_specs([], CONFIG, jobs=2) == []

    def test_progress_called_per_run(self):
        messages = []
        specs = [
            RunSpec(mix="Q1", scheme="lru", instructions=INSTR),
            RunSpec(mix="Q1", scheme="dip", instructions=INSTR),
        ]
        run_specs(specs, CONFIG, jobs=1, progress=messages.append)
        assert len(messages) == 2
        assert "Q1" in messages[0] and "lru" in messages[0]


class TestParallelIdenticalToSerial:
    """The acceptance property: pool results == serial results, exactly."""

    MIXES = ["Q1", "Q2"]
    SCHEMES = ["lru", "prism-h"]

    def test_compare_schemes_bit_identical(self):
        serial = compare_schemes(
            self.MIXES, CONFIG, self.SCHEMES, instructions=INSTR, jobs=1
        )
        DEFAULT_STANDALONE_CACHE.clear()
        parallel = compare_schemes(
            self.MIXES, CONFIG, self.SCHEMES, instructions=INSTR, jobs=2
        )
        assert set(serial) == set(parallel)
        for mix in serial:
            for scheme in serial[mix]:
                # Dataclass equality: every metric, per-core counter and
                # extra diagnostic must match exactly.
                assert serial[mix][scheme] == parallel[mix][scheme]

    def test_compare_schemes_env_opt_in(self, monkeypatch):
        serial = compare_schemes(["Q1"], CONFIG, ["lru"], instructions=INSTR)
        DEFAULT_STANDALONE_CACHE.clear()
        monkeypatch.setenv(JOBS_ENV, "2")
        parallel = compare_schemes(["Q1"], CONFIG, ["lru"], instructions=INSTR)
        assert serial["Q1"]["lru"] == parallel["Q1"]["lru"]

    def test_parallel_compare_schemes_shape(self):
        results = parallel_compare_schemes(
            ["Q1"], CONFIG, ["lru", "dip"], instructions=INSTR, jobs=2
        )
        assert list(results) == ["Q1"]
        assert list(results["Q1"]) == ["lru", "dip"]

    def test_telemetry_traces_bit_identical(self, tmp_path):
        """A --jobs trace must be byte-identical to the serial trace."""
        specs = [
            RunSpec(mix=mix, scheme=scheme, instructions=INSTR, telemetry=True)
            for mix in self.MIXES
            for scheme in self.SCHEMES
        ]
        serial = run_specs(specs, CONFIG, jobs=1)
        DEFAULT_STANDALONE_CACHE.clear()
        parallel = run_specs(specs, CONFIG, jobs=2)
        for i, (a, b) in enumerate(zip(serial, parallel)):
            # RunTelemetry equality covers every sample; timing is excluded.
            assert a.telemetry == b.telemetry, specs[i]
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        serial[0].telemetry.write(serial_path)
        parallel[0].telemetry.write(parallel_path)
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    def test_run_seeds_bit_identical(self):
        serial = run_seeds("Q1", CONFIG, "prism-h", seeds=(0, 1), instructions=INSTR)
        DEFAULT_STANDALONE_CACHE.clear()
        parallel = run_seeds(
            "Q1", CONFIG, "prism-h", seeds=(0, 1), instructions=INSTR, jobs=2
        )
        assert serial.results == parallel.results
        assert serial.metrics == parallel.metrics
