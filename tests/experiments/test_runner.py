"""Tests for the workload runner."""

import pytest

from repro.experiments.configs import machine
from repro.experiments.options import RunOptions
from repro.experiments.runner import (
    DEFAULT_STANDALONE_CACHE,
    StandaloneIPCCache,
    _resolve_mix,
    run_workload,
    standalone_ipcs,
)
from repro.workloads.spec import get_profile

CFG = machine(4, instructions=40_000)


class TestRunWorkload:
    def test_named_mix(self):
        result = run_workload("Q1", CFG, "lru")
        assert result.mix == "Q1"
        assert len(result.cores) == 4
        assert result.antt >= 1.0 or result.antt > 0

    def test_custom_mix_by_names(self):
        result = run_workload(
            ["179.art", "470.lbm", "416.gamess", "403.gcc"], CFG, "lru"
        )
        assert result.mix == "custom"
        assert result.benchmarks[0] == "179.art"

    def test_custom_mix_by_profiles(self):
        profiles = [get_profile(n) for n in ("179.art", "470.lbm", "416.gamess", "403.gcc")]
        result = run_workload(profiles, CFG, "lru")
        assert result.benchmarks == [p.name for p in profiles]

    def test_mix_size_mismatch(self):
        with pytest.raises(ValueError, match="cores"):
            run_workload(["179.art", "470.lbm"], CFG, "lru")

    def test_metrics_populated(self):
        result = run_workload("Q1", CFG, "lru")
        assert result.antt > 0
        assert 0 < result.fairness <= 1.0
        assert result.throughput > 0
        assert result.weighted_speedup > 0
        assert len(result.standalone) == 4

    def test_slowdown_helper(self):
        result = run_workload("Q1", CFG, "lru")
        for core in range(4):
            assert result.slowdown(core) == pytest.approx(
                result.cores[core].ipc / result.standalone[core]
            )

    def test_prism_diagnostics_typed(self):
        result = run_workload("Q1", CFG, "prism-h")
        assert result.eviction_probabilities is not None
        assert sum(result.eviction_probabilities) == pytest.approx(1.0)
        assert result.victim_not_found_rate is not None
        assert result.probability_stats is not None
        assert result.targets is not None

    def test_lru_diagnostics_absent(self):
        result = run_workload("Q1", CFG, "lru")
        assert result.eviction_probabilities is None
        assert result.victim_not_found_rate is None
        assert result.quotas is None
        assert result.telemetry is None

    def test_ucp_quotas_typed(self):
        result = run_workload("Q1", CFG, "ucp")
        assert sum(result.quotas) == CFG.geometry.assoc

    def test_deterministic(self):
        a = run_workload("Q1", CFG, "prism-h", seed=3)
        DEFAULT_STANDALONE_CACHE.clear()
        b = run_workload("Q1", CFG, "prism-h", seed=3)
        assert a.shared_ipcs() == b.shared_ipcs()

    def test_scheme_kwargs_forwarded(self):
        result = run_workload(
            "Q1", CFG, "prism-h", scheme_kwargs={"interval_len": 128}
        )
        assert result.intervals > run_workload("Q1", CFG, "prism-h").intervals

    def test_options_supply_defaults(self):
        options = RunOptions(seed=3, instructions=40_000)
        a = run_workload("Q1", CFG, "prism-h", options=options)
        b = run_workload("Q1", CFG, "prism-h", seed=3, instructions=40_000)
        assert a == b

    def test_explicit_kwargs_beat_options(self):
        options = RunOptions(seed=5)
        a = run_workload("Q1", CFG, "prism-h", seed=3, options=options)
        b = run_workload("Q1", CFG, "prism-h", seed=3)
        assert a == b

    def test_options_telemetry(self):
        result = run_workload(
            "Q1", CFG, "prism-h", options=RunOptions(telemetry=True)
        )
        assert result.telemetry is not None
        assert result.telemetry.num_cores == 4


class TestRemovedDeprecatedAPIs:
    """The PR-2-era shims are gone; the replacement paths hold."""

    def test_extra_alias_removed(self):
        result = run_workload("Q1", CFG, "lru")
        with pytest.raises(AttributeError):
            result.extra

    def test_clear_standalone_cache_removed(self):
        import repro.experiments.runner as runner

        assert not hasattr(runner, "clear_standalone_cache")

    def test_resolve_mix_shim_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="resolve_workload"):
            label, profiles = _resolve_mix("Q1")
        assert label == "Q1"
        assert len(profiles) == 4


class TestStandaloneCache:
    def test_memoisation(self):
        profiles = [get_profile("179.art")]
        cfg = machine(4, instructions=30_000)
        standalone_ipcs(profiles, cfg)
        size = len(DEFAULT_STANDALONE_CACHE)
        standalone_ipcs(profiles, cfg)
        assert len(DEFAULT_STANDALONE_CACHE) == size

    def test_policy_kind_keys_separately(self):
        profiles = [get_profile("179.art")]
        cfg = machine(4, instructions=30_000)
        lru_ipc = standalone_ipcs(profiles, cfg, scheme="lru")[0]
        ts_ipc = standalone_ipcs(profiles, cfg, scheme="tslru")[0]
        # Keys must not collide: both present in the cache.
        kinds = {key[2] for key in DEFAULT_STANDALONE_CACHE.keys()}
        assert {"LRUPolicy", "TimestampLRUPolicy"} <= kinds
        assert lru_ipc > 0 and ts_ipc > 0

    def test_duplicate_profiles_share_one_run(self):
        profiles = [get_profile("470.lbm")] * 3
        cfg = machine(4, instructions=30_000)
        ipcs = standalone_ipcs(profiles, cfg)
        assert ipcs[0] == ipcs[1] == ipcs[2]

    def test_private_cache_instance(self):
        profiles = [get_profile("179.art")]
        cfg = machine(4, instructions=30_000)
        private = StandaloneIPCCache()
        ipcs = standalone_ipcs(profiles, cfg, cache=private)
        assert len(private) == 1
        assert len(DEFAULT_STANDALONE_CACHE) == 0  # default untouched
        assert ipcs == standalone_ipcs(profiles, cfg, cache=private)

    def test_options_carry_private_cache(self):
        private = StandaloneIPCCache()
        run_workload(
            "Q1", CFG, "lru", options=RunOptions(standalone_cache=private)
        )
        assert len(private) == 4
        assert len(DEFAULT_STANDALONE_CACHE) == 0


class TestBackendSelection:
    """run_workload's backend axis: bit-exact results, loud fallbacks."""

    def test_vector_backend_matches_classic(self):
        classic = run_workload("Q1", CFG, "prism-h")
        vector = run_workload("Q1", CFG, "prism-h", backend="vector")
        assert vector.antt == classic.antt
        assert vector.fairness == classic.fairness
        for a, b in zip(classic.cores, vector.cores):
            assert (a.hits, a.misses, a.instructions) == (b.hits, b.misses, b.instructions)
            assert a.ipc == b.ipc

    def test_options_supply_backend(self):
        explicit = run_workload("Q1", CFG, "dip", backend="vector")
        via_options = run_workload(
            "Q1", CFG, "dip", options=RunOptions(backend="vector")
        )
        assert via_options.antt == explicit.antt

    def test_check_forces_classic(self):
        """The invariant checker walks classic CacheSet lists; check wins."""
        with pytest.warns(RuntimeWarning, match="check=True audits the classic"):
            result = run_workload("Q1", CFG, "lru", backend="vector", check=True)
        assert result.antt > 0

    def test_unsupported_scheme_falls_back_loudly(self):
        """UCP is not vectorisable: classic fallback plus a RuntimeWarning."""
        with pytest.warns(RuntimeWarning, match="falling back"):
            fell_back = run_workload("Q1", CFG, "ucp", backend="vector")
        classic = run_workload("Q1", CFG, "ucp")
        assert fell_back.antt == classic.antt
