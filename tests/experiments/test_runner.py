"""Tests for the workload runner."""

import pytest

from repro.experiments.configs import machine
from repro.experiments.runner import (
    _STANDALONE_CACHE,
    clear_standalone_cache,
    run_workload,
    standalone_ipcs,
)
from repro.workloads.spec import get_profile

CFG = machine(4, instructions=40_000)


class TestRunWorkload:
    def test_named_mix(self):
        result = run_workload("Q1", CFG, "lru")
        assert result.mix == "Q1"
        assert len(result.cores) == 4
        assert result.antt >= 1.0 or result.antt > 0

    def test_custom_mix_by_names(self):
        result = run_workload(
            ["179.art", "470.lbm", "416.gamess", "403.gcc"], CFG, "lru"
        )
        assert result.mix == "custom"
        assert result.benchmarks[0] == "179.art"

    def test_custom_mix_by_profiles(self):
        profiles = [get_profile(n) for n in ("179.art", "470.lbm", "416.gamess", "403.gcc")]
        result = run_workload(profiles, CFG, "lru")
        assert result.benchmarks == [p.name for p in profiles]

    def test_mix_size_mismatch(self):
        with pytest.raises(ValueError, match="cores"):
            run_workload(["179.art", "470.lbm"], CFG, "lru")

    def test_metrics_populated(self):
        result = run_workload("Q1", CFG, "lru")
        assert result.antt > 0
        assert 0 < result.fairness <= 1.0
        assert result.throughput > 0
        assert result.weighted_speedup > 0
        assert len(result.standalone) == 4

    def test_slowdown_helper(self):
        result = run_workload("Q1", CFG, "lru")
        for core in range(4):
            assert result.slowdown(core) == pytest.approx(
                result.cores[core].ipc / result.standalone[core]
            )

    def test_prism_extras_collected(self):
        result = run_workload("Q1", CFG, "prism-h")
        assert "eviction_probabilities" in result.extra
        assert "victim_not_found_rate" in result.extra
        assert "probability_stats" in result.extra
        assert "targets" in result.extra

    def test_ucp_extras_collected(self):
        result = run_workload("Q1", CFG, "ucp")
        assert sum(result.extra["quotas"]) == CFG.geometry.assoc

    def test_deterministic(self):
        a = run_workload("Q1", CFG, "prism-h", seed=3)
        clear_standalone_cache()
        b = run_workload("Q1", CFG, "prism-h", seed=3)
        assert a.shared_ipcs() == b.shared_ipcs()

    def test_scheme_kwargs_forwarded(self):
        result = run_workload(
            "Q1", CFG, "prism-h", scheme_kwargs={"interval_len": 128}
        )
        assert result.intervals > run_workload("Q1", CFG, "prism-h").intervals


class TestStandaloneCache:
    def test_memoisation(self):
        profiles = [get_profile("179.art")]
        cfg = machine(4, instructions=30_000)
        standalone_ipcs(profiles, cfg)
        size = len(_STANDALONE_CACHE)
        standalone_ipcs(profiles, cfg)
        assert len(_STANDALONE_CACHE) == size

    def test_policy_kind_keys_separately(self):
        profiles = [get_profile("179.art")]
        cfg = machine(4, instructions=30_000)
        lru_ipc = standalone_ipcs(profiles, cfg, scheme="lru")[0]
        ts_ipc = standalone_ipcs(profiles, cfg, scheme="tslru")[0]
        # Keys must not collide: both present in the cache.
        kinds = {key[2] for key in _STANDALONE_CACHE}
        assert {"LRUPolicy", "TimestampLRUPolicy"} <= kinds
        assert lru_ipc > 0 and ts_ipc > 0

    def test_duplicate_profiles_share_one_run(self):
        profiles = [get_profile("470.lbm")] * 3
        cfg = machine(4, instructions=30_000)
        ipcs = standalone_ipcs(profiles, cfg)
        assert ipcs[0] == ipcs[1] == ipcs[2]
