"""Tests for the markdown report generator."""

import pytest

from repro.experiments.report import BUDGETS, generate_report
from repro.experiments.registry import EXPERIMENTS


class TestBudgets:
    def test_micro_and_quick_cover_registry(self):
        assert set(BUDGETS["micro"]) == set(EXPERIMENTS)
        assert set(BUDGETS["quick"]) == set(EXPERIMENTS)

    def test_full_budget_is_defaults(self):
        assert BUDGETS["full"] == {}


class TestGenerate:
    def test_unknown_budget(self, tmp_path):
        with pytest.raises(ValueError, match="budget"):
            generate_report(tmp_path / "r.md", budget="bogus")

    def test_unknown_experiment(self, tmp_path):
        with pytest.raises(KeyError, match="fig99"):
            generate_report(tmp_path / "r.md", budget="micro", only=["fig99"])

    def test_single_experiment_report(self, tmp_path):
        path = generate_report(tmp_path / "r.md", budget="micro", only=["fig12"])
        text = path.read_text()
        assert "# PriSM reproduction report" in text
        assert "## fig12" in text
        assert "**Paper:**" in text
        assert "Figure 12" in text

    def test_progress_callback(self, tmp_path):
        seen = []
        generate_report(
            tmp_path / "r.md", budget="micro", only=["sec56"], progress=seen.append
        )
        assert any("sec56" in msg for msg in seen)

    def test_module_cli(self, tmp_path, capsys):
        from repro.experiments.report import main

        out = tmp_path / "cli.md"
        assert main(["-o", str(out), "--budget", "micro", "--only", "fig13",
                     "--quiet"]) == 0
        assert out.exists()
        assert "fig13" in out.read_text()
