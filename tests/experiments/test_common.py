"""Tests for the experiment helpers (tables, ratios, budgets)."""

import pytest

from repro.experiments.common import (
    compare_schemes,
    format_table,
    geomean_ratio,
    resolve_instructions,
)
from repro.experiments.configs import machine


class TestFormatTable:
    def test_headers_and_separator(self):
        text = format_table(["a", "b"], [[1, 2.5]])
        lines = text.splitlines()
        assert len(lines) == 3
        assert "a" in lines[0] and "b" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456]])
        assert "0.1235" in text

    def test_int_and_str_cells(self):
        text = format_table(["x", "y"], [[42, "Q7"]])
        assert "42" in text and "Q7" in text

    def test_width(self):
        text = format_table(["x"], [[1]], width=20)
        assert len(text.splitlines()[0]) == 20


class TestResolveInstructions:
    def test_none_passthrough(self):
        assert resolve_instructions(None, 4) is None

    def test_int_passthrough(self):
        assert resolve_instructions(100, 16) == 100

    def test_dict_lookup(self):
        assert resolve_instructions({4: 10, 16: 20}, 16) == 20

    def test_dict_missing_core_count(self):
        assert resolve_instructions({4: 10}, 32) is None


class TestCompareSchemes:
    def test_structure_and_ratio(self):
        config = machine(4, instructions=20_000)
        results = compare_schemes(["Q1"], config, ["lru", "prism-h"])
        assert set(results) == {"Q1"}
        assert set(results["Q1"]) == {"lru", "prism-h"}
        ratio = geomean_ratio(results, "prism-h", "lru")
        assert ratio == pytest.approx(
            results["Q1"]["prism-h"].antt / results["Q1"]["lru"].antt
        )

    def test_progress_callback(self):
        config = machine(4, instructions=5_000)
        seen = []
        compare_schemes(["Q1"], config, ["lru"], progress=seen.append)
        assert seen == ["Q1 / lru"]
