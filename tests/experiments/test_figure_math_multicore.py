"""Canned-data tests for the multi-core-count figures (Fig. 1 and Fig. 2)."""

import pytest

from repro.experiments import fig01_motivation, fig02_summary
from repro.metrics import geomean
from tests.experiments.test_figure_math import fake_result


def canned_for(schemes, antts_by_mix):
    """results[mix][scheme] with the given per-mix base ANTT scaled per scheme."""
    out = {}
    for mix, base in antts_by_mix.items():
        out[mix] = {
            scheme: fake_result(mix, scheme, base * factor)
            for scheme, factor in schemes.items()
        }
    return out


class TestFig1aMath:
    def test_scalability_rows(self, monkeypatch):
        factors_by_cores = {4: 0.8, 8: 0.9, 16: 0.95, 32: 1.0}
        calls = {"i": 0}

        def fake_compare(mixes, config, schemes, **kwargs):
            factor = factors_by_cores[config.num_cores]
            scheme_factors = {s: (factor if s != "lru" else 1.0) for s in schemes}
            return canned_for(scheme_factors, {m: 2.0 for m in mixes})

        monkeypatch.setattr(fig01_motivation, "compare_schemes", fake_compare)
        result = fig01_motivation.run_scalability(mixes_per_count=2)
        rows = result["rows"]
        assert [r["cores"] for r in rows] == [4, 8, 16, 32]
        # The degradation trend appears exactly as injected.
        assert rows[0]["ucp_antt_vs_lru"] == pytest.approx(0.8)
        assert rows[3]["ucp_antt_vs_lru"] == pytest.approx(1.0)
        # Fairness columns only exist through 16 cores.
        assert "fairness_waypart" in rows[2]
        assert "fairness_waypart" not in rows[3]


class TestFig1bMath:
    def test_fine_grain_panel(self, monkeypatch):
        # Throughput rises with associativity for UCP only.
        throughput_by_assoc = {16: 3.0, 64: 3.2, 256: 3.3}

        def fake_compare(mixes, config, schemes, **kwargs):
            out = {}
            for mix in mixes:
                out[mix] = {}
                for scheme in schemes:
                    r = fake_result(mix, scheme, 1.0)
                    thr = throughput_by_assoc[config.geometry.assoc]
                    if scheme == "lru":
                        thr = 2.8
                    out[mix] = {**out[mix], scheme: type(r)(**{**r.__dict__,
                                                               "throughput": thr})}
            return out

        monkeypatch.setattr(fig01_motivation, "compare_schemes", fake_compare)
        result = fig01_motivation.run_fine_grain(mixes_per_count=2)
        rows = result["rows"]
        assert [r["assoc"] for r in rows] == [16, 64, 256]
        ucp_4c = [r["ucp_throughput_4c"] for r in rows]
        assert ucp_4c == sorted(ucp_4c)  # rises with associativity
        lru_4c = [r["lru_throughput_4c"] for r in rows]
        assert max(lru_4c) - min(lru_4c) < 1e-9  # LRU flat


class TestFig2Math:
    def test_summary_rows(self, monkeypatch):
        def fake_compare(mixes, config, schemes, **kwargs):
            scheme_factors = {
                "lru": 1.0, "prism-h": 0.85, "ucp": 0.9, "pipp": 0.95,
                "prism-f": 0.9, "fair-waypart": 0.97,
            }
            return canned_for(
                {s: scheme_factors[s] for s in schemes}, {m: 2.0 for m in mixes}
            )

        monkeypatch.setattr(fig02_summary, "compare_schemes", fake_compare)
        result = fig02_summary.run(mixes_per_count=2, core_counts=(4, 16, 32))
        rows = {r["cores"]: r for r in result["rows"]}
        assert rows[4]["prism_h_antt_vs_lru"] == pytest.approx(0.85)
        assert rows[16]["prism_f_antt_vs_lru"] == pytest.approx(0.9)
        assert "fairness_prism_f" in rows[16]
        assert "fairness_prism_f" not in rows[32]
        text = fig02_summary.format_result(result)
        assert "PriSM-H/LRU" in text
