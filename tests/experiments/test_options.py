"""Tests for RunOptions and the experiment_run decorator."""

import os
import warnings

import pytest

from repro.experiments import options as options_module
from repro.experiments import parallel
from repro.experiments.options import RunOptions, experiment_run, resolve_run_options


def test_jobs_env_name_in_sync_with_parallel_executor():
    assert options_module.JOBS_ENV == parallel.JOBS_ENV


class TestResolveRunOptions:
    def test_none_becomes_defaults(self):
        assert resolve_run_options(None, {}) == RunOptions()

    def test_legacy_kwargs_warn_and_override(self):
        base = RunOptions(seed=1)
        with pytest.warns(DeprecationWarning, match="instructions, seed"):
            merged = resolve_run_options(
                base, {"instructions": 500, "seed": 9}, stacklevel=2
            )
        assert merged == RunOptions(instructions=500, seed=9)

    def test_no_legacy_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolve_run_options(RunOptions(), {})


class TestExperimentRunDecorator:
    @staticmethod
    def make_run():
        @experiment_run
        def run(instructions=None, mixes=None, seed=0, progress=None):
            return {
                "instructions": instructions,
                "mixes": mixes,
                "seed": seed,
                "jobs_env": os.environ.get(options_module.JOBS_ENV),
            }

        return run

    def test_options_forwarded(self):
        run = self.make_run()
        result = run(options=RunOptions(instructions=123, seed=7), mixes=["Q1"])
        assert result["instructions"] == 123
        assert result["seed"] == 7
        assert result["mixes"] == ["Q1"]

    def test_defaults_without_options(self):
        result = self.make_run()()
        assert result["instructions"] is None
        assert result["seed"] == 0

    def test_legacy_kwargs_warn(self):
        run = self.make_run()
        with pytest.warns(DeprecationWarning, match="RunOptions"):
            result = run(instructions=55)
        assert result["instructions"] == 55

    def test_legacy_positional_instructions_warn(self):
        run = self.make_run()
        with pytest.warns(DeprecationWarning):
            result = run(1000)
        assert result["instructions"] == 1000

    def test_jobs_pinned_to_environment_during_run(self, monkeypatch):
        monkeypatch.delenv(options_module.JOBS_ENV, raising=False)
        run = self.make_run()
        result = run(options=RunOptions(jobs=3))
        assert result["jobs_env"] == "3"
        assert options_module.JOBS_ENV not in os.environ  # restored after

    def test_jobs_env_restored_on_previous_value(self, monkeypatch):
        monkeypatch.setenv(options_module.JOBS_ENV, "7")
        self.make_run()(options=RunOptions(jobs=2))
        assert os.environ[options_module.JOBS_ENV] == "7"

    def test_figure_kwargs_unrelated_to_controls_pass_through(self):
        @experiment_run
        def run(instructions=None, bit_widths=(6, 8)):
            return bit_widths

        assert run(bit_widths=(4,)) == (4,)

    def test_wrapped_impl_reachable(self):
        run = self.make_run()
        assert callable(run.__wrapped_run__)
