"""Tests for the multi-tenant replay driver."""

import math

import pytest

from repro.experiments.configs import machine
from repro.experiments.runner import (
    DEFAULT_STANDALONE_CACHE,
    StandaloneIPCCache,
    run_workload,
)
from repro.tenancy import run_tenant_workload, tenant_standalone
from repro.workloads.tenants import DEFAULT_CHUNK, get_tenant_workload

CFG = machine(4, instructions=20_000)


class TestRunTenantWorkload:
    def test_result_shape(self):
        result = run_tenant_workload("tenants:smoke4", CFG, "lru", seed=1)
        assert result.mix == "tenants:smoke4"
        assert result.scheme == "lru"
        assert result.benchmarks == ["alpha", "bravo", "sweeper", "shifty"]
        assert [c.name for c in result.cores] == result.benchmarks
        assert sum(c.instructions for c in result.cores) == CFG.instructions
        assert result.antt > 0 and result.throughput > 0
        assert 0 < result.fairness <= 1.0

    def test_tenant_slo_populated(self):
        result = run_tenant_workload("tenants:smoke4", CFG, "prism-h", seed=1)
        slo = result.tenant_slo
        assert slo is not None
        assert slo.tenants == result.benchmarks
        assert len(slo.hit_rates) == 4
        assert all(0.0 <= a <= 1.0 for a in slo.slo_attainment)
        assert all(p >= 0 for p in slo.p99_miss_run)
        assert sum(slo.requests) == CFG.instructions
        for rate, core in zip(slo.hit_rates, result.cores):
            assert rate == pytest.approx(core.hits / (core.hits + core.misses))

    def test_core_count_mismatch(self):
        with pytest.raises(ValueError, match="cores"):
            run_tenant_workload("tenants:smoke4", machine(8, instructions=20_000))

    def test_deterministic_in_seed(self):
        a = run_tenant_workload("tenants:smoke4", CFG, "prism-h", seed=3)
        DEFAULT_STANDALONE_CACHE.clear()
        b = run_tenant_workload("tenants:smoke4", CFG, "prism-h", seed=3)
        assert a == b
        c = run_tenant_workload("tenants:smoke4", CFG, "prism-h", seed=4)
        assert a != c

    def test_prism_diagnostics_survive(self):
        result = run_tenant_workload("tenants:smoke4", CFG, "prism-h", seed=1)
        assert result.eviction_probabilities is not None
        assert sum(result.eviction_probabilities) == pytest.approx(1.0)
        assert result.intervals > 0

    def test_unmanaged_runs_tick_window_intervals(self):
        """LRU never fires miss-driven intervals; the driver windows them."""
        result = run_tenant_workload(
            "tenants:smoke4", CFG, "lru", seed=1, telemetry=True
        )
        assert result.intervals == math.ceil(CFG.instructions / DEFAULT_CHUNK)
        assert len(result.telemetry.samples) == 4 * result.intervals
        assert sum(s.hits + s.misses for s in result.telemetry.samples) == (
            CFG.instructions
        )

    def test_telemetry_recording(self):
        result = run_tenant_workload(
            "tenants:smoke4", CFG, "prism-h", seed=1, telemetry=True
        )
        assert result.telemetry is not None
        assert result.telemetry.num_cores == 4
        assert result.telemetry.benchmarks == result.benchmarks
        quiet = run_tenant_workload("tenants:smoke4", CFG, "prism-h", seed=1)
        assert quiet.telemetry is None

    def test_check_forces_classic_with_warning(self):
        with pytest.warns(RuntimeWarning, match="check=True audits the classic"):
            result = run_tenant_workload(
                "tenants:smoke4", CFG, "lru", seed=1, backend="vector", check=True
            )
        assert result.antt > 0

    def test_dispatches_through_run_workload(self):
        """The runner's mix seam routes tenant refs to this driver."""
        via_runner = run_workload("tenants:smoke4", CFG, "lru", seed=2)
        direct = run_tenant_workload("tenants:smoke4", CFG, "lru", seed=2)
        assert via_runner == direct


class TestBackendEquivalence:
    @pytest.mark.parametrize("scheme", ["lru", "prism-h", "prism-q", "cliff"])
    def test_vector_matches_classic_bit_for_bit(self, scheme):
        classic = run_tenant_workload("tenants:smoke4", CFG, scheme, seed=3)
        vector = run_tenant_workload(
            "tenants:smoke4", CFG, scheme, seed=3, backend="vector"
        )
        assert classic == vector  # dataclass eq: every field, exactly

    def test_solo_baselines_match_across_backends(self):
        classic = tenant_standalone(
            "tenants:smoke4", CFG, cache=StandaloneIPCCache()
        )
        vector = tenant_standalone(
            "tenants:smoke4", CFG, cache=StandaloneIPCCache(), backend="vector"
        )
        assert classic == vector


class TestStandaloneBaselines:
    def test_memoised_per_tenant(self):
        private = StandaloneIPCCache()
        ipcs, rates = tenant_standalone("tenants:smoke4", CFG, cache=private)
        assert len(ipcs) == len(rates) == 4
        assert len(private) == 8  # ipc + hit_rate per tenant
        assert len(DEFAULT_STANDALONE_CACHE) == 0
        again = tenant_standalone("tenants:smoke4", CFG, cache=private)
        assert again == (ipcs, rates)
        assert len(private) == 8

    def test_solo_hit_rates_feed_slo_targets(self):
        private = StandaloneIPCCache()
        _, rates = tenant_standalone("tenants:smoke4", CFG, cache=private)
        result = run_tenant_workload(
            "tenants:smoke4", CFG, "lru", standalone_cache=private
        )
        assert result.tenant_slo.solo_hit_rates == rates
        for target, solo in zip(result.tenant_slo.slo_targets, rates):
            assert target == pytest.approx(result.tenant_slo.slo_fraction * solo)

    def test_identity_keys_the_memo(self):
        """Distinct workloads must not share solo baselines."""
        private = StandaloneIPCCache()
        tenant_standalone("tenants:smoke4", CFG, cache=private)
        size = len(private)
        tenant_standalone(
            get_tenant_workload("web8"), machine(8, instructions=20_000),
            cache=private,
        )
        assert len(private) == size + 16
