"""Cross-backend equivalence and determinism on shared-data traces.

The shared family is the scale-out counterpart of the tenant family
(tests/check/test_tenant_equivalence.py): cores touch private regions
*and* group-shared regions, so blocks accumulate sharer sets and — under
a ``core_map`` — charge a cluster-level accounting owner. This slice of
the matrix certifies that

- the vector engine agrees with the classic engine access for access on
  a shared trace, with sharer tracking and a cluster map installed;
- the full scale-out driver reports bit-identical results under either
  backend, clustered or not;
- two runs of the same spec are byte-identical (the determinism the
  campaign store's fingerprint cache relies on) — including the pinned
  16-core scale-out smoke digest.
"""

import pytest

from repro.campaign.fingerprint import spec_fingerprint
from repro.check.differential import (
    DifferentialCase,
    _build_engine,
    _build_vector_engine,
    compare_batched,
)
from repro.clustering.scaleout import run_shared_workload, shared_standalone
from repro.experiments.configs import machine
from repro.experiments.parallel import RunSpec
from repro.experiments.runner import (
    DEFAULT_STANDALONE_CACHE,
    StandaloneIPCCache,
    run_workload,
)
from repro.workloads.shared import get_shared_workload

CFG = machine(4, instructions=20_000)


def shared_stream(requests=1500, seed=7, chunk_size=512):
    """The smoke4 shared trace flattened to the oracle's (core, addr) form."""
    workload = get_shared_workload("smoke4")
    stream = []
    for cores, addrs in workload.chunks(requests, seed, chunk_size=chunk_size):
        stream.extend(zip(cores.tolist(), addrs.tolist()))
    return stream


class TestSharedStreamEquivalence:
    """Vector vs classic engine over the same shared trace."""

    @pytest.mark.parametrize("scheme", ["lru", "prism-h"])
    @pytest.mark.parametrize("core_map", [None, (0, 1, 0, 1)])
    def test_backends_agree_with_sharers_and_clusters(self, scheme, core_map):
        case = DifferentialCase(
            scheme=scheme, num_cores=4, num_sets=16, assoc=4, seed=7, accesses=0,
            scheme_kwargs={"seed": 1} if scheme.startswith("prism") else None,
            core_map=core_map, track_sharers=True,
        )
        engine = _build_vector_engine(case, None, None)
        classic = _build_engine(case, None, None)
        divergences = compare_batched(engine, classic, shared_stream())
        assert divergences == [], "\n".join(str(d) for d in divergences)

    def test_stream_exercises_every_core(self):
        assert {core for core, _ in shared_stream()} == {0, 1, 2, 3}


class TestRunSharedWorkload:
    def test_result_shape(self):
        result = run_shared_workload(get_shared_workload("smoke4"), CFG, "lru", seed=1)
        assert result.mix == "shared:smoke4"
        assert result.benchmarks == ["core0", "core1", "core2", "core3"]
        assert sum(c.instructions for c in result.cores) == CFG.instructions
        assert result.antt > 0 and result.throughput > 0
        assert 0 < result.fairness <= 1.0

    def test_core_count_mismatch(self):
        with pytest.raises(ValueError, match="cores"):
            run_shared_workload(
                get_shared_workload("smoke4"), machine(8, instructions=20_000)
            )

    def test_dispatches_through_run_workload(self):
        via_runner = run_workload("shared:smoke4", CFG, "lru", seed=2)
        direct = run_shared_workload(get_shared_workload("smoke4"), CFG, "lru", seed=2)
        assert via_runner == direct

    def test_clusters_rejected_for_other_families(self):
        with pytest.raises(ValueError, match="clusters"):
            run_workload("tenants:smoke4", CFG, "lru", clusters=2)

    def test_check_forces_classic_with_warning(self):
        with pytest.warns(RuntimeWarning, match="check=True audits the classic"):
            result = run_shared_workload(
                get_shared_workload("smoke4"), CFG, "prism-h", seed=1,
                backend="vector", check=True, clusters=2,
            )
        assert result.antt > 0

    def test_clustering_changes_managed_runs(self):
        """A managed scheme at cluster granularity is a different run."""
        per_core = run_shared_workload(
            get_shared_workload("smoke4"), CFG, "prism-h", seed=1
        )
        clustered = run_shared_workload(
            get_shared_workload("smoke4"), CFG, "prism-h", seed=1, clusters=2
        )
        assert per_core != clustered


class TestBackendEquivalence:
    @pytest.mark.parametrize("scheme", ["lru", "prism-h", "prism-f"])
    @pytest.mark.parametrize("clusters", [None, 2])
    def test_vector_matches_classic_bit_for_bit(self, scheme, clusters):
        source = get_shared_workload("smoke4")
        classic = run_shared_workload(source, CFG, scheme, seed=3, clusters=clusters)
        vector = run_shared_workload(
            source, CFG, scheme, seed=3, clusters=clusters, backend="vector"
        )
        assert classic == vector  # dataclass eq: every field, exactly

    def test_solo_baselines_match_across_backends(self):
        source = get_shared_workload("smoke4")
        classic = shared_standalone(source, CFG, cache=StandaloneIPCCache())
        vector = shared_standalone(
            source, CFG, cache=StandaloneIPCCache(), backend="vector"
        )
        assert classic == vector


class TestDeterminism:
    @pytest.mark.parametrize("backend", ["classic", "vector"])
    def test_two_runs_byte_identical(self, backend):
        """Same spec twice (cold solo cache both times) -> equal results."""
        source = get_shared_workload("smoke4")
        a = run_shared_workload(
            source, CFG, "prism-f", seed=3, clusters=2, backend=backend
        )
        DEFAULT_STANDALONE_CACHE.clear()
        b = run_shared_workload(
            source, CFG, "prism-f", seed=3, clusters=2, backend=backend
        )
        assert a == b
        c = run_shared_workload(
            source, CFG, "prism-f", seed=4, clusters=2, backend=backend
        )
        assert a != c

    def test_scaleout_smoke_fingerprint_pinned(self):
        """The 16-core scale-out smoke spec's content address, byte for
        byte. Moving it silently would orphan every stored campaign
        result for the scale-out panels; change SHARED_FAMILY_VERSION or
        FINGERPRINT_VERSION instead."""
        spec = RunSpec(mix="shared:scale16", scheme="prism-f", seed=0, clusters=4)
        config = machine(16, instructions=30_000)
        assert spec_fingerprint(spec, config) == (
            "b5a812074d09681ba1fbce5859fef5c4c6d7de8e9ae4b4c5b328a8f809e69363"
        )
