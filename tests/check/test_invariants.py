"""Runtime invariant checker: clean runs pass, every corruption is caught.

Each invariant in the checker's catalogue gets a targeted sabotage test —
the checker is only worth its overhead if a genuinely corrupted engine
state cannot slip past it — plus wiring tests for ``run_workload(check=)``
and the campaign executor's non-retryable handling.
"""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.check.invariants import InvariantChecker, InvariantViolation, attach_checker
from repro.experiments.configs import machine
from repro.experiments.parallel import RunSpec
from repro.experiments.runner import run_workload
from repro.experiments.schemes import build_scheme
from repro.util.rng import make_rng

GEOMETRY = CacheGeometry(8 << 10, 64, 8)  # 128 blocks, 16 sets
NUM_CORES = 4


def checked_cache(every=1):
    scheme, policy = build_scheme("prism-h", NUM_CORES, None,
                                  interval_len=64, sample_shift=1, seed=2)
    cache = SharedCache(GEOMETRY, NUM_CORES, policy=policy)
    cache.set_scheme(scheme)
    checker = attach_checker(cache, every=every)
    return cache, checker


def drive(cache, accesses=600, seed=0):
    rng = make_rng(seed, "invariant-test-stream")
    for _ in range(accesses):
        cache.access(rng.randrange(NUM_CORES), rng.getrandbits(16))


class TestChecker:
    def test_rejects_nonpositive_period(self):
        cache, _ = checked_cache()
        with pytest.raises(ValueError, match="every"):
            InvariantChecker(cache, every=0)

    def test_clean_run_passes(self):
        cache, checker = checked_cache(every=1)
        drive(cache, accesses=600)
        assert checker.checks_run == 600  # every access audited
        assert cache.intervals_completed > 0  # boundaries were crossed too

    def test_period_throttles_audits(self):
        cache, checker = checked_cache(every=100)
        drive(cache, accesses=250)
        assert checker.checks_run == 2

    def test_catches_occupancy_counter_drift(self):
        cache, checker = checked_cache()
        drive(cache, accesses=200)
        cache.occupancy[0] += 1
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_now()
        assert excinfo.value.invariant == "occupancy-recount"

    def test_catches_set_corruption(self):
        cache, checker = checked_cache()
        drive(cache, accesses=200)
        cache.sets[0]._core_counts[0] += 1
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_now()
        assert excinfo.value.invariant == "set-integrity"

    def test_catches_negative_probability(self):
        cache, checker = checked_cache()
        drive(cache, accesses=200)
        manager = cache.scheme.manager
        manager.probabilities[0] -= 2.0  # bypasses set_distribution validation
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_now()
        assert excinfo.value.invariant == "distribution"

    def test_catches_unnormalised_distribution(self):
        cache, checker = checked_cache()
        drive(cache, accesses=200)
        cache.scheme.manager.probabilities[0] += 0.5
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_now()
        assert excinfo.value.invariant == "distribution"

    def test_catches_unpinned_cumulative(self):
        cache, checker = checked_cache()
        drive(cache, accesses=200)
        cache.scheme.manager._cumulative[-1] = 0.999
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_now()
        assert excinfo.value.invariant == "cumulative"

    def test_catches_shadow_counter_regression(self):
        cache, checker = checked_cache()
        drive(cache, accesses=200)
        checker.check_now()  # establish the monotonicity floor
        cache.scheme.shadow.shadow_misses[0] -= 1
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_now()
        assert excinfo.value.invariant == "shadow-monotone"

    def test_violation_is_typed_assertion_error(self):
        error = InvariantViolation("occupancy-bounds", "129 blocks in 128")
        assert isinstance(error, AssertionError)
        assert error.invariant == "occupancy-bounds"
        assert "occupancy-bounds" in str(error) and "129" in str(error)


class TestRunnerWiring:
    def test_checked_run_equals_unchecked_run(self):
        config = machine(4, instructions=30_000)
        plain = run_workload("Q1", config, "prism-h", seed=3)
        checked = run_workload("Q1", config, "prism-h", seed=3, check=True)
        assert plain.antt == checked.antt
        assert plain.fairness == checked.fairness
        assert plain.intervals == checked.intervals
        assert [c.misses for c in plain.cores] == [c.misses for c in checked.cores]
        assert plain.eviction_probabilities == checked.eviction_probabilities

    def test_options_check_flag_is_honoured(self):
        from repro.experiments.options import RunOptions

        config = machine(4, instructions=20_000)
        result = run_workload("Q1", config, "lru",
                              options=RunOptions(check=True))
        assert result.antt > 0  # completed under the checker


class TestCampaignWiring:
    def test_invariant_violation_is_registered_non_retryable(self):
        from repro.campaign.executor import NON_RETRYABLE_ERRORS

        assert "InvariantViolation" in NON_RETRYABLE_ERRORS

    def test_in_process_does_not_retry_violations(self, monkeypatch):
        from repro.campaign import executor

        calls = {"n": 0}

        def violate(spec, config):
            calls["n"] += 1
            raise InvariantViolation("occupancy-recount", "forced by test")

        monkeypatch.setattr(executor, "_run_one", violate)
        spec = RunSpec(mix="Q1", scheme="lru", seed=0, instructions=1000)
        outcomes = list(executor.iter_isolated(
            [spec], machine(4), jobs=1, retries=3
        ))
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert not outcome.ok
        assert outcome.error.error_type == "InvariantViolation"
        assert outcome.attempts == 1
        assert calls["n"] == 1  # the three retries were skipped

    def test_in_process_still_retries_ordinary_errors(self, monkeypatch):
        from repro.campaign import executor

        calls = {"n": 0}

        def flake(spec, config):
            calls["n"] += 1
            raise ValueError("transient for test")

        monkeypatch.setattr(executor, "_run_one", flake)
        spec = RunSpec(mix="Q1", scheme="lru", seed=0, instructions=1000)
        outcomes = list(executor.iter_isolated(
            [spec], machine(4), jobs=1, retries=2
        ))
        assert len(outcomes) == 1
        assert outcomes[0].error.error_type == "ValueError"
        assert outcomes[0].attempts == 3
        assert calls["n"] == 3

    def test_spec_check_flag_round_trips_through_store(self):
        from repro.campaign.store import spec_from_dict, spec_to_dict

        spec = RunSpec(mix="Q1", scheme="prism-h", seed=1,
                       instructions=1000, check=True)
        assert spec_from_dict(spec_to_dict(spec)) == spec
        # Legacy records predate the field and default to unchecked.
        legacy = spec_to_dict(spec)
        del legacy["check"]
        assert spec_from_dict(legacy).check is False
