"""Runtime invariant checker: clean runs pass, every corruption is caught.

Each invariant in the checker's catalogue gets a targeted sabotage test —
the checker is only worth its overhead if a genuinely corrupted engine
state cannot slip past it — plus wiring tests for ``run_workload(check=)``
and the campaign executor's non-retryable handling.
"""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.check.invariants import InvariantChecker, InvariantViolation, attach_checker
from repro.experiments.configs import machine
from repro.experiments.parallel import RunSpec
from repro.experiments.runner import run_workload
from repro.experiments.schemes import build_scheme
from repro.util.rng import make_rng

GEOMETRY = CacheGeometry(8 << 10, 64, 8)  # 128 blocks, 16 sets
NUM_CORES = 4


def checked_cache(every=1):
    scheme, policy = build_scheme("prism-h", NUM_CORES, None,
                                  interval_len=64, sample_shift=1, seed=2)
    cache = SharedCache(GEOMETRY, NUM_CORES, policy=policy)
    cache.set_scheme(scheme)
    checker = attach_checker(cache, every=every)
    return cache, checker


def drive(cache, accesses=600, seed=0):
    rng = make_rng(seed, "invariant-test-stream")
    for _ in range(accesses):
        cache.access(rng.randrange(NUM_CORES), rng.getrandbits(16))


class TestChecker:
    def test_rejects_nonpositive_period(self):
        cache, _ = checked_cache()
        with pytest.raises(ValueError, match="every"):
            InvariantChecker(cache, every=0)

    def test_clean_run_passes(self):
        cache, checker = checked_cache(every=1)
        drive(cache, accesses=600)
        assert checker.checks_run == 600  # every access audited
        assert cache.intervals_completed > 0  # boundaries were crossed too

    def test_period_throttles_audits(self):
        cache, checker = checked_cache(every=100)
        drive(cache, accesses=250)
        assert checker.checks_run == 2

    def test_catches_occupancy_counter_drift(self):
        cache, checker = checked_cache()
        drive(cache, accesses=200)
        cache.occupancy[0] += 1
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_now()
        assert excinfo.value.invariant == "occupancy-recount"

    def test_catches_set_corruption(self):
        cache, checker = checked_cache()
        drive(cache, accesses=200)
        cache.sets[0]._core_counts[0] += 1
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_now()
        assert excinfo.value.invariant == "set-integrity"

    def test_catches_negative_probability(self):
        cache, checker = checked_cache()
        drive(cache, accesses=200)
        manager = cache.scheme.manager
        manager.probabilities[0] -= 2.0  # bypasses set_distribution validation
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_now()
        assert excinfo.value.invariant == "distribution"

    def test_catches_unnormalised_distribution(self):
        cache, checker = checked_cache()
        drive(cache, accesses=200)
        cache.scheme.manager.probabilities[0] += 0.5
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_now()
        assert excinfo.value.invariant == "distribution"

    def test_catches_unpinned_cumulative(self):
        cache, checker = checked_cache()
        drive(cache, accesses=200)
        cache.scheme.manager._cumulative[-1] = 0.999
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_now()
        assert excinfo.value.invariant == "cumulative"

    def test_catches_shadow_counter_regression(self):
        cache, checker = checked_cache()
        drive(cache, accesses=200)
        checker.check_now()  # establish the monotonicity floor
        cache.scheme.shadow.shadow_misses[0] -= 1
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_now()
        assert excinfo.value.invariant == "shadow-monotone"

    def test_violation_is_typed_assertion_error(self):
        error = InvariantViolation("occupancy-bounds", "129 blocks in 128")
        assert isinstance(error, AssertionError)
        assert error.invariant == "occupancy-bounds"
        assert "occupancy-bounds" in str(error) and "129" in str(error)


def shared_checked_cache(every=1):
    """4 real cores mapped onto 2 clusters, with sharer tracking on."""
    core_map = (0, 1, 0, 1)
    scheme, policy = build_scheme("prism-h", 2, None,
                                  interval_len=64, sample_shift=1, seed=2)
    cache = SharedCache(GEOMETRY, 2, policy=policy,
                        core_map=core_map, track_sharers=True)
    cache.set_scheme(scheme)
    checker = attach_checker(cache, every=every)
    return cache, checker


def first_block(cache):
    for cset in cache.sets:
        for block in cset.blocks:
            return block
    raise AssertionError("cache is empty")


class TestSharingInvariants:
    """sharer-consistency and cluster-conservation sabotage coverage."""

    def test_clean_clustered_run_passes(self):
        cache, checker = shared_checked_cache(every=1)
        drive(cache, accesses=600)  # real core ids 0..3, translated inside
        assert checker.checks_run == 600
        checker.check_now()

    def test_catches_empty_sharer_set(self):
        cache, checker = shared_checked_cache()
        drive(cache, accesses=200)
        first_block(cache).sharers = 0
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_now()
        assert excinfo.value.invariant == "sharer-consistency"

    def test_catches_owner_missing_from_sharer_mask(self):
        cache, checker = shared_checked_cache()
        drive(cache, accesses=200)
        block = first_block(cache)
        block.sharers = 1 << (1 - block.core)  # some bit, not the owner's
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_now()
        assert excinfo.value.invariant == "sharer-consistency"

    def test_catches_out_of_range_filler(self):
        cache, checker = shared_checked_cache()
        drive(cache, accesses=200)
        first_block(cache).filler = 9  # only real cores 0..3 exist
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_now()
        assert excinfo.value.invariant == "cluster-conservation"

    def test_catches_filler_charged_to_wrong_cluster(self):
        cache, checker = shared_checked_cache()
        drive(cache, accesses=200)
        block = first_block(cache)
        # Cores 0/2 map to cluster 0, cores 1/3 to cluster 1: claim a
        # filler whose cluster disagrees with the block's charge.
        block.filler = 1 if block.core == 0 else 0
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_now()
        assert excinfo.value.invariant == "cluster-conservation"

    def test_plain_cache_skips_the_sharing_audits(self):
        """No sharer tracking, no cluster map -> the new checks are off."""
        cache, checker = checked_cache()
        drive(cache, accesses=200)
        first_block(cache).sharers = 0  # untracked garbage must not trip
        checker.check_now()


class TestInclusionInvariant:
    """The hierarchy audit: every L1-resident block is LLC-resident."""

    def hierarchy_system(self, every=64):
        from repro.cache.replacement.lru import LRUPolicy
        from repro.cpu.system import MultiCoreSystem
        from repro.workloads.spec import get_profile

        profiles = [get_profile("179.art"), get_profile("181.mcf")]
        cache = SharedCache(CacheGeometry(8 << 10, 64, 8), 2, policy=LRUPolicy())
        checker = attach_checker(cache, every=every)
        system = MultiCoreSystem(
            cache,
            profiles,
            seed=5,
            l1_geometry=CacheGeometry(512, 64, 2),
            inclusive=True,
        )
        checker.bind_hierarchy(system)
        return system, checker

    def test_clean_inclusive_run_passes(self):
        system, checker = self.hierarchy_system(every=16)
        system.run(4000)
        checker.check_now()
        assert checker.checks_run > 10

    def test_catches_stale_l1_line(self):
        system, checker = self.hierarchy_system()
        system.run(2000)
        checker.check_now()  # consistent so far
        # Sabotage: sneak a block into core 0's L1 that the LLC has never
        # seen — exactly what a broken back-invalidate path would leave.
        bogus = 0x5A5A00
        system.l1s[0].access(bogus)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_now()
        assert excinfo.value.invariant == "inclusion"

    def test_unbound_checker_ignores_hierarchy(self):
        # Without bind_hierarchy the same sabotage goes unaudited: the
        # inclusion invariant is opt-in because non-inclusive mode
        # legitimately leaves stale L1 lines behind.
        system, checker = self.hierarchy_system()
        checker._system = None
        system.run(1000)
        system.l1s[0].access(0x5A5A00)
        checker.check_now()

    def test_non_inclusive_mode_not_audited(self):
        from repro.cache.replacement.lru import LRUPolicy
        from repro.cpu.system import MultiCoreSystem
        from repro.workloads.spec import get_profile

        cache = SharedCache(CacheGeometry(8 << 10, 64, 8), 1, policy=LRUPolicy())
        checker = attach_checker(cache, every=64)
        system = MultiCoreSystem(
            cache,
            [get_profile("179.art")],
            seed=5,
            l1_geometry=CacheGeometry(512, 64, 2),
            inclusive=False,
        )
        checker.bind_hierarchy(system)
        system.run(3000)  # stale L1 lines are expected; no violation
        checker.check_now()


class TestRunnerWiring:
    def test_checked_run_equals_unchecked_run(self):
        config = machine(4, instructions=30_000)
        plain = run_workload("Q1", config, "prism-h", seed=3)
        checked = run_workload("Q1", config, "prism-h", seed=3, check=True)
        assert plain.antt == checked.antt
        assert plain.fairness == checked.fairness
        assert plain.intervals == checked.intervals
        assert [c.misses for c in plain.cores] == [c.misses for c in checked.cores]
        assert plain.eviction_probabilities == checked.eviction_probabilities

    def test_options_check_flag_is_honoured(self):
        from repro.experiments.options import RunOptions

        config = machine(4, instructions=20_000)
        result = run_workload("Q1", config, "lru",
                              options=RunOptions(check=True))
        assert result.antt > 0  # completed under the checker

    def test_checked_hierarchy_run_audits_inclusion(self):
        # run_workload binds the hierarchy to the checker when the
        # machine has an L1; a clean inclusive run must pass the audit.
        config = machine(4, instructions=20_000, l1="inclusive",
                         dram_banks=2, dram_row_blocks=4)
        result = run_workload("Q1", config, "prism-h", seed=3, check=True)
        assert result.antt > 0

    def test_checked_belady_run(self):
        config = machine(4, instructions=20_000, l1="inclusive")
        result = run_workload("Q1", config, "belady", seed=3, check=True)
        assert result.scheme == "belady"
        assert result.intervals == 0


class TestCampaignWiring:
    def test_invariant_violation_is_registered_non_retryable(self):
        from repro.campaign.executor import NON_RETRYABLE_ERRORS

        assert "InvariantViolation" in NON_RETRYABLE_ERRORS

    def test_in_process_does_not_retry_violations(self, monkeypatch):
        from repro.campaign import executor

        calls = {"n": 0}

        def violate(spec, config):
            calls["n"] += 1
            raise InvariantViolation("occupancy-recount", "forced by test")

        monkeypatch.setattr(executor, "_run_one", violate)
        spec = RunSpec(mix="Q1", scheme="lru", seed=0, instructions=1000)
        outcomes = list(executor.iter_isolated(
            [spec], machine(4), jobs=1, retries=3
        ))
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert not outcome.ok
        assert outcome.error.error_type == "InvariantViolation"
        assert outcome.attempts == 1
        assert calls["n"] == 1  # the three retries were skipped

    def test_in_process_still_retries_ordinary_errors(self, monkeypatch):
        from repro.campaign import executor

        calls = {"n": 0}

        def flake(spec, config):
            calls["n"] += 1
            raise ValueError("transient for test")

        monkeypatch.setattr(executor, "_run_one", flake)
        spec = RunSpec(mix="Q1", scheme="lru", seed=0, instructions=1000)
        outcomes = list(executor.iter_isolated(
            [spec], machine(4), jobs=1, retries=2
        ))
        assert len(outcomes) == 1
        assert outcomes[0].error.error_type == "ValueError"
        assert outcomes[0].attempts == 3
        assert calls["n"] == 3

    def test_spec_check_flag_round_trips_through_store(self):
        from repro.campaign.store import spec_from_dict, spec_to_dict

        spec = RunSpec(mix="Q1", scheme="prism-h", seed=1,
                       instructions=1000, check=True)
        assert spec_from_dict(spec_to_dict(spec)) == spec
        # Legacy records predate the field and default to unchecked.
        legacy = spec_to_dict(spec)
        del legacy["check"]
        assert spec_from_dict(legacy).check is False
