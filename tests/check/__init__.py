"""Tests for the repro.check subsystem (reference oracle, fuzzer, checker)."""
