"""Cross-backend equivalence on tenant traces, under the differential oracle.

The multi-tenant key-value family generates its own access streams
(huge strided addresses, rate-interleaved cores) rather than driving the
timing model, so it gets its own slice of the differential matrix: the
vector engine must agree with the classic engine access for access on a
tenant-generated stream, and the full tenant runner must report
bit-identical results under either backend.
"""

import pytest

from repro.check.differential import (
    _NEEDS_PERF,
    _NEEDS_STANDALONE,
    DifferentialCase,
    SyntheticPerf,
    _build_engine,
    _build_vector_engine,
    compare_batched,
)
from repro.util.rng import make_rng
from repro.workloads.tenants import get_tenant_workload


def tenant_stream(requests=1500, seed=7, chunk_size=512):
    """The smoke4 shared trace flattened to the oracle's (core, addr) form."""
    workload = get_tenant_workload("smoke4")
    stream = []
    for cores, addrs in workload.chunks(requests, seed, chunk_size=chunk_size):
        stream.extend(zip(cores.tolist(), addrs.tolist()))
    return stream


def engine_pair(case):
    """(vector, classic) engines with run_case's synthetic perf/standalone."""
    perf = (
        SyntheticPerf(case.num_cores, case.seed)
        if case.scheme in _NEEDS_PERF
        else None
    )
    standalone = None
    if case.scheme in _NEEDS_STANDALONE:
        rng = make_rng(case.seed, "check-standalone")
        standalone = [0.5 + rng.random() for _ in range(case.num_cores)]
    return (
        _build_vector_engine(case, standalone, perf),
        _build_engine(case, standalone, perf),
    )


class TestTenantStreamEquivalence:
    """Vector vs classic engine over the same tenant trace."""

    @pytest.mark.parametrize("scheme", ["lru", "prism-h", "prism-q"])
    def test_backends_agree_access_for_access(self, scheme):
        case = DifferentialCase(
            scheme=scheme, num_cores=4, num_sets=16, assoc=4, seed=7, accesses=0,
            scheme_kwargs={"seed": 1} if scheme.startswith("prism") else None,
        )
        engine, classic = engine_pair(case)
        divergences = compare_batched(engine, classic, tenant_stream())
        assert divergences == [], "\n".join(str(d) for d in divergences)

    def test_slab_count_does_not_change_the_verdict(self):
        """Chunk boundaries in the tenant replay must not leak state."""
        case = DifferentialCase(
            scheme="prism-h", num_cores=4, num_sets=16, assoc=4, seed=7,
            accesses=0, scheme_kwargs={"seed": 1},
        )
        stream = tenant_stream()
        for slabs in (1, 7):
            engine = _build_vector_engine(case, None, None)
            classic = _build_engine(case, None, None)
            assert compare_batched(engine, classic, stream, slabs=slabs) == []

    def test_oracle_has_teeth_on_tenant_streams(self):
        """Mismatched PriSM draw seeds must diverge on this stream too."""
        case = DifferentialCase(
            scheme="prism-h", num_cores=4, num_sets=16, assoc=4, seed=7,
            accesses=0, scheme_kwargs={"seed": 1},
        )
        skewed = DifferentialCase(
            scheme="prism-h", num_cores=4, num_sets=16, assoc=4, seed=7,
            accesses=0, scheme_kwargs={"seed": 2},
        )
        engine = _build_vector_engine(case, None, None)
        classic = _build_engine(skewed, None, None)
        assert compare_batched(engine, classic, tenant_stream())

    def test_stream_exercises_every_tenant(self):
        stream = tenant_stream()
        assert {core for core, _ in stream} == {0, 1, 2, 3}
