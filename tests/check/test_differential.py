"""Differential-oracle tests: engine vs. reference, access for access.

The heavy 200-case campaign runs in CI (``repro-sim check fuzz``); here a
bounded fuzz plus Hypothesis-driven cases keep the tier-1 suite fast while
still covering every reference scheme, and a sabotage test demonstrates
the oracle actually has teeth — an injected engine bug is caught within a
few dozen accesses.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.check.differential import (
    DifferentialCase,
    _build_engine,
    _build_vector_engine,
    compare_batched,
    compare_run,
    fuzz,
    make_stream,
    run_case,
)
from repro.check.reference import REFERENCE_SCHEMES, build_reference


def _assert_ok(result):
    assert result.ok, "\n".join(str(d) for d in result.divergences)


class TestFuzz:
    def test_bounded_fuzz_finds_no_divergence(self):
        results = fuzz(cases=15, seed=3)
        for result in results:
            _assert_ok(result)
        # The random cases must actually exercise the interval machinery.
        assert sum(r.intervals for r in results) > 0
        assert sum(r.accesses_run for r in results) > 0

    def test_fuzz_is_deterministic_in_its_seed(self):
        first = fuzz(cases=4, seed=11)
        second = fuzz(cases=4, seed=11)
        assert [r.case for r in first] == [r.case for r in second]
        assert [r.divergences for r in first] == [r.divergences for r in second]

    def test_fuzz_respects_scheme_filter(self):
        results = fuzz(cases=5, seed=0, schemes=["lru", "dip"])
        assert {r.case.scheme for r in results} <= {"lru", "dip"}


@pytest.mark.parametrize("scheme", sorted(REFERENCE_SCHEMES))
def test_every_reference_scheme_agrees(scheme):
    result = run_case(DifferentialCase(scheme=scheme, seed=99, accesses=1200))
    _assert_ok(result)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    scheme=st.sampled_from(sorted(REFERENCE_SCHEMES)),
    num_cores=st.integers(2, 5),
    num_sets=st.sampled_from([2, 4, 8]),
    assoc=st.sampled_from([2, 4]),
    seed=st.integers(0, 2**32 - 1),
)
def test_random_geometries_agree(scheme, num_cores, num_sets, assoc, seed):
    case = DifferentialCase(
        scheme=scheme,
        num_cores=num_cores,
        num_sets=num_sets,
        assoc=assoc,
        seed=seed,
        accesses=600,
    )
    _assert_ok(run_case(case))


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**32 - 1), fallback=st.sampled_from(["resample", "paper"]))
def test_prism_fallback_modes_agree(seed, fallback):
    case = DifferentialCase(
        scheme="prism-h",
        num_sets=2,  # tiny sets maximise fallback-path traffic
        assoc=2,
        seed=seed,
        accesses=800,
        scheme_kwargs={"seed": seed % 1009, "fallback": fallback},
    )
    _assert_ok(run_case(case))


def test_oracle_detects_injected_bug():
    """Disabling hit promotion in the engine must diverge from the oracle."""
    case = DifferentialCase(scheme="prism-h", seed=7, accesses=1500,
                            scheme_kwargs={"seed": 1})
    cache = _build_engine(case, None, None)
    reference = build_reference(case.scheme, case.num_cores, case.geometry,
                                scheme_kwargs=case.scheme_kwargs)
    # Sabotage: no recency promotion on hits. With a scheme attached the
    # access loop calls the scheme-resolved hook, so that is what we break.
    cache.scheme._resolved_on_hit = lambda cset, block, core: None
    cache._rewire()
    divergences = compare_run(cache, reference, make_stream(case))
    assert divergences, "oracle failed to notice a broken LRU promotion"
    assert divergences[0].index >= 0  # caught during the replay, not post-hoc


def test_sane_case_is_clean_before_sabotage():
    """Companion to the sabotage test: same case, untouched engine, clean."""
    case = DifferentialCase(scheme="prism-h", seed=7, accesses=1500,
                            scheme_kwargs={"seed": 1})
    _assert_ok(run_case(case))


class TestSharingAxes:
    """The shared-ownership fuzz axes: sharer bitmasks and cluster maps."""

    def test_sharing_fuzz_finds_no_divergence(self):
        results = fuzz(cases=12, seed=7, sharing=True)
        for result in results:
            _assert_ok(result)

    def test_sharing_axes_are_actually_drawn(self):
        cases = [r.case for r in fuzz(cases=12, seed=7, sharing=True)]
        assert any(c.track_sharers for c in cases)
        assert any(c.core_map is not None for c in cases)
        assert any(c.sharing_degree > 0 for c in cases)

    def test_sharing_off_leaves_the_matrix_unchanged(self):
        """Default fuzz draws must stay byte-compatible with the past."""
        plain = [r.case for r in fuzz(cases=4, seed=11)]
        assert all(
            not c.track_sharers and c.core_map is None and c.sharing_degree == 0
            for c in plain
        )

    def test_core_maps_are_dense(self):
        for result in fuzz(cases=12, seed=7, sharing=True):
            core_map = result.case.core_map
            if core_map is None:
                continue
            assert len(core_map) == result.case.num_cores
            assert sorted(set(core_map)) == list(range(max(core_map) + 1))

    def test_fuzzer_detects_seeded_sharer_bug(self):
        """A sharer-accounting bug in the engine must be caught.

        Sabotage: flip the ``track_sharers`` slot baked into the classic
        engine's hot-path tuple, so fills stop seeding and hits stop
        OR-ing sharer bits — while ``cache.track_sharers`` (the compare
        gate) stays on. The oracle keeps proper sharer sets, so the
        end-state sharers audit must report the divergence.
        """
        case = DifferentialCase(
            scheme="lru", num_cores=4, seed=7, accesses=1500,
            sharing_degree=2, track_sharers=True,
        )
        cache = _build_engine(case, None, None)
        reference = build_reference(
            case.scheme, case.num_cores, case.geometry,
            track_sharers=True,
        )
        assert cache._hot[-1] is True  # the track_sharers slot
        cache._hot = cache._hot[:-1] + (False,)
        divergences = compare_run(cache, reference, make_stream(case))
        assert divergences, "oracle failed to notice dropped sharer accounting"
        assert any(d.what == "sharers" for d in divergences)

    def test_sharer_case_is_clean_before_sabotage(self):
        case = DifferentialCase(
            scheme="lru", num_cores=4, seed=7, accesses=1500,
            sharing_degree=2, track_sharers=True,
        )
        _assert_ok(run_case(case))


class TestVectorBackend:
    """``backend="vector"``: the batched engine under the same oracle.

    The 200-case certification runs in CI (``repro-sim check fuzz
    --backend vector``); this is the fast tier-1 slice of it.
    """

    @pytest.mark.parametrize("scheme", sorted(REFERENCE_SCHEMES))
    def test_every_reference_scheme_agrees(self, scheme):
        result = run_case(
            DifferentialCase(scheme=scheme, seed=99, accesses=1200),
            backend="vector",
        )
        _assert_ok(result)

    def test_bounded_vector_fuzz_finds_no_divergence(self):
        results = fuzz(cases=6, seed=5, backend="vector")
        for result in results:
            _assert_ok(result)
        assert sum(r.intervals for r in results) > 0

    def test_vector_fuzz_draws_the_same_cases_as_classic(self):
        """The backend changes the engine under test, never the cases."""
        vec = fuzz(cases=4, seed=11, backend="vector")
        cls = fuzz(cases=4, seed=11, backend="classic")
        assert [r.case for r in vec] == [r.case for r in cls]

    def test_unknown_backend_rejected(self):
        case = DifferentialCase(scheme="lru", seed=0, accesses=100)
        with pytest.raises(ValueError, match="unknown backend"):
            run_case(case, backend="gpu")

    def test_compare_batched_has_teeth(self):
        """Mismatched PriSM draw seeds must be caught access for access."""
        case = DifferentialCase(scheme="prism-h", seed=7, accesses=1500,
                                scheme_kwargs={"seed": 1})
        skewed = DifferentialCase(scheme="prism-h", seed=7, accesses=1500,
                                  scheme_kwargs={"seed": 2})
        engine = _build_vector_engine(case, None, None)
        classic = _build_engine(skewed, None, None)
        divergences = compare_batched(engine, classic, make_stream(case))
        assert divergences, "compare_batched missed a draw-stream mismatch"

    def test_slab_count_does_not_change_the_verdict(self):
        """State must carry over between access_many calls exactly."""
        case = DifferentialCase(scheme="prism-h", seed=7, accesses=1500,
                                scheme_kwargs={"seed": 1})
        for slabs in (1, 5):
            engine = _build_vector_engine(case, None, None)
            classic = _build_engine(case, None, None)
            assert compare_batched(engine, classic, make_stream(case),
                                   slabs=slabs) == []
