"""The reference simulator's transcriptions agree with the engine's math.

The differential fuzzer (test_differential) exercises whole runs; these
tests pin the *unit-level* correspondences — every free function the
reference transcribed from the paper must equal the engine's optimised
version bit for bit, because the oracle's authority rests on it being an
independent but exact restatement.
"""

import pytest
from hypothesis import given, strategies as st

from repro.cache.geometry import CacheGeometry
from repro.check.reference import (
    REFERENCE_SCHEMES,
    build_reference,
    ref_dequantize,
    ref_derive_eviction_probabilities,
    ref_eviction_probability,
    ref_normalize_targets,
    ref_quantize,
)
from repro.core.allocation.base import normalize_targets
from repro.core.eviction import derive_eviction_probabilities, eviction_probability
from repro.core.quantize import dequantize, quantize_distribution
from repro.experiments.schemes import SCHEMES

fractions = st.floats(0.0, 1.0, allow_nan=False)
weights = st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=6)


def test_reference_schemes_are_registry_names():
    """Every oracle scheme resolves through the real scheme registry."""
    assert set(REFERENCE_SCHEMES) <= set(SCHEMES)


def test_build_reference_rejects_unknown_scheme():
    geometry = CacheGeometry(4 << 10, 64, 4)
    with pytest.raises(KeyError, match="lru"):
        build_reference("no-such-scheme", 4, geometry)


@given(c=fractions, t=fractions, m=fractions,
       n=st.integers(1, 1 << 16), w=st.integers(1, 1 << 16))
def test_eq1_single_core_matches_engine(c, t, m, n, w):
    assert ref_eviction_probability(c, t, m, n, w) == eviction_probability(c, t, m, n, w)


@given(raw=st.tuples(weights, weights, weights),
       n=st.integers(1, 4096), w=st.integers(1, 4096),
       renormalize=st.booleans())
def test_eq1_vector_matches_engine(raw, n, w, renormalize):
    k = min(len(v) for v in raw)
    c, t, m = ([x / 10.0 for x in v[:k]] for v in raw)
    assert ref_derive_eviction_probabilities(
        c, t, m, n, w, renormalize=renormalize
    ) == derive_eviction_probabilities(c, t, m, n, w, renormalize=renormalize)


@given(targets=weights)
def test_normalize_targets_matches_engine(targets):
    assert ref_normalize_targets(targets) == normalize_targets(targets)


@given(raw=weights, bits=st.integers(1, 12))
def test_quantize_roundtrip_matches_engine(raw, bits):
    total = sum(raw)
    probabilities = [x / total for x in raw] if total > 0 else normalize_targets(raw)
    engine_levels = quantize_distribution(probabilities, bits)
    assert ref_quantize(probabilities, bits) == engine_levels
    assert ref_dequantize(engine_levels, bits) == dequantize(engine_levels, bits)


def test_derive_rejects_mismatched_lengths():
    with pytest.raises(ValueError, match="length mismatch"):
        ref_derive_eviction_probabilities([0.5], [0.5, 0.5], [1.0], 64, 64)


def test_reference_runs_standalone():
    """The oracle is a usable simulator on its own (not just a comparator)."""
    geometry = CacheGeometry(8 * 4 * 64, 64, 4)
    reference = build_reference("prism-h", 2, geometry,
                                scheme_kwargs={"interval_len": 32, "seed": 1})
    hits = 0
    for i in range(2000):
        hits += reference.access(i % 2, (i * 13) % 257 * 64).hit
    assert reference.occupancy == reference.scan_occupancy()
    assert sum(reference.occupancy) <= geometry.num_blocks
    assert sum(reference.hits) == hits
    assert reference.intervals_completed > 0
    assert sum(reference.scheme.probabilities) == pytest.approx(1.0)
