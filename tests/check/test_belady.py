"""Tests for the offline Belady/MIN baseline (repro.check.belady)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.check.belady import (
    BeladyCache,
    NaiveBelady,
    assert_belady_bound,
    belady_workload_run,
    next_use_indices,
    replay_trace,
)
from repro.check.invariants import InvariantViolation
from repro.cpu.memory import MemoryModel
from repro.cpu.system import MultiCoreSystem, RecordedTrace
from repro.cache.cache import SharedCache
from repro.cache.replacement.lru import LRUPolicy
from repro.util.rng import make_rng
from repro.workloads.spec import get_profile


def make_trace(num_cores, addrs, cores=None):
    trace = RecordedTrace(num_cores=num_cores)
    trace.addrs = list(addrs)
    trace.cores = list(cores) if cores is not None else [0] * len(trace.addrs)
    trace.gaps = [1] * len(trace.addrs)
    trace.l1_gaps = [0] * len(trace.addrs)
    trace.l1_lats = [0.0] * len(trace.addrs)
    return trace


def record_shared_trace(mix=("179.art", "181.mcf"), instructions=8000, seed=42):
    """Record a real post-L1 trace from a small inclusive-hierarchy run."""
    profiles = [get_profile(name) for name in mix]
    geometry = CacheGeometry(32 << 10, 64, 8)
    cache = SharedCache(geometry, len(profiles), policy=LRUPolicy())
    system = MultiCoreSystem(
        cache,
        profiles,
        seed=seed,
        l1_geometry=CacheGeometry(1 << 10, 64, 2),
        inclusive=True,
        record_trace=True,
    )
    system.run(instructions)
    return system.recorded_trace, geometry


class TestNextUse:
    def test_indices(self):
        addrs = [5, 7, 5, 9, 7, 5]
        n = len(addrs)
        assert next_use_indices(addrs) == [2, 4, 5, n, n, n]

    def test_empty(self):
        assert next_use_indices([]) == []


class TestBeladyUnit:
    def test_classic_min_example(self):
        # One set, 4 ways, the textbook reference string: the 4-frame
        # optimum is 6 faults (evict 4 at the access of 5, then one of
        # the never-again blocks at the access of the second 4).
        geometry = CacheGeometry(4 * 64, 64, 4)
        addrs = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]
        belady = BeladyCache(geometry, 1, addrs)
        outcomes = [belady.access(i, 0, a) for i, a in enumerate(addrs)]
        assert outcomes.count(False) == 6
        assert belady.total_hits() == 6

    def test_beats_lru_on_looping_pattern(self):
        # A loop one block larger than the cache: LRU gets zero hits,
        # Belady keeps all but one way pinned.
        geometry = CacheGeometry(4 * 64, 64, 4)
        loop = [0, 1, 2, 3, 4] * 40
        belady = BeladyCache(geometry, 1, loop)
        for i, a in enumerate(loop):
            belady.access(i, 0, a)
        lru = SharedCache(geometry, 1, policy=LRUPolicy())
        lru_hits = sum(lru.access(0, a).hit for a in loop)
        assert lru_hits == 0
        assert belady.total_hits() > len(loop) // 2

    def test_occupancy_tracks_owners(self):
        geometry = CacheGeometry(2 * 64, 64, 2)
        addrs = [10, 20, 30]
        cores = [0, 1, 0]
        belady = BeladyCache(geometry, 2, addrs)
        for i, (c, a) in enumerate(zip(cores, addrs)):
            belady.access(i, c, a)
        assert sum(belady.occupancy) == 2
        assert belady.occupancy[0] >= 1


class TestBeladyDifferential:
    @pytest.mark.parametrize("assoc,num_sets", [(1, 4), (2, 4), (4, 2), (8, 1)])
    def test_matches_naive_forward_scan(self, assoc, num_sets):
        geometry = CacheGeometry(assoc * num_sets * 64, 64, assoc)
        rng = make_rng(assoc * 31 + num_sets, "belady-diff")
        addrs = [rng.randrange(6 * geometry.num_blocks) for _ in range(2000)]
        fast = BeladyCache(geometry, 1, addrs)
        naive = NaiveBelady(geometry, 1, addrs)
        for i, a in enumerate(addrs):
            assert fast.access(i, 0, a) == naive.access(i, 0, a), (
                f"divergence at access {i} (assoc {assoc}, sets {num_sets})"
            )
        assert fast.total_hits() == naive.total_hits()


class TestReplayAndBound:
    def test_belady_bound_holds_on_recorded_trace(self):
        trace, geometry = record_shared_trace()
        assert len(trace) > 500
        results = assert_belady_bound(
            trace, geometry, ["lru", "plru", "dip", "prism-h"], seed=7
        )
        bound = results["belady"].total_hits
        for name, result in results.items():
            assert result.total_hits <= bound, name
            assert result.total_hits + result.total_misses == len(trace)

    def test_bound_violation_raises(self, monkeypatch):
        # Force a broken-optimum scenario: make the online replay report
        # one hit more than whatever Belady scored.
        import repro.check.belady as belady_mod

        geometry = CacheGeometry(2 * 64, 64, 2)
        trace = make_trace(1, [0, 1, 2, 0, 1, 2] * 10)
        real_replay = belady_mod.replay_trace

        def cheating_replay(trace_, geometry_, scheme="belady", **kwargs):
            result = real_replay(trace_, geometry_, scheme, **kwargs)
            if scheme != "belady":
                result.hits[0] = len(trace_)  # impossible: beats the optimum
            return result

        monkeypatch.setattr(belady_mod, "replay_trace", cheating_replay)
        with pytest.raises(InvariantViolation, match="belady-bound"):
            belady_mod.assert_belady_bound(trace, geometry, ["lru"])

    def test_replay_determinism(self):
        trace, geometry = record_shared_trace(instructions=1500)
        a = replay_trace(trace, geometry, "prism-h", seed=3)
        b = replay_trace(trace, geometry, "prism-h", seed=3)
        assert a.hits == b.hits and a.misses == b.misses


class TestBeladyWorkloadRun:
    def test_timing_reconstruction(self):
        mix = ("179.art", "181.mcf")
        trace, geometry = record_shared_trace(mix=mix, instructions=2500)
        profiles = [get_profile(name) for name in mix]
        result = belady_workload_run(
            trace, profiles, geometry, MemoryModel(), instructions_per_core=2500
        )
        assert result.scheme_name == "belady"
        assert result.intervals == 0
        assert result.total_accesses == len(trace)
        for core in result.cores:
            assert core.instructions >= 2500
            assert core.ipc > 0.0
            assert core.hits + core.misses > 0

    def test_deterministic(self):
        mix = ("179.art", "183.equake")
        trace, geometry = record_shared_trace(mix=mix, instructions=1500)
        profiles = [get_profile(name) for name in mix]
        runs = [
            belady_workload_run(
                trace, profiles, geometry, MemoryModel(), instructions_per_core=1500
            )
            for _ in range(2)
        ]
        assert runs[0].ipcs() == runs[1].ipcs()

    def test_belady_ipc_not_below_recorded_lru(self):
        # Same trace, same timing model: the optimal policy can only
        # raise hit counts, and with it the reconstructed IPCs.
        mix = ("181.mcf", "179.art")
        profiles = [get_profile(name) for name in mix]
        geometry = CacheGeometry(32 << 10, 64, 8)
        cache = SharedCache(geometry, len(profiles), policy=LRUPolicy())
        system = MultiCoreSystem(
            cache, profiles, seed=11, record_trace=True
        )
        lru_result = system.run(3000)
        trace = system.recorded_trace
        belady_result = belady_workload_run(
            trace, profiles, geometry, MemoryModel(), instructions_per_core=3000
        )
        lru_hits = sum(c.hits for c in lru_result.cores)
        belady_hits = sum(c.hits for c in belady_result.cores)
        assert belady_hits >= lru_hits
