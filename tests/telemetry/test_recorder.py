"""Recorder tests: interval samples against the cache's own counters.

The load-bearing contracts: samples are taken with the interval counter
views still live (after the scheme reallocates, before the reset), the
recorded ``E_i`` are the very values the PriSM manager installed, and a
streaming sink sees exactly the canonical trace rows.
"""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.experiments.configs import machine
from repro.experiments.runner import run_workload
from repro.partitioning.base import ManagementScheme
from repro.telemetry import JSONLSink, MemorySink, TelemetryRecorder

GEOMETRY = CacheGeometry(4 << 10, 64, 4)  # 64 blocks, 16 sets


class CounterProbe(ManagementScheme):
    """Captures the interval counter views the scheme itself observes."""

    name = "probe"

    def __init__(self, interval_len=8):
        super().__init__()
        self.interval_len = interval_len
        self.views = []

    def end_interval(self, cache):
        self.views.append(
            {
                "hits": list(cache.stats.interval_hits),
                "misses": list(cache.stats.interval_misses),
                "evictions": list(cache.stats.interval_evictions),
                "miss_fractions": cache.stats.interval_miss_fractions(),
                "occupancy": list(cache.occupancy),
            }
        )


class QuotaProbe(CounterProbe):
    """A way-partitioner lookalike: exposes quotas but no targets."""

    def __init__(self):
        super().__init__()
        self.quotas = [3, 1]


class BlockTargetProbe(CounterProbe):
    """A Vantage lookalike: targets expressed in blocks, not fractions."""

    def __init__(self):
        super().__init__()
        self.targets = [48.0, 16.0]


def drive(cache, accesses=64, cores=2):
    for i in range(accesses):
        cache.access(i % cores, i)


class TestBareCacheRecording:
    def test_samples_match_interval_counter_views(self):
        cache = SharedCache(GEOMETRY, 2)
        probe = CounterProbe()
        cache.set_scheme(probe)
        recorder = TelemetryRecorder().bind_cache(cache)
        drive(cache)
        trace = recorder.result()
        assert trace.num_intervals == len(probe.views) > 0
        for interval, view in enumerate(probe.views):
            for core in range(2):
                sample = trace.samples[interval * 2 + core]
                assert sample.interval == interval
                assert sample.core == core
                assert sample.hits == view["hits"][core]
                assert sample.misses == view["misses"][core]
                assert sample.evictions == view["evictions"][core]
                assert sample.miss_fraction == view["miss_fractions"][core]
                assert sample.occupancy == (
                    view["occupancy"][core] / GEOMETRY.num_blocks
                )

    def test_no_timing_model_reads_zero(self):
        cache = SharedCache(GEOMETRY, 2)
        cache.set_scheme(CounterProbe())
        recorder = TelemetryRecorder().bind_cache(cache)
        drive(cache)
        sample = recorder.result().samples[0]
        assert sample.instructions == 0
        assert sample.ipc == 0.0
        assert sample.benchmark == "core0"  # default labels

    def test_scheme_without_manager_records_none(self):
        cache = SharedCache(GEOMETRY, 2)
        cache.set_scheme(CounterProbe())
        recorder = TelemetryRecorder().bind_cache(cache)
        drive(cache)
        assert all(
            s.eviction_probability is None and s.target is None
            for s in recorder.result().samples
        )

    def test_quota_scheme_targets_as_way_fractions(self):
        cache = SharedCache(GEOMETRY, 2)
        cache.set_scheme(QuotaProbe())
        recorder = TelemetryRecorder().bind_cache(cache)
        drive(cache)
        sample0, sample1 = recorder.result().samples[:2]
        assert sample0.target == pytest.approx(3 / GEOMETRY.assoc)
        assert sample1.target == pytest.approx(1 / GEOMETRY.assoc)

    def test_block_count_targets_normalised_to_fractions(self):
        cache = SharedCache(GEOMETRY, 2)
        cache.set_scheme(BlockTargetProbe())
        recorder = TelemetryRecorder().bind_cache(cache)
        drive(cache)
        sample0, sample1 = recorder.result().samples[:2]
        assert sample0.target == pytest.approx(48.0 / GEOMETRY.num_blocks)
        assert sample1.target == pytest.approx(16.0 / GEOMETRY.num_blocks)

    def test_unbound_recorder_has_no_result(self):
        with pytest.raises(RuntimeError, match="not bound"):
            TelemetryRecorder().result()


class TestPrismEquivalence:
    """Recorded E_i must be the manager's own installed distributions."""

    CFG = machine(4, instructions=30_000)
    KW = {"interval_len": 128}  # short intervals -> many recomputations

    def test_probability_stats_bit_equal_to_scheme(self):
        result = run_workload(
            "Q1", self.CFG, "prism-h", scheme_kwargs=self.KW, telemetry=True
        )
        trace = result.telemetry
        assert trace.num_intervals == result.intervals > 0
        # Same floats, same accumulation: bit-equal, no tolerances.
        assert trace.probability_stats() == result.probability_stats

    def test_last_interval_matches_final_distribution(self):
        result = run_workload(
            "Q1", self.CFG, "prism-h", scheme_kwargs=self.KW, telemetry=True
        )
        final = [
            result.telemetry.per_core(core)[-1].eviction_probability
            for core in range(4)
        ]
        assert final == result.eviction_probabilities

    def test_distributions_and_targets_are_normalised(self):
        result = run_workload(
            "Q1", self.CFG, "prism-h", scheme_kwargs=self.KW, telemetry=True
        )
        trace = result.telemetry
        for interval in range(trace.num_intervals):
            batch = trace.samples[interval * 4:(interval + 1) * 4]
            assert sum(s.eviction_probability for s in batch) == pytest.approx(1.0)
            assert sum(s.miss_fraction for s in batch) == pytest.approx(1.0)
            assert sum(s.target for s in batch) == pytest.approx(1.0)

    def test_telemetry_does_not_perturb_the_simulation(self):
        plain = run_workload("Q1", self.CFG, "prism-h", scheme_kwargs=self.KW)
        traced = run_workload(
            "Q1", self.CFG, "prism-h", scheme_kwargs=self.KW, telemetry=True
        )
        assert plain.shared_ipcs() == traced.shared_ipcs()
        assert plain.intervals == traced.intervals
        assert plain.eviction_probabilities == traced.eviction_probabilities


class TestSinks:
    CFG = machine(4, instructions=30_000)
    KW = {"interval_len": 128}

    def test_memory_sink_sees_canonical_rows(self):
        sink = MemorySink()
        recorder = TelemetryRecorder(sink=sink)
        result = run_workload(
            "Q1", self.CFG, "prism-h", scheme_kwargs=self.KW, telemetry=recorder
        )
        assert sink.rows == list(result.telemetry.rows())

    def test_streaming_jsonl_equals_post_hoc_write(self, tmp_path):
        live_path = tmp_path / "live.jsonl"
        recorder = TelemetryRecorder(sink=JSONLSink(live_path))
        result = run_workload(
            "Q1", self.CFG, "prism-h", scheme_kwargs=self.KW, telemetry=recorder
        )
        post_path = result.telemetry.write(tmp_path / "post.jsonl")
        assert live_path.read_bytes() == post_path.read_bytes()

    def test_streaming_csv_equals_post_hoc_write(self, tmp_path):
        from repro.telemetry import open_sink

        live_path = tmp_path / "live.csv"
        recorder = TelemetryRecorder(sink=open_sink(live_path))
        result = run_workload(
            "Q1", self.CFG, "prism-h", scheme_kwargs=self.KW, telemetry=recorder
        )
        post_path = result.telemetry.write_csv(tmp_path / "post.csv")
        assert live_path.read_bytes() == post_path.read_bytes()

    def test_timing_populated_by_system_run(self):
        result = run_workload(
            "Q1", self.CFG, "prism-h", scheme_kwargs=self.KW, telemetry=True
        )
        timing = result.telemetry.timing
        assert timing.wall_seconds > 0.0
        assert timing.accesses > 0
        assert 0.0 < timing.alloc_seconds < timing.wall_seconds
