"""Unit tests for the telemetry records and the RunTelemetry container."""

import csv
import json

import pytest

from repro.telemetry import FinishSample, IntervalSample, RunTelemetry, RunTiming


def sample(interval, core, probability=0.25, occupancy=0.25):
    return IntervalSample(
        interval=interval,
        core=core,
        benchmark=f"core{core}",
        occupancy=occupancy,
        miss_fraction=0.5,
        eviction_probability=probability,
        target=0.25,
        hits=10,
        misses=5,
        evictions=4,
        instructions=1000,
        ipc=0.8,
    )


def trace_with(num_intervals, num_cores=2):
    trace = RunTelemetry(
        num_cores=num_cores, benchmarks=[f"core{i}" for i in range(num_cores)]
    )
    for interval in range(num_intervals):
        for core in range(num_cores):
            trace.samples.append(sample(interval, core, probability=0.1 * (core + 1)))
    for core in range(num_cores):
        trace.finishes.append(
            FinishSample(
                core=core, benchmark=f"core{core}", instructions=5000,
                cycles=6000.0, occupancy=0.3 + 0.1 * core,
            )
        )
    return trace


class TestViews:
    def test_num_intervals(self):
        assert trace_with(0).num_intervals == 0
        assert trace_with(7).num_intervals == 7

    def test_per_core_and_series(self):
        trace = trace_with(3)
        core1 = trace.per_core(1)
        assert len(core1) == 3
        assert all(s.core == 1 for s in core1)
        assert [s.interval for s in core1] == [0, 1, 2]
        assert trace.series("eviction_probability", 1) == [0.2, 0.2, 0.2]

    def test_occupancy_at_finish(self):
        trace = trace_with(1)
        assert trace.occupancy_at_finish(0) == pytest.approx(0.3)
        assert trace.occupancy_at_finish(1) == pytest.approx(0.4)
        assert trace.occupancy_at_finish(99) == 0.0

    def test_probability_stats_constant_series(self):
        stats = trace_with(5).probability_stats()
        assert stats[0] == {"mean": pytest.approx(0.1), "std": pytest.approx(0.0),
                            "samples": 5}
        assert stats[1]["mean"] == pytest.approx(0.2)

    def test_probability_stats_skips_none(self):
        trace = RunTelemetry(num_cores=1, benchmarks=["a"])
        trace.samples.append(sample(0, 0, probability=None))
        stats = trace.probability_stats()
        assert stats[0]["mean"] == 0.0
        assert stats[0]["samples"] == 1  # intervals recorded, E_i absent

    def test_empty_trace_stats(self):
        trace = RunTelemetry(num_cores=2, benchmarks=["a", "b"])
        assert trace.probability_stats() == [
            {"mean": 0.0, "std": 0.0, "samples": 0},
            {"mean": 0.0, "std": 0.0, "samples": 0},
        ]


class TestEquality:
    def test_timing_excluded_from_equality(self):
        a = trace_with(2)
        b = trace_with(2)
        a.timing = RunTiming(wall_seconds=1.0, alloc_seconds=0.2, accesses=100)
        b.timing = RunTiming(wall_seconds=9.0, alloc_seconds=0.1, accesses=42)
        assert a == b

    def test_samples_compared_exactly(self):
        a = trace_with(2)
        b = trace_with(2)
        b.samples[0] = sample(0, 0, probability=0.10000001)
        assert a != b


class TestTiming:
    def test_derived_properties(self):
        timing = RunTiming(wall_seconds=2.0, alloc_seconds=0.5, accesses=1000)
        assert timing.access_seconds == pytest.approx(1.5)
        assert timing.accesses_per_sec == pytest.approx(500.0)
        assert timing.alloc_share == pytest.approx(0.25)

    def test_zero_wall_clock_is_safe(self):
        timing = RunTiming()
        assert timing.accesses_per_sec == 0.0
        assert timing.alloc_share == 0.0

    def test_describe_mentions_allocation_share(self):
        text = RunTiming(wall_seconds=1.0, alloc_seconds=0.1, accesses=10).describe()
        assert "allocation" in text
        assert "10 accesses" in text


class TestSerialization:
    def test_rows_interval_then_finish(self):
        rows = list(trace_with(2).rows())
        assert [r["record"] for r in rows] == ["interval"] * 4 + ["finish"] * 2
        assert rows[0]["interval"] == 0 and rows[0]["core"] == 0
        assert rows[1]["core"] == 1

    def test_jsonl_round_trip(self, tmp_path):
        trace = trace_with(2)
        path = trace.write_jsonl(tmp_path / "trace.jsonl")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows == list(trace.rows())

    def test_csv_has_all_columns(self, tmp_path):
        trace = trace_with(1)
        path = trace.write_csv(tmp_path / "trace.csv")
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 4  # 2 interval rows + 2 finish rows
        assert rows[0]["record"] == "interval"
        assert rows[-1]["record"] == "finish"
        assert rows[-1]["ipc"] == ""  # finish rows have no interval IPC

    def test_write_dispatches_on_extension(self, tmp_path):
        trace = trace_with(1)
        jsonl = trace.write(tmp_path / "t.jsonl")
        csv_path = trace.write(tmp_path / "t.csv")
        assert jsonl.read_text().startswith("{")
        assert csv_path.read_text().startswith("record,")

    def test_timing_never_serialized(self, tmp_path):
        trace = trace_with(1)
        trace.timing = RunTiming(wall_seconds=123.0, alloc_seconds=1.0, accesses=7)
        text = trace.write(tmp_path / "t.jsonl").read_text()
        assert "123" not in text
        assert "wall_seconds" not in text
