"""Tests for trace record/replay."""

import numpy as np
import pytest

from repro.workloads.spec import get_profile
from repro.workloads.trace import Trace, record_trace


class TestTraceValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="equal-length"):
            Trace(np.array([1, 2]), np.array([1]))

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Trace(np.array([], dtype=np.int64), np.array([], dtype=np.int64))

    def test_zero_gap_rejected(self):
        with pytest.raises(ValueError, match="gap"):
            Trace(np.array([0]), np.array([1]))

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Trace(np.array([1]), np.array([-5]))


class TestReplay:
    def test_next_access_sequence(self):
        trace = Trace(np.array([10, 20]), np.array([100, 200]))
        assert trace.next_access() == (10, 100)
        assert trace.next_access() == (20, 200)

    def test_wraparound(self):
        trace = Trace(np.array([10, 20]), np.array([100, 200]))
        for _ in range(3):
            trace.next_access()
        assert trace.next_access() == (20, 200)
        assert trace.generated == 4

    def test_rewind(self):
        trace = Trace(np.array([10, 20]), np.array([100, 200]))
        trace.next_access()
        trace.rewind()
        assert trace.next_access() == (10, 100)

    def test_iteration_is_single_pass(self):
        trace = Trace(np.array([1, 2, 3]), np.array([7, 8, 9]))
        assert list(trace) == [(1, 7), (2, 8), (3, 9)]

    def test_len(self):
        assert len(Trace(np.array([1, 2]), np.array([3, 4]))) == 2


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = record_trace(get_profile("179.art"), 500, seed=7)
        path = tmp_path / "art.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert np.array_equal(loaded.gaps, trace.gaps)
        assert np.array_equal(loaded.addrs, trace.addrs)
        assert loaded.source == "179.art"

    def test_loaded_trace_replays_identically(self, tmp_path):
        trace = record_trace(get_profile("300.twolf"), 200, seed=8)
        path = tmp_path / "t.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert [loaded.next_access() for _ in range(300)] == [
            trace.next_access() for _ in range(300)
        ]
        # (the 300th access exercises the wraparound on both sides)


class TestRecord:
    def test_record_matches_live_stream(self):
        profile = get_profile("471.omnetpp")
        trace = record_trace(profile, 300, seed=9)
        stream = profile.stream(seed=9)
        live = [stream.next_access() for _ in range(300)]
        assert [(int(g), int(a)) for g, a in zip(trace.gaps, trace.addrs)] == live

    def test_record_respects_scale(self):
        profile = get_profile("179.art")
        trace = record_trace(profile, 2000, seed=10, scale=0.25)
        assert trace.addrs.max() < profile.footprint(scale=0.25)

    def test_record_rejects_bad_length(self):
        with pytest.raises(ValueError):
            record_trace(get_profile("179.art"), 0)
