"""The shared-data scale-out family: spec validation, traces, identity."""

import json

import numpy as np
import pytest

from repro.workloads.registry import resolve_workload
from repro.workloads.shared import (
    SHARED_FAMILY_VERSION,
    SharedSpec,
    SharedWorkload,
    get_shared_workload,
    shared_presets,
)
from repro.workloads.tenants import DEFAULT_CHUNK, TENANT_ADDRESS_STRIDE


def concat(workload, requests, seed, chunk_size=DEFAULT_CHUNK):
    cores, addrs = [], []
    for c, a in workload.chunks(requests, seed, chunk_size=chunk_size):
        cores.append(c)
        addrs.append(a)
    return np.concatenate(cores), np.concatenate(addrs)


def solo_concat(workload, index, requests, seed, chunk_size=DEFAULT_CHUNK):
    cores, addrs = [], []
    for c, a in workload.core_chunks(index, requests, seed, chunk_size=chunk_size):
        cores.append(c)
        addrs.append(a)
    return np.concatenate(cores), np.concatenate(addrs)


class TestSpecValidation:
    def test_bad_core_count(self):
        with pytest.raises(ValueError, match="num_cores"):
            SharedSpec("w", num_cores=0)

    def test_bad_degree(self):
        with pytest.raises(ValueError, match="degree"):
            SharedSpec("w", num_cores=4, degree=5)
        with pytest.raises(ValueError, match="degree"):
            SharedSpec("w", num_cores=4, degree=0)

    def test_bad_sharing(self):
        with pytest.raises(ValueError, match="sharing"):
            SharedSpec("w", num_cores=4, sharing=1.5)

    def test_bad_keys(self):
        with pytest.raises(ValueError, match="keys"):
            SharedSpec("w", num_cores=4, keys=0)

    def test_bad_skew(self):
        with pytest.raises(ValueError, match="skew"):
            SharedSpec("w", num_cores=4, skew=-0.1)

    def test_group_count(self):
        assert SharedSpec("w", num_cores=16, degree=4).num_groups == 4
        assert SharedSpec("w", num_cores=5, degree=2).num_groups == 3


class TestTraceGeneration:
    WORKLOAD = get_shared_workload("smoke4")

    def test_total_length_and_chunk_bounds(self):
        chunks = list(self.WORKLOAD.chunks(5_000, seed=1, chunk_size=2_000))
        assert [len(a) for _, a in chunks] == [2_000, 2_000, 1_000]

    def test_deterministic_in_seed(self):
        a = concat(self.WORKLOAD, 4_000, seed=1)
        b = concat(self.WORKLOAD, 4_000, seed=1)
        c = concat(self.WORKLOAD, 4_000, seed=2)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
        assert not np.array_equal(a[1], c[1])

    def test_chunk_size_invariance(self):
        """The concatenated trace must not depend on the chunk size."""
        a = concat(self.WORKLOAD, 5_000, seed=3, chunk_size=257)
        b = concat(self.WORKLOAD, 5_000, seed=3, chunk_size=4_096)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_addresses_stay_in_core_and_group_regions(self):
        """Private regions are per core; shared regions per group, above."""
        spec = self.WORKLOAD.spec
        cores, addrs = concat(self.WORKLOAD, 8_000, seed=1)
        regions = addrs // TENANT_ADDRESS_STRIDE
        private = regions < spec.num_cores
        assert np.array_equal(regions[private], cores[private])
        shared_regions = regions[~private] - spec.num_cores
        assert np.array_equal(shared_regions, cores[~private] // spec.degree)
        assert (~private).any(), "no shared accesses drawn at sharing=0.3"

    def test_shared_blocks_are_shared(self):
        """Both members of a group must touch common shared addresses."""
        spec = self.WORKLOAD.spec
        cores, addrs = concat(self.WORKLOAD, 20_000, seed=1)
        shared = (addrs // TENANT_ADDRESS_STRIDE) >= spec.num_cores
        group0 = set(addrs[shared & (cores == 0)]) & set(addrs[shared & (cores == 1)])
        assert group0, "group members never touched a common shared block"

    def test_solo_stream_is_prefix_equal_to_shared_draws(self):
        """A core's solo draw sequence replays its shared-run draws."""
        spec = self.WORKLOAD.spec
        cores, addrs = concat(self.WORKLOAD, 12_000, seed=5)
        mine = addrs[cores == 2]
        _, solo = solo_concat(self.WORKLOAD, 2, len(mine), seed=5)
        # Same draws, different address spaces: map both to (is_shared, rank).
        regions = mine // TENANT_ADDRESS_STRIDE
        shared_keys = np.where(
            regions >= spec.num_cores,
            spec.keys + mine % TENANT_ADDRESS_STRIDE,
            mine % TENANT_ADDRESS_STRIDE,
        )
        assert np.array_equal(shared_keys, solo)

    def test_solo_requests_equal_shares(self):
        assert self.WORKLOAD.solo_requests(0, 20_000) == 5_000
        assert self.WORKLOAD.solo_requests(3, 2) == 1

    def test_group_of(self):
        assert [self.WORKLOAD.group_of(c) for c in range(4)] == [0, 0, 1, 1]


class TestPresetsAndIdentity:
    def test_presets_registered(self):
        assert shared_presets() == ["scale16", "scale32", "scale64", "smoke4"]
        for name in shared_presets():
            workload = get_shared_workload(name)
            assert workload.label == f"shared:{name}"
            assert len(workload.core_names) == workload.num_cores

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown shared workload"):
            get_shared_workload("nope")

    def test_scale_presets_have_scaleout_core_counts(self):
        assert get_shared_workload("scale16").num_cores == 16
        assert get_shared_workload("scale32").num_cores == 32
        assert get_shared_workload("scale64").num_cores == 64

    def test_registry_resolves_references(self):
        via_registry = resolve_workload("shared:smoke4")
        assert isinstance(via_registry, SharedWorkload)
        assert via_registry.identity() == get_shared_workload("smoke4").identity()

    def test_identity_is_stable_and_json_able(self):
        identity = get_shared_workload("scale16").identity()
        assert identity["kind"] == "shared"
        assert identity["version"] == SHARED_FAMILY_VERSION
        json.dumps(identity)  # must be hashable into a fingerprint

    def test_identity_captures_parameters(self):
        base = SharedWorkload(SharedSpec("w", num_cores=8))
        tweaked = SharedWorkload(SharedSpec("w", num_cores=8, sharing=0.4))
        assert base.identity() != tweaked.identity()
