"""Tests for the zone access model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.zones import ScanZone, UniformZone, ZoneModel


class TestZoneValidation:
    def test_uniform_rejects_bad_size(self):
        with pytest.raises(ValueError):
            UniformZone(1.0, 0)

    def test_scan_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            ScanZone(-0.5, 10)

    def test_model_needs_zones(self):
        with pytest.raises(ValueError):
            ZoneModel([])

    def test_model_rejects_zero_weights(self):
        with pytest.raises(ValueError):
            ZoneModel([UniformZone(0.0, 10)])

    def test_model_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            ZoneModel([UniformZone(1.0, 10)], scale=0.0)


class TestAddressing:
    def test_zones_have_disjoint_ranges(self):
        model = ZoneModel([UniformZone(0.5, 10), ScanZone(0.5, 20)], seed=1)
        ranges = model.zone_ranges()
        assert ranges == [(0, 10), (10, 20)]
        assert model.footprint == 30

    def test_addresses_stay_in_footprint(self):
        model = ZoneModel([UniformZone(0.7, 50), ScanZone(0.3, 100)], seed=2)
        for addr in model.addresses(5000):
            assert 0 <= addr < model.footprint

    def test_scan_is_sequential_wraparound(self):
        model = ZoneModel([ScanZone(1.0, 5)], seed=3)
        assert model.addresses(12) == [0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1]

    def test_uniform_covers_zone(self):
        model = ZoneModel([UniformZone(1.0, 8)], seed=4)
        seen = set(model.addresses(2000))
        assert seen == set(range(8))

    def test_negative_count_rejected(self):
        model = ZoneModel([UniformZone(1.0, 8)], seed=4)
        with pytest.raises(ValueError):
            model.addresses(-1)


class TestScaling:
    def test_scale_multiplies_footprint(self):
        zones = [UniformZone(0.5, 100), ScanZone(0.5, 200)]
        assert ZoneModel(zones, scale=0.5).footprint == 150
        assert ZoneModel(zones, scale=2.0).footprint == 600

    def test_scale_never_shrinks_zone_below_one(self):
        model = ZoneModel([UniformZone(1.0, 2)], scale=0.01)
        assert model.footprint == 1


class TestDeterminism:
    def test_same_seed_same_stream(self):
        zones = [UniformZone(0.6, 64), ScanZone(0.4, 128)]
        a = ZoneModel(zones, seed=42).addresses(1000)
        b = ZoneModel(zones, seed=42).addresses(1000)
        assert a == b

    def test_different_seed_different_stream(self):
        zones = [UniformZone(1.0, 1000)]
        a = ZoneModel(zones, seed=1).addresses(100)
        b = ZoneModel(zones, seed=2).addresses(100)
        assert a != b

    @settings(max_examples=25)
    @given(st.integers(0, 2**31), st.integers(1, 500), st.integers(1, 500))
    def test_footprint_property(self, seed, size_a, size_b):
        model = ZoneModel(
            [UniformZone(0.5, size_a), ScanZone(0.5, size_b)], seed=seed
        )
        addrs = model.addresses(200)
        assert all(0 <= a < size_a + size_b for a in addrs)


class TestMixtureWeights:
    def test_weights_respected(self):
        model = ZoneModel(
            [UniformZone(0.8, 10), ScanZone(0.2, 1000)], seed=5
        )
        addrs = model.addresses(20000)
        in_first = sum(1 for a in addrs if a < 10)
        assert in_first / len(addrs) == pytest.approx(0.8, abs=0.02)
