"""Tests for the workload characterisation tools."""

import pytest

from repro.workloads.analysis import classify_profile, miss_curve, reuse_distance_histogram
from repro.workloads.spec import get_profile


class TestMissCurve:
    def test_monotone_nonincreasing_for_friendly(self):
        curve = miss_curve(get_profile("300.twolf"), [128, 256, 512, 1024])
        assert all(b <= a + 0.02 for a, b in zip(curve, curve[1:]))

    def test_streamer_flat(self):
        curve = miss_curve(get_profile("462.libquantum"), [128, 1024])
        assert curve[0] - curve[1] < 0.08
        assert curve[1] > 0.8

    def test_requires_sizes(self):
        with pytest.raises(ValueError):
            miss_curve(get_profile("300.twolf"), [])


class TestReuseHistogram:
    def test_buckets_sum_to_accesses(self):
        hist = reuse_distance_histogram(get_profile("300.twolf"), accesses=5000)
        assert sum(hist.values()) == 5000

    def test_insensitive_mass_at_short_distances(self):
        hist = reuse_distance_histogram(get_profile("416.gamess"), accesses=5000)
        short = hist["<=16"] + hist["<=64"]
        assert short / 5000 > 0.7

    def test_streamer_mass_at_cold(self):
        hist = reuse_distance_histogram(
            get_profile("470.lbm"), accesses=5000, max_distance=2048
        )
        assert hist["cold_or_beyond"] / 5000 > 0.6


class TestClassification:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("416.gamess", "insensitive"),
            ("444.namd", "insensitive"),
            ("470.lbm", "streaming"),
            ("462.libquantum", "streaming"),
            ("300.twolf", "friendly"),
            ("179.art", "friendly"),
        ],
    )
    def test_measured_class_matches_catalog(self, name, expected):
        assert classify_profile(get_profile(name)) == expected

    def test_thrasher_detected(self):
        # 429.mcf: working set 5x the reference cache, visible partial gains.
        assert classify_profile(get_profile("429.mcf")) in ("thrashing", "streaming")
