"""Tests for the workload-source registry (the unified construction API)."""

import pytest

from repro.workloads.benchmark import BenchmarkProfile
from repro.workloads.mixes import get_mix
from repro.workloads.registry import (
    WORKLOAD_FAMILIES,
    BenchmarkListSource,
    MixSource,
    WorkloadSource,
    register_family,
    resolve_workload,
    workload_families,
)
from repro.workloads.spec import get_profile
from repro.workloads.tenants import TenantWorkload


class TestResolveWorkload:
    def test_source_passthrough(self):
        source = MixSource("Q1")
        assert resolve_workload(source) is source

    def test_mix_name(self):
        source = resolve_workload("Q7")
        assert isinstance(source, MixSource)
        assert source.label == "Q7"
        assert source.num_cores == 4
        assert source.identity() == "Q7"
        assert [p.name for p in source.profiles()] == list(get_mix("Q7"))

    def test_benchmark_names(self):
        names = ["179.art", "470.lbm"]
        source = resolve_workload(names)
        assert isinstance(source, BenchmarkListSource)
        assert source.label == "custom"
        assert source.num_cores == 2
        assert source.identity() == names

    def test_benchmark_profiles_and_names_mix(self):
        items = [get_profile("179.art"), "470.lbm"]
        source = resolve_workload(items)
        assert source.identity() == ["179.art", "470.lbm"]
        profiles = source.profiles()
        assert all(isinstance(p, BenchmarkProfile) for p in profiles)
        assert profiles[0] is items[0]

    def test_family_reference(self):
        source = resolve_workload("tenants:smoke4")
        assert isinstance(source, TenantWorkload)
        assert source.label == "tenants:smoke4"
        assert source.num_cores == 4

    def test_unknown_family_lists_known_ones(self):
        with pytest.raises(KeyError, match="tenants"):
            resolve_workload("martian:x")

    def test_unsupported_type(self):
        with pytest.raises(TypeError, match="workload"):
            resolve_workload(42)


class TestFamilies:
    def test_builtin_tenants_family_listed(self):
        assert "tenants" in workload_families()

    def test_register_rejects_colon_names(self):
        with pytest.raises(ValueError, match="':'"):
            register_family("a:b", lambda spec: MixSource(spec))

    def test_register_rejects_duplicates_unless_overwrite(self):
        def parser(spec):
            return MixSource(spec)

        register_family("scratch", parser)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_family("scratch", parser)
            register_family("scratch", parser, overwrite=True)
            assert isinstance(resolve_workload("scratch:Q1"), MixSource)
        finally:
            WORKLOAD_FAMILIES.pop("scratch", None)


class TestSourceProtocol:
    def test_trace_families_refuse_profiles(self):
        source = resolve_workload("tenants:smoke4")
        with pytest.raises(TypeError, match="profiles"):
            source.profiles()

    def test_mix_source_is_a_workload_source(self):
        assert isinstance(MixSource("Q1"), WorkloadSource)
        assert MixSource("Q1").kind == "mix"
        assert BenchmarkListSource(["179.art"]).kind == "benchmarks"
