"""Tests for the multi-tenant key-value trace family."""

import json

import numpy as np
import pytest

from repro.workloads.tenants import (
    DEFAULT_CHUNK,
    TENANT_ADDRESS_STRIDE,
    TENANT_FAMILY_VERSION,
    TenantSpec,
    TenantWorkload,
    get_tenant_workload,
    tenant_presets,
)


def concat(workload, requests, seed, chunk_size=DEFAULT_CHUNK):
    cores, addrs = [], []
    for c, a in workload.chunks(requests, seed, chunk_size=chunk_size):
        cores.append(c)
        addrs.append(a)
    return np.concatenate(cores), np.concatenate(addrs)


def solo_concat(workload, index, requests, seed, chunk_size=DEFAULT_CHUNK):
    addrs = []
    for cores, a in workload.tenant_chunks(index, requests, seed,
                                           chunk_size=chunk_size):
        assert not cores.any()  # solo streams run on core 0
        addrs.append(a)
    return np.concatenate(addrs)


def single(spec):
    return TenantWorkload("solo", [spec])


class TestSpecValidation:
    def test_unknown_pattern(self):
        with pytest.raises(ValueError, match="pattern"):
            TenantSpec("t", pattern="random")

    def test_bad_keys(self):
        with pytest.raises(ValueError, match="keys"):
            TenantSpec("t", keys=0)

    def test_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            TenantSpec("t", rate=0.0)

    def test_bad_skew(self):
        with pytest.raises(ValueError, match="skew"):
            TenantSpec("t", skew=-0.1)

    def test_bad_phases(self):
        with pytest.raises(ValueError, match="phase"):
            TenantSpec("t", pattern="phase", phases=0)

    def test_duplicate_tenant_names(self):
        with pytest.raises(ValueError, match="unique"):
            TenantWorkload("w", [TenantSpec("a"), TenantSpec("a")])

    def test_empty_workload(self):
        with pytest.raises(ValueError, match="at least one"):
            TenantWorkload("w", [])


class TestTraceGeneration:
    WORKLOAD = get_tenant_workload("smoke4")

    def test_total_length_and_chunk_bounds(self):
        sizes = [
            len(c) for c, _ in self.WORKLOAD.chunks(5_000, seed=1, chunk_size=1024)
        ]
        assert sum(sizes) == 5_000
        assert max(sizes) <= 1024

    def test_deterministic_in_seed(self):
        c1, a1 = concat(self.WORKLOAD, 4_000, seed=3)
        c2, a2 = concat(self.WORKLOAD, 4_000, seed=3)
        assert np.array_equal(c1, c2) and np.array_equal(a1, a2)
        c3, a3 = concat(self.WORKLOAD, 4_000, seed=4)
        assert not (np.array_equal(c1, c3) and np.array_equal(a1, a3))

    def test_chunk_size_invariance(self):
        """The concatenated trace must not depend on the generation chunk."""
        baseline = concat(self.WORKLOAD, 6_000, seed=5, chunk_size=6_000)
        for chunk in (257, 1024, DEFAULT_CHUNK):
            cores, addrs = concat(self.WORKLOAD, 6_000, seed=5, chunk_size=chunk)
            assert np.array_equal(cores, baseline[0])
            assert np.array_equal(addrs, baseline[1])

    def test_addresses_stay_in_tenant_regions(self):
        cores, addrs = concat(self.WORKLOAD, 8_000, seed=2)
        for index, tenant in enumerate(self.WORKLOAD.tenants):
            lane = addrs[cores == index]
            base = index * TENANT_ADDRESS_STRIDE
            assert lane.size > 0
            assert lane.min() >= base
            assert lane.max() < base + tenant.keys

    def test_rate_shares_drive_interleaving(self):
        cores, _ = concat(self.WORKLOAD, 50_000, seed=9)
        shares = self.WORKLOAD.rate_shares()
        assert sum(shares) == pytest.approx(1.0)
        for index, share in enumerate(shares):
            observed = float((cores == index).mean())
            assert observed == pytest.approx(share, abs=0.02)

    def test_solo_stream_is_prefix_equal_to_shared_draws(self):
        """tenant_chunks replays exactly the keys the tenant drew shared."""
        cores, addrs = concat(self.WORKLOAD, 6_000, seed=7)
        for index in range(self.WORKLOAD.num_cores):
            shared_keys = addrs[cores == index] - index * TENANT_ADDRESS_STRIDE
            solo = solo_concat(
                self.WORKLOAD, index, len(shared_keys), seed=7, chunk_size=777
            )
            assert np.array_equal(solo, shared_keys)

    def test_solo_requests_deterministic_and_positive(self):
        total = 10_000
        budgets = [
            self.WORKLOAD.solo_requests(i, total)
            for i in range(self.WORKLOAD.num_cores)
        ]
        assert all(b >= 1 for b in budgets)
        shares = self.WORKLOAD.rate_shares()
        for budget, share in zip(budgets, shares):
            assert budget == pytest.approx(total * share, abs=1)


class TestPatterns:
    def test_scan_is_a_sequential_wrap_around_sweep(self):
        workload = single(TenantSpec("s", pattern="scan", keys=100))
        addrs = solo_concat(workload, 0, 250, seed=0, chunk_size=64)
        assert np.array_equal(addrs, np.arange(250, dtype=np.int64) % 100)

    def test_zipfian_skew_concentrates_mass(self):
        flat = single(TenantSpec("f", pattern="zipfian", keys=10_000, skew=0.0))
        hot = single(TenantSpec("h", pattern="zipfian", keys=10_000, skew=1.2))
        flat_keys = solo_concat(flat, 0, 5_000, seed=1)
        hot_keys = solo_concat(hot, 0, 5_000, seed=1)
        assert len(np.unique(hot_keys)) < len(np.unique(flat_keys)) / 2

    def test_zipfian_unit_exponent_supported(self):
        workload = single(TenantSpec("u", pattern="zipfian", keys=1_000, skew=1.0))
        addrs = solo_concat(workload, 0, 2_000, seed=3)
        assert addrs.min() >= 0 and addrs.max() < 1_000

    def test_phase_pattern_shifts_the_working_set(self):
        spec = TenantSpec(
            "p", pattern="phase", keys=1_000, skew=0.8, phases=2, phase_period=500
        )
        workload = single(spec)
        addrs = solo_concat(workload, 0, 1_000, seed=4, chunk_size=125)
        first, second = set(addrs[:500].tolist()), set(addrs[500:].tolist())
        # Disjoint key regions pre-permutation stay disjoint: the affine
        # permutation is a bijection on [0, keys).
        assert first.isdisjoint(second)

    def test_phase_schedule_is_chunk_size_independent(self):
        spec = TenantSpec(
            "p", pattern="phase", keys=600, skew=1.0, phases=3, phase_period=100
        )
        a = solo_concat(single(spec), 0, 900, seed=5, chunk_size=900)
        b = solo_concat(single(spec), 0, 900, seed=5, chunk_size=37)
        assert np.array_equal(a, b)


class TestPresetsAndIdentity:
    def test_presets_registered(self):
        assert tenant_presets() == ["smoke4", "web8"]
        assert get_tenant_workload("smoke4").num_cores == 4
        assert get_tenant_workload("web8").num_cores == 8

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="known"):
            get_tenant_workload("nope")

    def test_labels(self):
        workload = get_tenant_workload("web8")
        assert workload.label == "tenants:web8"
        assert workload.kind == "tenants"
        assert len(workload.tenant_names) == 8

    def test_identity_is_stable_and_json_able(self):
        a = get_tenant_workload("smoke4").identity()
        b = get_tenant_workload("smoke4").identity()
        assert a == b
        assert a["kind"] == "tenants"
        assert a["version"] == TENANT_FAMILY_VERSION
        assert len(a["tenants"]) == 4
        json.dumps(a, sort_keys=True)  # must be hashable for fingerprints

    def test_identity_captures_tenant_parameters(self):
        base = single(TenantSpec("t", keys=100)).identity()
        tweaked = single(TenantSpec("t", keys=101)).identity()
        assert base != tweaked
