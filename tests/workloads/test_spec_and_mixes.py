"""Tests for the SPEC-like catalog and the workload mixes."""

import pytest

from repro.workloads.mixes import MIXES, describe_mix, get_mix, mixes_for_cores
from repro.workloads.spec import PROFILES, get_profile, profiles_by_category


class TestCatalog:
    def test_paper_benchmarks_present(self):
        for name in ["179.art", "300.twolf", "471.omnetpp", "168.wupwise",
                     "175.vpr", "410.bwaves", "470.lbm", "416.gamess"]:
            assert name in PROFILES

    def test_get_profile_unknown_raises_with_listing(self):
        with pytest.raises(KeyError, match="known"):
            get_profile("999.nope")

    def test_every_category_populated(self):
        for category in ("friendly", "streaming", "insensitive", "moderate", "thrashing"):
            assert profiles_by_category(category)

    def test_unknown_category_raises(self):
        with pytest.raises(ValueError, match="known"):
            profiles_by_category("bogus")

    def test_streaming_profiles_have_big_scans(self):
        for p in profiles_by_category("streaming"):
            assert p.footprint() > 4000  # far larger than the 1024-block reference

    def test_insensitive_profiles_have_low_intensity(self):
        for p in profiles_by_category("insensitive"):
            assert p.mem_ratio <= 0.01

    def test_friendly_profiles_have_reuse_knee_near_reference_cache(self):
        # The reuse footprint (uniform zones) must sit near the 1024-block
        # reference cache so extra allocation buys hits; scan tails don't
        # count — they miss at any allocation.
        from repro.workloads.zones import UniformZone

        for p in profiles_by_category("friendly"):
            reuse = sum(z.size for z in p.zones if isinstance(z, UniformZone))
            assert 300 <= reuse <= 1100

    def test_profiles_are_valid(self):
        for p in PROFILES.values():
            assert p.mean_gap >= 1.0
            assert p.mlp >= 1.0


class TestMixes:
    def test_paper_mix_counts(self):
        assert len(mixes_for_cores(4)) == 21
        assert len(mixes_for_cores(8)) == 16
        assert len(mixes_for_cores(16)) == 20
        assert len(mixes_for_cores(32)) == 14
        assert len(MIXES) == 71  # the paper's total

    def test_mix_sizes_match_core_counts(self):
        for cores in (4, 8, 16, 32):
            for name in mixes_for_cores(cores):
                assert len(get_mix(name)) == cores

    def test_every_member_in_catalog(self):
        for names in MIXES.values():
            for name in names:
                assert name in PROFILES

    def test_paper_composition_constraints(self):
        # The constraints the paper's Section 5.1 narrative states.
        assert "168.wupwise" in get_mix("Q1")
        assert {"175.vpr", "471.omnetpp", "410.bwaves", "470.lbm"} == set(get_mix("Q4"))
        for q in ("Q5", "Q6", "Q8", "Q14"):
            assert set(get_mix(q)) & {"179.art", "300.twolf", "471.omnetpp"}
        assert "179.art" in get_mix("Q7")
        assert "300.twolf" in get_mix("Q19")
        assert "300.twolf" in get_mix("Q20")

    def test_generated_mixes_category_balanced(self):
        friendly = {p.name for p in profiles_by_category("friendly")}
        streaming = {p.name for p in profiles_by_category("streaming")}
        insensitive = {p.name for p in profiles_by_category("insensitive")}
        for cores in (8, 16, 32):
            for name in mixes_for_cores(cores):
                members = set(get_mix(name))
                assert members & friendly
                assert members & streaming
                assert members & insensitive

    def test_mixes_deterministic(self):
        # Regeneration must reproduce the same mixes (seeded).
        from repro.workloads.mixes import _build_mixes

        assert _build_mixes() == MIXES

    def test_get_mix_returns_copy(self):
        a = get_mix("Q1")
        a.append("tampered")
        assert get_mix("Q1") != a

    def test_unknown_mix_raises(self):
        with pytest.raises(KeyError, match="known"):
            get_mix("Q99")

    def test_unsupported_core_count_raises(self):
        with pytest.raises(ValueError):
            mixes_for_cores(6)

    def test_describe_mix_counts_categories(self):
        composition = describe_mix("Q7")
        assert sum(composition.values()) == 4
        assert composition.get("friendly", 0) >= 1
        assert composition.get("streaming", 0) >= 1

    def test_describe_unknown_mix(self):
        with pytest.raises(KeyError):
            describe_mix("Q99")

    def test_numeric_ordering(self):
        names = mixes_for_cores(16)
        assert names[0] == "S1"
        assert names[-1] == "S20"
        assert names.index("S2") == 1  # not lexicographic ("S10" after "S2")
