"""Tests for phase-changing workloads."""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.core import HitMaxPolicy, PrismScheme
from repro.cpu.memory import MemoryModel
from repro.cpu.system import MultiCoreSystem
from repro.workloads.phased import PhasedProfile, PhasedStream
from repro.workloads.spec import get_profile


def phased(a="179.art", b="470.lbm", length=50_000):
    return PhasedProfile([(get_profile(a), length), (get_profile(b), length)])


class TestPhasedProfile:
    def test_requires_phases(self):
        with pytest.raises(ValueError):
            PhasedProfile([])

    def test_rejects_zero_length_phase(self):
        with pytest.raises(ValueError):
            PhasedProfile([(get_profile("179.art"), 0)])

    def test_default_name(self):
        assert phased().name == "179.art+470.lbm"

    def test_timing_attributes_from_first_phase(self):
        p = phased()
        art = get_profile("179.art")
        assert p.mem_ratio == art.mem_ratio
        assert p.mean_gap == art.mean_gap

    def test_footprint_is_max_of_phases(self):
        p = phased()
        assert p.footprint() == max(
            get_profile("179.art").footprint(), get_profile("470.lbm").footprint()
        )


class TestPhasedStream:
    def test_switches_after_phase_length(self):
        stream = phased(length=1_000).stream(seed=1)
        instructions = 0
        while stream.current_phase == 0:
            gap, _ = stream.next_access()
            instructions += gap
        assert instructions >= 1_000
        assert stream.phase_switches == 1

    def test_cycles_back_to_first_phase(self):
        stream = phased(length=500).stream(seed=1)
        seen = set()
        for _ in range(5_000):
            stream.next_access()
            seen.add(stream.current_phase)
        assert seen == {0, 1}
        assert stream.phase_switches >= 2

    def test_phases_use_disjoint_addresses(self):
        stream = phased(length=2_000).stream(seed=2)
        by_phase = {0: set(), 1: set()}
        for _ in range(8_000):
            phase = stream.current_phase
            _, addr = stream.next_access()
            by_phase[phase].add(addr)
        assert not (by_phase[0] & by_phase[1])

    def test_deterministic(self):
        a = phased().stream(seed=3)
        b = phased().stream(seed=3)
        assert [a.next_access() for _ in range(1000)] == [
            b.next_access() for _ in range(1000)
        ]


class TestPrismAdaptsAcrossPhases:
    def test_occupancy_tracks_phase_change(self):
        """Core 0 runs a cache-friendly phase then goes compute-bound
        (tiny footprint); PriSM must reclaim its cache for the competing
        friendly core. Adaptation needs a phase several intervals long —
        Alg. 1's multiplicative updates move a bounded factor per interval
        (the Fig. 11 stability/agility trade-off)."""
        geometry = CacheGeometry(32 << 10, 64, 16)  # 512 blocks, fast intervals
        phase_len = 300_000
        profile0 = PhasedProfile(
            [(get_profile("300.twolf"), phase_len), (get_profile("416.gamess"), phase_len)]
        )
        profile1 = get_profile("471.omnetpp")
        cache = SharedCache(geometry, 2)
        scheme = PrismScheme(HitMaxPolicy())
        cache.set_scheme(scheme)
        system = MultiCoreSystem(cache, [profile0, profile1], seed=4,
                                 memory=MemoryModel(1))

        orig = scheme.end_interval
        samples = {0: [], 1: []}

        def wrapped(c):
            orig(c)
            samples[system.streams[0].current_phase].append(
                c.occupancy_fractions()[0]
            )

        scheme.end_interval = wrapped
        system.run(1_000_000)
        assert samples[0] and samples[1]
        # Tail of each phase (converged part).
        tail = lambda xs: sum(xs[len(xs) // 2:]) / max(1, len(xs) - len(xs) // 2)
        friendly_occupancy = tail(samples[0])
        compute_occupancy = tail(samples[1])
        assert friendly_occupancy > compute_occupancy + 0.1
