"""Tests for the supplementary profile catalog."""

import pytest

from repro.workloads.mixes import MIXES
from repro.workloads.spec import PROFILES, get_profile
from repro.workloads.spec_extra import (
    EXTRA_PROFILES,
    register_extra_profiles,
    unregister_extra_profiles,
)


@pytest.fixture(autouse=True)
def _clean_registration():
    yield
    unregister_extra_profiles()


class TestExtraCatalog:
    def test_not_registered_by_default(self):
        for name in EXTRA_PROFILES:
            assert name not in PROFILES

    def test_profiles_valid(self):
        for profile in EXTRA_PROFILES.values():
            assert profile.mean_gap >= 1
            assert profile.footprint() > 0
            assert profile.category in (
                "friendly", "streaming", "insensitive", "moderate", "thrashing"
            )

    def test_register_makes_them_resolvable(self):
        added = register_extra_profiles()
        assert set(added) == set(EXTRA_PROFILES)
        assert get_profile("433.milc").category == "streaming"

    def test_register_idempotent(self):
        register_extra_profiles()
        assert register_extra_profiles() == []

    def test_registration_leaves_mixes_untouched(self):
        before = {name: list(members) for name, members in MIXES.items()}
        register_extra_profiles()
        assert MIXES == before
        for members in MIXES.values():
            for name in members:
                assert name not in EXTRA_PROFILES

    def test_extra_profiles_runnable(self):
        from repro.cpu.system import run_standalone
        from repro.cache.geometry import CacheGeometry

        core = run_standalone(
            EXTRA_PROFILES["447.dealII"], CacheGeometry(16 << 10, 64, 8), 20_000
        )
        assert core.ipc > 0

    def test_class_shapes(self):
        streamers = [p for p in EXTRA_PROFILES.values() if p.category == "streaming"]
        assert all(p.footprint() > 4000 for p in streamers)
        insensitive = [p for p in EXTRA_PROFILES.values() if p.category == "insensitive"]
        assert all(p.mem_ratio <= 0.01 for p in insensitive)
