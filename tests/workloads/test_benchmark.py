"""Tests for benchmark profiles and access streams."""

import pytest

from repro.workloads.benchmark import AccessStream, BenchmarkProfile
from repro.workloads.zones import ScanZone, UniformZone


def profile(**overrides):
    kwargs = dict(
        name="t",
        zones=(UniformZone(0.5, 100), ScanZone(0.5, 200)),
        mem_ratio=0.02,
        mlp=2.0,
        cpi_base=0.5,
    )
    kwargs.update(overrides)
    return BenchmarkProfile(**kwargs)


class TestProfileValidation:
    def test_rejects_zero_mem_ratio(self):
        with pytest.raises(ValueError):
            profile(mem_ratio=0.0)

    def test_rejects_mem_ratio_above_one(self):
        with pytest.raises(ValueError):
            profile(mem_ratio=1.5)

    def test_rejects_mlp_below_one(self):
        with pytest.raises(ValueError):
            profile(mlp=0.5)

    def test_rejects_zero_cpi(self):
        with pytest.raises(ValueError):
            profile(cpi_base=0.0)

    def test_rejects_empty_zones(self):
        with pytest.raises(ValueError):
            profile(zones=())

    def test_mean_gap(self):
        assert profile(mem_ratio=0.02).mean_gap == 50.0

    def test_footprint(self):
        assert profile().footprint() == 300
        assert profile().footprint(scale=0.5) == 150


class TestAccessStream:
    def test_gaps_within_jitter_band(self):
        stream = profile(mem_ratio=0.02).stream(seed=1)
        for _ in range(2000):
            gap, _ = stream.next_access()
            assert 25 <= gap <= 75  # [0.5, 1.5] * mean_gap

    def test_gaps_at_least_one_instruction(self):
        stream = profile(mem_ratio=0.9).stream(seed=1)
        for _ in range(500):
            gap, _ = stream.next_access()
            assert gap >= 1

    def test_mean_gap_approximates_mem_ratio(self):
        stream = profile(mem_ratio=0.02).stream(seed=2)
        gaps = [stream.next_access()[0] for _ in range(20000)]
        assert sum(gaps) / len(gaps) == pytest.approx(50, rel=0.05)

    def test_deterministic_per_seed(self):
        p = profile()
        a = [p.stream(seed=3).next_access() for _ in range(1)]
        s1, s2 = p.stream(seed=3), p.stream(seed=3)
        assert [s1.next_access() for _ in range(500)] == [
            s2.next_access() for _ in range(500)
        ]

    def test_distinct_seeds_distinct_streams(self):
        p = profile()
        s1, s2 = p.stream(seed=1), p.stream(seed=2)
        assert [s1.next_access() for _ in range(100)] != [
            s2.next_access() for _ in range(100)
        ]

    def test_iteration_protocol(self):
        stream = profile().stream(seed=4)
        count = 0
        for gap, addr in stream:
            count += 1
            if count >= 10:
                break
        assert stream.generated == 10

    def test_scale_passed_to_zone_model(self):
        stream = AccessStream(profile(), seed=5, scale=0.5)
        assert stream.zone_model.footprint == 150
