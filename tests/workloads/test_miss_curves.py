"""Miss-rate-vs-allocation curves of the catalog classes.

These validate the calibration premise of DESIGN.md §2: the zone model
must give each workload class the utility-curve *shape* the paper's
comparisons depend on — knees for friendly programs, near-flat curves for
streamers, shallow slopes for thrashers, early saturation for insensitive
programs.
"""

import pytest

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.workloads.spec import get_profile

#: Cache sizes spanning 1/8x to 1x of the 1024-block reference.
SIZES = [8 << 10, 16 << 10, 32 << 10, 64 << 10]


def hit_rate(profile, size_bytes, accesses=30000, seed=5):
    cache = SharedCache(CacheGeometry(size_bytes, 64, 16), 1)
    stream = profile.stream(seed=seed)
    hits = 0
    for _ in range(accesses):
        _, addr = stream.next_access()
        hits += cache.access(0, addr).hit
    return hits / accesses


def curve(name):
    return [hit_rate(get_profile(name), size) for size in SIZES]


class TestFriendlyCurves:
    @pytest.mark.parametrize("name", ["179.art", "300.twolf", "471.omnetpp"])
    def test_monotone_with_large_total_gain(self, name):
        points = curve(name)
        assert all(b >= a - 0.02 for a, b in zip(points, points[1:]))
        # A friendly program gains a lot from 1/8x -> 1x cache.
        assert points[-1] - points[0] > 0.25

    def test_art_mostly_hits_at_full_cache(self):
        assert hit_rate(get_profile("179.art"), 64 << 10) > 0.75


class TestStreamingCurves:
    @pytest.mark.parametrize("name", ["470.lbm", "462.libquantum"])
    def test_flat_and_low(self, name):
        points = curve(name)
        # No allocation in this range captures a scan bigger than the cache.
        assert max(points) < 0.15
        assert points[-1] - points[0] < 0.08


class TestThrashingCurves:
    def test_shallow_slope(self):
        points = curve("429.mcf")
        # Gains exist but stay modest: the working set dwarfs the cache.
        assert 0.0 < points[-1] - points[0] < 0.35
        assert points[-1] < 0.55


class TestInsensitiveCurves:
    @pytest.mark.parametrize("name", ["416.gamess", "444.namd", "458.sjeng"])
    def test_saturates_early(self, name):
        points = curve(name)
        # High even at 1/8x of the reference cache, and at its ceiling by
        # 1/4x — the "cheap to satisfy" shape way-partitioning protects
        # with a single way.
        assert points[0] > 0.7
        assert points[1] > 0.9
        assert points[-1] - points[1] < 0.05
