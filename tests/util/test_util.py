"""Tests for the utility helpers (seed derivation, validation)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.util.rng import derive_seed, make_rng
from repro.util.validate import check_fraction, check_positive, check_power_of_two


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_labels_matter(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_base_seed_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_no_concatenation_ambiguity(self):
        # ("ab",) and ("a", "b") must derive different streams.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_non_negative_63_bit(self):
        for labels in [(), ("x",), (1, 2, 3)]:
            seed = derive_seed(7, *labels)
            assert 0 <= seed < 1 << 63

    @given(st.integers(0, 2**62), st.text(max_size=20))
    def test_property_stable(self, base, label):
        assert derive_seed(base, label) == derive_seed(base, label)

    def test_make_rng_streams_independent(self):
        a = make_rng(5, "one")
        b = make_rng(5, "two")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_make_rng_returns_random_instance(self):
        assert isinstance(make_rng(0), random.Random)


class TestValidate:
    def test_fraction_accepts_bounds(self):
        assert check_fraction("x", 0.0) == 0.0
        assert check_fraction("x", 1.0) == 1.0

    def test_fraction_rejects_outside(self):
        with pytest.raises(ValueError, match="x"):
            check_fraction("x", -0.01)
        with pytest.raises(ValueError):
            check_fraction("x", 1.01)

    def test_positive(self):
        assert check_positive("y", 0.5) == 0.5
        with pytest.raises(ValueError, match="y"):
            check_positive("y", 0)

    def test_power_of_two(self):
        assert check_power_of_two("z", 1) == 1
        assert check_power_of_two("z", 64) == 64
        for bad in (0, -2, 3, 6, 100):
            with pytest.raises(ValueError, match="z"):
                check_power_of_two("z", bad)
