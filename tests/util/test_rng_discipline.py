"""Seeding discipline: no hidden global-RNG state anywhere in the tree.

Every random draw in the simulator must flow through a labelled
``repro.util.rng.make_rng`` stream (or an explicitly seeded
``random.Random`` instance in test/bench scaffolding): results must be a
pure function of the run's seed, never of import order, interleaving or a
previous run's draws. One half of this file is a static audit of the
source tree; the other half asserts run-to-run determinism end to end.
"""

import re
from pathlib import Path

from repro.experiments.configs import machine
from repro.experiments.runner import run_workload

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"

#: Module-level calls that mutate/consume the *shared* global Random.
GLOBAL_RNG_CALL = re.compile(
    r"\brandom\s*\.\s*"
    r"(random|seed|randint|randrange|shuffle|choice|choices|sample|"
    r"uniform|getrandbits|gauss|betavariate|expovariate)\s*\("
)
IMPORT_RANDOM = re.compile(r"^\s*(import\s+random\b|from\s+random\s+import\b)", re.M)


def _py_files(*roots):
    this_file = Path(__file__).resolve()
    for root in roots:
        for path in sorted(root.rglob("*.py")):
            if path.resolve() != this_file:
                yield path


class TestStaticAudit:
    def test_only_the_rng_module_imports_random_in_src(self):
        allowed = SRC / "util" / "rng.py"
        offenders = [
            str(path.relative_to(REPO))
            for path in _py_files(SRC)
            if path != allowed and IMPORT_RANDOM.search(path.read_text())
        ]
        assert offenders == [], (
            f"import random outside repro.util.rng in {offenders}; "
            "route seeding through make_rng(seed, *labels)"
        )

    def test_no_global_rng_calls_in_the_tree(self):
        roots = (SRC, REPO / "benchmarks", REPO / "examples", REPO / "tests")
        offenders = []
        for path in _py_files(*roots):
            for match in GLOBAL_RNG_CALL.finditer(path.read_text()):
                offenders.append(f"{path.relative_to(REPO)}: {match.group(0)}")
        assert offenders == [], (
            f"global random.* calls found: {offenders}; "
            "use make_rng or a seeded random.Random instance"
        )


class TestRunToRunDeterminism:
    def test_run_workload_is_a_function_of_its_seed(self):
        config = machine(4, instructions=20_000)
        first = run_workload("Q1", config, "prism-h", seed=5)
        second = run_workload("Q1", config, "prism-h", seed=5)
        assert first.antt == second.antt
        assert first.fairness == second.fairness
        assert [c.ipc for c in first.cores] == [c.ipc for c in second.cores]
        assert [c.misses for c in first.cores] == [c.misses for c in second.cores]
        assert first.eviction_probabilities == second.eviction_probabilities
        # ... and a different seed actually changes the draw streams.
        other = run_workload("Q1", config, "prism-h", seed=6)
        assert (first.antt, first.eviction_probabilities) != (
            other.antt, other.eviction_probabilities
        ) or [c.misses for c in first.cores] != [c.misses for c in other.cores]

    def test_differential_fuzzer_is_deterministic(self):
        from repro.check.differential import fuzz

        first = fuzz(cases=3, seed=17)
        second = fuzz(cases=3, seed=17)
        assert [r.case for r in first] == [r.case for r in second]
        assert [r.ok for r in first] == [r.ok for r in second]
