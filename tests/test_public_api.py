"""Public-API surface checks: the imports the README promises exist."""

import pytest


class TestTopLevelAPI:
    def test_readme_quickstart_names(self):
        import repro

        for name in ("machine", "run_workload", "PrismScheme", "HitMaxPolicy",
                     "FairnessPolicy", "QOSPolicy", "SharedCache", "CacheGeometry",
                     "MultiCoreSystem", "run_standalone", "get_mix", "get_profile",
                     "derive_eviction_probabilities", "ProbabilisticCacheManager"):
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro
        import repro.cache
        import repro.core
        import repro.core.allocation
        import repro.cpu
        import repro.metrics
        import repro.partitioning
        import repro.workloads

        for module in (repro, repro.cache, repro.core, repro.core.allocation,
                       repro.cpu, repro.metrics, repro.partitioning, repro.workloads):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestPolicyRegistry:
    def test_make_policy_known_names(self):
        from repro.cache.replacement import make_policy

        for name in ("lru", "random", "tslru", "dip", "bip", "lip",
                     "srrip", "brrip", "drrip"):
            policy = make_policy(name)
            assert policy.name in (name, "lip", "bip")  # names match registry keys

    def test_make_policy_kwargs(self):
        from repro.cache.replacement import make_policy

        policy = make_policy("dip", epsilon=1 / 16)
        assert policy.epsilon == 1 / 16

    def test_make_policy_unknown(self):
        from repro.cache.replacement import make_policy

        with pytest.raises(ValueError, match="known"):
            make_policy("plru")
