"""Public-API surface checks: the imports the README promises exist."""

import pytest


class TestTopLevelAPI:
    def test_readme_quickstart_names(self):
        import repro

        for name in ("machine", "run_workload", "PrismScheme", "HitMaxPolicy",
                     "FairnessPolicy", "QOSPolicy", "SharedCache", "CacheGeometry",
                     "MultiCoreSystem", "run_standalone", "get_mix", "get_profile",
                     "derive_eviction_probabilities", "ProbabilisticCacheManager"):
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro
        import repro.cache
        import repro.core
        import repro.core.allocation
        import repro.cpu
        import repro.metrics
        import repro.partitioning
        import repro.workloads

        for module in (repro, repro.cache, repro.core, repro.core.allocation,
                       repro.cpu, repro.metrics, repro.partitioning, repro.workloads):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestWorkloadConstructionAPI:
    """The unified workload-source seam promised by docs/simulator.md."""

    def test_documented_names_exported(self):
        import repro.workloads as workloads

        for name in ("WorkloadSource", "MixSource", "BenchmarkListSource",
                     "resolve_workload", "register_family", "workload_families",
                     "TenantSpec", "TenantWorkload", "get_tenant_workload",
                     "tenant_presets", "TENANT_PRESETS"):
            assert name in workloads.__all__, name
            assert hasattr(workloads, name), name

    def test_resolver_covers_every_reference_kind(self):
        from repro.workloads import (
            BenchmarkListSource,
            MixSource,
            TenantWorkload,
            resolve_workload,
        )

        assert isinstance(resolve_workload("Q7"), MixSource)
        assert isinstance(resolve_workload(["179.art"]), BenchmarkListSource)
        assert isinstance(resolve_workload("tenants:smoke4"), TenantWorkload)

    def test_tenants_family_registered(self):
        from repro.workloads import workload_families

        assert "tenants" in workload_families()

    def test_tenancy_metrics_exported(self):
        import repro.metrics as metrics

        for name in ("TenantSLOReport", "MissRunTracker", "jain_fairness",
                     "slo_attainment", "tenant_hit_rates", "DEFAULT_SLO_FRACTION"):
            assert name in metrics.__all__, name

    def test_resolve_mix_shim_is_deprecated(self):
        from repro.experiments.runner import _resolve_mix

        with pytest.warns(DeprecationWarning, match="resolve_workload"):
            label, profiles = _resolve_mix("Q7")
        assert label == "Q7"
        assert len(profiles) == 4


class TestPolicyRegistry:
    def test_make_policy_known_names(self):
        from repro.cache.replacement import make_policy

        for name in ("lru", "plru", "random", "tslru", "dip", "bip", "lip",
                     "srrip", "brrip", "drrip"):
            policy = make_policy(name)
            assert policy.name in (name, "lip", "bip")  # names match registry keys

    def test_make_policy_kwargs(self):
        from repro.cache.replacement import make_policy

        policy = make_policy("dip", epsilon=1 / 16)
        assert policy.epsilon == 1 / 16

    def test_make_policy_unknown(self):
        from repro.cache.replacement import make_policy

        with pytest.raises(ValueError, match="known"):
            make_policy("clairvoyant")
