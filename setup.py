"""Setuptools shim.

The execution environment has no ``wheel`` package (and no network), so
PEP-660 editable installs fail; this shim keeps ``pip install -e .``
working through the legacy ``setup.py develop`` path. All metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
