"""Offline Belady/MIN optimal replacement over recorded post-L1 traces.

Belady's algorithm evicts the resident block whose next use lies farthest
in the future — unrealisable online, but on a *recorded* trace it is the
provable hit-count optimum among demand-fill policies, which makes it the
yardstick every online scheme's remaining headroom is measured against
(cf. "Optimal Eviction Policies for Stochastic Address Traces" in
PAPERS.md). The module provides:

- :class:`BeladyCache` — the fast implementation: next-use indices are
  precomputed with one backward scan, each resident block carries the
  index of its next access (updated on every hit, so it is always
  current), and the victim is the stored maximum. O(assoc) per miss.
- :class:`NaiveBelady` — an independent, obviously-correct transcription
  that rescans the *future trace* at every eviction. O(n) per miss; the
  reference the fast implementation is differential-tested against,
  in the same spirit as :mod:`repro.check.reference`.
- :func:`replay_trace` — replay a :class:`~repro.cpu.system.RecordedTrace`
  through any registry scheme (or ``"belady"``) on a fresh cache, so
  every contender sees the *same* access stream.
- :func:`assert_belady_bound` — certify Belady's hit count is >= every
  online policy's on the same trace (raises
  :class:`~repro.check.invariants.InvariantViolation` otherwise).
- :func:`belady_workload_run` — the ``scheme="belady"`` path of
  :func:`repro.experiments.runner.run_workload`: record a reference run
  (LRU timing machine, the config's hierarchy), replay the trace under
  Belady, and reconstruct per-core timing in trace order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cache.geometry import CacheGeometry
from repro.check.invariants import InvariantViolation
from repro.cpu.core_model import CoreTimingModel
from repro.cpu.memory import MemoryModel
from repro.cpu.system import CoreResult, RecordedTrace, SystemResult

__all__ = [
    "BeladyCache",
    "NaiveBelady",
    "ReplayResult",
    "next_use_indices",
    "replay_trace",
    "assert_belady_bound",
    "belady_workload_run",
]


def next_use_indices(addrs: Sequence[int]) -> List[int]:
    """``next_use[i]`` = index of the next access to ``addrs[i]`` after
    ``i``, or ``len(addrs)`` when it is never accessed again."""
    n = len(addrs)
    next_use = [n] * n
    last_seen: Dict[int, int] = {}
    for i in range(n - 1, -1, -1):
        addr = addrs[i]
        next_use[i] = last_seen.get(addr, n)
        last_seen[addr] = i
    return next_use


class BeladyCache:
    """Belady/MIN over a fixed address sequence, stepped access by access.

    Args:
        geometry: cache geometry (set indexing/tags as the real LLC).
        num_cores: owner universe for the per-core counters.
        addrs: the full address sequence that will be replayed; accesses
            must then be fed in exactly this order via :meth:`access`.
    """

    def __init__(
        self, geometry: CacheGeometry, num_cores: int, addrs: Sequence[int]
    ) -> None:
        self.geometry = geometry
        self.num_cores = num_cores
        self._next_use = next_use_indices(addrs)
        # Per set: block address -> [stored next use, owner core].
        # Insertion order is fill order; never-used-again blocks tie at
        # n and the earliest-filled one wins (strict-> comparison below).
        self._sets: List[Dict[int, List[int]]] = [
            {} for _ in range(geometry.num_sets)
        ]
        self.hits = [0] * num_cores
        self.misses = [0] * num_cores
        self.occupancy = [0] * num_cores

    def access(self, index: int, core: int, addr: int) -> bool:
        """Access ``addr`` as trace position ``index``; True on a hit."""
        resident = self._sets[self.geometry.set_index(addr)]
        entry = resident.get(addr)
        if entry is not None:
            entry[0] = self._next_use[index]
            entry[1] = core
            self.hits[core] += 1
            return True
        self.misses[core] += 1
        if len(resident) >= self.geometry.assoc:
            victim_addr, victim_entry = None, None
            for block_addr, candidate in resident.items():
                if victim_entry is None or candidate[0] > victim_entry[0]:
                    victim_addr, victim_entry = block_addr, candidate
            self.occupancy[victim_entry[1]] -= 1
            del resident[victim_addr]
        resident[addr] = [self._next_use[index], core]
        self.occupancy[core] += 1
        return False

    def total_hits(self) -> int:
        return sum(self.hits)

    def total_misses(self) -> int:
        return sum(self.misses)


class NaiveBelady:
    """Belady by literal forward rescan of the remaining trace.

    Keeps each set as a plain fill-ordered list and, on every full-set
    miss, scans the future of the trace to find each resident block's
    next use. Quadratic — for differential tests on short traces only.
    """

    def __init__(
        self, geometry: CacheGeometry, num_cores: int, addrs: Sequence[int]
    ) -> None:
        self.geometry = geometry
        self.addrs = list(addrs)
        self._sets: List[List[int]] = [[] for _ in range(geometry.num_sets)]
        self.hits = [0] * num_cores
        self.misses = [0] * num_cores

    def _next_use_after(self, addr: int, index: int) -> int:
        for i in range(index + 1, len(self.addrs)):
            if self.addrs[i] == addr:
                return i
        return len(self.addrs)

    def access(self, index: int, core: int, addr: int) -> bool:
        resident = self._sets[self.geometry.set_index(addr)]
        if addr in resident:
            self.hits[core] += 1
            return True
        self.misses[core] += 1
        if len(resident) >= self.geometry.assoc:
            uses = [self._next_use_after(block, index) for block in resident]
            # Farthest next use; the earliest-filled block wins ties.
            victim = uses.index(max(uses))
            resident.pop(victim)
        resident.append(addr)
        return False

    def total_hits(self) -> int:
        return sum(self.hits)


@dataclass
class ReplayResult:
    """Hit/miss outcome of one scheme replayed over one recorded trace."""

    scheme: str
    hits: List[int]
    misses: List[int]
    extra: dict = field(default_factory=dict)

    @property
    def total_hits(self) -> int:
        return sum(self.hits)

    @property
    def total_misses(self) -> int:
        return sum(self.misses)


def replay_trace(
    trace: RecordedTrace,
    geometry: CacheGeometry,
    scheme: str = "belady",
    seed: int = 0,
    scheme_kwargs: Optional[dict] = None,
    standalone_ipcs: Optional[Sequence[float]] = None,
) -> ReplayResult:
    """Replay a recorded post-L1 trace through one scheme, pure trace mode.

    Every scheme sees byte-for-byte the same access sequence (no timing
    feedback — schemes that read performance counters get the
    deterministic :class:`~repro.check.differential.SyntheticPerf`), so
    hit counts are directly comparable and the gap to ``"belady"`` is the
    scheme's optimality headroom on that trace.
    """
    num_cores = trace.num_cores
    if scheme == "belady":
        belady = BeladyCache(geometry, num_cores, trace.addrs)
        for i, (core, addr) in enumerate(zip(trace.cores, trace.addrs)):
            belady.access(i, core, addr)
        return ReplayResult("belady", list(belady.hits), list(belady.misses))

    # Imported lazily: repro.experiments imports this module's sibling.
    from repro.cache.cache import SharedCache
    from repro.check.differential import SyntheticPerf
    from repro.experiments.schemes import build_scheme

    if standalone_ipcs is None:
        standalone_ipcs = [1.0] * num_cores
    scheme_obj, policy = build_scheme(
        scheme, num_cores, list(standalone_ipcs), **(scheme_kwargs or {})
    )
    cache = SharedCache(geometry, num_cores, policy=policy, scheme=scheme_obj)
    if scheme_obj is not None and hasattr(scheme_obj, "perf"):
        scheme_obj.perf = SyntheticPerf(num_cores, seed=seed)
    for core, addr in zip(trace.cores, trace.addrs):
        cache.access(core, addr)
    hits = [cache.stats.hits[c] for c in range(num_cores)]
    misses = [cache.stats.misses[c] for c in range(num_cores)]
    return ReplayResult(scheme, hits, misses)


def assert_belady_bound(
    trace: RecordedTrace,
    geometry: CacheGeometry,
    schemes: Sequence[str],
    seed: int = 0,
    scheme_kwargs: Optional[Dict[str, dict]] = None,
) -> Dict[str, ReplayResult]:
    """Certify Belady is hit-count optimal vs every scheme on ``trace``.

    Returns the per-scheme replay results (including ``"belady"``).

    Raises:
        InvariantViolation: (``"belady-bound"``) if any online policy
            beats Belady's total hit count — which would mean the offline
            simulator is broken, since MIN is provably optimal.
    """
    results = {"belady": replay_trace(trace, geometry, "belady")}
    bound = results["belady"].total_hits
    for scheme in schemes:
        if scheme == "belady":
            continue
        kwargs = (scheme_kwargs or {}).get(scheme)
        result = replay_trace(trace, geometry, scheme, seed=seed, scheme_kwargs=kwargs)
        results[scheme] = result
        if result.total_hits > bound:
            raise InvariantViolation(
                "belady-bound",
                f"scheme {scheme!r} scored {result.total_hits} hits, above "
                f"the Belady optimum {bound} on the same {len(trace)}-access trace",
            )
    return results


def belady_workload_run(
    trace: RecordedTrace,
    profiles: Sequence,
    geometry: CacheGeometry,
    memory: MemoryModel,
    instructions_per_core: int,
    llc_hit_latency: float = 8.0,
) -> SystemResult:
    """Replay ``trace`` under Belady and reconstruct per-core timing.

    The trace is walked in recorded order with fresh
    :class:`~repro.cpu.core_model.CoreTimingModel`\\ s and a fresh
    ``memory`` model: L1-hit bundles replay through ``advance_local``,
    LLC accesses resolve against :class:`BeladyCache`, and each core's
    statistics freeze at its instruction target exactly like the live
    system's. ``intervals`` is 0 — Belady has no allocation intervals.
    """
    num_cores = trace.num_cores
    belady = BeladyCache(geometry, num_cores, trace.addrs)
    cores = [
        CoreTimingModel(i, p, llc_hit_latency=llc_hit_latency)
        for i, p in enumerate(profiles)
    ]
    occupancy_at_finish = [0.0] * num_cores
    num_blocks = geometry.num_blocks

    def check_finish(cid: int, core: CoreTimingModel) -> None:
        if not core.finished and core.instructions >= instructions_per_core:
            core.mark_finished()
            occupancy_at_finish[cid] = belady.occupancy[cid] / num_blocks

    for i in range(len(trace)):
        cid = trace.cores[i]
        core = cores[cid]
        l1_gap, l1_lat = trace.l1_gaps[i], trace.l1_lats[i]
        if l1_gap or l1_lat:
            core.advance_local(l1_gap, l1_lat)
            check_finish(cid, core)
        gap = trace.gaps[i]
        if belady.access(i, cid, trace.addrs[i]):
            core.advance(gap, True)
        else:
            issue_time = core.cycles + gap * core.profile.cpi_base
            core.advance(gap, False, memory.miss_latency(trace.addrs[i], issue_time))
        check_finish(cid, core)

    results = []
    for i, core in enumerate(cores):
        reported_instructions = (
            core.finish_instructions if core.finished else core.instructions
        )
        reported_cycles = core.finish_cycles if core.finished else core.cycles
        stall_cpi = (
            core.llc_stall_cycles / reported_instructions
            if reported_instructions
            else 0.0
        )
        results.append(
            CoreResult(
                name=profiles[i].name,
                ipc=core.ipc(),
                cpi=core.cpi(),
                llc_stall_cpi=stall_cpi,
                instructions=reported_instructions,
                cycles=reported_cycles,
                hits=belady.hits[i],
                misses=belady.misses[i],
                occupancy_at_finish=occupancy_at_finish[i],
            )
        )
    return SystemResult(
        cores=results,
        scheme_name="belady",
        total_accesses=len(trace),
        intervals=0,
    )
