"""The reference simulator: slow, naive, and obviously correct.

This module re-derives the shared-cache semantics from the paper (and
from this repo's documented deviations, see ``DESIGN.md``) with the
simplest data structures that can express them:

- a cache set is a **plain Python list** of blocks in MRU→LRU order —
  every operation is a scan, splice or ``insert(0, ...)``;
- the shadow-tag monitor keeps **plain per-core LRU stacks** of tags;
- PriSM's Algorithms 1-3, Eq. 1 (and its renormalisation), the K-bit
  quantisation and the Section 3.1 two-step replacement with both
  victim-not-found fallbacks are transcribed **literally** as free
  functions, with the same arithmetic in the same order as the spec so
  a correct engine matches it float-for-float.

Nothing here imports from :mod:`repro.cache`, :mod:`repro.core` or
:mod:`repro.partitioning` — the only shared ingredients are the seed
derivation (:mod:`repro.util.rng`; both simulators stand in for the same
hardware RNG, so they must draw from the same stream) and the stdlib.
:func:`build_reference` accepts the same registry names and
``scheme_kwargs`` as :func:`repro.experiments.schemes.build_scheme`, so a
differential harness can build both sides from one spec.

Two deliberate fidelity notes, mirrored because they are *semantics*,
not data-structure accidents:

- The engine's resample fallback iterates a set's resident cores in
  **first-touch order** (the order in which each core either first
  gained a block in the set or was first sampled as a victim core
  there). The reference models that order explicitly as a list.
- ``cumulative[-1]`` of the sampling distribution is pinned to 1.0 so a
  draw of 0.999... can never fall off the top end.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import accumulate
from typing import Callable, Dict, List, Optional, Sequence

from repro.util.rng import make_rng

__all__ = [
    "REFERENCE_SCHEMES",
    "RefAccess",
    "ReferenceCache",
    "build_reference",
    "ref_eviction_probability",
    "ref_derive_eviction_probabilities",
    "ref_hitmax_targets",
    "ref_fairness_targets",
    "ref_qos_targets",
    "ref_normalize_targets",
    "ref_quantize",
    "ref_dequantize",
]


# -- blocks and sets ---------------------------------------------------------


class RefBlock:
    """One resident cache block: a (tag, accounting owner) pair.

    ``sharers`` (bitmask of accounting owners that touched the block
    since its fill) and ``filler`` (the real core that filled it, under a
    cluster map) mirror the engine's ownership refactor literally.
    """

    __slots__ = ("tag", "core", "sharers", "filler")

    def __init__(self, tag: int, core: int) -> None:
        self.tag = tag
        self.core = core
        self.sharers = 0
        self.filler = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RefBlock(tag={self.tag:#x}, core={self.core})"


class RefSet:
    """A cache set as a plain list, index 0 = MRU, last = LRU."""

    def __init__(self, index: int, assoc: int) -> None:
        self.index = index
        self.assoc = assoc
        self.blocks: List[RefBlock] = []
        # core -> resident count; insertion order is first-touch order
        # (see module docstring), entries are never removed once created.
        self.core_counts: Dict[int, int] = {}

    def touch(self, core: int) -> None:
        """Materialise ``core`` in the first-touch order (count stays 0)."""
        if core not in self.core_counts:
            self.core_counts[core] = 0

    def lookup(self, tag: int) -> Optional[RefBlock]:
        for block in self.blocks:
            if block.tag == tag:
                return block
        return None

    @property
    def full(self) -> bool:
        return len(self.blocks) >= self.assoc

    def promote(self, block: RefBlock) -> None:
        """Move a resident block to the MRU position."""
        self.blocks.remove(block)
        self.blocks.insert(0, block)

    def insert(self, tag: int, core: int, at_lru: bool) -> RefBlock:
        if self.full:
            raise RuntimeError(f"reference set {self.index}: fill on a full set")
        block = RefBlock(tag, core)
        self.touch(core)
        self.core_counts[core] += 1
        if at_lru:
            self.blocks.append(block)
        else:
            self.blocks.insert(0, block)
        return block

    def evict(self, block: RefBlock) -> None:
        self.blocks.remove(block)
        self.core_counts[block.core] -= 1

    def lru_block(self) -> RefBlock:
        return self.blocks[-1]

    def lru_block_of(self, core: int) -> RefBlock:
        """``core``'s LRU-most resident block (caller checks residency)."""
        for block in reversed(self.blocks):
            if block.core == core:
                return block
        raise RuntimeError(f"reference set {self.index}: core {core} not resident")


# -- baseline replacement policies ------------------------------------------


class RefLRU:
    """True LRU: MRU insertion, MRU promotion, LRU-end victim."""

    name = "lru"

    def record_miss(self, cset: RefSet, core: int) -> None:
        pass

    def on_hit(self, cset: RefSet, block: RefBlock) -> None:
        cset.promote(block)

    def insert_at_lru(self, cset: RefSet, core: int) -> bool:
        return False

    def victim(self, cset: RefSet) -> RefBlock:
        return cset.lru_block()


class RefDIP(RefLRU):
    """DIP transcription: LRU/BIP leader sets duel over a PSEL counter.

    The bimodal draw happens exactly when the engine draws (only for a
    fill into a set currently following BIP), so both simulators walk the
    same PRNG stream.
    """

    name = "dip"

    def __init__(
        self,
        num_sets: int,
        epsilon: float = 1.0 / 32.0,
        leader_sets: int = 4,
        psel_bits: int = 10,
        seed: int = 0,
    ) -> None:
        self.epsilon = epsilon
        self.psel_max = (1 << psel_bits) - 1
        self.psel = self.psel_max // 2
        self._rng = make_rng(seed, "dip")
        self.roles: Dict[int, str] = {}
        leaders = min(leader_sets, max(1, num_sets // 2))
        stride = max(1, num_sets // (2 * leaders))
        for i in range(leaders):
            self.roles[(2 * i) * stride % num_sets] = "lru"
            self.roles[(2 * i + 1) * stride % num_sets] = "bip"

    def role_of(self, set_index: int) -> str:
        return self.roles.get(set_index, "follow")

    def uses_bip(self, set_index: int) -> bool:
        role = self.role_of(set_index)
        if role == "lru":
            return False
        if role == "bip":
            return True
        return self.psel > self.psel_max // 2

    def record_miss(self, cset: RefSet, core: int) -> None:
        role = self.role_of(cset.index)
        if role == "lru" and self.psel < self.psel_max:
            self.psel += 1
        elif role == "bip" and self.psel > 0:
            self.psel -= 1

    def insert_at_lru(self, cset: RefSet, core: int) -> bool:
        # Mirror of the engine's short-circuit: the bimodal PRNG is only
        # consulted when the set is currently following BIP.
        return self.uses_bip(cset.index) and self._rng.random() >= self.epsilon


# -- shadow tags -------------------------------------------------------------


class RefShadow:
    """Per-core stand-alone LRU stacks on the sampled sets, naive form."""

    def __init__(self, num_cores: int, num_sets: int, assoc: int, sample_shift: int) -> None:
        while num_sets <= (1 << sample_shift) and sample_shift > 0:
            sample_shift -= 1
        self.sample_mask = (1 << sample_shift) - 1
        self.num_cores = num_cores
        self.assoc = assoc
        self._stacks: List[Dict[int, List[int]]] = [
            {s: [] for s in range(0, num_sets, self.sample_mask + 1)}
            for _ in range(num_cores)
        ]
        self.position_hits: List[List[int]] = [[0] * assoc for _ in range(num_cores)]
        self.shadow_misses: List[int] = [0] * num_cores
        self.shared_hits: List[int] = [0] * num_cores
        self.shared_misses: List[int] = [0] * num_cores

    def observe(self, core: int, set_index: int, tag: int, shared_hit: bool) -> None:
        if set_index & self.sample_mask:
            return
        if shared_hit:
            self.shared_hits[core] += 1
        else:
            self.shared_misses[core] += 1
        stack = self._stacks[core][set_index]
        if tag in stack:
            position = stack.index(tag)
            self.position_hits[core][position] += 1
            del stack[position]
        else:
            self.shadow_misses[core] += 1
            if len(stack) >= self.assoc:
                stack.pop()
        stack.insert(0, tag)

    # The query surface the allocation transcriptions read (same names as
    # the engine's ShadowTagMonitor so the transcriptions read naturally).

    def standalone_hits(self, core: int) -> int:
        return sum(self.position_hits[core])

    def standalone_misses(self, core: int) -> int:
        return self.shadow_misses[core]

    def hits_with_ways(self, core: int, ways: int) -> int:
        return sum(self.position_hits[core][: min(ways, self.assoc)])

    def end_interval(self) -> None:
        for core in range(self.num_cores):
            self.position_hits[core] = [0] * self.assoc
            self.shadow_misses[core] = 0
            self.shared_hits[core] = 0
            self.shared_misses[core] = 0


# -- the analytical model, transcribed ---------------------------------------


def ref_normalize_targets(targets: Sequence[float]) -> List[float]:
    """Non-negative targets scaled to sum to 1 (uniform when all-zero)."""
    clipped = [max(0.0, t) for t in targets]
    total = sum(clipped)
    if total <= 0.0:
        n = len(clipped)
        return [1.0 / n] * n if n else []
    return [t / total for t in clipped]


def ref_eviction_probability(
    occupancy: float, target: float, miss_fraction: float, num_blocks: int, interval: int
) -> float:
    """Eq. 1: ``E_i = clamp((C_i - T_i) * N / W + M_i, 0, 1)``."""
    raw = (occupancy - target) * num_blocks / interval + miss_fraction
    if raw < 0.0:
        return 0.0
    if raw > 1.0:
        return 1.0
    return raw


def ref_derive_eviction_probabilities(
    occupancy: Sequence[float],
    targets: Sequence[float],
    miss_fractions: Sequence[float],
    num_blocks: int,
    interval: int,
    renormalize: bool = True,
) -> List[float]:
    """Eq. 1 per core, then renormalised to a sampleable distribution."""
    if not len(occupancy) == len(targets) == len(miss_fractions):
        raise ValueError("length mismatch between C, T and M")
    if num_blocks <= 0 or interval <= 0:
        raise ValueError("num_blocks and interval must be positive")
    probabilities = [
        ref_eviction_probability(c, t, m, num_blocks, interval)
        for c, t, m in zip(occupancy, targets, miss_fractions)
    ]
    if not renormalize:
        return probabilities
    total = sum(probabilities)
    if total <= 0.0:
        total = sum(miss_fractions)
        if total <= 0.0:
            n = len(probabilities)
            return [1.0 / n] * n
        return [m / total for m in miss_fractions]
    return [p / total for p in probabilities]


def ref_quantize(probabilities: Sequence[float], bits: int) -> List[int]:
    """K-bit numerators, to-nearest, largest entry forced to 1 if all round to 0."""
    scale = (1 << bits) - 1
    levels = [int(round(p * scale)) for p in probabilities]
    if probabilities and sum(levels) == 0:
        largest = max(range(len(levels)), key=lambda i: probabilities[i])
        levels[largest] = 1
    return levels


def ref_dequantize(levels: Sequence[int], bits: int) -> List[float]:
    """Quantised numerators back to a normalised distribution."""
    total = sum(levels)
    if total == 0:
        n = len(levels)
        return [1.0 / n] * n if n else []
    return [level / total for level in levels]


# -- allocation algorithms, transcribed --------------------------------------


class RefContext:
    """The interval snapshot an allocation transcription reads."""

    def __init__(
        self,
        num_cores: int,
        occupancy: List[float],
        miss_fractions: List[float],
        num_blocks: int,
        interval: int,
        shadow: RefShadow,
        perf=None,
    ) -> None:
        self.num_cores = num_cores
        self.occupancy = occupancy
        self.miss_fractions = miss_fractions
        self.num_blocks = num_blocks
        self.interval = interval
        self.shadow = shadow
        self.perf = perf


def _hitmax_knees(ctx: RefContext, knee_quantile: float) -> List[float]:
    """Smallest way count capturing ``knee_quantile`` of stand-alone hits."""
    assoc = ctx.shadow.assoc
    knees = []
    for core in range(ctx.num_cores):
        total = ctx.shadow.hits_with_ways(core, assoc)
        if total <= 0:
            knees.append(0.0)
            continue
        threshold = knee_quantile * total
        knee_ways = assoc
        for ways in range(assoc + 1):
            if ctx.shadow.hits_with_ways(core, ways) >= threshold:
                knee_ways = ways
                break
        knees.append(knee_ways / assoc)
    return knees


def ref_hitmax_targets(
    ctx: RefContext,
    occupancy_floor: float = 1.0,
    pure: bool = False,
    knee_quantile: float = 0.95,
    protect_cap_mult: float = 1.5,
    thrash_knee: float = 0.99,
    thrash_discount: float = 0.25,
) -> List[float]:
    """Algorithm 1 (hit maximisation), plus this repo's documented guards.

    ``pure=True`` is the paper's literal Algorithm 1: scale each core's
    current occupancy by its share of the total potential gain. The
    default additionally applies the small-core protection and thrash
    discounting described in ``DESIGN.md`` §3 — part of this repo's
    prism-h semantics, so the oracle must model them too.
    """
    gains = []
    for core in range(ctx.num_cores):
        gain = ctx.shadow.standalone_hits(core) - ctx.shadow.shared_hits[core]
        gains.append(float(max(0, gain)))
    knees = _hitmax_knees(ctx, knee_quantile) if not pure else []
    if not pure:
        gains = [
            gain * thrash_discount if knees[core] > thrash_knee else gain
            for core, gain in enumerate(gains)
        ]
    total_gain = sum(gains)
    floor = occupancy_floor / ctx.num_blocks
    occupancy = [max(c, floor) for c in ctx.occupancy]
    if total_gain <= 0.0:
        targets = ref_normalize_targets(occupancy)
    else:
        targets = ref_normalize_targets(
            [c * (1.0 + gain / total_gain) for c, gain in zip(occupancy, gains)]
        )
    if pure:
        return targets

    # Small-core protection: floor each protected core's target at its
    # utility knee, paid for by scaling the donors down.
    cap = protect_cap_mult / ctx.num_cores
    floors = [k if 0.0 < k <= cap else 0.0 for k in knees]
    deficit = [i for i in range(ctx.num_cores) if targets[i] < floors[i]]
    if not deficit:
        return targets
    needed = sum(floors[i] - targets[i] for i in deficit)
    donors_total = sum(t for i, t in enumerate(targets) if i not in deficit)
    if donors_total <= needed:
        return targets
    scale = (donors_total - needed) / donors_total
    adjusted = [
        floors[i] if i in deficit else targets[i] * scale
        for i in range(ctx.num_cores)
    ]
    return ref_normalize_targets(adjusted)


def ref_fairness_targets(ctx: RefContext, occupancy_floor: float = 1.0) -> List[float]:
    """Algorithm 2 (fairness): grow space in proportion to estimated slowdown."""
    if ctx.perf is None:
        raise RuntimeError("fairness transcription needs performance counters")
    slowdowns = []
    for core in range(ctx.num_cores):
        cpi_shared = ctx.perf.cpi(core)
        cpi_llc = ctx.perf.llc_stall_cpi(core)
        if cpi_shared <= 0.0:
            slowdowns.append(1.0)
            continue
        cpi_ideal = max(0.0, cpi_shared - cpi_llc)
        shared_misses = ctx.shadow.shared_misses[core]
        alone_misses = ctx.shadow.standalone_misses(core)
        if shared_misses > 0:
            scale = alone_misses / shared_misses
        else:
            scale = 1.0
        cpi_alone = cpi_ideal + cpi_llc * scale
        if cpi_alone <= 0.0:
            slowdowns.append(1.0)
            continue
        slowdowns.append(max(1.0, cpi_shared / cpi_alone))
    floor = occupancy_floor / ctx.num_blocks
    targets = [max(c, floor) * s for c, s in zip(ctx.occupancy, slowdowns)]
    return ref_normalize_targets(targets)


def ref_qos_targets(
    ctx: RefContext,
    target_ipc: float,
    qos_core: int = 0,
    alpha: float = 0.1,
    beta: float = 0.1,
    deadband: float = 0.0,
    max_occupancy: float = 0.9,
) -> List[float]:
    """Algorithm 3 (QoS): multiplicative steps for the QoS core, Alg. 1 rest."""
    if ctx.perf is None:
        raise RuntimeError("qos transcription needs performance counters")
    qos = qos_core
    current_ipc = ctx.perf.ipc(qos)
    c0 = max(ctx.occupancy[qos], 1.0 / ctx.num_blocks)
    if current_ipc < target_ipc * (1.0 - deadband):
        t0 = (1.0 + alpha) * c0
    elif current_ipc > target_ipc * (1.0 + deadband):
        t0 = (1.0 - beta) * c0
    else:
        t0 = c0
    t0 = min(t0, max_occupancy)

    hitmax_targets = ref_hitmax_targets(ctx)
    others_total = sum(t for core, t in enumerate(hitmax_targets) if core != qos)
    remaining = 1.0 - t0
    targets = []
    for core in range(ctx.num_cores):
        if core == qos:
            targets.append(t0)
        elif others_total > 0.0:
            targets.append(hitmax_targets[core] / others_total * remaining)
        else:
            targets.append(remaining / max(1, ctx.num_cores - 1))
    return targets


# -- the PriSM mechanism, transcribed ----------------------------------------


class RefPrism:
    """Section 3.1 core-selection + victim-identification, plus intervals.

    Args:
        alloc: ``alloc(ctx) -> targets`` — one of the Algorithm 1-3
            transcriptions above, pre-bound with its parameters.
        num_cores: sharing cores.
        num_blocks: ``N``.
        num_sets: sets of the monitored cache (for shadow sampling).
        assoc: associativity (shadow arrays match the cache's).
        interval_len: ``W`` in misses (``None`` = the paper's ``W = N``).
        probability_bits: optional K-bit storage of ``E``.
        sample_shift: shadow-tag set sampling shift.
        seed: core-selection PRNG seed (same derivation as the engine's
            manager: both stand in for the same hardware RNG).
        fallback: ``"resample"`` or ``"paper"`` (Section 3.1 rule).
        bias_correction: subtract last interval's realised-minus-installed
            eviction-fraction error before installing.
        perf: performance counters for Algorithms 2/3 (or ``None``).
    """

    def __init__(
        self,
        alloc: Callable[[RefContext], List[float]],
        num_cores: int,
        num_blocks: int,
        num_sets: int,
        assoc: int,
        interval_len: Optional[int] = None,
        probability_bits: Optional[int] = None,
        sample_shift: int = 1,
        seed: int = 0,
        fallback: str = "resample",
        bias_correction: bool = True,
        perf=None,
    ) -> None:
        if fallback not in ("resample", "paper"):
            raise ValueError(f"fallback must be 'resample' or 'paper', got {fallback!r}")
        self.alloc = alloc
        self.num_cores = num_cores
        self.num_blocks = num_blocks
        self.interval_len = interval_len or num_blocks
        self.probability_bits = probability_bits
        self.fallback = fallback
        self.bias_correction = bias_correction
        self.perf = perf
        self.rng = make_rng(seed, "prism-manager")
        self.shadow = RefShadow(num_cores, num_sets, assoc, sample_shift)
        self.targets: List[float] = [1.0 / num_cores] * num_cores
        self.probabilities: List[float] = []
        self.cumulative: List[float] = []
        self._set_distribution([1.0 / num_cores] * num_cores)
        self.installed: List[float] = list(self.probabilities)
        self.replacements = 0
        self.victim_not_found = 0

    def _set_distribution(self, probabilities: List[float]) -> None:
        if len(probabilities) != self.num_cores:
            raise ValueError("distribution length mismatch")
        if any(p < 0.0 for p in probabilities):
            raise ValueError(f"negative eviction probability in {probabilities!r}")
        if abs(sum(probabilities) - 1.0) > 1e-6:
            raise ValueError(f"eviction probabilities sum to {sum(probabilities)}")
        self.probabilities = list(probabilities)
        cumulative = list(accumulate(probabilities))
        cumulative[-1] = 1.0  # a draw in [0, 1) can never fall off the end
        self.cumulative = cumulative

    # -- replacement (Section 3.1) --------------------------------------

    def select_victim(self, cset: RefSet) -> RefBlock:
        self.replacements += 1
        target_core = bisect_right(self.cumulative, self.rng.random())
        # First-touch semantics: sampling a core in this set materialises
        # it in the set's core order even when it owns nothing here.
        cset.touch(target_core)
        if cset.core_counts[target_core] > 0:
            return cset.lru_block_of(target_core)
        return self._fallback_victim(cset)

    def _fallback_victim(self, cset: RefSet) -> RefBlock:
        self.victim_not_found += 1
        probabilities = self.probabilities
        if self.fallback == "paper":
            # Paper, Section 3.1: "use the underlying replacement policy
            # to select the first replacement candidate that belongs to a
            # core with non-zero eviction probability."
            for block in reversed(cset.blocks):
                if probabilities[block.core] > 0.0:
                    return block
            return cset.lru_block()  # every resident core has E == 0
        # Resample E restricted to the cores present in this set.
        total = 0.0
        for core, count in cset.core_counts.items():
            if count:
                total += probabilities[core]
        if total <= 0.0:
            return cset.lru_block()
        draw = self.rng.random() * total
        acc = 0.0
        chosen = -1
        for core, count in cset.core_counts.items():
            if count:
                p = probabilities[core]
                if p > 0.0:
                    acc += p
                    chosen = core
                    if draw <= acc:
                        break
        return cset.lru_block_of(chosen)

    # -- interval (Section 3.2) ------------------------------------------

    def end_interval(self, cache: "ReferenceCache") -> None:
        ctx = RefContext(
            num_cores=self.num_cores,
            occupancy=cache.occupancy_fractions(),
            miss_fractions=cache.interval_miss_fractions(),
            num_blocks=self.num_blocks,
            interval=self.interval_len,
            shadow=self.shadow,
            perf=self.perf,
        )
        self.targets = self.alloc(ctx)
        probabilities = ref_derive_eviction_probabilities(
            ctx.occupancy, self.targets, ctx.miss_fractions,
            self.num_blocks, self.interval_len,
        )
        if self.bias_correction:
            probabilities = self._bias_correct(cache, probabilities)
        if self.probability_bits is not None:
            levels = ref_quantize(probabilities, self.probability_bits)
            probabilities = ref_dequantize(levels, self.probability_bits)
        self._set_distribution(probabilities)
        self.installed = list(probabilities)

    def _bias_correct(self, cache: "ReferenceCache", probabilities: List[float]) -> List[float]:
        evictions = cache.interval_evictions()
        total = sum(evictions)
        if total <= 0:
            return probabilities
        corrected = [
            max(0.0, p - (evicted / total - installed))
            for p, evicted, installed in zip(probabilities, evictions, self.installed)
        ]
        norm = sum(corrected)
        if norm <= 0.0:
            return probabilities
        return [p / norm for p in corrected]


# -- the cache ---------------------------------------------------------------


class RefAccess:
    """Outcome of one reference access — field-compatible with AccessResult."""

    __slots__ = ("hit", "set_index", "evicted_core", "evicted_addr")

    def __init__(self, hit: bool, set_index: int, evicted_core: int, evicted_addr: int) -> None:
        self.hit = hit
        self.set_index = set_index
        self.evicted_core = evicted_core
        self.evicted_addr = evicted_addr

    def as_tuple(self) -> tuple:
        return (self.hit, self.set_index, self.evicted_core, self.evicted_addr)


class ReferenceCache:
    """A naive shared cache: the oracle the fast engine is diffed against.

    Args:
        geometry: anything exposing ``num_sets``, ``num_blocks``, ``assoc``
            (a :class:`repro.cache.geometry.CacheGeometry` works; so does
            any duck-typed stand-in).
        num_cores: sharing cores.
        policy: a :class:`RefLRU`/:class:`RefDIP` baseline.
        scheme: an optional :class:`RefPrism`.
    """

    def __init__(
        self,
        geometry,
        num_cores: int,
        policy: RefLRU,
        scheme: Optional[RefPrism] = None,
        core_map: Optional[Sequence[int]] = None,
        track_sharers: bool = False,
    ) -> None:
        self.num_sets = geometry.num_sets
        self.num_blocks = geometry.num_blocks
        self.assoc = geometry.assoc
        self.num_cores = num_cores
        self.core_map = list(core_map) if core_map is not None else None
        self.track_sharers = bool(track_sharers)
        self.real_num_cores = (
            len(self.core_map) if self.core_map is not None else num_cores
        )
        self._set_mask = self.num_sets - 1
        self._tag_shift = self._set_mask.bit_length()
        self.policy = policy
        self.scheme = scheme
        self.sets = [RefSet(i, self.assoc) for i in range(self.num_sets)]
        self.occupancy: List[int] = [0] * num_cores
        self.hits: List[int] = [0] * num_cores
        self.misses: List[int] = [0] * num_cores
        self.evictions: List[int] = [0] * num_cores
        self._base_misses: List[int] = [0] * num_cores
        self._base_evictions: List[int] = [0] * num_cores
        self.intervals_completed = 0
        self._interval_len = scheme.interval_len if scheme is not None else 0
        self._interval_left = self._interval_len

    # -- derived state ----------------------------------------------------

    def occupancy_fractions(self) -> List[float]:
        n = self.num_blocks
        return [occ / n for occ in self.occupancy]

    def interval_miss_fractions(self) -> List[float]:
        interval = [m - b for m, b in zip(self.misses, self._base_misses)]
        total = sum(interval)
        if total == 0:
            return [1.0 / self.num_cores] * self.num_cores
        return [m / total for m in interval]

    def interval_evictions(self) -> List[int]:
        return [e - b for e, b in zip(self.evictions, self._base_evictions)]

    def scan_occupancy(self) -> List[int]:
        counts = [0] * self.num_cores
        for cset in self.sets:
            for block in cset.blocks:
                counts[block.core] += 1
        return counts

    def group_of(self, core: int) -> int:
        """Accounting owner a real core's fills are charged to."""
        return self.core_map[core] if self.core_map is not None else core

    def scan_charges(self) -> List[int]:
        """Per-real-core block charges, recounted from block fillers."""
        counts = [0] * self.real_num_cores
        for cset in self.sets:
            for block in cset.blocks:
                counts[block.filler] += 1
        return counts

    def scan_sharers(self) -> List[tuple]:
        """Sorted ``(set, tag, owner, sharers)`` rows, engine-comparable."""
        rows = []
        for cset in self.sets:
            for block in cset.blocks:
                rows.append((cset.index, block.tag, block.core, block.sharers))
        rows.sort()
        return rows

    # -- the access path ---------------------------------------------------

    def access(self, core: int, block_addr: int) -> RefAccess:
        real_core = core
        if self.core_map is not None:
            core = self.core_map[core]
        set_index = block_addr & self._set_mask
        tag = block_addr >> self._tag_shift
        cset = self.sets[set_index]

        block = cset.lookup(tag)
        hit = block is not None
        # Observers fire after the lookup and before any mutation, exactly
        # like the engine's monitor dispatch.
        if self.scheme is not None:
            self.scheme.shadow.observe(core, set_index, tag, hit)

        if hit:
            self.hits[core] += 1
            if self.track_sharers:
                block.sharers |= 1 << core
            self.policy.on_hit(cset, block)
            return RefAccess(True, set_index, -1, -1)

        self.misses[core] += 1
        self.policy.record_miss(cset, core)

        evicted_core = -1
        evicted_addr = -1
        if cset.full:
            if self.scheme is not None:
                victim = self.scheme.select_victim(cset)
            else:
                victim = self.policy.victim(cset)
            evicted_core = victim.core
            evicted_addr = (victim.tag << self._tag_shift) | set_index
            self.occupancy[evicted_core] -= 1
            self.evictions[evicted_core] += 1
            cset.evict(victim)
        filled = cset.insert(tag, core, self.policy.insert_at_lru(cset, core))
        self.occupancy[core] += 1
        if self.core_map is not None:
            filled.filler = real_core
        if self.track_sharers:
            filled.sharers = 1 << core

        if self._interval_len:
            self._interval_left -= 1
            if self._interval_left == 0:
                self._end_interval()
        return RefAccess(False, set_index, evicted_core, evicted_addr)

    def _end_interval(self) -> None:
        # Same order as the engine: the scheme reads the live interval
        # counters, then stats re-baseline, then monitors reset.
        self.scheme.end_interval(self)
        self._base_misses = list(self.misses)
        self._base_evictions = list(self.evictions)
        self.scheme.shadow.end_interval()
        self._interval_left = self._interval_len
        self.intervals_completed += 1


# -- registry-compatible builders --------------------------------------------


def _build_lru(num_cores, geometry, standalone_ipcs, kwargs, perf):
    return ReferenceCache(geometry, num_cores, RefLRU())


def _build_dip(num_cores, geometry, standalone_ipcs, kwargs, perf):
    return ReferenceCache(geometry, num_cores, RefDIP(geometry.num_sets, **kwargs))


def _prism(num_cores, geometry, alloc, kwargs, perf):
    return ReferenceCache(
        geometry,
        num_cores,
        RefLRU(),
        RefPrism(
            alloc,
            num_cores,
            geometry.num_blocks,
            geometry.num_sets,
            geometry.assoc,
            perf=perf,
            **kwargs,
        ),
    )


def _build_prism_h(num_cores, geometry, standalone_ipcs, kwargs, perf):
    pure = kwargs.pop("pure", False)
    protect_cap_mult = kwargs.pop("protect_cap_mult", 1.5)
    thrash_discount = kwargs.pop("thrash_discount", 0.25)

    def alloc(ctx):
        return ref_hitmax_targets(
            ctx, pure=pure, protect_cap_mult=protect_cap_mult,
            thrash_discount=thrash_discount,
        )

    return _prism(num_cores, geometry, alloc, kwargs, perf)


def _build_prism_f(num_cores, geometry, standalone_ipcs, kwargs, perf):
    return _prism(num_cores, geometry, ref_fairness_targets, kwargs, perf)


def _build_prism_q(num_cores, geometry, standalone_ipcs, kwargs, perf):
    fraction = kwargs.pop("target_ipc_fraction", 0.8)
    qos_core = kwargs.pop("qos_core", 0)
    if standalone_ipcs is None:
        raise ValueError("prism-q needs stand-alone IPCs to set its target")
    target = fraction * standalone_ipcs[qos_core]

    def alloc(ctx):
        return ref_qos_targets(ctx, target_ipc=target, qos_core=qos_core)

    return _prism(num_cores, geometry, alloc, kwargs, perf)


#: Registry names the reference simulator can stand in for. Keys are the
#: same names as repro.experiments.schemes.SCHEMES (asserted by a test).
REFERENCE_SCHEMES = {
    "lru": _build_lru,
    "dip": _build_dip,
    "prism-h": _build_prism_h,
    "prism-f": _build_prism_f,
    "prism-q": _build_prism_q,
}


def build_reference(
    name: str,
    num_cores: int,
    geometry,
    standalone_ipcs: Optional[Sequence[float]] = None,
    scheme_kwargs: Optional[dict] = None,
    perf=None,
    core_map: Optional[Sequence[int]] = None,
    track_sharers: bool = False,
) -> ReferenceCache:
    """Build a :class:`ReferenceCache` for a scheme-registry name.

    Accepts the same ``scheme_kwargs`` the engine's
    :func:`~repro.experiments.schemes.build_scheme` takes for that name.

    Raises:
        KeyError: for names the reference does not model (the message
            lists the supported ones).
    """
    try:
        builder = REFERENCE_SCHEMES[name]
    except KeyError:
        raise KeyError(
            f"no reference model for scheme {name!r}; "
            f"supported: {sorted(REFERENCE_SCHEMES)}"
        ) from None
    reference = builder(
        num_cores, geometry, standalone_ipcs, dict(scheme_kwargs or {}), perf
    )
    # Ownership knobs are pure access-time behaviour; installed after
    # construction so every scheme builder stays a five-argument literal.
    if core_map is not None:
        reference.core_map = list(core_map)
        reference.real_num_cores = len(reference.core_map)
    reference.track_sharers = bool(track_sharers)
    return reference
