"""Independent correctness checking for the optimised cache engine.

The fast engine (:mod:`repro.cache`) earns its speed from intrusive
linked lists, resolved hooks and pinned closures — exactly the kinds of
rewrites that can silently drift from the paper's semantics. This package
holds the machinery that keeps it honest:

- :mod:`repro.check.reference` — a deliberately slow, obviously-correct
  **reference simulator**: naive list-based sets, literal transcriptions
  of the paper's Algorithms 1-3, Eq. 1 and the Section 3.1 replacement
  mechanism, driven by the same scheme-registry names as the engine.
- :mod:`repro.check.invariants` — a **runtime invariant checker** that
  plugs into :class:`~repro.cache.cache.SharedCache` through the existing
  observer/interval hooks and raises a typed :class:`InvariantViolation`
  the moment internal state goes inconsistent.
- :mod:`repro.check.differential` — a **differential fuzzer** that runs
  random (geometry, mix, seed, scheme) cases through both simulators and
  asserts access-for-access equality of hits, victim choices and the
  installed eviction probabilities.
- :mod:`repro.check.belady` — the **offline Belady/MIN optimum** over
  recorded post-L1 traces: an upper bound every online policy is
  certified against (``assert_belady_bound``), and the backing of the
  ``belady`` scheme name in the experiment registry.

See ``docs/testing.md`` for the full invariant list and how to run the
fuzzer locally (``repro-sim check fuzz``).
"""

from repro.check.belady import (
    BeladyCache,
    NaiveBelady,
    ReplayResult,
    assert_belady_bound,
    belady_workload_run,
    next_use_indices,
    replay_trace,
)
from repro.check.differential import (
    CaseResult,
    DifferentialCase,
    Divergence,
    SyntheticPerf,
    compare_run,
    fuzz,
    make_stream,
    random_case,
    run_case,
)
from repro.check.invariants import InvariantChecker, InvariantViolation, attach_checker
from repro.check.reference import (
    REFERENCE_SCHEMES,
    ReferenceCache,
    build_reference,
)

__all__ = [
    "BeladyCache",
    "CaseResult",
    "DifferentialCase",
    "Divergence",
    "InvariantChecker",
    "InvariantViolation",
    "NaiveBelady",
    "REFERENCE_SCHEMES",
    "ReferenceCache",
    "ReplayResult",
    "SyntheticPerf",
    "assert_belady_bound",
    "attach_checker",
    "belady_workload_run",
    "build_reference",
    "compare_run",
    "fuzz",
    "make_stream",
    "next_use_indices",
    "random_case",
    "replay_trace",
    "run_case",
]
