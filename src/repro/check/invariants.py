"""Runtime invariant checking for :class:`~repro.cache.cache.SharedCache`.

The checker is an ordinary access monitor (wired in through
``cache.add_monitor``, same hook the shadow tags use), so it needs no
engine changes and costs nothing when not attached. Every ``every``
accesses — and on demand via :meth:`InvariantChecker.check_now` — it
audits the whole cache:

``set-integrity``
    every set's recency list is a consistent doubly-linked list, its tag
    index and per-core counts match a scan, and resident + free ways sum
    to the associativity (delegates to ``CacheSet.check_integrity``);
``occupancy-recount``
    the per-core ``C_i`` counters the analytical model reads equal a
    full recount over every set;
``occupancy-bounds``
    total occupancy never exceeds the cache's block count;
``distribution``
    the installed eviction distribution ``E`` has one entry per core,
    no negative entries, and sums to 1 (post-clamp renormalisation);
``cumulative``
    the manager's sampling prefix sums are non-decreasing and pinned to
    exactly 1.0 at the top;
``shadow-monotone``
    the shadow-tag interval counters only ever grow within an interval
    (they may reset only at an interval boundary);
``inclusion``
    with a hierarchy bound via :meth:`InvariantChecker.bind_hierarchy`
    and the system running inclusive, every block resident in any
    private L1 is also resident in the shared LLC (the back-invalidate
    path never leaks a stale L1 line);
``sharer-consistency``
    when the cache tracks sharer bitmasks (``track_sharers=True``),
    every resident block has a non-empty sharer set and its accounting
    owner is a member of it (a hit can widen the mask but never detach
    the owner);
``cluster-conservation``
    when the cache runs under a cluster map (``core_map``), every
    resident block's filler maps to the block's accounting owner, and
    per cluster the charged occupancy ``C_c`` equals the number of
    blocks filled by that cluster's member cores — occupancy is
    conserved across the core→cluster translation.

Violations raise :class:`InvariantViolation` — a subclass of
``AssertionError``, so plain ``assert``-style handling works, but typed
so the campaign executor can recognise a deterministic engine bug and
skip pointless retries.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = ["InvariantChecker", "InvariantViolation", "attach_checker"]


class InvariantViolation(AssertionError):
    """A cache-engine invariant failed.

    Attributes:
        invariant: short name of the violated invariant (see module
            docstring for the catalogue).
        detail: what the audit actually saw.
    """

    def __init__(self, invariant: str, detail: str) -> None:
        super().__init__(f"invariant {invariant!r} violated: {detail}")
        self.invariant = invariant
        self.detail = detail


class InvariantChecker:
    """Access monitor that audits a cache's internal consistency.

    Args:
        cache: the :class:`~repro.cache.cache.SharedCache` to audit.
        every: run a full audit every this many observed accesses. Each
            audit is O(cache size), so the overhead knob is this period;
            ``1`` audits after every access (see ``docs/testing.md`` for
            measured overheads).
    """

    def __init__(self, cache, every: int = 1024) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.cache = cache
        self.every = every
        self.checks_run = 0
        self._countdown = every
        self._shadow_floor: Optional[Tuple[int, ...]] = None
        self._system = None
        self._inflight: Optional[Tuple[int, int, int]] = None

    def bind_hierarchy(self, system) -> None:
        """Audit ``system``'s cache hierarchy too (inclusion invariant).

        Call after constructing the :class:`~repro.cpu.system.MultiCoreSystem`
        that owns the private L1s in front of the audited LLC; only
        meaningful when the system runs with ``inclusive=True``.
        """
        self._system = system

    # -- monitor hooks ------------------------------------------------------

    def observe(self, core: int, set_index: int, tag: int, hit: bool) -> None:
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self.every
            # The monitor fires mid-access: on an LLC miss the owner's L1
            # has already filled this block but the LLC has not — exempt
            # exactly that block from the inclusion audit.
            self._inflight = (core, set_index, tag)
            self.check_now()
            self._inflight = None

    def end_interval(self) -> None:
        # The shadow monitor registered before us has just zeroed its
        # interval counters; forget the monotonicity floor with them.
        self._shadow_floor = None

    # -- the audit ----------------------------------------------------------

    def check_now(self) -> None:
        """Audit everything once; raises :class:`InvariantViolation`."""
        self.checks_run += 1
        cache = self.cache

        for cset in cache.sets:
            try:
                cset.check_integrity()
            except AssertionError as exc:
                raise InvariantViolation("set-integrity", str(exc)) from None

        scanned = cache.scan_occupancy()
        occupancy = list(cache.occupancy)
        if scanned != occupancy:
            raise InvariantViolation(
                "occupancy-recount",
                f"counters {occupancy} != recount {scanned}",
            )
        total = sum(occupancy)
        num_blocks = cache.geometry.num_blocks
        if not 0 <= total <= num_blocks:
            raise InvariantViolation(
                "occupancy-bounds",
                f"{total} blocks resident in a {num_blocks}-block cache",
            )

        if getattr(cache, "track_sharers", False):
            self._check_sharers()
        if getattr(cache, "_core_map", None) is not None:
            self._check_cluster_conservation()

        manager = getattr(cache.scheme, "manager", None)
        if manager is not None:
            self._check_distribution(manager, cache.num_cores)

        shadow = getattr(cache.scheme, "shadow", None)
        if shadow is not None:
            self._check_shadow_monotone(shadow)

        system = self._system
        if system is not None and system.inclusive and system.l1s is not None:
            self._check_inclusion(system)

    def _check_inclusion(self, system) -> None:
        cache = self.cache
        geometry = cache.geometry
        inflight = self._inflight
        inflight_addr = (
            geometry.block_addr(inflight[1], inflight[2])
            if inflight is not None
            else None
        )
        for core, l1 in enumerate(system.l1s):
            for addr in l1.resident_addrs():
                if addr == inflight_addr and core == inflight[0]:
                    continue
                cset = cache.sets[geometry.set_index(addr)]
                if cset.lookup(geometry.tag(addr)) is None:
                    raise InvariantViolation(
                        "inclusion",
                        f"core {core} holds block {addr:#x} in its L1 but the "
                        "block is not resident in the (inclusive) shared LLC",
                    )

    def _check_sharers(self) -> None:
        for cset in self.cache.sets:
            for block in cset.blocks:
                if block.sharers == 0:
                    raise InvariantViolation(
                        "sharer-consistency",
                        f"resident block tag={block.tag:#x} in set "
                        f"{cset.index} has an empty sharer set",
                    )
                if not (block.sharers >> block.core) & 1:
                    raise InvariantViolation(
                        "sharer-consistency",
                        f"block tag={block.tag:#x} in set {cset.index}: "
                        f"accounting owner {block.core} not in sharer mask "
                        f"{block.sharers:#b}",
                    )

    def _check_cluster_conservation(self) -> None:
        cache = self.cache
        core_map = cache._core_map
        real = cache.real_num_cores
        per_core = [0] * real
        for cset in cache.sets:
            for block in cset.blocks:
                filler = block.filler
                if not 0 <= filler < real:
                    raise InvariantViolation(
                        "cluster-conservation",
                        f"block tag={block.tag:#x} in set {cset.index} has "
                        f"filler {filler}, outside [0, {real})",
                    )
                if core_map[filler] != block.core:
                    raise InvariantViolation(
                        "cluster-conservation",
                        f"block tag={block.tag:#x} in set {cset.index}: "
                        f"filler {filler} maps to cluster "
                        f"{core_map[filler]} but is charged to {block.core}",
                    )
                per_core[filler] += 1
        charged = [0] * cache.num_cores
        for core, count in enumerate(per_core):
            charged[core_map[core]] += count
        occupancy = list(cache.occupancy)
        if charged != occupancy:
            raise InvariantViolation(
                "cluster-conservation",
                f"per-cluster fill recount {charged} != charged "
                f"occupancy {occupancy}",
            )

    def _check_distribution(self, manager, num_cores: int) -> None:
        probabilities = manager.probabilities
        if len(probabilities) != num_cores:
            raise InvariantViolation(
                "distribution",
                f"{len(probabilities)} entries for {num_cores} cores",
            )
        if any(p < 0.0 for p in probabilities):
            raise InvariantViolation(
                "distribution", f"negative entry in {probabilities!r}"
            )
        total = sum(probabilities)
        if abs(total - 1.0) > 1e-6:
            raise InvariantViolation(
                "distribution", f"E sums to {total!r}, expected 1"
            )
        cumulative = manager._cumulative
        if any(b < a for a, b in zip(cumulative, cumulative[1:])):
            raise InvariantViolation(
                "cumulative", f"prefix sums decrease: {cumulative!r}"
            )
        if cumulative[-1] != 1.0:
            raise InvariantViolation(
                "cumulative", f"top prefix sum is {cumulative[-1]!r}, expected 1.0"
            )

    def _check_shadow_monotone(self, shadow) -> None:
        snapshot = self._shadow_snapshot(shadow)
        floor = self._shadow_floor
        if floor is not None and any(
            now < before for now, before in zip(snapshot, floor)
        ):
            raise InvariantViolation(
                "shadow-monotone",
                "an interval counter decreased mid-interval "
                f"(before {floor}, now {snapshot})",
            )
        self._shadow_floor = snapshot

    @staticmethod
    def _shadow_snapshot(shadow) -> Tuple[int, ...]:
        counters = []
        for core in range(shadow.num_cores):
            counters.extend(shadow.position_hits[core])
            counters.append(shadow.shadow_misses[core])
            counters.append(shadow.shared_hits[core])
            counters.append(shadow.shared_misses[core])
        return tuple(counters)


def attach_checker(cache, every: int = 1024) -> InvariantChecker:
    """Attach an :class:`InvariantChecker` to ``cache`` and return it.

    Registers the checker as an access monitor (after any monitors the
    scheme installed, so at interval boundaries the shadow counters reset
    before the checker forgets its monotonicity floor).
    """
    checker = InvariantChecker(cache, every=every)
    cache.add_monitor(checker)
    return checker
