"""`repro-sim check` subcommand handlers.

Parser wiring lives in :mod:`repro.cli`; this module holds the handlers so
the reference simulator only imports when a check command actually runs.
"""

from __future__ import annotations

import argparse
import time

__all__ = ["cmd_check", "cmd_check_fuzz"]


def cmd_check_fuzz(args) -> int:
    from repro.check.differential import fuzz
    from repro.check.reference import REFERENCE_SCHEMES

    schemes = args.schemes or None
    if schemes:
        unknown = sorted(set(schemes) - set(REFERENCE_SCHEMES))
        if unknown:
            raise SystemExit(
                f"no reference simulator for {unknown} "
                f"(supported: {sorted(REFERENCE_SCHEMES)})"
            )
    backend = getattr(args, "backend", "classic")
    sharing = getattr(args, "sharing", False)
    progress = None if args.quiet else (lambda msg: print(f"  {msg}", flush=True))
    start = time.time()
    results = fuzz(
        cases=args.cases,
        seed=args.seed,
        schemes=schemes,
        progress=progress,
        backend=backend,
        sharing=sharing,
    )
    elapsed = time.time() - start

    bad = [r for r in results if not r.ok]
    accesses = sum(r.accesses_run for r in results)
    intervals = sum(r.intervals for r in results)
    by_scheme = {}
    for r in results:
        by_scheme[r.case.scheme] = by_scheme.get(r.case.scheme, 0) + 1
    coverage = ", ".join(f"{s}={n}" for s, n in sorted(by_scheme.items()))
    shared_cases = sum(
        1
        for r in results
        if r.case.track_sharers or r.case.sharing_degree or r.case.core_map
    )
    print(
        f"{len(results)} cases ({coverage}), {accesses} accesses, "
        f"{intervals} interval boundaries compared in {elapsed:.1f}s "
        f"[backend={backend}"
        + (f", sharing axes on ({shared_cases} cases)" if sharing else "")
        + "]"
    )
    if not bad:
        if backend == "vector":
            print("vector engine agrees with the classic engine and the "
                  "reference on every case")
        else:
            print("engine and reference agree on every case")
        return 0
    print(f"{len(bad)} DIVERGENT case{'s' if len(bad) != 1 else ''}:")
    for result in bad:
        case = result.case
        print(
            f"  scheme={case.scheme} cores={case.num_cores} "
            f"sets={case.num_sets} assoc={case.assoc} seed={case.seed} "
            f"accesses={case.accesses} kwargs={case.scheme_kwargs} "
            f"sharing={case.sharing}/deg={case.sharing_degree} "
            f"track={case.track_sharers} core_map={case.core_map}"
        )
        for divergence in result.divergences:
            print(f"    {divergence}")
    return 1


_HANDLERS = {
    "fuzz": cmd_check_fuzz,
}


def cmd_check(args: argparse.Namespace) -> int:
    return _HANDLERS[args.check_command](args)
