"""Differential fuzzing: the fast engine vs. the naive reference.

A case is a (scheme, geometry, seed) triple plus an access-stream length;
:func:`run_case` builds the optimised engine through the real scheme
registry and the oracle through :func:`repro.check.reference.build_reference`,
replays the same synthetic stream through both and demands **exact**
equality:

- per access: hit/miss, set index, evicted core and evicted block address;
- per interval boundary: the installed eviction distribution ``E_i`` and
  the allocation targets ``T_i``, float-for-float;
- at end of run: occupancy, per-core hit/miss/eviction counters, a full
  occupancy rescan, the replacement/fallback counters and (for DIP) the
  PSEL state.

Both simulators stand in for the same idealised hardware — the same
seeded PRNG streams (via :mod:`repro.util.rng` labels) and the same float
arithmetic — so any inequality at all is a bug in one of them, never
tolerance noise. Comparison stops at the first divergence: everything
after it is downstream corruption, not signal.

PriSM-F and PriSM-Q read performance counters the raw cache does not
have; :class:`SyntheticPerf` supplies deterministic per-core CPI/IPC
figures so the fuzzer can exercise Algorithms 2 and 3 without dragging in
the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.check.reference import REFERENCE_SCHEMES, ReferenceCache, build_reference
from repro.experiments.schemes import build_scheme
from repro.util.rng import make_rng

__all__ = [
    "CaseResult",
    "DifferentialCase",
    "Divergence",
    "SyntheticPerf",
    "compare_run",
    "fuzz",
    "make_stream",
    "random_case",
    "run_case",
]

#: Schemes whose allocation policy reads performance counters.
_NEEDS_PERF = ("prism-f", "prism-q")
#: Schemes whose target IPC derives from stand-alone IPCs.
_NEEDS_STANDALONE = ("prism-q",)


class SyntheticPerf:
    """Deterministic stand-in for the timing model's per-core counters.

    Stateless: the per-core CPI, IPC and LLC-stall figures are fixed at
    construction from ``make_rng(seed, "check-perf")``, so two instances
    built from the same ``(num_cores, seed)`` — or one instance shared by
    both simulators — always report identical values.
    """

    def __init__(self, num_cores: int, seed: int = 0) -> None:
        rng = make_rng(seed, "check-perf")
        self._cpi = [0.8 + 3.0 * rng.random() for _ in range(num_cores)]
        self._llc_fraction = [0.1 + 0.7 * rng.random() for _ in range(num_cores)]

    def cpi(self, core: int) -> float:
        return self._cpi[core]

    def ipc(self, core: int) -> float:
        return 1.0 / self._cpi[core]

    def llc_stall_cpi(self, core: int) -> float:
        return self._cpi[core] * self._llc_fraction[core]


@dataclass(frozen=True)
class DifferentialCase:
    """One fuzz case: scheme, geometry, stream shape and seeds."""

    scheme: str
    num_cores: int = 4
    num_sets: int = 8
    assoc: int = 4
    seed: int = 0
    accesses: int = 2000
    scheme_kwargs: Optional[dict] = None

    @property
    def geometry(self) -> CacheGeometry:
        return CacheGeometry(
            self.num_sets * self.assoc * 64, block_bytes=64, assoc=self.assoc
        )


@dataclass(frozen=True)
class Divergence:
    """One engine-vs-reference disagreement.

    ``index`` is the 0-based access at which it was detected, or ``-1``
    for end-of-run state comparisons.
    """

    index: int
    what: str
    engine: object
    reference: object

    def __str__(self) -> str:
        where = f"access {self.index}" if self.index >= 0 else "end of run"
        return (
            f"{self.what} diverged at {where}: "
            f"engine {self.engine!r} != reference {self.reference!r}"
        )


@dataclass
class CaseResult:
    """Outcome of one differential case."""

    case: DifferentialCase
    divergences: List[Divergence] = field(default_factory=list)
    accesses_run: int = 0
    intervals: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences


def make_stream(case: DifferentialCase) -> List[Tuple[int, int]]:
    """Generate the case's ``(core, block_addr)`` access stream.

    A three-way address mix per access — a small per-core hot pool (hits
    and stable ownership), a shared pool (cross-core ownership churn, the
    food of the fallback paths) and cold random addresses (misses on full
    sets, so replacements and interval boundaries keep firing).
    """
    rng = make_rng(case.seed, "check-stream")
    num_blocks = case.num_sets * case.assoc
    hot_pools = [
        [rng.getrandbits(20) for _ in range(max(1, num_blocks // case.num_cores))]
        for _ in range(case.num_cores)
    ]
    shared_pool = [rng.getrandbits(20) for _ in range(max(1, num_blocks // 2))]
    stream = []
    for _ in range(case.accesses):
        core = rng.randrange(case.num_cores)
        region = rng.random()
        if region < 0.45:
            pool = hot_pools[core]
            addr = pool[rng.randrange(len(pool))]
        elif region < 0.75:
            addr = shared_pool[rng.randrange(len(shared_pool))]
        else:
            addr = rng.getrandbits(20)
        stream.append((core, addr))
    return stream


def compare_run(
    cache: SharedCache,
    reference: ReferenceCache,
    stream: Sequence[Tuple[int, int]],
) -> List[Divergence]:
    """Replay ``stream`` through both simulators; return the divergences.

    Stops at the first disagreement (at most one per-access/per-interval
    divergence is reported; end-of-run checks only run on a clean replay,
    where they can still catch counter drift the access results hide).
    """
    divergences: List[Divergence] = []
    scheme = cache.scheme
    ref_scheme = reference.scheme
    intervals_seen = 0

    for index, (core, addr) in enumerate(stream):
        engine_result = cache.access(core, addr)
        ref_result = reference.access(core, addr)
        engine_tuple = (
            engine_result.hit,
            engine_result.set_index,
            engine_result.evicted_core,
            engine_result.evicted_addr,
        )
        if engine_tuple != ref_result.as_tuple():
            divergences.append(
                Divergence(index, "access", engine_tuple, ref_result.as_tuple())
            )
            return divergences
        if cache.intervals_completed != reference.intervals_completed:
            divergences.append(
                Divergence(
                    index,
                    "intervals_completed",
                    cache.intervals_completed,
                    reference.intervals_completed,
                )
            )
            return divergences
        if ref_scheme is not None and reference.intervals_completed > intervals_seen:
            intervals_seen = reference.intervals_completed
            engine_e = list(scheme.eviction_probabilities)
            if engine_e != ref_scheme.probabilities:
                divergences.append(
                    Divergence(
                        index, "eviction_probabilities", engine_e, ref_scheme.probabilities
                    )
                )
                return divergences
            engine_t = list(scheme.targets)
            if engine_t != ref_scheme.targets:
                divergences.append(
                    Divergence(index, "targets", engine_t, ref_scheme.targets)
                )
                return divergences

    def check(what: str, engine_value, ref_value) -> None:
        if engine_value != ref_value:
            divergences.append(Divergence(-1, what, engine_value, ref_value))

    check("occupancy", list(cache.occupancy), reference.occupancy)
    check("scan_occupancy", cache.scan_occupancy(), reference.scan_occupancy())
    check("hits", list(cache.stats.hits), reference.hits)
    check("misses", list(cache.stats.misses), reference.misses)
    check("evictions", list(cache.stats.evictions), reference.evictions)
    if ref_scheme is not None:
        check("replacements", scheme.manager.replacements, ref_scheme.replacements)
        check(
            "victim_not_found",
            scheme.manager.victim_not_found,
            ref_scheme.victim_not_found,
        )
    engine_psel = getattr(cache.policy, "psel", None)
    ref_psel = getattr(reference.policy, "psel", None)
    if engine_psel is not None or ref_psel is not None:
        check("psel", engine_psel, ref_psel)
    return divergences


def _build_engine(case: DifferentialCase, standalone_ipcs, perf) -> SharedCache:
    kwargs = dict(case.scheme_kwargs or {})
    scheme, policy = build_scheme(
        case.scheme, case.num_cores, standalone_ipcs, **kwargs
    )
    cache = SharedCache(case.geometry, case.num_cores, policy=policy)
    if scheme is not None:
        scheme.perf = perf
        cache.set_scheme(scheme)
    return cache


def run_case(case: DifferentialCase) -> CaseResult:
    """Build both simulators for ``case``, replay the stream, compare."""
    perf = (
        SyntheticPerf(case.num_cores, case.seed)
        if case.scheme in _NEEDS_PERF
        else None
    )
    standalone_ipcs = None
    if case.scheme in _NEEDS_STANDALONE:
        rng = make_rng(case.seed, "check-standalone")
        standalone_ipcs = [0.5 + rng.random() for _ in range(case.num_cores)]

    cache = _build_engine(case, standalone_ipcs, perf)
    reference = build_reference(
        case.scheme,
        case.num_cores,
        case.geometry,
        standalone_ipcs=standalone_ipcs,
        scheme_kwargs=case.scheme_kwargs,
        perf=perf,
    )
    stream = make_stream(case)
    divergences = compare_run(cache, reference, stream)
    return CaseResult(
        case=case,
        divergences=divergences,
        accesses_run=len(stream),
        intervals=reference.intervals_completed,
    )


def random_case(rng, schemes: Optional[Sequence[str]] = None) -> DifferentialCase:
    """Draw one random case from ``rng`` (a ``random.Random``)."""
    schemes = tuple(schemes) if schemes else tuple(sorted(REFERENCE_SCHEMES))
    name = schemes[rng.randrange(len(schemes))]
    num_cores = rng.randrange(2, 7)
    assoc = (2, 4, 8)[rng.randrange(3)]
    num_sets = (2, 4, 8, 16)[rng.randrange(4)]
    kwargs = {}
    if name.startswith("prism"):
        kwargs["seed"] = rng.getrandbits(16)
        if rng.random() < 0.5:
            kwargs["fallback"] = "paper"
        if rng.random() < 0.3:
            kwargs["probability_bits"] = (4, 8)[rng.randrange(2)]
        if rng.random() < 0.3:
            kwargs["bias_correction"] = False
        if rng.random() < 0.3:
            kwargs["sample_shift"] = 0
    elif name == "dip":
        kwargs["seed"] = rng.getrandbits(16)
        if rng.random() < 0.3:
            kwargs["leader_sets"] = 2
    return DifferentialCase(
        scheme=name,
        num_cores=num_cores,
        num_sets=num_sets,
        assoc=assoc,
        seed=rng.getrandbits(32),
        accesses=rng.randrange(400, 2501),
        scheme_kwargs=kwargs or None,
    )


def fuzz(
    cases: int = 200,
    seed: int = 0,
    schemes: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[CaseResult]:
    """Run ``cases`` random differential cases; return every result.

    The case stream is fully determined by ``seed`` (via
    ``make_rng(seed, "check-fuzz")``), so a failing campaign reproduces
    exactly from its seed.
    """
    rng = make_rng(seed, "check-fuzz")
    schemes = tuple(schemes) if schemes else tuple(sorted(REFERENCE_SCHEMES))
    results = []
    for index in range(cases):
        case = random_case(rng, schemes=schemes)
        result = run_case(case)
        results.append(result)
        if progress is not None:
            if result.ok:
                if (index + 1) % 25 == 0:
                    progress(f"[{index + 1}/{cases}] ok so far")
            else:
                progress(
                    f"[{index + 1}/{cases}] DIVERGED {case}: "
                    + "; ".join(str(d) for d in result.divergences)
                )
    return results
