"""Differential fuzzing: the fast engine vs. the naive reference.

A case is a (scheme, geometry, seed) triple plus an access-stream length;
:func:`run_case` builds the optimised engine through the real scheme
registry and the oracle through :func:`repro.check.reference.build_reference`,
replays the same synthetic stream through both and demands **exact**
equality:

- per access: hit/miss, set index, evicted core and evicted block address;
- per interval boundary: the installed eviction distribution ``E_i`` and
  the allocation targets ``T_i``, float-for-float;
- at end of run: occupancy, per-core hit/miss/eviction counters, a full
  occupancy rescan, the replacement/fallback counters and (for DIP) the
  PSEL state.

Both simulators stand in for the same idealised hardware — the same
seeded PRNG streams (via :mod:`repro.util.rng` labels) and the same float
arithmetic — so any inequality at all is a bug in one of them, never
tolerance noise. Comparison stops at the first divergence: everything
after it is downstream corruption, not signal.

PriSM-F and PriSM-Q read performance counters the raw cache does not
have; :class:`SyntheticPerf` supplies deterministic per-core CPI/IPC
figures so the fuzzer can exercise Algorithms 2 and 3 without dragging in
the timing model.

The ``backend`` axis points the same machinery at the numpy batch engine:
``run_case(case, backend="vector")`` certifies
:class:`~repro.cache.vector.VectorCache` twice per case — batched (via
``access_many`` with a case-derived chunk size) against the classic
engine, then against the reference — with identical per-access,
per-boundary and end-of-run equality demands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.check.reference import REFERENCE_SCHEMES, ReferenceCache, build_reference
from repro.experiments.schemes import build_scheme
from repro.util.rng import make_rng

__all__ = [
    "CaseResult",
    "DifferentialCase",
    "Divergence",
    "SyntheticPerf",
    "compare_batched",
    "compare_run",
    "fuzz",
    "make_stream",
    "random_case",
    "run_case",
]

#: Schemes whose allocation policy reads performance counters.
_NEEDS_PERF = ("prism-f", "prism-q")
#: Schemes whose target IPC derives from stand-alone IPCs.
_NEEDS_STANDALONE = ("prism-q",)


class SyntheticPerf:
    """Deterministic stand-in for the timing model's per-core counters.

    Stateless: the per-core CPI, IPC and LLC-stall figures are fixed at
    construction from ``make_rng(seed, "check-perf")``, so two instances
    built from the same ``(num_cores, seed)`` — or one instance shared by
    both simulators — always report identical values.
    """

    def __init__(self, num_cores: int, seed: int = 0) -> None:
        rng = make_rng(seed, "check-perf")
        self._cpi = [0.8 + 3.0 * rng.random() for _ in range(num_cores)]
        self._llc_fraction = [0.1 + 0.7 * rng.random() for _ in range(num_cores)]

    def cpi(self, core: int) -> float:
        return self._cpi[core]

    def ipc(self, core: int) -> float:
        return 1.0 / self._cpi[core]

    def llc_stall_cpi(self, core: int) -> float:
        return self._cpi[core] * self._llc_fraction[core]


@dataclass(frozen=True)
class DifferentialCase:
    """One fuzz case: scheme, geometry, stream shape and seeds.

    The shared-ownership axes (`sharing`/`sharing_degree`/`track_sharers`)
    and the cluster axis (`core_map`) default to the historical behaviour
    — a 30% global shared pool, no sharer masks, no clustering — so the
    original case space is a strict subset of the new one.
    """

    scheme: str
    num_cores: int = 4
    num_sets: int = 8
    assoc: int = 4
    seed: int = 0
    accesses: int = 2000
    scheme_kwargs: Optional[dict] = None
    #: Fraction of accesses aimed at a shared pool (cross-core reuse).
    sharing: float = 0.3
    #: Cores per sharing group; 0 = one global pool (the historical mix).
    sharing_degree: int = 0
    #: Maintain and compare per-block sharer bitmasks across simulators.
    track_sharers: bool = False
    #: Cluster map (real core -> accounting group); ``None`` = identity.
    core_map: Optional[Tuple[int, ...]] = None

    @property
    def acct_cores(self) -> int:
        """Accounting width: clusters when mapped, else cores."""
        return max(self.core_map) + 1 if self.core_map else self.num_cores

    @property
    def geometry(self) -> CacheGeometry:
        return CacheGeometry(
            self.num_sets * self.assoc * 64, block_bytes=64, assoc=self.assoc
        )


@dataclass(frozen=True)
class Divergence:
    """One engine-vs-reference disagreement.

    ``index`` is the 0-based access at which it was detected, or ``-1``
    for end-of-run state comparisons.
    """

    index: int
    what: str
    engine: object
    reference: object

    def __str__(self) -> str:
        where = f"access {self.index}" if self.index >= 0 else "end of run"
        return (
            f"{self.what} diverged at {where}: "
            f"engine {self.engine!r} != reference {self.reference!r}"
        )


@dataclass
class CaseResult:
    """Outcome of one differential case."""

    case: DifferentialCase
    divergences: List[Divergence] = field(default_factory=list)
    accesses_run: int = 0
    intervals: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences


def make_stream(case: DifferentialCase) -> List[Tuple[int, int]]:
    """Generate the case's ``(core, block_addr)`` access stream.

    A three-way address mix per access — a small per-core hot pool (hits
    and stable ownership), a shared pool (cross-core ownership churn, the
    food of the fallback paths) and cold random addresses (misses on full
    sets, so replacements and interval boundaries keep firing).

    ``case.sharing`` sets the shared band's width; ``case.sharing_degree``
    splits the single global pool into per-group pools of that many
    adjacent cores (the shared-data family's access shape). The defaults
    reproduce the historical stream byte for byte.
    """
    rng = make_rng(case.seed, "check-stream")
    num_blocks = case.num_sets * case.assoc
    hot_pools = [
        [rng.getrandbits(20) for _ in range(max(1, num_blocks // case.num_cores))]
        for _ in range(case.num_cores)
    ]
    degree = case.sharing_degree
    num_pools = 1 if degree <= 0 else (case.num_cores + degree - 1) // degree
    shared_pools = [
        [rng.getrandbits(20) for _ in range(max(1, num_blocks // 2))]
        for _ in range(num_pools)
    ]
    shared_band = 0.45 + case.sharing
    stream = []
    for _ in range(case.accesses):
        core = rng.randrange(case.num_cores)
        region = rng.random()
        if region < 0.45:
            pool = hot_pools[core]
            addr = pool[rng.randrange(len(pool))]
        elif region < shared_band:
            pool = shared_pools[core // degree if degree > 0 else 0]
            addr = pool[rng.randrange(len(pool))]
        else:
            addr = rng.getrandbits(20)
        stream.append((core, addr))
    return stream


def compare_run(
    cache: SharedCache,
    reference: ReferenceCache,
    stream: Sequence[Tuple[int, int]],
) -> List[Divergence]:
    """Replay ``stream`` through both simulators; return the divergences.

    Stops at the first disagreement (at most one per-access/per-interval
    divergence is reported; end-of-run checks only run on a clean replay,
    where they can still catch counter drift the access results hide).
    """
    divergences: List[Divergence] = []
    scheme = cache.scheme
    ref_scheme = reference.scheme
    intervals_seen = 0

    for index, (core, addr) in enumerate(stream):
        engine_result = cache.access(core, addr)
        ref_result = reference.access(core, addr)
        engine_tuple = (
            engine_result.hit,
            engine_result.set_index,
            engine_result.evicted_core,
            engine_result.evicted_addr,
        )
        if engine_tuple != ref_result.as_tuple():
            divergences.append(
                Divergence(index, "access", engine_tuple, ref_result.as_tuple())
            )
            return divergences
        if cache.intervals_completed != reference.intervals_completed:
            divergences.append(
                Divergence(
                    index,
                    "intervals_completed",
                    cache.intervals_completed,
                    reference.intervals_completed,
                )
            )
            return divergences
        if ref_scheme is not None and reference.intervals_completed > intervals_seen:
            intervals_seen = reference.intervals_completed
            engine_e = list(scheme.eviction_probabilities)
            if engine_e != ref_scheme.probabilities:
                divergences.append(
                    Divergence(
                        index, "eviction_probabilities", engine_e, ref_scheme.probabilities
                    )
                )
                return divergences
            engine_t = list(scheme.targets)
            if engine_t != ref_scheme.targets:
                divergences.append(
                    Divergence(index, "targets", engine_t, ref_scheme.targets)
                )
                return divergences

    def check(what: str, engine_value, ref_value) -> None:
        if engine_value != ref_value:
            divergences.append(Divergence(-1, what, engine_value, ref_value))

    check("occupancy", list(cache.occupancy), reference.occupancy)
    check("scan_occupancy", cache.scan_occupancy(), reference.scan_occupancy())
    check("hits", list(cache.stats.hits), reference.hits)
    check("misses", list(cache.stats.misses), reference.misses)
    check("evictions", list(cache.stats.evictions), reference.evictions)
    if ref_scheme is not None:
        check("replacements", scheme.manager.replacements, ref_scheme.replacements)
        check(
            "victim_not_found",
            scheme.manager.victim_not_found,
            ref_scheme.victim_not_found,
        )
    engine_psel = getattr(cache.policy, "psel", None)
    ref_psel = getattr(reference.policy, "psel", None)
    if engine_psel is not None or ref_psel is not None:
        check("psel", engine_psel, ref_psel)
    if cache.track_sharers:
        check("sharers", cache.scan_sharers(), reference.scan_sharers())
    if cache.core_map is not None:
        check("charges", cache.scan_charges(), reference.scan_charges())
    return divergences


class _BoundaryProbe:
    """Telemetry stand-in capturing ``(E, T)`` at every interval boundary.

    Both engines call ``record_interval`` from inside their boundary
    handler, after the scheme reallocated and before
    ``intervals_completed`` increments — so the snapshots carry exactly
    the per-boundary state a per-access replay observes.
    """

    def __init__(self) -> None:
        self.snapshots: List[tuple] = []

    def note_alloc_seconds(self, seconds: float) -> None:
        pass

    def record_interval(self, cache) -> None:
        scheme = cache.scheme
        self.snapshots.append(
            (
                cache.intervals_completed + 1,
                list(scheme.eviction_probabilities),
                list(scheme.targets),
            )
        )


def _result_tuple(result) -> tuple:
    """(hit, set, evicted_core, evicted_addr) for either simulator's result."""
    if hasattr(result, "as_tuple"):
        return result.as_tuple()
    return (result.hit, result.set_index, result.evicted_core, result.evicted_addr)


def _scheme_et(sim) -> tuple:
    """Current ``(E, T)`` of a simulator's scheme (engine or reference)."""
    scheme = sim.scheme
    if hasattr(scheme, "eviction_probabilities"):
        return (list(scheme.eviction_probabilities), list(scheme.targets))
    return (list(scheme.probabilities), list(scheme.targets))


def _replay_oracle(oracle, stream: Sequence[Tuple[int, int]]):
    """Per-access replay of an oracle (classic engine or reference).

    Returns the per-access result tuples and the boundary snapshots in
    the same shape :class:`_BoundaryProbe` records.
    """
    tuples = []
    boundaries = []
    seen = 0
    has_scheme = oracle.scheme is not None
    for core, addr in stream:
        tuples.append(_result_tuple(oracle.access(core, addr)))
        if has_scheme and oracle.intervals_completed > seen:
            seen = oracle.intervals_completed
            boundaries.append((seen,) + _scheme_et(oracle))
    return tuples, boundaries


def _end_state(sim) -> dict:
    """End-of-run state of either simulator, keyed for comparison."""
    state = {
        "occupancy": list(sim.occupancy),
        "scan_occupancy": list(sim.scan_occupancy()),
        "intervals_completed": sim.intervals_completed,
    }
    stats = getattr(sim, "stats", None)
    if stats is not None:
        state["hits"] = list(stats.hits)
        state["misses"] = list(stats.misses)
        state["evictions"] = list(stats.evictions)
    else:
        state["hits"] = list(sim.hits)
        state["misses"] = list(sim.misses)
        state["evictions"] = list(sim.evictions)
    scheme = sim.scheme
    if scheme is not None:
        manager = getattr(scheme, "manager", scheme)
        state["replacements"] = manager.replacements
        state["victim_not_found"] = manager.victim_not_found
    psel = getattr(sim.policy, "psel", None)
    if psel is not None:
        state["psel"] = psel
    if getattr(sim, "track_sharers", False) and hasattr(sim, "scan_sharers"):
        state["sharers"] = sim.scan_sharers()
    # The vector engine never materialises fillers (translation happens
    # before its state machine), so "charges" only appears — and is only
    # compared — between simulators that can rescan them.
    if getattr(sim, "core_map", None) is not None and hasattr(sim, "scan_charges"):
        state["charges"] = sim.scan_charges()
    return state


def compare_batched(
    engine,
    oracle,
    stream: Sequence[Tuple[int, int]],
    label: str = "",
    slabs: int = 3,
) -> List[Divergence]:
    """Batched engine vs per-access oracle: same checks as :func:`compare_run`.

    The oracle (classic engine or reference) replays per access, snapshotting
    ``E``/``T`` at each boundary; ``engine`` replays the same stream through
    :meth:`access_many` in ``slabs`` batch calls (exercising state carry-over
    between calls) with a boundary probe attached. Per-access results, the
    ordered boundary snapshots, and the end-of-run state must all match
    exactly.
    """
    from repro.cache.encode import encode_trace

    o_tuples, o_bounds = _replay_oracle(oracle, stream)
    probe = None
    if engine.scheme is not None:
        probe = _BoundaryProbe()
        engine.set_telemetry(probe)
    e_tuples = []
    n = len(stream)
    cut = max(1, n // max(1, slabs))
    for start in range(0, n, cut):
        out = engine.access_many(
            encode_trace(stream[start : start + cut], engine.geometry),
            collect=True,
        )
        e_tuples.extend(_result_tuple(r) for r in out)

    divergences: List[Divergence] = []
    for index, (engine_tuple, oracle_tuple) in enumerate(zip(e_tuples, o_tuples)):
        if engine_tuple != oracle_tuple:
            divergences.append(
                Divergence(index, f"{label}access", engine_tuple, oracle_tuple)
            )
            return divergences
    e_bounds = probe.snapshots if probe is not None else []
    if len(e_bounds) != len(o_bounds):
        divergences.append(
            Divergence(-1, f"{label}interval boundaries", len(e_bounds), len(o_bounds))
        )
        return divergences
    for (e_k, e_e, e_t), (o_k, o_e, o_t) in zip(e_bounds, o_bounds):
        if e_k != o_k:
            divergences.append(Divergence(-1, f"{label}interval index", e_k, o_k))
            return divergences
        if e_e != o_e:
            divergences.append(
                Divergence(-1, f"{label}eviction_probabilities@interval{e_k}", e_e, o_e)
            )
            return divergences
        if e_t != o_t:
            divergences.append(
                Divergence(-1, f"{label}targets@interval{e_k}", e_t, o_t)
            )
            return divergences
    engine_state = _end_state(engine)
    oracle_state = _end_state(oracle)
    for what in sorted(set(engine_state) & set(oracle_state)):
        if engine_state[what] != oracle_state[what]:
            divergences.append(
                Divergence(-1, f"{label}{what}", engine_state[what], oracle_state[what])
            )
    return divergences


def _build_engine(case: DifferentialCase, standalone_ipcs, perf) -> SharedCache:
    kwargs = dict(case.scheme_kwargs or {})
    scheme, policy = build_scheme(
        case.scheme, case.acct_cores, standalone_ipcs, **kwargs
    )
    cache = SharedCache(
        case.geometry,
        case.acct_cores,
        policy=policy,
        core_map=case.core_map,
        track_sharers=case.track_sharers,
    )
    if scheme is not None:
        scheme.perf = perf
        cache.set_scheme(scheme)
    return cache


def _build_vector_engine(case: DifferentialCase, standalone_ipcs, perf):
    from repro.cache.vector import VectorCache

    kwargs = dict(case.scheme_kwargs or {})
    scheme, policy = build_scheme(
        case.scheme, case.acct_cores, standalone_ipcs, **kwargs
    )
    if scheme is not None:
        scheme.perf = perf
    # A case-derived chunk so the fuzzer also sweeps batch granularity
    # (tiny chunks maximise boundary/carry-over coverage).
    chunk = None if case.seed % 3 == 0 else 2 + case.seed % 97
    return VectorCache(
        case.geometry,
        case.acct_cores,
        policy=policy,
        scheme=scheme,
        chunk=chunk,
        core_map=case.core_map,
        track_sharers=case.track_sharers,
    )


def run_case(case: DifferentialCase, backend: str = "classic") -> CaseResult:
    """Build the simulators for ``case``, replay the stream, compare.

    ``backend="classic"`` replays the classic engine against the
    reference per access. ``backend="vector"`` certifies the vector
    engine twice over: batched against the classic engine, then (on a
    fresh engine) batched against the reference.
    """
    # Schemes, perf counters and stand-alone IPCs are all sized by the
    # accounting width: under clustering PriSM manages clusters, not cores.
    perf = (
        SyntheticPerf(case.acct_cores, case.seed)
        if case.scheme in _NEEDS_PERF
        else None
    )
    standalone_ipcs = None
    if case.scheme in _NEEDS_STANDALONE:
        rng = make_rng(case.seed, "check-standalone")
        standalone_ipcs = [0.5 + rng.random() for _ in range(case.acct_cores)]

    stream = make_stream(case)
    reference = build_reference(
        case.scheme,
        case.acct_cores,
        case.geometry,
        standalone_ipcs=standalone_ipcs,
        scheme_kwargs=case.scheme_kwargs,
        perf=perf,
        core_map=case.core_map,
        track_sharers=case.track_sharers,
    )
    if backend == "vector":
        engine = _build_vector_engine(case, standalone_ipcs, perf)
        classic = _build_engine(case, standalone_ipcs, perf)
        divergences = compare_batched(engine, classic, stream, label="vs-classic ")
        if not divergences:
            engine = _build_vector_engine(case, standalone_ipcs, perf)
            divergences = compare_batched(
                engine, reference, stream, label="vs-reference "
            )
    elif backend == "classic":
        cache = _build_engine(case, standalone_ipcs, perf)
        divergences = compare_run(cache, reference, stream)
    else:
        raise ValueError(f"unknown backend {backend!r} (classic or vector)")
    return CaseResult(
        case=case,
        divergences=divergences,
        accesses_run=len(stream),
        intervals=reference.intervals_completed,
    )


def random_case(
    rng,
    schemes: Optional[Sequence[str]] = None,
    sharing: bool = False,
) -> DifferentialCase:
    """Draw one random case from ``rng`` (a ``random.Random``).

    ``sharing=True`` additionally sweeps the shared-ownership and cluster
    axes: scale-out core counts, grouped sharing pools of varying degree
    and width, sharer-bitmask tracking, and random (canonicalised)
    cluster maps. With the default ``sharing=False`` the draw sequence —
    and therefore every historical case — is unchanged.
    """
    schemes = tuple(schemes) if schemes else tuple(sorted(REFERENCE_SCHEMES))
    name = schemes[rng.randrange(len(schemes))]
    num_cores = rng.randrange(2, 7)
    assoc = (2, 4, 8)[rng.randrange(3)]
    num_sets = (2, 4, 8, 16)[rng.randrange(4)]
    kwargs = {}
    if name.startswith("prism"):
        kwargs["seed"] = rng.getrandbits(16)
        if rng.random() < 0.5:
            kwargs["fallback"] = "paper"
        if rng.random() < 0.3:
            kwargs["probability_bits"] = (4, 8)[rng.randrange(2)]
        if rng.random() < 0.3:
            kwargs["bias_correction"] = False
        if rng.random() < 0.3:
            kwargs["sample_shift"] = 0
    elif name == "dip":
        kwargs["seed"] = rng.getrandbits(16)
        if rng.random() < 0.3:
            kwargs["leader_sets"] = 2
    extra = {}
    if sharing:
        if rng.random() < 0.3:
            num_cores = (8, 16, 32)[rng.randrange(3)]
        if rng.random() < 0.6:
            extra["track_sharers"] = True
        if rng.random() < 0.5:
            extra["sharing_degree"] = (2, 3, 4)[rng.randrange(3)]
            extra["sharing"] = (0.15, 0.3, 0.5)[rng.randrange(3)]
        if rng.random() < 0.5:
            # Random surjective cluster map: draw raw group labels, then
            # relabel by first appearance so ids are dense in [0, K).
            raw_k = rng.randrange(1, num_cores + 1)
            raw = [rng.randrange(raw_k) for _ in range(num_cores)]
            relabel: dict = {}
            extra["core_map"] = tuple(
                relabel.setdefault(g, len(relabel)) for g in raw
            )
    return DifferentialCase(
        scheme=name,
        num_cores=num_cores,
        num_sets=num_sets,
        assoc=assoc,
        seed=rng.getrandbits(32),
        accesses=rng.randrange(400, 2501),
        scheme_kwargs=kwargs or None,
        **extra,
    )


def fuzz(
    cases: int = 200,
    seed: int = 0,
    schemes: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    backend: str = "classic",
    sharing: bool = False,
) -> List[CaseResult]:
    """Run ``cases`` random differential cases; return every result.

    The case stream is fully determined by ``seed`` (via
    ``make_rng(seed, "check-fuzz")``), so a failing campaign reproduces
    exactly from its seed. ``backend`` selects the engine under test
    (see :func:`run_case`); the drawn cases are identical either way.
    ``sharing`` enables the shared-ownership and cluster axes (see
    :func:`random_case`).
    """
    rng = make_rng(seed, "check-fuzz")
    schemes = tuple(schemes) if schemes else tuple(sorted(REFERENCE_SCHEMES))
    results = []
    for index in range(cases):
        case = random_case(rng, schemes=schemes, sharing=sharing)
        result = run_case(case, backend=backend)
        results.append(result)
        if progress is not None:
            if result.ok:
                if (index + 1) % 25 == 0:
                    progress(f"[{index + 1}/{cases}] ok so far")
            else:
                progress(
                    f"[{index + 1}/{cases}] DIVERGED {case}: "
                    + "; ".join(str(d) for d in result.divergences)
                )
    return results
