"""DRAM latency and memory-controller contention.

A deliberately coarse model — the paper's results hinge on LLC hit/miss
counts, not DRAM microarchitecture — but it captures the two effects the
motivation section needs: with more cores behind the same controllers,
queueing inflates miss latency (so cache misses hurt more at higher core
counts), and with row-buffer state enabled, spatial locality in the miss
stream is rewarded while conflicting streams pay the precharge+activate
penalty. Requests hash across ``num_controllers`` controllers (the paper
scales 1/2/4/8 with core count, Table 2); each controller serves one
request every ``service_cycles``.

The bank/row-buffer extension is off by default (``row_blocks=0``): every
request then pays the flat ``base_latency``, preserving the calibration
of the catalog workloads. With ``row_blocks > 0``, consecutive block
addresses map to the same DRAM row until ``row_blocks`` blocks are
spanned, rows stripe across ``banks_per_controller`` banks, and each
bank remembers its open row: a request to the open row pays
``row_hit_latency``, a request to a different row pays
``row_conflict_latency`` (precharge + activate + access), and the first
touch of an idle bank pays ``base_latency``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["MemoryModel"]


class MemoryModel:
    """Bank-of-controllers queueing model with optional row-buffer state.

    Args:
        num_controllers: parallel memory controllers.
        base_latency: unloaded DRAM round-trip, in core cycles (also the
            closed-bank latency when the row model is enabled).
        service_cycles: controller occupancy per request (inverse bandwidth).
        banks_per_controller: DRAM banks behind each controller (row state
            is kept per bank; only meaningful with ``row_blocks > 0``).
        row_blocks: cache blocks per DRAM row. ``0`` (default) disables
            the row-buffer model entirely — flat ``base_latency``.
        row_hit_latency: latency when the request's row is already open
            (default ``0.6 * base_latency``).
        row_conflict_latency: latency when the bank has a *different* row
            open (default ``1.4 * base_latency``).
    """

    def __init__(
        self,
        num_controllers: int = 1,
        base_latency: float = 200.0,
        service_cycles: float = 24.0,
        banks_per_controller: int = 1,
        row_blocks: int = 0,
        row_hit_latency: float = None,
        row_conflict_latency: float = None,
    ) -> None:
        if num_controllers < 1:
            raise ValueError(f"num_controllers must be >= 1, got {num_controllers}")
        if base_latency <= 0 or service_cycles <= 0:
            raise ValueError("latencies must be positive")
        if banks_per_controller < 1:
            raise ValueError(
                f"banks_per_controller must be >= 1, got {banks_per_controller}"
            )
        if row_blocks < 0:
            raise ValueError(f"row_blocks must be >= 0, got {row_blocks}")
        self.num_controllers = num_controllers
        self.base_latency = base_latency
        self.service_cycles = service_cycles
        self.banks_per_controller = banks_per_controller
        self.row_blocks = row_blocks
        self.row_hit_latency = (
            row_hit_latency if row_hit_latency is not None else 0.6 * base_latency
        )
        self.row_conflict_latency = (
            row_conflict_latency
            if row_conflict_latency is not None
            else 1.4 * base_latency
        )
        if self.row_hit_latency <= 0 or self.row_conflict_latency <= 0:
            raise ValueError("row latencies must be positive")
        self._busy_until: List[float] = [0.0] * num_controllers
        #: Open row per (controller, bank); absent = bank idle.
        self._open_row: Dict[Tuple[int, int], int] = {}
        self.requests = 0
        self.total_queue_delay = 0.0
        self.row_hits = 0
        self.row_conflicts = 0

    def _dram_latency(self, block_addr: int, controller: int) -> float:
        """Latency of the DRAM access itself (row-buffer state update)."""
        if self.row_blocks == 0:
            return self.base_latency
        # Controller-interleaved chunk index: consecutive blocks on one
        # controller walk consecutive positions within a row.
        chunk = block_addr // self.num_controllers
        bank = (chunk // self.row_blocks) % self.banks_per_controller
        row = chunk // (self.row_blocks * self.banks_per_controller)
        key = (controller, bank)
        open_row = self._open_row.get(key)
        self._open_row[key] = row
        if open_row is None:
            return self.base_latency
        if open_row == row:
            self.row_hits += 1
            return self.row_hit_latency
        self.row_conflicts += 1
        return self.row_conflict_latency

    def miss_latency(self, block_addr: int, now: float) -> float:
        """Latency of a miss issued at cycle ``now`` to ``block_addr``.

        Returns the total latency — queueing delay, the request's own
        controller occupancy (``service_cycles``), and the DRAM access —
        and advances the owning controller's busy horizon.
        """
        controller = block_addr % self.num_controllers
        start = max(now, self._busy_until[controller])
        self._busy_until[controller] = start + self.service_cycles
        queue_delay = start - now
        self.requests += 1
        self.total_queue_delay += queue_delay
        return queue_delay + self.service_cycles + self._dram_latency(block_addr, controller)

    def mean_queue_delay(self) -> float:
        """Average queueing delay per request so far."""
        return self.total_queue_delay / self.requests if self.requests else 0.0

    def row_hit_rate(self) -> float:
        """Fraction of row-resolved requests that hit the open row."""
        resolved = self.row_hits + self.row_conflicts
        return self.row_hits / resolved if resolved else 0.0
