"""DRAM latency and memory-controller contention.

A deliberately coarse model — the paper's results hinge on LLC hit/miss
counts, not DRAM microarchitecture — but it captures the one effect the
motivation section needs: with more cores behind the same controllers,
queueing inflates miss latency, so cache misses hurt more at higher core
counts. Requests hash across ``num_controllers`` controllers (the paper
scales 1/2/4/8 with core count, Table 2); each controller serves one
request every ``service_cycles``.
"""

from __future__ import annotations

from typing import List

__all__ = ["MemoryModel"]


class MemoryModel:
    """Bank-of-controllers queueing model.

    Args:
        num_controllers: parallel memory controllers.
        base_latency: unloaded DRAM round-trip, in core cycles.
        service_cycles: controller occupancy per request (inverse bandwidth).
    """

    def __init__(
        self, num_controllers: int = 1, base_latency: float = 200.0, service_cycles: float = 24.0
    ) -> None:
        if num_controllers < 1:
            raise ValueError(f"num_controllers must be >= 1, got {num_controllers}")
        if base_latency <= 0 or service_cycles <= 0:
            raise ValueError("latencies must be positive")
        self.num_controllers = num_controllers
        self.base_latency = base_latency
        self.service_cycles = service_cycles
        self._busy_until: List[float] = [0.0] * num_controllers
        self.requests = 0
        self.total_queue_delay = 0.0

    def miss_latency(self, block_addr: int, now: float) -> float:
        """Latency of a miss issued at cycle ``now`` to ``block_addr``.

        Returns the total latency (queueing + DRAM) and advances the
        owning controller's busy horizon.
        """
        controller = block_addr % self.num_controllers
        start = max(now, self._busy_until[controller])
        self._busy_until[controller] = start + self.service_cycles
        queue_delay = start - now
        self.requests += 1
        self.total_queue_delay += queue_delay
        return queue_delay + self.base_latency

    def mean_queue_delay(self) -> float:
        """Average queueing delay per request so far."""
        return self.total_queue_delay / self.requests if self.requests else 0.0
