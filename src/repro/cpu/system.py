"""The multicore system driver.

:class:`MultiCoreSystem` interleaves per-core access streams over the
shared cache on a global cycle clock (an event queue ordered by each
core's next-ready cycle), models DRAM contention, and doubles as the
performance-counter provider for allocation policies that need CPI/IPC
(PriSM-F and PriSM-Q read *interval* counters, rolled every allocation
interval).

Methodology mirrors the paper: every program runs until it retires its
instruction target; programs that finish early keep executing (their
streams keep generating cache pressure) but their reported statistics are
frozen at the finish line — "statistics are reported only for the first
500M/200M instructions for each program".
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, List, Optional, Sequence

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cpu.core_model import CoreTimingModel
from repro.cpu.memory import MemoryModel
from repro.util.rng import derive_seed
from repro.workloads.benchmark import BenchmarkProfile

__all__ = [
    "MultiCoreSystem",
    "SystemResult",
    "CoreResult",
    "RecordedTrace",
    "run_standalone",
]

#: Address-space stride between cores; a power of two far above any
#: footprint, and a multiple of every set count, so per-core streams map
#: uniformly over sets but never collide.
_CORE_ADDRESS_STRIDE = 1 << 36


@dataclass
class CoreResult:
    """Reported figures for one core (frozen at its finish line)."""

    name: str
    ipc: float
    cpi: float
    llc_stall_cpi: float
    instructions: int
    cycles: float
    hits: int
    misses: int
    occupancy_at_finish: float


@dataclass
class RecordedTrace:
    """The post-L1 (LLC-visible) access stream of one shared run.

    One entry per LLC access, in global issue order. ``gaps[i]`` is the
    stream gap of the access itself; ``l1_gaps[i]``/``l1_lats[i]``
    accumulate the instructions and absorbed latency of the L1 hits the
    core served since its previous LLC access, so a replay can reproduce
    the core's cycle accounting exactly
    (:meth:`~repro.cpu.core_model.CoreTimingModel.advance_local` is linear
    in both). This is the input format of :mod:`repro.check.belady`.
    """

    num_cores: int
    cores: List[int] = field(default_factory=list)
    addrs: List[int] = field(default_factory=list)
    gaps: List[int] = field(default_factory=list)
    l1_gaps: List[int] = field(default_factory=list)
    l1_lats: List[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.addrs)


@dataclass
class SystemResult:
    """Outcome of one multiprogrammed run."""

    cores: List[CoreResult]
    scheme_name: str
    total_accesses: int
    intervals: int
    extra: dict = field(default_factory=dict)

    def ipcs(self) -> List[float]:
        return [c.ipc for c in self.cores]


class _IntervalListener:
    """Cache monitor that rolls the system's interval counter snapshots."""

    __slots__ = ("system",)

    def __init__(self, system: "MultiCoreSystem") -> None:
        self.system = system

    def observe(self, core: int, set_index: int, tag: int, hit: bool) -> None:
        pass

    observe._hot_noop = True  # only end_interval matters; skip per-access calls

    def end_interval(self) -> None:
        self.system.roll_interval_snapshots()


class MultiCoreSystem:
    """A machine: cores + streams + shared LLC + memory controllers.

    Args:
        cache: the shared cache (with its scheme already attached, or
            attach one later via ``cache.set_scheme``).
        profiles: one benchmark profile per core.
        seed: top-level seed; per-core stream seeds derive from it.
        scale: workload footprint scale (1.0 = the reference calibration).
        llc_hit_latency: exposed cycles per LLC hit.
        memory: DRAM model; defaults to one controller.
        l1_geometry: when set, each core gets a private L1 of this
            geometry that filters its stream before the shared LLC. Leave
            ``None`` (the default) for the catalog workloads — their
            streams are calibrated as post-L1 reference streams; enable it
            when replaying raw (unfiltered) traces.
        l1_hit_latency: exposed cycles per L1 hit.
        inclusive: enforce an inclusive hierarchy — an LLC eviction
            back-invalidates the victim block in its owner's L1 (only
            meaningful with ``l1_geometry``).
        telemetry: a :class:`~repro.telemetry.TelemetryRecorder` to bind,
            giving it per-interval instruction/IPC counters and per-core
            finish events on top of the cache's interval samples.
        record_trace: collect the post-L1 access stream into
            ``self.recorded_trace`` (a :class:`RecordedTrace`) while
            running — the input of the offline Belady baseline
            (:mod:`repro.check.belady`).

    The system registers itself as the scheme's performance-counter
    provider when the scheme exposes a ``perf`` attribute (PriSM does).
    """

    def __init__(
        self,
        cache: SharedCache,
        profiles: Sequence[BenchmarkProfile],
        seed: int = 0,
        scale: float = 1.0,
        llc_hit_latency: float = 8.0,
        memory: Optional[MemoryModel] = None,
        l1_geometry=None,
        l1_hit_latency: float = 2.0,
        inclusive: bool = False,
        telemetry=None,
        record_trace: bool = False,
    ) -> None:
        # Under a cluster map the cache's num_cores is the ACCOUNTING width
        # (clusters); the machine still has one profile per real core.
        real_cores = getattr(cache, "real_num_cores", cache.num_cores)
        if len(profiles) != real_cores:
            raise ValueError(
                f"cache has {real_cores} cores but {len(profiles)} profiles given"
            )
        self.cache = cache
        self.num_cores = real_cores
        self.profiles = list(profiles)
        self.memory = memory if memory is not None else MemoryModel()
        self.cores = [
            CoreTimingModel(i, p, llc_hit_latency=llc_hit_latency)
            for i, p in enumerate(profiles)
        ]
        self.streams = [
            p.stream(seed=derive_seed(seed, "stream", i, p.name), scale=scale)
            for i, p in enumerate(profiles)
        ]
        if l1_geometry is not None:
            from repro.cpu.l1 import L1Cache

            self.l1s = [L1Cache(l1_geometry) for _ in range(real_cores)]
        else:
            self.l1s = None
        self.l1_hit_latency = l1_hit_latency
        self.inclusive = inclusive and self.l1s is not None
        if record_trace:
            self.recorded_trace = RecordedTrace(num_cores=real_cores)
            self._pending_l1_gap = [0] * real_cores
            self._pending_l1_lat = [0.0] * real_cores
        else:
            self.recorded_trace = None
        self._snap_cycles = [0.0] * real_cores
        self._snap_instructions = [0] * real_cores
        self._snap_stall = [0.0] * real_cores
        self.total_accesses = 0
        cache.add_monitor(_IntervalListener(self))
        if cache.scheme is not None and hasattr(cache.scheme, "perf"):
            cache.scheme.perf = self
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.bind(self)

    # -- performance-counter provider (interval granularity) ----------------

    def roll_interval_snapshots(self) -> None:
        """Advance the interval baselines (called at each interval end)."""
        for i, core in enumerate(self.cores):
            self._snap_cycles[i] = core.cycles
            self._snap_instructions[i] = core.instructions
            self._snap_stall[i] = core.llc_stall_cycles

    def cpi(self, core: int) -> float:
        """CPI of ``core`` over the current interval (0 if it retired nothing)."""
        instructions = self.cores[core].instructions - self._snap_instructions[core]
        if instructions <= 0:
            return 0.0
        return (self.cores[core].cycles - self._snap_cycles[core]) / instructions

    def ipc(self, core: int) -> float:
        """IPC of ``core`` over the current interval."""
        cycles = self.cores[core].cycles - self._snap_cycles[core]
        if cycles <= 0.0:
            return 0.0
        return (self.cores[core].instructions - self._snap_instructions[core]) / cycles

    def interval_instructions(self, core: int) -> int:
        """Instructions ``core`` retired in the current interval."""
        return self.cores[core].instructions - self._snap_instructions[core]

    def llc_stall_cpi(self, core: int) -> float:
        """LLC-miss stall CPI of ``core`` over the current interval."""
        instructions = self.cores[core].instructions - self._snap_instructions[core]
        if instructions <= 0:
            return 0.0
        return (self.cores[core].llc_stall_cycles - self._snap_stall[core]) / instructions

    # -- simulation -----------------------------------------------------------

    def run(self, instructions_per_core: int, max_accesses: Optional[int] = None) -> SystemResult:
        """Run until every core retires ``instructions_per_core``.

        Args:
            instructions_per_core: the per-program instruction target.
            max_accesses: safety valve; raises if the target is not reached
                within this many total accesses (default: no limit).

        Returns:
            A :class:`SystemResult` with per-core reported figures.
        """
        if instructions_per_core < 1:
            raise ValueError(
                f"instructions_per_core must be >= 1, got {instructions_per_core}"
            )
        cache = self.cache
        memory = self.memory
        recorder = self.telemetry
        trace = self.recorded_trace
        run_start = perf_counter()
        start_accesses = self.total_accesses
        occupancy_at_finish = [0.0] * self.num_cores
        unfinished = sum(1 for c in self.cores if not c.finished)
        heap = [(core.cycles, core.core_id) for core in self.cores if not core.finished]
        heapq.heapify(heap)

        while unfinished > 0:
            now, cid = heapq.heappop(heap)
            core = self.cores[cid]
            gap, addr = self.streams[cid].next_access()
            addr += cid * _CORE_ADDRESS_STRIDE
            if self.l1s is not None and self.l1s[cid].access(addr):
                core.advance_local(gap, self.l1_hit_latency)
                if trace is not None:
                    self._pending_l1_gap[cid] += gap
                    self._pending_l1_lat[cid] += self.l1_hit_latency
                if not core.finished and core.instructions >= instructions_per_core:
                    core.mark_finished()
                    occupancy_at_finish[cid] = (
                        cache.occupancy[cache.group_of(cid)]
                        / cache.geometry.num_blocks
                    )
                    if recorder is not None:
                        recorder.record_finish(
                            cid,
                            core.finish_instructions,
                            core.finish_cycles,
                            occupancy_at_finish[cid],
                        )
                    unfinished -= 1
                    if unfinished == 0:
                        break
                heapq.heappush(heap, (core.cycles, cid))
                continue
            if trace is not None:
                trace.cores.append(cid)
                trace.addrs.append(addr)
                trace.gaps.append(gap)
                trace.l1_gaps.append(self._pending_l1_gap[cid])
                trace.l1_lats.append(self._pending_l1_lat[cid])
                self._pending_l1_gap[cid] = 0
                self._pending_l1_lat[cid] = 0.0
            result = cache.access(cid, addr)
            self.total_accesses += 1
            if self.inclusive and result.evicted_core >= 0:
                self.l1s[result.evicted_core].invalidate(result.evicted_addr)
            if result.hit:
                core.advance(gap, True)
            else:
                issue_time = now + gap * core.profile.cpi_base
                core.advance(gap, False, memory.miss_latency(addr, issue_time))
            if not core.finished and core.instructions >= instructions_per_core:
                core.mark_finished()
                occupancy_at_finish[cid] = (
                    cache.occupancy[cache.group_of(cid)]
                    / cache.geometry.num_blocks
                )
                if recorder is not None:
                    recorder.record_finish(
                        cid,
                        core.finish_instructions,
                        core.finish_cycles,
                        occupancy_at_finish[cid],
                    )
                unfinished -= 1
                if unfinished == 0:
                    break
            heapq.heappush(heap, (core.cycles, cid))
            if max_accesses is not None and self.total_accesses > max_accesses:
                raise RuntimeError(
                    f"exceeded {max_accesses} accesses with {unfinished} cores unfinished"
                )

        if recorder is not None:
            recorder.finalize(
                perf_counter() - run_start, self.total_accesses - start_accesses
            )
        return self._collect(occupancy_at_finish)

    def _collect(self, occupancy_at_finish: List[float]) -> SystemResult:
        cores = []
        for i, core in enumerate(self.cores):
            instructions = core.finish_instructions if core.finished else core.instructions
            cycles = core.finish_cycles if core.finished else core.cycles
            stall_cpi = core.llc_stall_cycles / instructions if instructions else 0.0
            cores.append(
                CoreResult(
                    name=self.profiles[i].name,
                    ipc=core.ipc(),
                    cpi=core.cpi(),
                    llc_stall_cpi=stall_cpi,
                    instructions=instructions,
                    cycles=cycles,
                    # Counters are accounting-indexed: under a cluster map
                    # a core reports its cluster's totals.
                    hits=self.cache.stats.hits[self.cache.group_of(i)],
                    misses=self.cache.stats.misses[self.cache.group_of(i)],
                    occupancy_at_finish=occupancy_at_finish[i],
                )
            )
        scheme = self.cache.scheme
        return SystemResult(
            cores=cores,
            scheme_name=getattr(scheme, "name_with_policy", None)
            or getattr(scheme, "name", "unmanaged"),
            total_accesses=self.total_accesses,
            intervals=self.cache.intervals_completed,
        )


def run_standalone(
    profile: BenchmarkProfile,
    geometry: CacheGeometry,
    instructions: int,
    policy_factory: Callable[[], ReplacementPolicy] = LRUPolicy,
    num_controllers: int = 1,
    seed: int = 0,
    scale: float = 1.0,
    llc_hit_latency: float = 8.0,
    memory: Optional[MemoryModel] = None,
    l1_geometry: Optional[CacheGeometry] = None,
    l1_hit_latency: float = 2.0,
    inclusive: bool = False,
) -> CoreResult:
    """Run one program alone on the whole cache (the ``IPC^SP`` runs).

    The stand-alone machine keeps the shared configuration's memory
    controllers — and, when the shared machine models a hierarchy, its
    private-L1 and DRAM-bank configuration (pass ``memory=`` to override
    the flat default) — matching how the paper obtains per-program
    baselines.
    """
    cache = SharedCache(geometry, num_cores=1, policy=policy_factory())
    system = MultiCoreSystem(
        cache,
        [profile],
        seed=seed,
        scale=scale,
        llc_hit_latency=llc_hit_latency,
        memory=memory if memory is not None else MemoryModel(num_controllers=num_controllers),
        l1_geometry=l1_geometry,
        l1_hit_latency=l1_hit_latency,
        inclusive=inclusive,
    )
    return system.run(instructions).cores[0]
