"""Per-core timing model.

CPI decomposition (matching the formulation Algorithm 2 assumes, after
[4]):

    CPI = CPI_ideal + CPI_llc

where ``CPI_ideal`` covers the program's base CPI plus the exposed LLC
*hit* latency ("the performance if all accesses were to hit in the LLC"),
and ``CPI_llc`` is the extra commit-stall time caused by LLC misses — the
counter modern processors expose and that the model accumulates exactly in
:attr:`llc_stall_cycles`. A miss's exposed penalty is the DRAM latency
divided by the program's memory-level parallelism.
"""

from __future__ import annotations

from repro.workloads.benchmark import BenchmarkProfile

__all__ = ["CoreTimingModel"]


class CoreTimingModel:
    """Cycle accounting for one core running one program.

    Args:
        core_id: position in the workload.
        profile: the program's timing parameters.
        llc_hit_latency: exposed cycles per LLC hit (post-overlap).
    """

    def __init__(self, core_id: int, profile: BenchmarkProfile, llc_hit_latency: float = 8.0) -> None:
        if llc_hit_latency < 0:
            raise ValueError(f"llc_hit_latency must be >= 0, got {llc_hit_latency}")
        self.core_id = core_id
        self.profile = profile
        self.llc_hit_latency = llc_hit_latency
        self.cycles = 0.0
        self.instructions = 0
        self.llc_stall_cycles = 0.0
        self.accesses = 0
        self.finished = False
        self.finish_cycles = 0.0
        self.finish_instructions = 0

    def advance(self, gap_instructions: int, hit: bool, mem_latency: float = 0.0) -> None:
        """Execute ``gap_instructions`` then one LLC access.

        Args:
            gap_instructions: instructions retired before the access.
            hit: whether the access hit in the shared LLC.
            mem_latency: DRAM latency for a miss (ignored on hits).
        """
        self.instructions += gap_instructions
        self.cycles += gap_instructions * self.profile.cpi_base
        self.accesses += 1
        if hit:
            self.cycles += self.llc_hit_latency
        else:
            exposed = self.llc_hit_latency + mem_latency / self.profile.mlp
            self.cycles += exposed
            self.llc_stall_cycles += exposed - self.llc_hit_latency

    def advance_local(self, gap_instructions: int, latency: float) -> None:
        """Execute ``gap_instructions`` then an access absorbed locally
        (an L1 hit): no LLC involvement, fixed ``latency`` cycles."""
        self.instructions += gap_instructions
        self.cycles += gap_instructions * self.profile.cpi_base + latency

    def mark_finished(self) -> None:
        """Freeze the reported counters (the core keeps running for contention)."""
        if not self.finished:
            self.finished = True
            self.finish_cycles = self.cycles
            self.finish_instructions = self.instructions

    # -- reported figures (at finish when frozen, else live) -----------------

    def _report_point(self) -> tuple:
        if self.finished:
            return self.finish_cycles, self.finish_instructions
        return self.cycles, self.instructions

    def ipc(self) -> float:
        """Instructions per cycle over the reported window."""
        cycles, instructions = self._report_point()
        return instructions / cycles if cycles > 0 else 0.0

    def cpi(self) -> float:
        """Cycles per instruction over the reported window."""
        cycles, instructions = self._report_point()
        return cycles / instructions if instructions > 0 else 0.0
