"""Private per-core L1 data caches.

The default workload calibration treats each benchmark's stream as the
*post-L1* (LLC-visible) reference stream, so the multicore system runs
without an L1 model. Enable per-core L1 filtering via
``MultiCoreSystem(l1_geometry=...)`` (or ``machine(..., l1="inclusive")``
at the config layer): hits are absorbed at L1 cost and never reach the
shared LLC — matching Table 2's private 64 KB L1s in front of the shared
L2. Under an *inclusive* hierarchy the system back-invalidates the L1
copy whenever the LLC evicts a block (see
:class:`~repro.cpu.system.MultiCoreSystem`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.cache.geometry import CacheGeometry

__all__ = ["L1Cache"]


class L1Cache:
    """A small private LRU cache (tag-only, timing handled by the caller).

    Each set is an insertion-ordered dict of resident tags (oldest first),
    so probe, promote, fill and evict are all O(1) — the behaviour is
    bit-identical to the classic MRU-first tag-list formulation, without
    its O(assoc) ``list.remove`` on every hot-set probe.

    Args:
        geometry: L1 geometry (e.g. the scaled 1 KB 2-way counterpart of
            the paper's 64 KB 2-way L1).

    Raises:
        ValueError: if the geometry's set count is not a power of two —
            the set index is extracted with a bit mask, so a non-pow2
            count would silently alias sets.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        num_sets = geometry.num_sets
        if num_sets < 1 or num_sets & (num_sets - 1):
            raise ValueError(
                f"L1 set count must be a power of two, got {num_sets} "
                f"(geometry {geometry})"
            )
        self.geometry = geometry
        self._set_mask = num_sets - 1
        self._tag_shift = self._set_mask.bit_length()
        # Per-set resident tags, insertion-ordered oldest (LRU) first.
        self._sets: List[Dict[int, None]] = [{} for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, block_addr: int) -> bool:
        """Probe-and-update; returns True on an L1 hit."""
        tags = self._sets[block_addr & self._set_mask]
        tag = block_addr >> self._tag_shift
        if tag in tags:
            del tags[tag]  # re-insert below: newest = MRU
            self.hits += 1
            hit = True
        else:
            self.misses += 1
            hit = False
            if len(tags) >= self.geometry.assoc:
                del tags[next(iter(tags))]  # oldest entry = LRU victim
        tags[tag] = None
        return hit

    def invalidate(self, block_addr: int) -> None:
        """Back-invalidate one block (inclusive-hierarchy support)."""
        self._sets[block_addr & self._set_mask].pop(block_addr >> self._tag_shift, None)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def resident(self, block_addr: int) -> bool:
        """Whether the block is currently cached (no state change)."""
        tags = self._sets[block_addr & self._set_mask]
        return (block_addr >> self._tag_shift) in tags

    def resident_addrs(self) -> Iterator[int]:
        """All currently resident block addresses (no state change).

        Used by the inclusion invariant: in an inclusive hierarchy every
        address yielded here must also be LLC-resident.
        """
        for set_index, tags in enumerate(self._sets):
            for tag in tags:
                yield (tag << self._tag_shift) | set_index

    def resident_blocks(self) -> int:
        """Number of resident blocks across all sets."""
        return sum(len(tags) for tags in self._sets)
