"""Optional private L1 data caches.

The default workload calibration treats each benchmark's stream as the
*post-L1* (LLC-visible) reference stream, so the multicore system runs
without an L1 model. When replaying raw traces (every load/store), enable
per-core L1 filtering via ``MultiCoreSystem(l1_geometry=...)``: hits are
absorbed at L1 cost and never reach the shared LLC — matching Table 2's
private 64 KB L1s in front of the shared L2.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.geometry import CacheGeometry

__all__ = ["L1Cache"]


class L1Cache:
    """A small private LRU cache (tag-only, timing handled by the caller).

    Args:
        geometry: L1 geometry (e.g. the scaled 1 KB 2-way counterpart of
            the paper's 64 KB 2-way L1).
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._set_mask = geometry.num_sets - 1
        self._tag_shift = self._set_mask.bit_length()
        # Per-set tag lists, MRU first.
        self._sets: List[List[int]] = [[] for _ in range(geometry.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, block_addr: int) -> bool:
        """Probe-and-update; returns True on an L1 hit."""
        tags = self._sets[block_addr & self._set_mask]
        tag = block_addr >> self._tag_shift
        try:
            tags.remove(tag)
            hit = True
            self.hits += 1
        except ValueError:
            hit = False
            self.misses += 1
            if len(tags) >= self.geometry.assoc:
                tags.pop()
        tags.insert(0, tag)
        return hit

    def invalidate(self, block_addr: int) -> None:
        """Back-invalidate one block (inclusive-hierarchy support)."""
        tags = self._sets[block_addr & self._set_mask]
        tag = block_addr >> self._tag_shift
        try:
            tags.remove(tag)
        except ValueError:
            pass

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def resident(self, block_addr: int) -> bool:
        """Whether the block is currently cached (no state change)."""
        tags = self._sets[block_addr & self._set_mask]
        return (block_addr >> self._tag_shift) in tags
