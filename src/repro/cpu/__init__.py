"""CPU timing substrate: per-core models, DRAM contention, multicore driver.

The substitution for the paper's M5 out-of-order cores (DESIGN.md §2):
each core is a trace-driven timing model whose CPI decomposes into a base
component, an exposed LLC-hit component, and an exposed miss component
divided by the program's memory-level parallelism. Cores interleave on a
global cycle clock through an event queue, so memory-intensive programs
issue proportionally more LLC accesses per unit time — the rate-matching
that makes shared-cache contention (and the paper's interval statistics)
meaningful.
"""

from repro.cpu.core_model import CoreTimingModel
from repro.cpu.l1 import L1Cache
from repro.cpu.memory import MemoryModel
from repro.cpu.system import CoreResult, MultiCoreSystem, SystemResult, run_standalone

__all__ = [
    "CoreTimingModel",
    "L1Cache",
    "MemoryModel",
    "MultiCoreSystem",
    "SystemResult",
    "CoreResult",
    "run_standalone",
]
