"""Command-line interface: run mixes, compare schemes, regenerate figures.

Installed as ``repro-sim``::

    repro-sim list                                  # schemes/mixes/experiments
    repro-sim run --mix Q7 --scheme prism-h         # one shared run
    repro-sim compare --mix Q7 lru prism-h ucp      # side-by-side
    repro-sim experiment fig7 --csv out/fig7        # a paper figure (+CSV)
    repro-sim campaign run --store sweeps/s1 \\
        --mixes Q1 Q7 --schemes lru prism-h         # resumable sweep
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.common import format_table
from repro.experiments.configs import DEFAULT_INSTRUCTIONS, machine
from repro.experiments.export import export_csv
from repro.experiments.options import RunOptions
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.runner import run_workload
from repro.experiments.schemes import SCHEMES
from repro.workloads.mixes import MIXES, get_mix
from repro.workloads.registry import resolve_workload
from repro.workloads.spec import PROFILES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="PriSM (ISCA 2012) reproduction: shared-cache simulation CLI",
    )
    # Shared by every fan-out subcommand; exported as REPRO_JOBS /
    # REPRO_STORE so the parallel executor is picked up however deep the
    # experiment code sits.
    jobs_parent = argparse.ArgumentParser(add_help=False)
    jobs_parent.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for independent runs (0 = all CPUs; "
        "default: serial, or the REPRO_JOBS environment variable)",
    )
    jobs_parent.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="result-store directory (see docs/campaigns.md): runs already "
        "in the store are not recomputed, new runs persist into it "
        "(default: the REPRO_STORE environment variable)",
    )
    # Hierarchy knobs, shared by run/compare: private L1s + banked DRAM.
    hier_parent = argparse.ArgumentParser(add_help=False)
    hier_parent.add_argument(
        "--l1",
        choices=["inclusive", "non-inclusive"],
        default=None,
        help="put a private L1 in front of each core (inclusive = LLC "
        "evictions back-invalidate the owner's L1); default: LLC-only",
    )
    hier_parent.add_argument(
        "--l1-bytes", type=int, default=None,
        help="unscaled per-core L1 capacity (default 64 KiB, scaled like "
        "the LLC)",
    )
    hier_parent.add_argument(
        "--l1-assoc", type=int, default=2, help="L1 associativity (power of two)"
    )
    hier_parent.add_argument(
        "--dram-banks", type=int, default=1,
        help="DRAM banks per memory controller",
    )
    hier_parent.add_argument(
        "--dram-row-blocks", type=int, default=0,
        help="cache blocks per DRAM row (0 = flat DRAM latency)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list", help="list schemes, mixes, benchmarks, experiments")
    list_p.add_argument(
        "what",
        nargs="?",
        default="all",
        choices=["all", "schemes", "mixes", "benchmarks", "experiments"],
    )

    run_p = sub.add_parser(
        "run", help="run one mix under one scheme", parents=[hier_parent]
    )
    run_p.add_argument("--mix", required=True,
                       help="mix name (e.g. Q7), workload reference "
                       "(e.g. tenants:web8), or comma-separated benchmarks")
    run_p.add_argument("--scheme", default="prism-h", help="scheme registry name")
    run_p.add_argument("--instructions", type=int, default=None)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--scale-factor", type=int, default=64, help="cache scaling divisor")
    run_p.add_argument(
        "--backend",
        choices=["classic", "vector"],
        default="classic",
        help="cache engine (results are certified bit-exact either way; "
        "vector is the numpy batch engine, see docs/simulator.md)",
    )
    run_p.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help="stream the per-interval telemetry trace to PATH "
        "(.csv for CSV, anything else for JSON lines)",
    )
    run_p.add_argument(
        "--check",
        action="store_true",
        help="attach the runtime invariant checker to the shared cache; an "
        "engine inconsistency aborts the run with InvariantViolation "
        "(docs/testing.md)",
    )
    run_p.add_argument(
        "--clusters",
        type=int,
        default=None,
        metavar="N",
        help="shared-data workloads only (--mix shared:...): run PriSM at "
        "cluster granularity, grouping cores into at most N clusters by "
        "miss-curve similarity (docs/simulator.md)",
    )

    cmp_p = sub.add_parser(
        "compare",
        help="run one mix under several schemes (include 'belady' to get "
        "a per-scheme miss gap to the offline optimum)",
        parents=[jobs_parent, hier_parent],
    )
    cmp_p.add_argument("schemes", nargs="+", help="scheme registry names")
    cmp_p.add_argument("--mix", required=True)
    cmp_p.add_argument("--instructions", type=int, default=None)
    cmp_p.add_argument("--seed", type=int, default=0)
    cmp_p.add_argument("--scale-factor", type=int, default=64,
                       help="cache scaling divisor")

    exp_p = sub.add_parser(
        "experiment", help="regenerate a paper figure", parents=[jobs_parent]
    )
    exp_p.add_argument("id", choices=sorted(EXPERIMENTS), help="experiment id")
    exp_p.add_argument("--instructions", type=int, default=None)
    exp_p.add_argument("--csv", default=None, help="also export tables as CSV (path prefix)")
    exp_p.add_argument("--verbose", action="store_true")

    char_p = sub.add_parser(
        "characterize", help="measure a benchmark's miss curve and reuse profile"
    )
    char_p.add_argument("benchmark", help="catalog name (e.g. 179.art)")
    char_p.add_argument("--accesses", type=int, default=30_000)

    report_p = sub.add_parser(
        "report",
        help="regenerate the evaluation into a markdown report",
        parents=[jobs_parent],
    )
    report_p.add_argument("-o", "--output", default="results.md")
    report_p.add_argument("--budget", choices=["micro", "quick", "full"],
                          default="quick")
    report_p.add_argument("--only", nargs="*", default=None)
    report_p.add_argument("--quiet", action="store_true")

    cost_p = sub.add_parser(
        "cost", help="hardware storage overhead per scheme (paper §3.4)"
    )
    cost_p.add_argument("--cores", type=int, default=16, choices=[4, 8, 16, 32])
    cost_p.add_argument("--paper-scale", action="store_true",
                        help="use the unscaled Table-2 cache")
    cost_p.add_argument("--bits", type=int, default=8,
                        help="probability width K for PriSM")

    sweep_p = sub.add_parser(
        "sweep",
        help="sweep one scheme parameter over a mix (ANTT vs LRU)",
        parents=[jobs_parent],
    )
    sweep_p.add_argument("parameter", help="scheme kwarg to sweep "
                         "(e.g. interval_len, probability_bits, sample_shift)")
    sweep_p.add_argument("values", nargs="+", type=int, help="values to try")
    sweep_p.add_argument("--mix", required=True)
    sweep_p.add_argument("--scheme", default="prism-h")
    sweep_p.add_argument("--instructions", type=int, default=None)
    sweep_p.add_argument("--seed", type=int, default=0)

    ten_p = sub.add_parser(
        "tenants",
        help="multi-tenant web-cache scenario: per-tenant SLO scorecard "
        "(docs/tenancy.md)",
        parents=[jobs_parent],
    )
    ten_p.add_argument("--workload", default="web8",
                       help="tenant preset (smoke4, web8) or a full "
                       "tenants:<preset> reference")
    ten_p.add_argument("--schemes", nargs="+", default=None,
                       help="scheme registry names "
                       "(default: lru cliff prism-h prism-f prism-q)")
    ten_p.add_argument("--requests", type=int, default=None,
                       help="total shared request budget "
                       "(default: the machine instruction budget)")
    ten_p.add_argument("--seed", type=int, default=0)
    ten_p.add_argument("--scale-factor", type=int, default=64,
                       help="cache scaling divisor")
    ten_p.add_argument(
        "--backend",
        choices=["classic", "vector"],
        default="classic",
        help="cache engine for every run (results are certified bit-exact "
        "either way)",
    )
    ten_p.add_argument("--json", default=None, metavar="PATH",
                       help="also write the full result dict as JSON")
    ten_p.add_argument("--csv", default=None,
                       help="also export tables as CSV (path prefix)")

    camp_p = sub.add_parser(
        "campaign",
        help="resumable, fault-tolerant experiment sweeps backed by a "
        "content-addressed result store (docs/campaigns.md)",
    )
    camp_sub = camp_p.add_subparsers(dest="campaign_command", required=True)

    camp_store = argparse.ArgumentParser(add_help=False)
    camp_store.add_argument(
        "--store", required=True, metavar="DIR", help="campaign store directory"
    )

    crun_p = camp_sub.add_parser(
        "run", help="run a mixes x schemes x seeds grid (skipping cached runs)",
        parents=[camp_store],
    )
    crun_p.add_argument("--mixes", nargs="+", required=True,
                        help="mix names (must share one core count)")
    crun_p.add_argument("--schemes", nargs="+", required=True,
                        help="scheme registry names")
    crun_p.add_argument("--seeds", nargs="*", type=int, default=[0])
    crun_p.add_argument("--instructions", type=int, default=None)
    crun_p.add_argument("--scale-factor", type=int, default=64)
    crun_p.add_argument("--jobs", type=int, default=None,
                        help="concurrent worker processes (0 = all CPUs)")
    crun_p.add_argument("--retries", type=int, default=1,
                        help="extra fresh-worker attempts per failing spec")
    crun_p.add_argument("--timeout", type=float, default=None,
                        help="per-spec wall-clock limit in seconds")
    crun_p.add_argument("--limit", type=int, default=None,
                        help="execute at most N pending specs this invocation")
    crun_p.add_argument("--telemetry", action="store_true",
                        help="record per-interval traces into the store")
    crun_p.add_argument("--check", action="store_true",
                        help="run every spec with the runtime invariant "
                        "checker attached (failures are not retried)")
    crun_p.add_argument("--quiet", action="store_true")

    camp_sub.add_parser(
        "status", help="summarise a campaign store (exit 0 iff complete)",
        parents=[camp_store],
    )

    cresume_p = camp_sub.add_parser(
        "resume", help="resume an interrupted campaign from its store alone",
        parents=[camp_store],
    )
    cresume_p.add_argument("--jobs", type=int, default=None)
    cresume_p.add_argument("--limit", type=int, default=None)
    cresume_p.add_argument("--quiet", action="store_true")

    cexport_p = camp_sub.add_parser(
        "export", help="export campaign results as CSV, JSONL, or Parquet",
        parents=[camp_store],
    )
    cexport_p.add_argument("-o", "--output", required=True)
    cexport_p.add_argument("--format", choices=["csv", "jsonl", "parquet"],
                           default=None,
                           help="default: by output extension (parquet needs "
                           "pyarrow and falls back loudly to CSV without it)")

    cherd_p = camp_sub.add_parser(
        "herd",
        help="distribute a campaign across a worker fleet "
        "(docs/campaigns.md \"Herd\")",
    )
    cherd_sub = cherd_p.add_subparsers(dest="herd_command", required=True)

    hrun_p = cherd_sub.add_parser(
        "run",
        help="shard pending specs across workers; resumes like campaign run",
        parents=[camp_store],
    )
    hrun_p.add_argument("--mixes", nargs="+", default=None,
                        help="mix names (omit to resume the saved campaign)")
    hrun_p.add_argument("--schemes", nargs="+", default=None,
                        help="scheme registry names (required with --mixes)")
    hrun_p.add_argument("--seeds", nargs="*", type=int, default=[0])
    hrun_p.add_argument("--instructions", type=int, default=None)
    hrun_p.add_argument("--scale-factor", type=int, default=64)
    hrun_p.add_argument("--telemetry", action="store_true",
                        help="record per-interval traces into the store")
    hrun_p.add_argument("--retries", type=int, default=1,
                        help="in-worker attempts per failing spec")
    hrun_p.add_argument("--transport", choices=["local", "ssh", "exec"],
                        default="local",
                        help="local = multiprocessing workers on this "
                        "machine; ssh = one worker per --hosts entry "
                        "running `repro-sim herd worker`; exec = local "
                        "subprocesses over the ssh byte protocol")
    hrun_p.add_argument("--workers", type=int, default=None,
                        help="fleet size for local/exec (default 2; "
                        "ssh uses one worker per host)")
    hrun_p.add_argument("--hosts", nargs="+", default=None,
                        help="ssh hosts (repeat a host for several workers)")
    hrun_p.add_argument("--heartbeat", type=float, default=1.0,
                        help="worker heartbeat cadence in seconds")
    hrun_p.add_argument("--dead-after", type=float, default=15.0,
                        help="heartbeat silence before a worker is declared "
                        "dead and its specs re-shard")
    hrun_p.add_argument("--max-reassign", type=int, default=2,
                        help="times one spec may be re-sharded off dead "
                        "workers before it is recorded as failed")
    hrun_p.add_argument("--quiet", action="store_true")
    # Test hooks (CI chaos smoke): SIGKILL a named worker after it has
    # streamed N results, exercising dead-worker detection end to end.
    hrun_p.add_argument("--chaos-kill-worker", default=None,
                        help=argparse.SUPPRESS)
    hrun_p.add_argument("--chaos-kill-after", type=int, default=1,
                        help=argparse.SUPPRESS)

    hstatus_p = cherd_sub.add_parser(
        "status",
        help="fleet dashboard from the heartbeat log (exit 0 iff complete)",
        parents=[camp_store],
    )
    hstatus_p.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                           help="re-render every SECONDS until complete")

    herd_p = sub.add_parser(
        "herd",
        help="herd worker-side entry points (the controller side lives "
        "under `campaign herd`)",
    )
    herd_sub = herd_p.add_subparsers(dest="herd_top_command", required=True)
    herd_sub.add_parser(
        "worker",
        help="run as a herd worker: shard document on stdin, framed "
        "result records on stdout (launched by the ssh transport)",
    )

    check_p = sub.add_parser(
        "check",
        help="engine self-checks: differential fuzzing against the "
        "reference simulator (docs/testing.md)",
    )
    check_sub = check_p.add_subparsers(dest="check_command", required=True)
    fuzz_p = check_sub.add_parser(
        "fuzz",
        help="run random engine-vs-reference differential cases "
        "(exit 1 on any divergence)",
    )
    fuzz_p.add_argument("--cases", type=int, default=200,
                        help="number of random cases to run")
    fuzz_p.add_argument("--seed", type=int, default=0,
                        help="fuzz-stream seed (same seed = same cases)")
    fuzz_p.add_argument("--schemes", nargs="*", default=None,
                        help="restrict to these schemes "
                        "(default: every reference scheme)")
    fuzz_p.add_argument(
        "--backend",
        choices=["classic", "vector"],
        default="classic",
        help="engine under test: classic compares the object-model engine "
        "against the reference; vector compares the numpy batch engine "
        "against BOTH the classic engine and the reference",
    )
    fuzz_p.add_argument(
        "--sharing",
        action="store_true",
        help="also sweep the shared-ownership and cluster axes: scale-out "
        "core counts, grouped sharing pools, sharer bitmasks and random "
        "cluster maps",
    )
    fuzz_p.add_argument("--quiet", action="store_true")
    return parser


def _run_options(args, progress=None, telemetry=False) -> RunOptions:
    """The one place CLI flags become a RunOptions."""
    return RunOptions(
        instructions=getattr(args, "instructions", None),
        seed=getattr(args, "seed", 0),
        jobs=getattr(args, "jobs", None),
        progress=progress,
        telemetry=telemetry,
        store=getattr(args, "store", None),
        check=getattr(args, "check", False),
        backend=getattr(args, "backend", "classic"),
    )


def _machine_kwargs(args) -> dict:
    """The hierarchy flags of run/compare as machine() keyword arguments."""
    return {
        "scale_factor": getattr(args, "scale_factor", 64),
        "l1": getattr(args, "l1", None),
        "l1_bytes": getattr(args, "l1_bytes", None),
        "l1_assoc": getattr(args, "l1_assoc", 2),
        "dram_banks": getattr(args, "dram_banks", 1),
        "dram_row_blocks": getattr(args, "dram_row_blocks", 0),
    }


def _resolve(mix: str):
    """Mix argument: a registry name, a ``family:spec`` workload reference
    (``tenants:web8``), or comma-separated benchmark names."""
    if "," in mix:
        names = [n.strip() for n in mix.split(",")]
        return names, len(names)
    return mix, resolve_workload(mix).num_cores


def _print_run(result) -> None:
    rows = []
    for core, name in enumerate(result.benchmarks):
        rows.append(
            [
                core,
                name,
                result.standalone[core],
                result.cores[core].ipc,
                result.slowdown(core),
                result.cores[core].misses,
                result.cores[core].occupancy_at_finish,
            ]
        )
    print(format_table(
        ["core", "benchmark", "IPC-alone", "IPC", "slowdown", "misses", "occupancy"],
        rows,
        width=13,
    ))
    print(
        f"\nANTT={result.antt:.4f}  fairness={result.fairness:.4f}  "
        f"throughput={result.throughput:.4f}  intervals={result.intervals}"
    )
    if result.eviction_probabilities:
        print(
            "eviction probabilities:",
            [round(p, 3) for p in result.eviction_probabilities],
        )


def cmd_list(args) -> int:
    if args.what in ("all", "schemes"):
        print("schemes:")
        for name, spec in sorted(SCHEMES.items()):
            print(f"  {name:>16}  {spec.description}")
    if args.what in ("all", "mixes"):
        counts = {}
        for name in MIXES:
            counts.setdefault(name[0], []).append(name)
        print("mixes: " + ", ".join(
            f"{prefix}1-{prefix}{len(names)} ({len(get_mix(names[0]))}-core)"
            for prefix, names in sorted(counts.items())
        ))
        from repro.workloads.tenants import TENANT_PRESETS, get_tenant_workload

        print("tenant workloads: " + ", ".join(
            f"tenants:{name} ({get_tenant_workload(name).num_cores}-tenant)"
            for name in sorted(TENANT_PRESETS)
        ))
    if args.what in ("all", "benchmarks"):
        print("benchmarks:")
        for name, profile in sorted(PROFILES.items()):
            print(f"  {name:>16}  {profile.category:>12}  footprint={profile.footprint()} blocks")
    if args.what in ("all", "experiments"):
        print("experiments:")
        for experiment_id, experiment in sorted(EXPERIMENTS.items()):
            print(f"  {experiment_id:>6}  {experiment.title}")
    return 0


def cmd_run(args) -> int:
    mix, cores = _resolve(args.mix)
    config = machine(cores, **_machine_kwargs(args))
    telemetry = False
    if args.telemetry_out:
        from repro.telemetry import TelemetryRecorder, open_sink

        telemetry = TelemetryRecorder(sink=open_sink(args.telemetry_out))
    options = _run_options(args, telemetry=telemetry)
    start = time.time()
    result = run_workload(
        mix, config, args.scheme, options=options,
        clusters=getattr(args, "clusters", None),
    )
    print(f"machine {config} | scheme {args.scheme} | mix {args.mix}")
    _print_run(result)
    if args.telemetry_out:
        timing = result.telemetry.timing
        print(f"telemetry: {timing.describe()}")
        print(f"wrote {args.telemetry_out}")
    print(f"({time.time() - start:.1f}s)")
    return 0


def cmd_compare(args) -> int:
    from repro.experiments.common import compare_schemes

    mix, cores = _resolve(args.mix)
    config = machine(cores, **_machine_kwargs(args))
    results = compare_schemes(
        [mix] if isinstance(mix, str) else [tuple(mix)],
        config,
        args.schemes,
        seed=args.seed,
        instructions=args.instructions,
        jobs=args.jobs,
    )
    per_scheme = next(iter(results.values()))
    belady = per_scheme.get("belady")
    headers = ["scheme", "ANTT", "fairness", "throughput", "misses"]
    if belady is not None:
        # Miss gap to the offline optimum. Each scheme runs its own seeded
        # stream here; the shared-trace headroom study is `experiment
        # headroom`, which replays every scheme on one recorded trace.
        headers.append("vs-belady")
        optimal_misses = sum(belady.misses())
    rows = []
    for scheme, result in per_scheme.items():
        misses = sum(result.misses())
        row = [scheme, result.antt, result.fairness, result.throughput, misses]
        if belady is not None:
            row.append(misses - optimal_misses)
        rows.append(row)
    print(f"machine {config} | mix {args.mix}")
    print(format_table(headers, rows, width=14))
    return 0


def cmd_experiment(args) -> int:
    experiment = EXPERIMENTS[args.id]
    progress = (lambda msg: print(f"  {msg}", flush=True)) if args.verbose else None
    result = experiment.run(options=_run_options(args, progress=progress))
    print(experiment.format(result))
    if args.csv:
        for path in export_csv(result, args.csv):
            print(f"wrote {path}")
    return 0


def cmd_cost(args) -> int:
    from repro.core.hardware import scheme_costs

    config = machine(args.cores, scale_factor=1 if args.paper_scale else 64)
    costs = scheme_costs(config.geometry, args.cores, probability_bits=args.bits)
    rows = [
        [
            cost.name,
            cost.per_block_bits / 8 / 1024,
            cost.global_bits / 8 / 1024,
            cost.monitor_bits / 8 / 1024,
            cost.total_kib(),
        ]
        for cost in sorted(costs.values(), key=lambda c: c.total_bits)
    ]
    print(f"storage overhead on {config.geometry} with {args.cores} cores (KiB)")
    print(format_table(["scheme", "per-block", "global", "monitors", "total"], rows))
    return 0


def cmd_characterize(args) -> int:
    from repro.workloads.analysis import (
        classify_profile,
        miss_curve,
        reuse_distance_histogram,
    )
    from repro.workloads.spec import get_profile

    profile = get_profile(args.benchmark)
    sizes = [128, 256, 512, 1024, 2048]
    curve = miss_curve(profile, sizes, accesses=args.accesses)
    hist = reuse_distance_histogram(profile, accesses=args.accesses)
    print(f"{profile.name}: declared category {profile.category!r}, "
          f"measured {classify_profile(profile)!r}")
    print(f"footprint {profile.footprint()} blocks | "
          f"{profile.mem_ratio:.3f} LLC accesses/instr | MLP {profile.mlp}")
    print("\nmiss rate vs cache size (blocks):")
    print(format_table(["blocks", "miss-rate"], list(zip(sizes, curve))))
    print("\nreuse-distance histogram:")
    total = sum(hist.values())
    print(format_table(
        ["bucket", "share"], [[k, v / total] for k, v in hist.items()]
    ))
    return 0


def cmd_report(args) -> int:
    from pathlib import Path

    from repro.experiments.report import generate_report

    progress = None if args.quiet else (lambda msg: print(f"  {msg}", flush=True))
    path = generate_report(
        Path(args.output), budget=args.budget, only=args.only, progress=progress
    )
    print(f"wrote {path}")
    return 0


def cmd_sweep(args) -> int:
    mix, cores = _resolve(args.mix)
    config = machine(cores)
    baseline = run_workload(
        mix, config, "lru", seed=args.seed, instructions=args.instructions
    )
    rows = []
    for value in args.values:
        result = run_workload(
            mix,
            config,
            args.scheme,
            seed=args.seed,
            instructions=args.instructions,
            scheme_kwargs={args.parameter: value},
        )
        rows.append([value, result.antt, result.antt / baseline.antt, result.fairness])
    print(f"machine {config} | mix {args.mix} | scheme {args.scheme} | "
          f"sweeping {args.parameter}")
    print(format_table([args.parameter, "ANTT", "vs LRU", "fairness"], rows, width=14))
    return 0


def cmd_tenants(args) -> int:
    from repro.experiments import multi_tenant

    options = RunOptions(
        instructions=args.requests,
        seed=args.seed,
        jobs=args.jobs,
        store=args.store,
    )
    result = multi_tenant.run(
        options=options,
        workload=args.workload,
        schemes=args.schemes or list(multi_tenant.DEFAULT_SCHEMES),
        scale_factor=args.scale_factor,
        backend=args.backend,
    )
    print(multi_tenant.format_result(result))
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if args.csv:
        for path in export_csv(result, args.csv):
            print(f"wrote {path}")
    return 0


def cmd_campaign(args) -> int:
    from repro.campaign.cli import cmd_campaign as handler

    return handler(args)


def cmd_herd(args) -> int:
    from repro.herd.cli import cmd_herd as handler

    return handler(args)


def cmd_check(args) -> int:
    from repro.check.cli import cmd_check as handler

    return handler(args)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command not in ("campaign", "herd"):
        # Exported rather than threaded through every experiment signature:
        # repro.experiments.parallel resolves REPRO_JOBS/REPRO_STORE at
        # fan-out time. (Campaign commands manage their own store/jobs.)
        import os

        if getattr(args, "jobs", None) is not None:
            os.environ["REPRO_JOBS"] = str(args.jobs)
        if getattr(args, "store", None):
            os.environ["REPRO_STORE"] = args.store
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "compare": cmd_compare,
        "experiment": cmd_experiment,
        "sweep": cmd_sweep,
        "tenants": cmd_tenants,
        "cost": cmd_cost,
        "report": cmd_report,
        "characterize": cmd_characterize,
        "campaign": cmd_campaign,
        "herd": cmd_herd,
        "check": cmd_check,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: exit quietly.
        import os

        try:
            sys.stdout.close()
        except Exception:
            pass
        os.dup2(os.open(os.devnull, os.O_WRONLY), 1)
        return 0


if __name__ == "__main__":
    sys.exit(main())
