"""HerdController: one driver, a fleet of workers, zero recomputation.

The controller turns a :class:`~repro.campaign.campaign.Campaign` into a
fleet run:

1. **Recover** — merge any shard stores left by a previous (possibly
   SIGKILLed) herd run into the canonical store, then fingerprint the
   grid and split cached from pending exactly like a serial campaign.
2. **Shard** — partition the pending fingerprints across workers by
   fingerprint hash (:func:`~repro.herd.protocol.shard_specs`):
   deterministic, coordination-free, stable across resumes.
3. **Drive** — launch one worker per shard over the chosen transport and
   consume a single message queue. Results stream back as store-shaped
   records and are written **twice** the moment they land: to the
   worker's shard store (``<store>/herd/shards/<worker>/``) and through
   to the canonical store — so killing the controller *or* any worker at
   any instant loses at most the in-flight specs, never a completed one.
4. **Watch** — every worker heartbeats on a daemon thread (liveness is
   visible even mid-simulation). A worker that exits without ``bye`` or
   misses heartbeats for ``dead_after`` seconds is declared dead: its
   *orphaned* specs (assigned minus streamed-back) are re-sharded to the
   survivors, each at most ``max_reassign`` times before it is recorded
   as a typed failure.
5. **Drain** — SIGINT asks every worker to finish its in-flight spec and
   exit; a second SIGINT aborts. Whatever completed is already durable,
   so a drained herd resumes with zero recomputation.

Every lifecycle event and heartbeat is appended to
``<store>/herd/heartbeats.jsonl`` — the feed behind ``repro-sim
campaign herd status`` and a run-level observability trace.
"""

from __future__ import annotations

import json
import queue
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.campaign.campaign import Campaign, machine_to_dict
from repro.campaign.runner import cache_hit
from repro.campaign.store import STORE_FORMAT, ResultStore, spec_to_dict
from repro.herd.protocol import make_shard_doc, shard_specs
from repro.herd.transport import LocalTransport, SshTransport, Transport, WorkerHandle

__all__ = ["HerdRun", "HerdController", "herd_dir", "shards_dir", "heartbeat_log_path"]

#: Default heartbeat cadence (seconds) — cheap; keep it tight.
DEFAULT_HEARTBEAT = 1.0

#: Default heartbeat-silence threshold before a worker is declared dead.
#: Heartbeats come from a daemon thread, so even a worker deep inside a
#: long simulation keeps beating — silence really does mean trouble.
DEFAULT_DEAD_AFTER = 15.0


def herd_dir(store_root: Path) -> Path:
    return Path(store_root) / "herd"


def shards_dir(store_root: Path) -> Path:
    return herd_dir(store_root) / "shards"


def heartbeat_log_path(store_root: Path) -> Path:
    return herd_dir(store_root) / "heartbeats.jsonl"


@dataclass
class _Worker:
    name: str
    handle: Optional[WorkerHandle] = None
    assigned: Set[str] = field(default_factory=set)  # fingerprints
    completed: Set[str] = field(default_factory=set)
    shard_store: Optional[ResultStore] = None
    last_beat: float = 0.0
    results: int = 0
    failures: int = 0
    state: str = "launched"  # launched|running|idle|bye|dead|closed


@dataclass
class HerdRun:
    """Outcome of one ``HerdController.run`` call."""

    executed: int = 0
    skipped: int = 0
    failed: int = 0
    reassigned: int = 0  # orphaned specs re-sharded off dead workers
    abandoned: int = 0  # orphans past max_reassign, recorded as failures
    remaining: int = 0  # pending specs left (drain, or fleet died)
    drained: bool = False
    dead_workers: List[str] = field(default_factory=list)
    workers: Dict[str, dict] = field(default_factory=dict)

    def describe(self) -> str:
        parts = [f"executed {self.executed}", f"skipped {self.skipped} (cached)"]
        if self.failed:
            parts.append(f"failed {self.failed}")
        if self.dead_workers:
            parts.append(
                f"dead workers {len(self.dead_workers)} "
                f"({', '.join(self.dead_workers)}; {self.reassigned} specs re-sharded)"
            )
        if self.remaining:
            parts.append(f"remaining {self.remaining}")
        if self.drained:
            parts.append("drained")
        return ", ".join(parts)


class HerdController:
    """Drives one campaign across a worker fleet.

    Args:
        campaign: the grid + store to execute.
        transport: worker transport (default :class:`LocalTransport`).
        workers: fleet size for count-based transports (local/exec);
            ssh derives it from the host list. Default: 2.
        heartbeat: worker heartbeat cadence in seconds.
        dead_after: heartbeat silence (seconds) before a worker is
            declared dead and its orphans re-shard.
        retries: in-worker attempts per failing spec (campaign policy).
        max_reassign: times one spec may be re-sharded off dead workers
            before it is recorded as failed.
        progress: optional ``callable(str)`` for per-event lines.
        chaos_kill_worker / chaos_kill_after: test hook — SIGKILL the
            named worker after it has streamed N results, exercising the
            dead-worker path deterministically (used by CI).
    """

    def __init__(
        self,
        campaign: Campaign,
        transport: Optional[Transport] = None,
        workers: Optional[int] = None,
        heartbeat: float = DEFAULT_HEARTBEAT,
        dead_after: float = DEFAULT_DEAD_AFTER,
        max_reassign: int = 2,
        progress=None,
        chaos_kill_worker: Optional[str] = None,
        chaos_kill_after: int = 1,
    ) -> None:
        self.campaign = campaign
        self.transport = transport if transport is not None else LocalTransport()
        self.workers = workers
        self.heartbeat = heartbeat
        self.dead_after = dead_after
        self.max_reassign = max_reassign
        self.progress = progress
        self.chaos_kill_worker = chaos_kill_worker
        self.chaos_kill_after = chaos_kill_after
        self._drain = threading.Event()

    # -- small helpers -------------------------------------------------------

    def _say(self, text: str) -> None:
        if self.progress:
            self.progress(text)

    def request_drain(self) -> None:
        """Ask the fleet to finish in-flight specs and stop (SIGINT path)."""
        self._drain.set()

    def _worker_names(self) -> List[str]:
        if isinstance(self.transport, SshTransport):
            return self.transport.worker_names()
        count = self.workers if self.workers else 2
        return [f"{self.transport.name}-{i}" for i in range(count)]

    def recover_shards(self) -> int:
        """Merge leftover shard stores into the canonical store.

        Makes a herd whose *controller* was SIGKILLed resumable: every
        record a worker streamed back before the kill is already in its
        shard store, so nothing completed is ever recomputed.
        """
        store = self.campaign.store
        root = shards_dir(store.root)
        merged = 0
        if root.is_dir():
            for shard_path in sorted(root.iterdir()):
                if (shard_path / ResultStore.RECORDS_NAME).exists():
                    merged += store.merge(ResultStore(shard_path))
        return merged

    # -- the run -------------------------------------------------------------

    def run(self) -> HerdRun:
        campaign = self.campaign
        campaign.save()
        recovered = self.recover_shards()
        if recovered:
            self._say(f"recovered {recovered} records from shard stores")

        runner = campaign.runner()
        pending: Dict[str, object] = {}
        cached = 0
        seen: Set[str] = set()
        for spec in campaign.specs:
            fp = runner.fingerprint(spec)
            if fp in seen:
                continue
            seen.add(fp)
            if cache_hit(campaign.store, fp, spec) is not None:
                cached += 1
            else:
                pending[fp] = spec
        run = HerdRun(skipped=cached)
        if not pending:
            return run

        names = self._worker_names()
        pending_fps = list(pending)
        shards = shard_specs(pending_fps, len(names))

        events_path = heartbeat_log_path(campaign.store.root)
        events_path.parent.mkdir(parents=True, exist_ok=True)
        events_fh = open(events_path, "w")
        events_lock = threading.Lock()

        def log_event(event: str, **payload) -> None:
            record = {"event": event, "ts": time.time()}
            record.update(payload)
            with events_lock:
                events_fh.write(json.dumps(record) + "\n")
                events_fh.flush()

        inbox: "queue.Queue" = queue.Queue()
        fleet: Dict[str, _Worker] = {}
        reassign_counts: Dict[str, int] = {}
        remaining: Set[str] = set(pending_fps)
        abandoned: Set[str] = set()
        machine_doc = machine_to_dict(campaign.config)
        fin_sent = False

        def entries_for(fps: List[str]) -> List[dict]:
            return [
                {"fingerprint": fp, "spec": spec_to_dict(pending[fp])} for fp in fps
            ]

        def launch(name: str, fps: List[str]) -> None:
            worker = _Worker(name=name, assigned=set(fps))
            worker.shard_store = ResultStore(shards_dir(campaign.store.root) / name)
            doc = make_shard_doc(
                name,
                machine_doc,
                entries_for(fps),
                heartbeat=self.heartbeat,
                retries=campaign.retries,
            )
            worker.handle = self.transport.launch(
                name, doc, lambda w, m: inbox.put((w, m))
            )
            worker.last_beat = time.monotonic()
            fleet[name] = worker
            log_event(
                "launch", worker=name, assigned=len(fps),
                heartbeat=self.heartbeat, transport=self.transport.name,
            )
            self._say(f"launched {name} with {len(fps)} specs")

        for name, shard in zip(names, shards):
            if shard:
                launch(name, [pending_fps[i] for i in shard])

        def live_workers() -> List[_Worker]:
            return [w for w in fleet.values() if w.state in ("launched", "running", "idle")]

        def record_abandoned(fp: str, worker_name: str) -> None:
            """An orphan past its reassignment budget becomes a failure."""
            abandoned.add(fp)
            remaining.discard(fp)
            run.abandoned += 1
            run.failed += 1
            record = {
                "record": "failure",
                "format": STORE_FORMAT,
                "fingerprint": fp,
                "spec": spec_to_dict(pending[fp]),
                "failure": {
                    "error_type": "WorkerDied",
                    "message": (
                        f"assigned worker(s) died {reassign_counts.get(fp, 0) + 1} "
                        f"times (last: {worker_name}); giving up"
                    ),
                    "traceback": "",
                    "attempts": reassign_counts.get(fp, 0) + 1,
                    "timed_out": False,
                },
            }
            campaign.store.append_raw(record)

        def reassign_orphans(dead: _Worker) -> None:
            orphans = sorted(dead.assigned - dead.completed)
            if not orphans:
                return
            survivors = live_workers()
            for fp in orphans:
                count = reassign_counts.get(fp, 0) + 1
                reassign_counts[fp] = count
                if count > self.max_reassign or not survivors:
                    record_abandoned(fp, dead.name)
                    continue
                target = survivors[run.reassigned % len(survivors)]
                target.assigned.add(fp)
                target.handle.send({"type": "assign", "specs": entries_for([fp])})
                run.reassigned += 1
                log_event("reassign", worker=dead.name, to=target.name, fingerprint=fp)
                self._say(f"re-sharded {fp[:12]} from {dead.name} to {target.name}")

        def mark_dead(worker: _Worker, why: str) -> None:
            if worker.state in ("dead", "closed", "bye"):
                return
            worker.state = "dead"
            run.dead_workers.append(worker.name)
            log_event("dead", worker=worker.name, why=why)
            self._say(f"worker {worker.name} died ({why})")
            try:
                worker.handle.kill()
            except Exception:
                pass
            reassign_orphans(worker)

        def handle_message(name: str, message: dict) -> None:
            nonlocal fin_sent
            worker = fleet.get(name)
            if worker is None:
                return
            kind = message.get("type")
            if kind == "hello":
                worker.state = "running"
                worker.last_beat = time.monotonic()
                log_event("hello", worker=name, host=message.get("host"),
                          pid=message.get("pid"), assigned=message.get("assigned"))
            elif kind == "heartbeat":
                worker.last_beat = time.monotonic()
                log_event("heartbeat", worker=name, done=message.get("done"),
                          failed=message.get("failed"), total=message.get("total"),
                          current=message.get("current"), worker_ts=message.get("ts"))
            elif kind in ("result", "failure"):
                record = message["data"]
                fp = record["fingerprint"]
                worker.completed.add(fp)
                remaining.discard(fp)
                # Twice on purpose: the shard store is the worker's
                # durable ledger (merged on recovery), the write-through
                # keeps the canonical store live for status/resume.
                worker.shard_store.append_raw(record)
                campaign.store.append_raw(record)
                if kind == "result":
                    worker.results += 1
                    run.executed += 1
                    wall = record.get("meta", {}).get("wall_seconds")
                    self._say(
                        f"[{run.executed}/{len(pending_fps)}] {name}: "
                        f"{fp[:12]} done"
                        + (f" ({wall:.1f}s)" if wall is not None else "")
                    )
                else:
                    worker.failures += 1
                    run.failed += 1
                    failure = record.get("failure", {})
                    self._say(
                        f"FAILED on {name}: {fp[:12]} "
                        f"{failure.get('error_type')}: {failure.get('message')}"
                    )
                if (
                    self.chaos_kill_worker == name
                    and worker.results >= self.chaos_kill_after
                    and worker.state not in ("dead", "closed")
                    and worker.handle.alive()
                ):
                    # Test hook: a real SIGKILL, then the normal
                    # exit-detection path takes over.
                    log_event("chaos-kill", worker=name)
                    self._say(f"chaos: SIGKILLing {name}")
                    worker.handle.kill()
            elif kind == "idle":
                worker.state = "idle"
                worker.last_beat = time.monotonic()
            elif kind == "bye":
                worker.state = "bye"
                log_event("bye", worker=name, done=message.get("done"),
                          failed=message.get("failed"),
                          drained=message.get("drained"))
            elif kind == "exit":
                was = worker.state
                if was == "bye":
                    worker.state = "closed"
                    log_event("exit", worker=name, code=message.get("code"))
                else:
                    log_event("exit", worker=name, code=message.get("code"))
                    mark_dead(worker, f"exited with code {message.get('code')} before bye")
                    worker.state = "closed"
            elif kind == "log":
                log_event("log", worker=name, text=message.get("text"))
                self._say(f"{name}: {message.get('text')}")

        drain_announced = False
        try:
            while any(w.state != "closed" for w in fleet.values()):
                try:
                    name, message = inbox.get(timeout=0.2)
                except queue.Empty:
                    pass
                else:
                    handle_message(name, message)

                now = time.monotonic()
                for worker in list(fleet.values()):
                    if worker.state in ("launched", "running", "idle") and (
                        now - worker.last_beat > self.dead_after
                    ):
                        mark_dead(worker, f"no heartbeat for {self.dead_after:g}s")

                if self._drain.is_set() and not drain_announced:
                    drain_announced = True
                    run.drained = True
                    log_event("drain")
                    self._say("draining: workers finish their in-flight spec")
                    for worker in live_workers():
                        worker.handle.send({"type": "drain"})

                if not remaining and not fin_sent and not drain_announced:
                    fin_sent = True
                    log_event("fin")
                    for worker in live_workers():
                        worker.handle.send({"type": "fin"})
        finally:
            for worker in fleet.values():
                if worker.handle is not None and worker.handle.alive():
                    worker.handle.kill()
            for worker in fleet.values():
                if worker.handle is not None:
                    worker.handle.join(timeout=5)
            # Final safety net: fold every shard into the canonical store
            # (a write-through may have been lost if the controller was
            # interrupted between the two appends).
            for worker in fleet.values():
                if worker.shard_store is not None:
                    campaign.store.merge(worker.shard_store)
            run.remaining = len(remaining)
            run.workers = {
                w.name: {
                    "state": w.state,
                    "assigned": len(w.assigned),
                    "results": w.results,
                    "failures": w.failures,
                }
                for w in fleet.values()
            }
            log_event(
                "summary",
                executed=run.executed, skipped=run.skipped, failed=run.failed,
                remaining=run.remaining, reassigned=run.reassigned,
                abandoned=run.abandoned, drained=run.drained,
                dead_workers=run.dead_workers,
                workers=run.workers,
            )
            events_fh.close()
        return run

    def run_with_sigint_drain(self) -> HerdRun:
        """``run()`` with SIGINT mapped to graceful drain (CLI entry).

        First Ctrl-C drains (in-flight specs finish, everything durable);
        second Ctrl-C raises ``KeyboardInterrupt`` as usual.
        """
        if threading.current_thread() is not threading.main_thread():
            return self.run()
        previous = signal.getsignal(signal.SIGINT)
        state = {"hits": 0}

        def on_sigint(signum, frame):
            state["hits"] += 1
            if state["hits"] == 1:
                self.request_drain()
            else:
                raise KeyboardInterrupt

        signal.signal(signal.SIGINT, on_sigint)
        try:
            return self.run()
        finally:
            signal.signal(signal.SIGINT, previous)
