"""The herd worker loop: run a shard of specs, stream records back.

The loop is transport-agnostic: it talks to the controller through a
``send(message_dict)`` callable and a ``queue.Queue`` of inbound control
messages, both provided by the transport layer (a ``multiprocessing``
pipe for the local transport, framed stdio for ssh). The worker

- executes its assigned specs **serially, in-process** — fleet
  parallelism comes from running many workers, and a worker crash costs
  only its in-flight spec because every completed spec was already
  streamed to the controller;
- emits a ``heartbeat`` message every ``heartbeat`` seconds from a
  daemon thread, so liveness is observable even mid-simulation;
- retries a failing spec up to ``retries`` extra times (deterministic
  :data:`~repro.campaign.executor.NON_RETRYABLE_ERRORS` break early,
  matching the campaign executor's policy);
- ships each outcome as a **store-shaped record** — the exact dict the
  controller appends to the worker's shard store with ``append_raw``;
- honours ``assign`` (re-sharded orphans), ``drain`` (finish the
  in-flight spec, exit) and ``fin`` (exit once the queue is empty).
"""

from __future__ import annotations

import os
import queue
import socket
import sys
import threading
import time
import traceback
from typing import Callable, List, Optional

from repro.campaign.executor import NON_RETRYABLE_ERRORS
from repro.campaign.store import STORE_FORMAT, result_to_dict
from repro.experiments.runner import run_workload
from repro.herd.protocol import check_shard_doc

__all__ = ["worker_loop", "stdio_worker_main"]


class _Progress:
    """Shared done/current state read by the heartbeat thread."""

    def __init__(self, total: int) -> None:
        self.total = total
        self.done = 0
        self.failed = 0
        self.current: Optional[str] = None


def _heartbeat_thread(
    send: Callable[[dict], None],
    worker: str,
    progress: _Progress,
    interval: float,
    stop: threading.Event,
) -> threading.Thread:
    def beat() -> None:
        while not stop.wait(interval):
            send(
                {
                    "type": "heartbeat",
                    "worker": worker,
                    "ts": time.time(),
                    "done": progress.done,
                    "failed": progress.failed,
                    "total": progress.total,
                    "current": progress.current,
                }
            )

    thread = threading.Thread(target=beat, name=f"herd-heartbeat-{worker}", daemon=True)
    thread.start()
    return thread


def _run_entry(entry: dict, machine_doc: dict, retries: int) -> dict:
    """Execute one shard entry; returns a store-shaped record dict."""
    from repro.campaign.campaign import machine_from_dict
    from repro.campaign.store import spec_from_dict

    spec = spec_from_dict(entry["spec"])
    config = machine_from_dict(machine_doc)
    fingerprint = entry["fingerprint"]
    error_type = message = tb = ""
    attempts = 0
    for attempt in range(1, retries + 2):
        attempts = attempt
        start = time.perf_counter()
        try:
            result = run_workload(
                spec.mix,
                config,
                spec.scheme,
                seed=spec.seed,
                instructions=spec.instructions,
                scheme_kwargs=spec.scheme_kwargs,
                telemetry=spec.telemetry,
                check=spec.check,
            )
        except Exception as exc:
            error_type = type(exc).__name__
            message = str(exc)
            tb = traceback.format_exc()
            if error_type in NON_RETRYABLE_ERRORS:
                break
            continue
        return {
            "record": "result",
            "format": STORE_FORMAT,
            "fingerprint": fingerprint,
            "spec": entry["spec"],
            "meta": {
                "wall_seconds": time.perf_counter() - start,
                "host": socket.gethostname(),
                "repro_version": _repro_version(),
                "created_at": time.time(),
            },
            "result": result_to_dict(result),
        }
    return {
        "record": "failure",
        "format": STORE_FORMAT,
        "fingerprint": fingerprint,
        "spec": entry["spec"],
        "failure": {
            "error_type": error_type,
            "message": message,
            "traceback": tb,
            "attempts": attempts,
            "timed_out": False,
        },
    }


def _repro_version() -> str:
    from repro import __version__

    return __version__


def worker_loop(
    shard_doc: dict,
    send: Callable[[dict], None],
    control: "queue.Queue",
) -> int:
    """Run one worker to completion; returns specs completed.

    ``send`` must be thread-safe (the heartbeat thread uses it too);
    ``control`` receives controller messages (``assign``/``drain``/
    ``fin``) from the transport's reader.
    """
    doc = check_shard_doc(shard_doc)
    worker = doc["worker"]
    retries = int(doc.get("retries", 0))
    heartbeat = float(doc["heartbeat"])
    work: List[dict] = list(doc["specs"])
    progress = _Progress(total=len(work))

    send(
        {
            "type": "hello",
            "worker": worker,
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "assigned": len(work),
        }
    )
    stop = threading.Event()
    _heartbeat_thread(send, worker, progress, heartbeat, stop)

    draining = finished = False
    announced_idle = False
    try:
        while True:
            # Soak up whatever control arrived while simulating.
            while True:
                try:
                    message = control.get_nowait()
                except queue.Empty:
                    break
                kind = message.get("type")
                if kind == "assign":
                    work.extend(message["specs"])
                    progress.total += len(message["specs"])
                    announced_idle = False
                elif kind == "drain":
                    draining = True
                elif kind == "fin":
                    finished = True
            if draining or (finished and not work):
                break
            if not work:
                if not announced_idle:
                    send({"type": "idle", "worker": worker, "done": progress.done})
                    announced_idle = True
                # Block briefly for more work / fin / drain.
                try:
                    message = control.get(timeout=0.2)
                except queue.Empty:
                    continue
                control.put(message)  # handled by the soak loop above
                continue
            entry = work.pop(0)
            progress.current = entry["fingerprint"][:12]
            record = _run_entry(entry, doc["machine"], retries)
            if record["record"] == "result":
                progress.done += 1
            else:
                progress.failed += 1
            progress.current = None
            send({"type": record["record"], "worker": worker, "data": record})
    finally:
        stop.set()
    send(
        {
            "type": "bye",
            "worker": worker,
            "done": progress.done,
            "failed": progress.failed,
            "drained": draining and bool(work),
        }
    )
    return progress.done


def stdio_worker_main(stdin=None, stdout=None) -> int:
    """``repro-sim herd worker``: the stdio (ssh) worker entry point.

    Reads the shard document as the first stdin line, then treats every
    further stdin line as a framed control message; all protocol output
    is framed onto stdout. Returns a process exit code.
    """
    import json

    from repro.herd.protocol import frame, unframe

    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout

    header = stdin.readline()
    if not header.strip():
        print("herd worker: no shard document on stdin", file=sys.stderr)
        return 2
    shard_doc = json.loads(header)

    write_lock = threading.Lock()

    def send(message: dict) -> None:
        with write_lock:
            stdout.write(frame(message) + "\n")
            stdout.flush()

    control: "queue.Queue" = queue.Queue()

    def read_control() -> None:
        for line in stdin:
            message = unframe(line)
            if message is not None:
                control.put(message)
        # EOF on stdin: the controller is gone; drain so the in-flight
        # spec still completes and the bye message flushes.
        control.put({"type": "drain"})

    threading.Thread(target=read_control, name="herd-stdin", daemon=True).start()
    worker_loop(shard_doc, send, control)
    return 0
