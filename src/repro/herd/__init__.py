"""Herd mode: one controller fanning a campaign out over a worker fleet.

The campaign subsystem (:mod:`repro.campaign`) made sweeps
content-addressed, resumable, and fault-isolated on one machine; this
package distributes them. A :class:`HerdController` shards a campaign's
*pending* fingerprints across workers over a pluggable transport —

- :class:`~repro.herd.transport.LocalTransport`: ``multiprocessing``
  worker loops on this machine (the CI-testable default);
- :class:`~repro.herd.transport.SshTransport`: stdlib-subprocess ssh
  workers running ``repro-sim herd worker``, shard in via stdin, results
  streamed back as framed lines on stdout;

— with per-worker heartbeats, dead-worker detection and bounded
re-sharding of orphaned specs, graceful drain on SIGINT, and per-worker
shard stores that :meth:`~repro.campaign.store.ResultStore.merge` folds
into the canonical store. The acceptance bar, proven in CI: **zero
recomputed fingerprints across the fleet**, including after a worker is
SIGKILLed mid-sweep.

See ``docs/campaigns.md`` ("Herd") for the architecture sketch,
transport matrix and failure semantics.
"""

from repro.herd.controller import HerdController, HerdRun
from repro.herd.protocol import FRAME_PREFIX, frame, shard_index, shard_specs, unframe
from repro.herd.status import HerdStatus, WorkerStatus, herd_status, render_status
from repro.herd.transport import (
    ExecTransport,
    LocalTransport,
    SshTransport,
    Transport,
    resolve_transport,
)
from repro.herd.worker import worker_loop

__all__ = [
    "HerdController",
    "HerdRun",
    "HerdStatus",
    "WorkerStatus",
    "herd_status",
    "render_status",
    "Transport",
    "LocalTransport",
    "ExecTransport",
    "SshTransport",
    "resolve_transport",
    "worker_loop",
    "frame",
    "unframe",
    "FRAME_PREFIX",
    "shard_index",
    "shard_specs",
]
