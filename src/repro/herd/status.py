"""The herd status view: fleet health rendered from the heartbeat log.

``repro-sim campaign herd status --store DIR`` reads two sources:

- ``<store>/herd/heartbeats.jsonl`` — the controller's event feed
  (launches, hellos, heartbeats, deaths, reassignments, the final
  summary). Written fresh by each ``herd run``, it is both the live
  dashboard's data source and an after-the-fact observability trace of
  the run.
- the canonical store via :meth:`Campaign.status` — completed/failed/
  pending counts plus the store-derived throughput and ETA (the same
  columns ``repro-sim campaign status`` shows).

The view is a plain table so it works over ssh and in CI logs; pass
``--watch N`` on the CLI to re-render every N seconds.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.herd.controller import heartbeat_log_path

__all__ = ["WorkerStatus", "HerdStatus", "read_events", "herd_status", "render_status"]


@dataclass
class WorkerStatus:
    """Last known state of one worker, folded from the event feed."""

    name: str
    state: str = "launched"
    assigned: int = 0
    done: int = 0
    failed: int = 0
    total: int = 0
    current: Optional[str] = None
    first_beat: Optional[float] = None
    last_beat: Optional[float] = None
    first_done: int = 0

    @property
    def specs_per_min(self) -> Optional[float]:
        """Throughput from heartbeat progress deltas."""
        if (
            self.first_beat is None
            or self.last_beat is None
            or self.last_beat <= self.first_beat
            or self.done <= self.first_done
        ):
            return None
        return (self.done - self.first_done) / (self.last_beat - self.first_beat) * 60.0

    def age(self, now: Optional[float] = None) -> Optional[float]:
        if self.last_beat is None:
            return None
        return (now if now is not None else time.time()) - self.last_beat


@dataclass
class HerdStatus:
    """Fleet snapshot: per-worker rows plus run-level aggregates."""

    workers: List[WorkerStatus] = field(default_factory=list)
    heartbeat: float = 1.0
    transport: str = "local"
    summary: Optional[dict] = None  # the run's final summary event, if over
    reassigned: int = 0
    dead: List[str] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.summary is not None

    def orphaned(self) -> int:
        return self.reassigned

    def live_state(self, worker: WorkerStatus, now: Optional[float] = None) -> str:
        """live/stale/dead/done for the dashboard's state column."""
        if worker.state in ("bye", "closed"):
            return "done"
        if worker.state == "dead":
            return "dead"
        age = worker.age(now)
        if age is None:
            return worker.state
        return "live" if age < max(3 * self.heartbeat, 5.0) else "stale"


def read_events(store_root) -> List[dict]:
    """The heartbeat log's events (torn trailing line tolerated)."""
    path = heartbeat_log_path(Path(store_root))
    events: List[dict] = []
    if not path.exists():
        return events
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return events


def herd_status(store_root) -> HerdStatus:
    """Fold the event feed into a :class:`HerdStatus`."""
    status = HerdStatus()
    workers: Dict[str, WorkerStatus] = {}

    def worker(name: str) -> WorkerStatus:
        if name not in workers:
            workers[name] = WorkerStatus(name=name)
        return workers[name]

    for event in read_events(store_root):
        kind = event.get("event")
        name = event.get("worker")
        if kind == "launch":
            w = worker(name)
            w.assigned = event.get("assigned", 0)
            w.total = w.assigned
            status.heartbeat = event.get("heartbeat", status.heartbeat)
            status.transport = event.get("transport", status.transport)
        elif kind == "hello":
            worker(name).state = "running"
        elif kind == "heartbeat":
            w = worker(name)
            ts = event.get("ts")
            if w.first_beat is None:
                w.first_beat = ts
                w.first_done = event.get("done") or 0
            w.last_beat = ts
            w.done = event.get("done") or 0
            w.failed = event.get("failed") or 0
            w.total = event.get("total") or w.total
            w.current = event.get("current")
        elif kind == "reassign":
            status.reassigned += 1
            worker(event.get("to")).assigned += 1
            worker(event.get("to")).total += 1
        elif kind == "dead":
            worker(name).state = "dead"
            status.dead.append(name)
        elif kind == "bye":
            w = worker(name)
            w.state = "bye"
            if event.get("done") is not None:
                w.done = event["done"]
            if event.get("failed") is not None:
                w.failed = event["failed"]
        elif kind == "exit":
            w = worker(name)
            if w.state == "bye":
                w.state = "closed"
        elif kind == "summary":
            status.summary = event
    status.workers = sorted(workers.values(), key=lambda w: w.name)
    return status


def render_status(store_root, campaign_status=None, now: Optional[float] = None) -> str:
    """The dashboard as text: one row per worker, then the aggregates.

    ``campaign_status`` is an optional
    :class:`~repro.campaign.campaign.CampaignStatus` carrying the
    store-side completed/pending/throughput/ETA columns.
    """
    from repro.experiments.common import format_table

    status = herd_status(store_root)
    if not status.workers:
        return f"no herd has run against this store (no {heartbeat_log_path(Path(store_root))})"
    now = now if now is not None else time.time()
    rows = []
    for w in status.workers:
        rate = w.specs_per_min
        age = w.age(now)
        rows.append(
            [
                w.name,
                status.live_state(w, now),
                f"{w.done}/{w.total}",
                w.failed,
                f"{rate:.1f}" if rate is not None else "-",
                f"{age:.0f}s" if age is not None else "-",
                (w.current or "-"),
            ]
        )
    lines = [
        format_table(
            ["worker", "state", "done", "failed", "specs/min", "beat-age", "current"],
            rows,
            width=11,
        )
    ]
    lines.append(f"transport: {status.transport}  heartbeat: {status.heartbeat:g}s")
    if status.dead:
        lines.append(
            f"dead workers: {', '.join(status.dead)} "
            f"({status.reassigned} specs re-sharded)"
        )
    if status.summary is not None:
        s = status.summary
        lines.append(
            "run finished: "
            f"executed {s.get('executed')}, skipped {s.get('skipped')} (cached), "
            f"failed {s.get('failed')}, remaining {s.get('remaining')}"
            + (" [drained]" if s.get("drained") else "")
        )
    if campaign_status is not None:
        lines.append(f"store: {campaign_status.describe()}")
    return "\n".join(lines)
