"""Pluggable worker transports: how the controller reaches its fleet.

A transport knows how to *launch* one worker with a shard document and
wire its message stream back to the controller. Every transport delivers
inbound traffic through a single callback — ``deliver(worker_name,
message_dict)`` — from a per-worker daemon reader thread, and reports a
worker's death as a synthetic ``{"type": "exit", "code": ...}`` message,
so the controller's event loop is one queue regardless of transport.

Built-ins:

- :class:`LocalTransport` — ``multiprocessing`` worker processes on this
  machine, messages over a duplex pipe. The CI-testable default: no
  network, no install assumptions, survives ``SIGKILL`` of any worker.
- :class:`ExecTransport` — workers as arbitrary subprocesses speaking
  the framed-stdio protocol (``repro-sim herd worker``). Exists on its
  own for tests (it exercises the exact byte stream ssh uses) and as the
  base for:
- :class:`SshTransport` — ``ExecTransport`` with an ``ssh host ...``
  argv prefix, all stdlib. The remote end needs nothing but an installed
  ``repro-sim``; shards travel over stdin, records come back framed on
  stdout, stderr lands in ``<store>/herd/logs/``.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from repro.herd.protocol import frame, unframe

__all__ = [
    "WorkerHandle",
    "Transport",
    "LocalTransport",
    "ExecTransport",
    "SshTransport",
    "resolve_transport",
]

Deliver = Callable[[str, dict], None]


class WorkerHandle:
    """Controller-side handle on one launched worker."""

    def __init__(self, name: str) -> None:
        self.name = name

    def alive(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def send(self, message: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def kill(self) -> None:  # pragma: no cover - interface
        """Hard-kill (SIGKILL); used for dead/hung workers and chaos tests."""
        raise NotImplementedError

    def join(self, timeout: Optional[float] = None) -> None:  # pragma: no cover
        raise NotImplementedError


class Transport:
    """Launches workers; see module docstring for the contract."""

    name = "base"

    def launch(
        self, worker: str, shard_doc: dict, deliver: Deliver
    ) -> WorkerHandle:  # pragma: no cover - interface
        raise NotImplementedError


# -- local: multiprocessing -------------------------------------------------


def _local_child_main(conn, shard_doc: dict) -> None:
    """Child-process entry for the local transport."""
    import queue as queue_module

    from repro.herd.worker import worker_loop

    send_lock = threading.Lock()

    def send(message: dict) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):  # controller died: stop quietly
                pass

    control: "queue_module.Queue" = queue_module.Queue()

    def read_control() -> None:
        while True:
            try:
                control.put(conn.recv())
            except (EOFError, OSError):
                control.put({"type": "drain"})
                return

    threading.Thread(target=read_control, daemon=True).start()
    worker_loop(shard_doc, send, control)


class _LocalHandle(WorkerHandle):
    def __init__(self, name: str, process, conn) -> None:
        super().__init__(name)
        self.process = process
        self.conn = conn
        self._send_lock = threading.Lock()

    def alive(self) -> bool:
        return self.process.is_alive()

    def send(self, message: dict) -> None:
        with self._send_lock:
            try:
                self.conn.send(message)
            except (BrokenPipeError, OSError):
                pass

    def kill(self) -> None:
        self.process.kill()

    def join(self, timeout: Optional[float] = None) -> None:
        self.process.join(timeout)


class LocalTransport(Transport):
    """Worker loops as ``multiprocessing`` children of the controller."""

    name = "local"

    def launch(self, worker: str, shard_doc: dict, deliver: Deliver) -> WorkerHandle:
        from repro.experiments.parallel import _pool_context

        ctx = _pool_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_local_child_main, args=(child_conn, shard_doc), daemon=True
        )
        process.start()
        child_conn.close()

        def read() -> None:
            # The pipe hitting EOF means the child exited (cleanly after
            # ``bye``, or abruptly on SIGKILL) — surface it either way.
            while True:
                try:
                    message = parent_conn.recv()
                except (EOFError, OSError):
                    break
                deliver(worker, message)
            process.join()
            deliver(worker, {"type": "exit", "worker": worker, "code": process.exitcode})

        threading.Thread(target=read, name=f"herd-read-{worker}", daemon=True).start()
        return _LocalHandle(worker, process, parent_conn)


# -- stdio subprocess (ssh and friends) -------------------------------------


class _ExecHandle(WorkerHandle):
    def __init__(self, name: str, process: subprocess.Popen) -> None:
        super().__init__(name)
        self.process = process
        self._send_lock = threading.Lock()

    def alive(self) -> bool:
        return self.process.poll() is None

    def send(self, message: dict) -> None:
        with self._send_lock:
            try:
                self.process.stdin.write(frame(message) + "\n")
                self.process.stdin.flush()
            except (BrokenPipeError, OSError, ValueError):
                pass

    def kill(self) -> None:
        self.process.kill()

    def join(self, timeout: Optional[float] = None) -> None:
        try:
            self.process.wait(timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - defensive
            pass


class ExecTransport(Transport):
    """Workers as subprocesses speaking framed stdio.

    ``argv`` is the full worker command (e.g. ``["repro-sim", "herd",
    "worker"]`` or ``[sys.executable, "-m", "repro.cli", "herd",
    "worker"]``). The shard document is written as the first stdin line;
    stderr goes to ``log_dir/<worker>.stderr.log`` when a log directory
    is given, else is inherited.
    """

    name = "exec"

    def __init__(self, argv: Sequence[str], log_dir: Optional[Path] = None) -> None:
        self.argv = list(argv)
        self.log_dir = Path(log_dir) if log_dir is not None else None

    def argv_for(self, worker: str) -> List[str]:
        return list(self.argv)

    def launch(self, worker: str, shard_doc: dict, deliver: Deliver) -> WorkerHandle:
        stderr = None
        if self.log_dir is not None:
            self.log_dir.mkdir(parents=True, exist_ok=True)
            stderr = open(self.log_dir / f"{worker}.stderr.log", "a")
        process = subprocess.Popen(
            self.argv_for(worker),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=stderr,
            text=True,
            bufsize=1,  # line-buffered: one frame per line
        )
        if stderr is not None:
            stderr.close()  # the child holds its own copy
        process.stdin.write(json.dumps(shard_doc, separators=(",", ":")) + "\n")
        process.stdin.flush()

        def read() -> None:
            for line in process.stdout:
                message = unframe(line)
                if message is None:
                    text = line.rstrip()
                    if text:
                        deliver(worker, {"type": "log", "worker": worker, "text": text})
                    continue
                deliver(worker, message)
            code = process.wait()
            deliver(worker, {"type": "exit", "worker": worker, "code": code})

        threading.Thread(target=read, name=f"herd-read-{worker}", daemon=True).start()
        return _ExecHandle(worker, process)


class SshTransport(ExecTransport):
    """``ExecTransport`` over ``ssh``: one worker per remote host.

    The hosts run ``remote_command`` (default ``repro-sim herd worker``)
    via a non-interactive ssh session. Worker names *are* the host names
    (``host#2`` when a host is listed twice to get two workers on it).
    """

    name = "ssh"

    def __init__(
        self,
        hosts: Sequence[str],
        remote_command: str = "repro-sim herd worker",
        ssh_command: Sequence[str] = ("ssh", "-o", "BatchMode=yes"),
        log_dir: Optional[Path] = None,
    ) -> None:
        super().__init__([], log_dir=log_dir)
        self.hosts = list(hosts)
        self.remote_command = remote_command
        self.ssh_command = list(ssh_command)
        self._host_for: dict = {}
        counts: dict = {}
        for host in self.hosts:
            counts[host] = counts.get(host, 0) + 1
            name = host if counts[host] == 1 else f"{host}#{counts[host]}"
            self._host_for[name] = host

    def worker_names(self) -> List[str]:
        return list(self._host_for)

    def argv_for(self, worker: str) -> List[str]:
        host = self._host_for.get(worker, worker)
        return self.ssh_command + [host, self.remote_command]


def resolve_transport(
    kind: str,
    hosts: Optional[Sequence[str]] = None,
    log_dir: Optional[Path] = None,
) -> Transport:
    """Build a transport from CLI-ish arguments.

    ``local`` ignores ``hosts``; ``ssh`` requires them; ``exec`` runs
    ``python -m repro.cli herd worker`` subprocesses on this machine —
    the ssh byte stream without the ssh (used by tests and useful for
    debugging framing issues).
    """
    if kind == "local":
        return LocalTransport()
    if kind == "ssh":
        if not hosts:
            raise ValueError("ssh transport needs --hosts")
        return SshTransport(hosts, log_dir=log_dir)
    if kind == "exec":
        return ExecTransport(
            [sys.executable, "-m", "repro.cli", "herd", "worker"], log_dir=log_dir
        )
    raise ValueError(f"unknown transport {kind!r} (expected local, ssh, or exec)")
