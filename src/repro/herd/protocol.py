"""The herd wire protocol: shard documents, messages, and line framing.

One controller drives N workers. Everything a worker needs arrives in a
single **shard document** (machine config, its spec slice with
pre-computed fingerprints, heartbeat cadence); everything it produces
flows back as a stream of **messages** — plain JSON dicts discriminated
by ``type``:

========== ==========  =================================================
direction  type        meaning
========== ==========  =================================================
worker →   hello       worker is up (pid, host, assigned count)
worker →   heartbeat   liveness + progress (done, total, current spec)
worker →   result      one completed spec, as a store-shaped record
worker →   failure     one exhausted spec, as a store-shaped record
worker →   idle        queue empty, waiting for more work or ``fin``
worker →   bye         clean exit (after ``fin`` or ``drain``)
worker →   log         free-form text worth surfacing
→ worker   assign      more specs (re-sharded orphans of a dead worker)
→ worker   drain       finish the in-flight spec, then exit
→ worker   fin         no more work will come: exit once idle
========== ==========  =================================================

``result``/``failure`` messages carry the *exact* record dict the
:class:`~repro.campaign.store.ResultStore` log holds, so the controller
ingests them with ``append_raw`` — no deserialise/re-serialise round
trip, and a herd store is line-for-line the store a serial run writes
(modulo record order and provenance metadata).

Framing: stdio transports (ssh) write one message per line, prefixed
with :data:`FRAME_PREFIX`, onto the worker's stdout. Anything *without*
the prefix (a stray ``print``, an ssh banner) is passed through as
worker log output instead of corrupting the stream. The local transport
ships the same dicts over a ``multiprocessing`` pipe and never frames.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

__all__ = [
    "PROTOCOL_FORMAT",
    "FRAME_PREFIX",
    "frame",
    "unframe",
    "shard_index",
    "shard_specs",
    "make_shard_doc",
    "check_shard_doc",
]

#: Shard-document / message schema version (checked by the worker).
PROTOCOL_FORMAT = 1

#: Line prefix that marks a protocol message on a stdio stream.
FRAME_PREFIX = "@repro-herd "


def frame(message: dict) -> str:
    """One message as a single framed line (no trailing newline)."""
    return FRAME_PREFIX + json.dumps(message, separators=(",", ":"))


def unframe(line: str) -> Optional[dict]:
    """Decode a framed line; ``None`` for non-protocol output.

    A line that *claims* the prefix but does not parse is also ``None``
    (treated as log noise) — a torn final line from a SIGKILLed worker
    must not take the controller down.
    """
    line = line.strip()
    if not line.startswith(FRAME_PREFIX):
        return None
    try:
        message = json.loads(line[len(FRAME_PREFIX):])
    except json.JSONDecodeError:
        return None
    return message if isinstance(message, dict) else None


def shard_index(fingerprint: str, num_shards: int) -> int:
    """Deterministic shard for one fingerprint (stable across runs).

    Uses the fingerprint's leading hex digits, so the same pending spec
    always lands on the same shard for a given worker count — re-running
    an interrupted herd re-shards identically, and the assignment needs
    no coordination state.
    """
    return int(fingerprint[:16], 16) % num_shards


def shard_specs(
    fingerprints: Sequence[str], num_shards: int
) -> List[List[int]]:
    """Partition spec indices into shards by fingerprint hash.

    Returns ``num_shards`` lists of indices into ``fingerprints``; some
    may be empty for tiny grids (the controller skips launching workers
    for empty shards).
    """
    shards: List[List[int]] = [[] for _ in range(num_shards)]
    for index, fp in enumerate(fingerprints):
        shards[shard_index(fp, num_shards)].append(index)
    return shards


def make_shard_doc(
    worker: str,
    machine: dict,
    entries: List[dict],
    heartbeat: float,
    retries: int,
) -> dict:
    """The launch document for one worker.

    ``entries`` pair each spec dict with its controller-computed
    fingerprint (``{"fingerprint": ..., "spec": ...}``) so worker and
    controller can never disagree about a spec's content address.
    """
    return {
        "format": PROTOCOL_FORMAT,
        "worker": worker,
        "machine": machine,
        "specs": entries,
        "heartbeat": heartbeat,
        "retries": retries,
    }


def check_shard_doc(doc: dict) -> Dict:
    """Validate a shard document, raising ``ValueError`` on mismatch."""
    if not isinstance(doc, dict) or doc.get("format") != PROTOCOL_FORMAT:
        raise ValueError(
            f"herd shard document format {doc.get('format') if isinstance(doc, dict) else doc!r} "
            f"!= {PROTOCOL_FORMAT} (controller and worker versions differ?)"
        )
    for key in ("worker", "machine", "specs", "heartbeat"):
        if key not in doc:
            raise ValueError(f"herd shard document missing {key!r}")
    return doc
