"""Handlers for ``repro-sim herd worker`` and ``repro-sim campaign herd``.

Parser wiring lives in :mod:`repro.cli`; these handlers import the herd
machinery lazily so ``repro-sim run`` never pays for it.
"""

from __future__ import annotations

import argparse
import time

__all__ = ["cmd_herd", "cmd_campaign_herd"]


def cmd_herd_worker(args) -> int:
    from repro.herd.worker import stdio_worker_main

    return stdio_worker_main()


def _herd_campaign(args):
    """The campaign for ``herd run``: a fresh grid, or the saved manifest."""
    from repro.campaign.campaign import Campaign
    from repro.campaign.cli import _grid_machine

    if args.mixes:
        return Campaign.grid(
            args.store,
            _grid_machine(args),
            mixes=args.mixes,
            schemes=args.schemes,
            seeds=args.seeds,
            telemetry=args.telemetry,
            retries=args.retries,
        )
    return Campaign.load(args.store)


def cmd_herd_run(args) -> int:
    from repro.herd.controller import HerdController
    from repro.herd.transport import resolve_transport

    if args.mixes and not args.schemes:
        raise SystemExit("campaign herd run: --schemes is required with --mixes")
    campaign = _herd_campaign(args)
    from repro.herd.controller import herd_dir

    transport = resolve_transport(
        args.transport,
        hosts=args.hosts,
        log_dir=herd_dir(campaign.store.root) / "logs",
    )
    controller = HerdController(
        campaign,
        transport=transport,
        workers=args.workers,
        heartbeat=args.heartbeat,
        dead_after=args.dead_after,
        max_reassign=args.max_reassign,
        progress=None if args.quiet else (lambda msg: print(f"  {msg}", flush=True)),
        chaos_kill_worker=args.chaos_kill_worker,
        chaos_kill_after=args.chaos_kill_after,
    )
    run = controller.run_with_sigint_drain()
    print(run.describe())
    print(f"store: {campaign.store.root} ({campaign.status().describe()})")
    return 1 if (run.failed or run.remaining) else 0


def cmd_herd_status(args) -> int:
    from repro.campaign.campaign import Campaign
    from repro.herd.status import render_status

    def render_once() -> int:
        campaign_status = None
        try:
            campaign_status = Campaign.load(args.store).status()
        except FileNotFoundError:
            pass
        print(render_status(args.store, campaign_status=campaign_status))
        if campaign_status is not None and campaign_status.done:
            return 0
        return 1

    if not args.watch:
        return render_once()
    try:
        while True:
            print(f"--- {time.strftime('%H:%M:%S')} ---")
            code = render_once()
            if code == 0:
                return 0
            time.sleep(args.watch)
    except KeyboardInterrupt:
        return 0


_CAMPAIGN_HERD_HANDLERS = {
    "run": cmd_herd_run,
    "status": cmd_herd_status,
}


def cmd_campaign_herd(args: argparse.Namespace) -> int:
    return _CAMPAIGN_HERD_HANDLERS[args.herd_command](args)


_HERD_HANDLERS = {
    "worker": cmd_herd_worker,
}


def cmd_herd(args: argparse.Namespace) -> int:
    return _HERD_HANDLERS[args.herd_top_command](args)
