"""repro — a full reproduction of PriSM: Probabilistic Shared Cache
Management (Manikantan, Rajan, Govindarajan; ISCA 2012).

Quick start::

    from repro import machine, run_workload

    config = machine(4)                       # scaled 4-core, 16-way LLC
    lru = run_workload("Q7", config, "lru")
    prism = run_workload("Q7", config, "prism-h")
    print(prism.antt / lru.antt)              # < 1: PriSM-H beats LRU

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.core` — the PriSM framework (Eq. 1, the probabilistic
  manager, PriSM-H/F/Q allocation policies),
- :mod:`repro.cache` — the set-associative cache substrate and baseline
  replacement policies,
- :mod:`repro.partitioning` — UCP, PIPP, way-partitioning, Vantage,
  TA-DIP comparison schemes,
- :mod:`repro.workloads` — synthetic SPEC-like benchmarks and mixes,
- :mod:`repro.cpu` — timing model and multicore driver,
- :mod:`repro.metrics` — ANTT, fairness, throughput,
- :mod:`repro.experiments` — machine configs, runner, per-figure
  reproductions.
"""

from repro.cache import CacheGeometry, SharedCache
from repro.core import (
    FairnessPolicy,
    HitMaxPolicy,
    PrismScheme,
    ProbabilisticCacheManager,
    QOSPolicy,
    derive_eviction_probabilities,
)
from repro.cpu import MultiCoreSystem, run_standalone
from repro.experiments import RunOptions, machine, run_workload
from repro.telemetry import RunTelemetry, TelemetryRecorder
from repro.workloads import get_mix, get_profile

__version__ = "1.0.0"

__all__ = [
    "CacheGeometry",
    "SharedCache",
    "PrismScheme",
    "ProbabilisticCacheManager",
    "HitMaxPolicy",
    "FairnessPolicy",
    "QOSPolicy",
    "derive_eviction_probabilities",
    "MultiCoreSystem",
    "run_standalone",
    "machine",
    "run_workload",
    "RunOptions",
    "TelemetryRecorder",
    "RunTelemetry",
    "get_mix",
    "get_profile",
    "__version__",
]
