"""Fault-isolated spec execution: one process per attempt, typed failures.

The plain pool in :mod:`repro.experiments.parallel` is built for the happy
path — any worker exception aborts the whole grid (now at least wrapped
with the failing spec's context, see
:class:`~repro.experiments.parallel.SpecRunError`). Campaigns need the
opposite contract: one bad spec must not cost the other thousand. This
module executes each attempt in its *own* child process, so

- an exception inside a run becomes a typed :class:`SpecError` on that
  spec's outcome while every other spec keeps running;
- a hung run is killed at ``timeout`` seconds (the child holds no state
  anyone needs — results only exist once they arrive over the pipe);
- a retry really is a *fresh worker*: new process, no poisoned
  interpreter state from the failed attempt.

Determinism is unaffected: a run's outcome depends only on its spec (see
:mod:`repro.experiments.parallel`), so isolated results are field-for-field
equal to pool or serial results. The price is that per-worker memo warmth
(the stand-alone IPC cache) only carries *into* children via fork, not
between them — campaigns trade a little throughput for survivability.

When ``jobs`` resolves to 1 and no timeout is requested, specs run
in-process (exceptions are still caught per spec; only a hard crash of
the driver itself is fatal, and the campaign store makes that resumable).
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.experiments.configs import MachineConfig
from repro.experiments.parallel import RunSpec, _pool_context, resolve_jobs
from repro.experiments.runner import WorkloadResult, run_workload

__all__ = ["SpecError", "SpecOutcome", "iter_isolated", "run_isolated"]

#: Error types that identify a *deterministic* failure: the run would fail
#: identically in a fresh process, so retrying only burns attempts. An
#: InvariantViolation (repro.check) means the engine's internal state went
#: inconsistent — a bug to report, not a flake to retry.
NON_RETRYABLE_ERRORS = ("InvariantViolation",)


@dataclass(frozen=True)
class SpecError:
    """Why one attempt (or a whole spec, after retries) failed."""

    error_type: str
    message: str
    traceback: str = ""
    timed_out: bool = False


@dataclass(frozen=True)
class SpecOutcome:
    """Terminal state of one spec: a result, or the last attempt's error."""

    index: int
    spec: RunSpec
    result: Optional[WorkloadResult]
    error: Optional[SpecError]
    attempts: int
    wall_seconds: float

    @property
    def ok(self) -> bool:
        return self.result is not None


def _run_one(spec: RunSpec, config: MachineConfig) -> WorkloadResult:
    return run_workload(
        spec.mix,
        config,
        spec.scheme,
        seed=spec.seed,
        instructions=spec.instructions,
        scheme_kwargs=spec.scheme_kwargs,
        telemetry=spec.telemetry,
        check=spec.check,
    )


def _child_main(conn, spec: RunSpec, config: MachineConfig) -> None:
    """Child-process entry: run the spec, ship the outcome over the pipe."""
    start = time.perf_counter()
    try:
        result = _run_one(spec, config)
        conn.send(("ok", result, time.perf_counter() - start))
    except BaseException as exc:  # everything, incl. KeyError/SystemExit
        conn.send(
            (
                "error",
                type(exc).__name__,
                str(exc),
                traceback.format_exc(),
                time.perf_counter() - start,
            )
        )
    finally:
        conn.close()


@dataclass
class _Attempt:
    index: int
    spec: RunSpec
    attempt: int  # 1-based
    process: object
    conn: object
    deadline: Optional[float]
    started: float


def iter_isolated(
    specs: Sequence[RunSpec],
    config: MachineConfig,
    jobs: Optional[int] = None,
    retries: int = 0,
    timeout: Optional[float] = None,
) -> Iterator[SpecOutcome]:
    """Execute specs with per-spec fault isolation, yielding as they finish.

    Args:
        specs: runs to execute.
        config: machine shared by every run.
        jobs: concurrent attempt processes (same resolution rules as
            :func:`~repro.experiments.parallel.resolve_jobs`).
        retries: extra attempts after a failed one, each in a fresh
            process (``0`` = one attempt total).
        timeout: per-attempt wall-clock limit in seconds; a timed-out
            child is SIGKILLed and the attempt counts as failed.

    Yields:
        One :class:`SpecOutcome` per spec, in completion order.
        ``wall_seconds`` covers the successful (or last) attempt only.
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    if not specs:
        return
    if jobs <= 1 and timeout is None:
        yield from _iter_in_process(specs, config, retries)
        return

    from multiprocessing.connection import wait as conn_wait

    ctx = _pool_context()
    pending = [(index, spec, 1) for index, spec in enumerate(specs)]
    pending.reverse()  # pop() from the front of the original order
    running: List[_Attempt] = []

    def launch(index: int, spec: RunSpec, attempt: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_child_main, args=(child_conn, spec, config), daemon=True
        )
        process.start()
        child_conn.close()
        now = time.monotonic()
        running.append(
            _Attempt(
                index=index,
                spec=spec,
                attempt=attempt,
                process=process,
                conn=parent_conn,
                deadline=(now + timeout) if timeout is not None else None,
                started=now,
            )
        )

    def finish(attempt: _Attempt, payload, timed_out: bool = False):
        """Turn one attempt's payload (or lack of one) into error/result."""
        running.remove(attempt)
        attempt.conn.close()
        attempt.process.join()
        if timed_out:
            return None, SpecError(
                error_type="Timeout",
                message=f"exceeded {timeout:g}s wall-clock limit",
                timed_out=True,
            ), time.monotonic() - attempt.started
        if payload is None:  # died without sending (crash/SIGKILL)
            code = attempt.process.exitcode
            return None, SpecError(
                error_type="WorkerCrash",
                message=f"worker exited with code {code} before reporting",
            ), time.monotonic() - attempt.started
        if payload[0] == "ok":
            _, result, elapsed = payload
            return result, None, elapsed
        _, error_type, message, tb, elapsed = payload
        return None, SpecError(error_type=error_type, message=message, traceback=tb), elapsed

    try:
        while pending or running:
            while pending and len(running) < jobs:
                index, spec, attempt = pending.pop()
                launch(index, spec, attempt)

            now = time.monotonic()
            poll: Optional[float] = None
            if timeout is not None:
                nearest = min(a.deadline for a in running)
                poll = max(0.0, nearest - now)
            ready = conn_wait([a.conn for a in running], timeout=poll)

            finished = []
            for attempt in list(running):
                if attempt.conn in ready:
                    try:
                        payload = attempt.conn.recv()
                    except (EOFError, OSError):
                        payload = None
                    finished.append((attempt, payload, False))
                elif attempt.deadline is not None and time.monotonic() >= attempt.deadline:
                    attempt.process.kill()
                    finished.append((attempt, None, True))

            for attempt, payload, timed_out in finished:
                result, error, elapsed = finish(attempt, payload, timed_out)
                if result is not None:
                    yield SpecOutcome(
                        index=attempt.index,
                        spec=attempt.spec,
                        result=result,
                        error=None,
                        attempts=attempt.attempt,
                        wall_seconds=elapsed,
                    )
                elif (
                    attempt.attempt <= retries
                    and error.error_type not in NON_RETRYABLE_ERRORS
                ):
                    pending.append((attempt.index, attempt.spec, attempt.attempt + 1))
                else:
                    yield SpecOutcome(
                        index=attempt.index,
                        spec=attempt.spec,
                        result=None,
                        error=error,
                        attempts=attempt.attempt,
                        wall_seconds=elapsed,
                    )
    finally:
        for attempt in running:
            attempt.process.kill()
            attempt.conn.close()
        for attempt in running:
            attempt.process.join()


def _iter_in_process(
    specs: Sequence[RunSpec], config: MachineConfig, retries: int
) -> Iterator[SpecOutcome]:
    """Serial fallback: same outcomes, exceptions caught per attempt."""
    for index, spec in enumerate(specs):
        error: Optional[SpecError] = None
        elapsed = 0.0
        attempts = 0
        outcome: Optional[SpecOutcome] = None
        for attempt in range(1, retries + 2):
            attempts = attempt
            start = time.perf_counter()
            try:
                result = _run_one(spec, config)
            except Exception as exc:
                elapsed = time.perf_counter() - start
                error = SpecError(
                    error_type=type(exc).__name__,
                    message=str(exc),
                    traceback=traceback.format_exc(),
                )
                if error.error_type in NON_RETRYABLE_ERRORS:
                    break  # deterministic failure: retrying cannot help
                continue
            outcome = SpecOutcome(
                index=index,
                spec=spec,
                result=result,
                error=None,
                attempts=attempt,
                wall_seconds=time.perf_counter() - start,
            )
            break
        if outcome is None:
            outcome = SpecOutcome(
                index=index,
                spec=spec,
                result=None,
                error=error,
                attempts=attempts,
                wall_seconds=elapsed,
            )
        yield outcome


def run_isolated(
    specs: Sequence[RunSpec],
    config: MachineConfig,
    jobs: Optional[int] = None,
    retries: int = 0,
    timeout: Optional[float] = None,
) -> List[SpecOutcome]:
    """Like :func:`iter_isolated` but collected, ordered by spec index."""
    outcomes = sorted(
        iter_isolated(specs, config, jobs=jobs, retries=retries, timeout=timeout),
        key=lambda o: o.index,
    )
    return outcomes
