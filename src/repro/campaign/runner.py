"""CampaignRunner: the store-aware, fault-tolerant layer over spec grids.

``run(specs)`` is the one verb: fingerprint every spec, skip the ones the
:class:`~repro.campaign.store.ResultStore` already holds, execute the rest
with per-spec isolation (:mod:`repro.campaign.executor`), and persist each
outcome — result or typed :class:`~repro.campaign.store.FailedRun` — the
moment it lands. Because persistence is incremental, killing the driver at
any point loses at most the in-flight specs; calling ``run`` again resumes
and executes exactly the remainder.

The same skip-by-fingerprint cache is available *without* the fault
tolerance through ``run_specs(..., store=...)`` (or the ``REPRO_STORE``
environment variable) — that path keeps ``run_specs``'s raise-on-error
contract and is what the figure experiments ride on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.campaign.executor import iter_isolated
from repro.campaign.fingerprint import spec_fingerprint
from repro.campaign.store import FailedRun, ResultStore
from repro.experiments.configs import MachineConfig
from repro.experiments.parallel import RunSpec, resolve_jobs
from repro.experiments.runner import WorkloadResult

__all__ = ["CampaignRun", "CampaignRunner", "cache_hit"]

Progress = Optional[Callable[[str], None]]


def cache_hit(store: ResultStore, fingerprint: str, spec: RunSpec) -> Optional[WorkloadResult]:
    """The stored result for ``spec``, or ``None`` if it must (re)run.

    A stored result only satisfies a spec that asked for telemetry if a
    trace was actually recorded — otherwise the spec re-runs and the
    richer result supersedes the stored one (last record wins).
    """
    result = store.get(fingerprint)
    if result is None:
        return None
    if spec.telemetry and result.telemetry is None:
        return None
    return result


@dataclass
class CampaignRun:
    """Outcome of one ``CampaignRunner.run`` call.

    ``results`` aligns with the input specs (``None`` where the spec
    failed); the executed/skipped/failed counters are over *unique*
    fingerprints — duplicate specs in a grid execute once.
    """

    results: List[Optional[WorkloadResult]]
    failures: List[FailedRun] = field(default_factory=list)
    executed: int = 0
    skipped: int = 0
    remaining: int = 0  # pending specs not attempted (hit the ``limit``)

    @property
    def failed(self) -> int:
        return len(self.failures)

    def describe(self) -> str:
        parts = [f"executed {self.executed}", f"skipped {self.skipped} (cached)"]
        if self.failed:
            parts.append(f"failed {self.failed}")
        if self.remaining:
            parts.append(f"remaining {self.remaining}")
        return ", ".join(parts)


class CampaignRunner:
    """Executes spec grids against a result store.

    Args:
        store: a :class:`ResultStore` or a path to create/open one.
        config: machine shared by every spec.
        jobs: concurrent worker processes (``None`` consults
            ``REPRO_JOBS``, like every other ``jobs=`` in the repo).
        retries: extra fresh-worker attempts per failing spec.
        timeout: per-attempt wall-clock limit in seconds (``None`` = no
            limit; enforced with one process per attempt).
    """

    def __init__(
        self,
        store: Union[ResultStore, str],
        config: MachineConfig,
        jobs: Optional[int] = None,
        retries: int = 1,
        timeout: Optional[float] = None,
    ) -> None:
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.config = config
        self.jobs = jobs
        self.retries = retries
        self.timeout = timeout

    def fingerprint(self, spec: RunSpec) -> str:
        return spec_fingerprint(spec, self.config)

    def run(
        self,
        specs: Sequence[RunSpec],
        progress: Progress = None,
        limit: Optional[int] = None,
    ) -> CampaignRun:
        """Execute every spec not already in the store.

        Args:
            specs: the grid (duplicates are deduplicated by fingerprint).
            progress: optional ``callable(str)`` invoked per completion.
            limit: execute at most this many pending specs this call
                (the rest stay pending for the next ``run``/resume).

        Returns:
            A :class:`CampaignRun`; ``results[i]`` corresponds to
            ``specs[i]`` and is ``None`` only if that spec failed (its
            :class:`FailedRun` is in ``failures`` and in the store).
        """
        specs = list(specs)
        fingerprints = [self.fingerprint(spec) for spec in specs]
        cached: Dict[str, WorkloadResult] = {}
        pending: Dict[str, RunSpec] = {}
        for spec, fp in zip(specs, fingerprints):
            if fp in cached or fp in pending:
                continue
            hit = cache_hit(self.store, fp, spec)
            if hit is not None:
                cached[fp] = hit
            else:
                pending[fp] = spec

        pending_items = list(pending.items())
        remaining = 0
        if limit is not None and limit < len(pending_items):
            remaining = len(pending_items) - limit
            pending_items = pending_items[:limit]

        executed: Dict[str, WorkloadResult] = {}
        failures: Dict[str, FailedRun] = {}
        if pending_items:
            run_fps = [fp for fp, _ in pending_items]
            run_specs_ = [spec for _, spec in pending_items]
            done = 0
            for outcome in iter_isolated(
                run_specs_,
                self.config,
                jobs=self.jobs,
                retries=self.retries,
                timeout=self.timeout,
            ):
                fp = run_fps[outcome.index]
                done += 1
                if outcome.ok:
                    self.store.add_result(
                        fp, outcome.spec, outcome.result,
                        wall_seconds=outcome.wall_seconds,
                    )
                    executed[fp] = outcome.result
                    if progress:
                        progress(
                            f"[{done}/{len(pending_items)}] {outcome.spec.describe()} "
                            f"({outcome.wall_seconds:.1f}s)"
                        )
                else:
                    failure = FailedRun(
                        fingerprint=fp,
                        spec=outcome.spec,
                        error_type=outcome.error.error_type,
                        message=outcome.error.message,
                        traceback=outcome.error.traceback,
                        attempts=outcome.attempts,
                        timed_out=outcome.error.timed_out,
                    )
                    self.store.add_failure(failure)
                    failures[fp] = failure
                    if progress:
                        progress(f"[{done}/{len(pending_items)}] FAILED {failure.describe()}")

        merged = {**cached, **executed}
        results = [merged.get(fp) for fp in fingerprints]
        return CampaignRun(
            results=results,
            failures=list(failures.values()),
            executed=len(executed),
            skipped=len(cached),
            remaining=remaining,
        )

    def resolve_jobs(self) -> int:
        return resolve_jobs(self.jobs)
