"""`repro-sim campaign` subcommand handlers.

Parser wiring lives in :mod:`repro.cli` (one place builds the whole CLI);
this module holds the handlers so the campaign machinery only imports when
a campaign command actually runs.
"""

from __future__ import annotations

import argparse

from repro.campaign.campaign import Campaign
from repro.experiments.common import format_table
from repro.experiments.configs import machine
from repro.workloads.registry import resolve_workload

__all__ = ["cmd_campaign"]


def _grid_machine(args):
    """The machine for a campaign grid, with core count from the mixes."""
    core_counts = {mix: resolve_workload(mix).num_cores for mix in args.mixes}
    counts = set(core_counts.values())
    if len(counts) > 1:
        raise SystemExit(
            f"campaign mixes must share one core count, got {core_counts}"
        )
    return machine(
        counts.pop(),
        scale_factor=args.scale_factor,
        instructions=args.instructions,
    )


def _print_run(campaign: Campaign, run) -> None:
    print(run.describe())
    rows = []
    for spec, result in zip(campaign.specs, run.results):
        if result is None:
            continue
        rows.append(
            [spec.mix, spec.scheme, spec.seed, result.antt, result.fairness,
             result.throughput]
        )
    if rows:
        print(format_table(
            ["mix", "scheme", "seed", "ANTT", "fairness", "throughput"], rows
        ))
    for failure in run.failures:
        print(f"FAILED: {failure.describe()}")
    print(f"store: {campaign.store.root} ({campaign.status().describe()})")


def cmd_campaign_run(args) -> int:
    campaign = Campaign.grid(
        args.store,
        _grid_machine(args),
        mixes=args.mixes,
        schemes=args.schemes,
        seeds=args.seeds,
        telemetry=args.telemetry,
        check=args.check,
        retries=args.retries,
        timeout=args.timeout,
    )
    progress = None if args.quiet else (lambda msg: print(f"  {msg}", flush=True))
    run = campaign.run(jobs=args.jobs, progress=progress, limit=args.limit)
    _print_run(campaign, run)
    return 1 if run.failures else 0


def cmd_campaign_status(args) -> int:
    campaign = Campaign.load(args.store)
    status = campaign.status()
    print(f"campaign: {campaign.store.root}")
    print(f"machine:  {campaign.config}")
    print(f"specs:    {len(campaign.specs)} ({status.total} unique)")
    print(f"status:   {status.describe()}")
    for failure in campaign.failures():
        print(f"  FAILED: {failure.describe()}")
    return 0 if status.done else 1


def cmd_campaign_resume(args) -> int:
    campaign = Campaign.load(args.store)
    progress = None if args.quiet else (lambda msg: print(f"  {msg}", flush=True))
    run = campaign.run(jobs=args.jobs, progress=progress, limit=args.limit)
    _print_run(campaign, run)
    return 1 if run.failures else 0


def cmd_campaign_export(args) -> int:
    campaign = Campaign.load(args.store)
    path = campaign.export(args.output, fmt=args.format)
    print(f"wrote {path}")
    return 0


def cmd_campaign_herd(args) -> int:
    from repro.herd.cli import cmd_campaign_herd as handler

    return handler(args)


_HANDLERS = {
    "run": cmd_campaign_run,
    "status": cmd_campaign_status,
    "resume": cmd_campaign_resume,
    "export": cmd_campaign_export,
    "herd": cmd_campaign_herd,
}


def cmd_campaign(args: argparse.Namespace) -> int:
    return _HANDLERS[args.campaign_command](args)
