"""Canonical spec fingerprints: the content address of one workload run.

A fingerprint is a stable SHA-256 over everything a
:class:`~repro.experiments.parallel.RunSpec`'s *outcome* depends on —
(mix, scheme, scheme_kwargs, seed, effective instructions, machine) —
and over nothing else. The simulator is deterministic per spec (see
:mod:`repro.experiments.parallel`), so two specs with equal fingerprints
produce field-for-field equal :class:`~repro.experiments.runner.WorkloadResult`s,
which is what lets the :class:`~repro.campaign.store.ResultStore` treat a
fingerprint as a cache key across processes, hosts, and repo checkouts.

Canonicalisation rules (see ``docs/campaigns.md`` for the stability
guarantee):

- ``instructions`` is resolved to its *effective* value
  (``spec.instructions or config.instructions``), so a spec that spells
  out the machine default hashes identically to one that leaves it
  ``None`` — exactly the pairs :func:`~repro.experiments.runner.run_workload`
  cannot distinguish.
- The machine contributes only fields the run reads: core count,
  geometry, controller count, workload scale, the private-L1 hierarchy
  (geometry + inclusion mode) and the DRAM bank/row configuration. Its
  default instruction budget is *not* hashed separately (it is already
  folded into the effective instructions).
- ``spec.telemetry`` is excluded: recording a trace observes a run, it
  does not change it.
- ``spec.backend`` is excluded: the classic and vector engines are
  certified bit-exact (``repro-sim check fuzz --backend vector``), so a
  stored result satisfies a spec under either backend.
- The payload is versioned; :data:`FINGERPRINT_VERSION` bumps whenever a
  rule above changes, invalidating old stores loudly rather than
  silently colliding.
"""

from __future__ import annotations

import hashlib
import json
from typing import Union

from repro.experiments.configs import MachineConfig
from repro.experiments.parallel import RunSpec
from repro.workloads.registry import WorkloadSource, resolve_workload

__all__ = ["FINGERPRINT_VERSION", "canonical_payload", "spec_fingerprint"]

#: Bump when the canonicalisation rules change (old fingerprints must not
#: collide with new ones). v2: the machine payload grew the cache
#: hierarchy (private L1, inclusion mode) and DRAM bank/row fields, and
#: the DRAM service-occupancy timing fix changed results for otherwise
#: identical specs — so every v1 digest had to be invalidated anyway.
#: v3: the payload grew ``clusters`` (cluster-granular management changes
#: results, so it must key the store).
FINGERPRINT_VERSION = 3


def _canonical_mix(mix) -> Union[str, list, dict]:
    """A mix argument as hashable JSON.

    Plain mix names stay bare strings and benchmark lists stay name lists
    (byte-compatible with every fingerprint ever written); ``family:spec``
    references and :class:`~repro.workloads.registry.WorkloadSource`
    objects hash their full workload *identity* payload, so a result is
    keyed by what the trace generator actually produces, not by the
    reference that named it.
    """
    if isinstance(mix, WorkloadSource):
        return mix.identity()
    if isinstance(mix, str):
        if ":" in mix:
            return resolve_workload(mix).identity()
        return mix
    names = []
    for item in mix:
        names.append(item if isinstance(item, str) else getattr(item, "name", str(item)))
    return names


def canonical_payload(spec: RunSpec, config: MachineConfig) -> dict:
    """The exact JSON object that gets hashed (exposed for tests/docs)."""
    return {
        "version": FINGERPRINT_VERSION,
        "mix": _canonical_mix(spec.mix),
        "scheme": spec.scheme,
        "scheme_kwargs": dict(spec.scheme_kwargs) if spec.scheme_kwargs else None,
        "seed": spec.seed,
        "instructions": (
            spec.instructions if spec.instructions is not None else config.instructions
        ),
        "clusters": getattr(spec, "clusters", None),
        "machine": {
            "num_cores": config.num_cores,
            "geometry": _geometry_payload(config.geometry),
            "num_controllers": config.num_controllers,
            "workload_scale": config.workload_scale,
            "l1_geometry": _geometry_payload(config.l1_geometry),
            "l1_inclusive": config.l1_inclusive,
            "dram_banks": config.dram_banks,
            "dram_row_blocks": config.dram_row_blocks,
        },
    }


def _geometry_payload(geometry) -> Union[dict, None]:
    if geometry is None:
        return None
    return {
        "size_bytes": geometry.size_bytes,
        "block_bytes": geometry.block_bytes,
        "assoc": geometry.assoc,
    }


def spec_fingerprint(spec: RunSpec, config: MachineConfig) -> str:
    """SHA-256 hex digest of the canonical payload.

    ``json.dumps(sort_keys=True)`` sorts every dict (including
    ``scheme_kwargs``) recursively, so key insertion order never leaks
    into the digest.
    """
    text = json.dumps(canonical_payload(spec, config), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
