"""ResultStore: content-addressed, append-only persistence for runs.

A store is a directory::

    <root>/
        campaign.json     # optional manifest (written by Campaign.save)
        results.jsonl     # append-only record log, one JSON object per line
        traces/<fp>.jsonl # per-spec telemetry traces (when recorded)

``results.jsonl`` holds two record kinds, discriminated by ``record``:

- ``"result"`` — a completed :class:`~repro.experiments.runner.WorkloadResult`
  plus run metadata (fingerprint, wall time, host, repro version,
  timestamp). Loading reconstructs a ``WorkloadResult`` equal, field for
  field, to the one that was stored (telemetry included; the
  non-deterministic ``RunTiming`` is deliberately not persisted — it is
  excluded from ``RunTelemetry`` equality for the same reason).
- ``"failure"`` — a typed :class:`FailedRun` (error type, message, worker
  traceback, attempts, timeout flag) recorded when a spec exhausted its
  retries.

The log is *last record wins* per fingerprint: a successful retry after a
stored failure supersedes it. Records are appended with an ``fsync``-free
open/write/close per record (crash-durable at line granularity), and the
loader skips a torn trailing line, so a store written by a process that
was SIGKILLed mid-append still loads everything that completed.

Appends take an advisory ``flock`` on the log for the duration of the
single write, so several *processes* pointed at one store directory (herd
workers, parallel campaign drivers) can never interleave torn lines
mid-file; each process still keeps its own in-memory index, so
cross-process read-your-writes visibility requires re-opening the store.
:meth:`ResultStore.merge` folds another store (a herd worker's shard
store) into this one with the same last-record-wins semantics, and raises
:class:`StoreMergeError` if two stores claim *different* results for one
fingerprint — determinism says that cannot happen, so it is a bug worth
stopping on, not papering over.
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

try:  # POSIX only; on other platforms appends fall back to unlocked writes
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

from repro.cpu.system import CoreResult
from repro.experiments.parallel import RunSpec
from repro.experiments.runner import WorkloadResult
from repro.metrics.tenancy import TenantSLOReport
from repro.telemetry import FinishSample, IntervalSample, RunTelemetry

__all__ = ["FailedRun", "RunMeta", "StoredResult", "ResultStore", "StoreMergeError"]

#: results.jsonl schema version.
STORE_FORMAT = 1


class StoreMergeError(RuntimeError):
    """Two stores hold *different* result payloads for one fingerprint.

    A fingerprint is the content address of a deterministic run, so two
    stores disagreeing about its result means one of them was produced by
    different code (or a corrupted record) — merging would silently bless
    one of the two, so the merge refuses instead.
    """

    def __init__(self, fingerprint: str, detail: str = "") -> None:
        self.fingerprint = fingerprint
        message = f"conflicting result payloads for fingerprint {fingerprint}"
        if detail:
            message += f": {detail}"
        super().__init__(message)


@dataclass(frozen=True)
class RunMeta:
    """Provenance of one stored run."""

    fingerprint: str
    wall_seconds: Optional[float] = None
    host: str = ""
    repro_version: str = ""
    created_at: float = 0.0

    @classmethod
    def now(cls, fingerprint: str, wall_seconds: Optional[float] = None) -> "RunMeta":
        from repro import __version__

        return cls(
            fingerprint=fingerprint,
            wall_seconds=wall_seconds,
            host=socket.gethostname(),
            repro_version=__version__,
            created_at=time.time(),
        )


@dataclass(frozen=True)
class FailedRun:
    """A spec that exhausted its attempts without producing a result."""

    fingerprint: str
    spec: RunSpec
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1
    timed_out: bool = False

    def describe(self) -> str:
        kind = "timed out" if self.timed_out else self.error_type
        return (
            f"{self.spec.describe()}: {kind}: {self.message} "
            f"(after {self.attempts} attempt{'s' if self.attempts != 1 else ''})"
        )


@dataclass(frozen=True)
class StoredResult:
    """One completed run as the store holds it."""

    fingerprint: str
    spec: RunSpec
    result: WorkloadResult
    meta: RunMeta


# -- (de)serialisation -------------------------------------------------------


def spec_to_dict(spec: RunSpec) -> dict:
    return {
        "mix": spec.mix if isinstance(spec.mix, str) else list(spec.mix),
        "scheme": spec.scheme,
        "seed": spec.seed,
        "instructions": spec.instructions,
        "scheme_kwargs": dict(spec.scheme_kwargs) if spec.scheme_kwargs else None,
        "telemetry": spec.telemetry,
        "check": spec.check,
    }


def spec_from_dict(data: dict) -> RunSpec:
    mix = data["mix"]
    return RunSpec(
        mix=mix if isinstance(mix, str) else tuple(mix),
        scheme=data["scheme"],
        seed=data["seed"],
        instructions=data["instructions"],
        scheme_kwargs=data["scheme_kwargs"],
        telemetry=data.get("telemetry", False),
        check=data.get("check", False),
    )


def _telemetry_to_dict(telemetry: RunTelemetry) -> dict:
    return {
        "num_cores": telemetry.num_cores,
        "benchmarks": list(telemetry.benchmarks),
        "samples": [asdict(s) for s in telemetry.samples],
        "finishes": [asdict(s) for s in telemetry.finishes],
    }


def _telemetry_from_dict(data: dict) -> RunTelemetry:
    return RunTelemetry(
        num_cores=data["num_cores"],
        benchmarks=list(data["benchmarks"]),
        samples=[IntervalSample(**s) for s in data["samples"]],
        finishes=[FinishSample(**s) for s in data["finishes"]],
    )


def result_to_dict(result: WorkloadResult) -> dict:
    """``WorkloadResult`` as a JSON-clean dict (round-trips exactly).

    Every field is primitives; floats survive JSON via ``repr`` so the
    reconstruction compares equal field for field.
    """
    data = {
        "mix": result.mix,
        "scheme": result.scheme,
        "benchmarks": list(result.benchmarks),
        "cores": [asdict(c) for c in result.cores],
        "standalone": list(result.standalone),
        "antt": result.antt,
        "fairness": result.fairness,
        "throughput": result.throughput,
        "weighted_speedup": result.weighted_speedup,
        "intervals": result.intervals,
        "victim_not_found_rate": result.victim_not_found_rate,
        "probability_stats": result.probability_stats,
        "eviction_probabilities": result.eviction_probabilities,
        "forced_evictions": result.forced_evictions,
        "demotions": result.demotions,
        "quotas": result.quotas,
        "targets": result.targets,
        "telemetry": (
            _telemetry_to_dict(result.telemetry) if result.telemetry is not None else None
        ),
        "tenant_slo": (
            result.tenant_slo.to_dict() if result.tenant_slo is not None else None
        ),
    }
    return data


def result_from_dict(data: dict) -> WorkloadResult:
    telemetry = data.get("telemetry")
    tenant_slo = data.get("tenant_slo")  # absent in pre-tenancy stores
    return WorkloadResult(
        mix=data["mix"],
        scheme=data["scheme"],
        benchmarks=list(data["benchmarks"]),
        cores=[CoreResult(**c) for c in data["cores"]],
        standalone=list(data["standalone"]),
        antt=data["antt"],
        fairness=data["fairness"],
        throughput=data["throughput"],
        weighted_speedup=data["weighted_speedup"],
        intervals=data["intervals"],
        victim_not_found_rate=data["victim_not_found_rate"],
        probability_stats=data["probability_stats"],
        eviction_probabilities=data["eviction_probabilities"],
        forced_evictions=data["forced_evictions"],
        demotions=data["demotions"],
        quotas=data["quotas"],
        targets=data["targets"],
        telemetry=_telemetry_from_dict(telemetry) if telemetry is not None else None,
        tenant_slo=(
            TenantSLOReport.from_dict(tenant_slo) if tenant_slo is not None else None
        ),
    )


# -- the store ---------------------------------------------------------------


class ResultStore:
    """Content-addressed result log keyed by spec fingerprint.

    Opening a store scans ``results.jsonl`` once into an in-memory index;
    every ``add_*`` appends one line immediately (so an interrupted
    campaign keeps everything that finished). One store instance is meant
    to be owned by one driver process — concurrent *writers* from several
    processes are not coordinated (workers return results to the driver,
    which is the only writer).
    """

    RECORDS_NAME = "results.jsonl"
    TRACES_DIR = "traces"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._results: Dict[str, StoredResult] = {}
        self._failures: Dict[str, FailedRun] = {}
        self._load()

    # -- paths --------------------------------------------------------------

    @property
    def records_path(self) -> Path:
        return self.root / self.RECORDS_NAME

    @property
    def traces_dir(self) -> Path:
        return self.root / self.TRACES_DIR

    def trace_path(self, fingerprint: str) -> Path:
        return self.traces_dir / f"{fingerprint}.jsonl"

    # -- loading ------------------------------------------------------------

    def _load(self) -> None:
        if not self.records_path.exists():
            return
        with open(self.records_path, "r") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Torn trailing line from a killed writer: everything
                    # before it is intact, so skip and carry on.
                    continue
                self._index(record)

    def _index(self, record: dict) -> None:
        kind = record.get("record")
        fingerprint = record.get("fingerprint")
        if not fingerprint:
            return
        if kind == "result":
            self._results[fingerprint] = StoredResult(
                fingerprint=fingerprint,
                spec=spec_from_dict(record["spec"]),
                result=result_from_dict(record["result"]),
                meta=RunMeta(fingerprint=fingerprint, **record["meta"]),
            )
            self._failures.pop(fingerprint, None)
        elif kind == "failure":
            failure = record["failure"]
            self._failures[fingerprint] = FailedRun(
                fingerprint=fingerprint,
                spec=spec_from_dict(record["spec"]),
                error_type=failure["error_type"],
                message=failure["message"],
                traceback=failure.get("traceback", ""),
                attempts=failure.get("attempts", 1),
                timed_out=failure.get("timed_out", False),
            )

    def iter_records(self) -> Iterator[dict]:
        """Raw record dicts in file order (torn trailing line skipped)."""
        if not self.records_path.exists():
            return
        with open(self.records_path, "r") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue

    # -- appending ----------------------------------------------------------

    def _append(self, record: dict) -> None:
        # One write call under an exclusive advisory lock: concurrent
        # appenders (herd workers, parallel drivers sharing one store)
        # serialise per record, so the log can never hold an interleaved
        # torn line mid-file. O_APPEND places the write at the current
        # end even if another process appended between open and lock.
        data = json.dumps(record) + "\n"
        with open(self.records_path, "a") as fh:
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                fh.write(data)
                fh.flush()
            finally:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    def add_result(
        self,
        fingerprint: str,
        spec: RunSpec,
        result: WorkloadResult,
        wall_seconds: Optional[float] = None,
    ) -> StoredResult:
        """Persist one completed run (and its telemetry trace, if any)."""
        meta = RunMeta.now(fingerprint, wall_seconds=wall_seconds)
        self._append(
            {
                "record": "result",
                "format": STORE_FORMAT,
                "fingerprint": fingerprint,
                "spec": spec_to_dict(spec),
                "meta": {
                    "wall_seconds": meta.wall_seconds,
                    "host": meta.host,
                    "repro_version": meta.repro_version,
                    "created_at": meta.created_at,
                },
                "result": result_to_dict(result),
            }
        )
        if result.telemetry is not None:
            self.traces_dir.mkdir(parents=True, exist_ok=True)
            result.telemetry.write(self.trace_path(fingerprint))
        stored = StoredResult(fingerprint=fingerprint, spec=spec, result=result, meta=meta)
        self._results[fingerprint] = stored
        self._failures.pop(fingerprint, None)
        return stored

    def add_failure(self, failure: FailedRun) -> None:
        """Persist one exhausted-retries failure record."""
        self._append(
            {
                "record": "failure",
                "format": STORE_FORMAT,
                "fingerprint": failure.fingerprint,
                "spec": spec_to_dict(failure.spec),
                "failure": {
                    "error_type": failure.error_type,
                    "message": failure.message,
                    "traceback": failure.traceback,
                    "attempts": failure.attempts,
                    "timed_out": failure.timed_out,
                },
            }
        )
        self._failures[failure.fingerprint] = failure

    # -- queries ------------------------------------------------------------

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._results

    def __len__(self) -> int:
        return len(self._results)

    def get(self, fingerprint: str) -> Optional[WorkloadResult]:
        stored = self._results.get(fingerprint)
        return stored.result if stored is not None else None

    def record_for(self, fingerprint: str) -> Optional[StoredResult]:
        return self._results.get(fingerprint)

    def fingerprints(self) -> List[str]:
        return list(self._results)

    def results(self) -> List[StoredResult]:
        return list(self._results.values())

    def failures(self) -> List[FailedRun]:
        return list(self._failures.values())

    def failure_for(self, fingerprint: str) -> Optional[FailedRun]:
        return self._failures.get(fingerprint)

    # -- merging ------------------------------------------------------------

    def append_raw(self, record: dict) -> None:
        """Append one already-serialised record (and index it).

        The record must be store-shaped (``record``/``fingerprint``/... as
        written by :meth:`add_result`/:meth:`add_failure`); this is the
        ingestion path for records that arrive over the wire (herd
        workers) or from another store (:meth:`merge`) — no
        deserialise/re-serialise round trip.
        """
        self._append(record)
        self._index(record)

    def merge(self, shard: "ResultStore", on_conflict: str = "error") -> int:
        """Fold another store's records into this one; returns appends.

        Semantics (``tests/campaign/test_store_merge.py``):

        - **Disjoint fingerprints** simply append.
        - **Overlapping fingerprints with an identical result payload**
          deduplicate — this store keeps its record, nothing is appended
          (the common case: a shard re-merged after a crash, or two
          workers that both computed a duplicate spec).
        - **Conflicting result payloads** for one fingerprint raise
          :class:`StoreMergeError` (``on_conflict="error"``, the
          default), or let the incoming record supersede
          (``on_conflict="theirs"`` — last record wins in the log).
        - A shard **result supersedes** a stored failure; a shard failure
          never displaces a stored result; a shard failure for an
          already-failed fingerprint supersedes (fresher attempt count).
        - The shard's torn trailing line, if any, was already dropped by
          its loader.

        Telemetry trace files travel with their records: a merged
        fingerprint's ``traces/<fp>.jsonl`` is copied unless this store
        already has one.
        """
        if on_conflict not in ("error", "theirs"):
            raise ValueError(f"on_conflict must be 'error' or 'theirs', got {on_conflict!r}")
        appended = 0
        for stored in shard.results():
            fp = stored.fingerprint
            mine = self._results.get(fp)
            if mine is not None:
                if result_to_dict(mine.result) == result_to_dict(stored.result):
                    continue
                if on_conflict == "error":
                    raise StoreMergeError(
                        fp, f"{shard.root} disagrees with {self.root}"
                    )
            self.append_raw(
                {
                    "record": "result",
                    "format": STORE_FORMAT,
                    "fingerprint": fp,
                    "spec": spec_to_dict(stored.spec),
                    "meta": {
                        "wall_seconds": stored.meta.wall_seconds,
                        "host": stored.meta.host,
                        "repro_version": stored.meta.repro_version,
                        "created_at": stored.meta.created_at,
                    },
                    "result": result_to_dict(stored.result),
                }
            )
            appended += 1
            shard_trace = shard.trace_path(fp)
            mine_trace = self.trace_path(fp)
            if shard_trace.exists() and not mine_trace.exists():
                self.traces_dir.mkdir(parents=True, exist_ok=True)
                mine_trace.write_bytes(shard_trace.read_bytes())
        for failure in shard.failures():
            if failure.fingerprint in self._results:
                continue
            self.add_failure(failure)
            appended += 1
        return appended
