"""Campaign: a named grid of specs bound to a store, resumable end to end.

A campaign is (machine config, spec list, retry/timeout policy) saved as a
``campaign.json`` manifest inside its store directory, so *the store alone*
is enough to resume: ``Campaign.load(path).run()`` after an interruption —
graceful or SIGKILL — executes exactly the specs that never completed and
nothing else.

Typical flow::

    from repro.campaign import Campaign
    from repro.experiments.configs import machine

    camp = Campaign.grid(
        "sweeps/prism-vs-lru",
        machine(4, instructions=200_000),
        mixes=["Q1", "Q7", "Q12"],
        schemes=["lru", "prism-h"],
        seeds=range(5),
    )
    run = camp.run(jobs=0)          # all cores; skips anything cached
    print(run.describe())           # "executed 30, skipped 0 (cached)"
    camp.export_csv("sweep.csv")

The CLI mirrors this as ``repro-sim campaign run/status/resume/export``.
"""

from __future__ import annotations

import csv
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.cache.geometry import CacheGeometry
from repro.campaign.runner import CampaignRun, CampaignRunner, Progress, cache_hit
from repro.campaign.store import (
    FailedRun,
    ResultStore,
    result_to_dict,
    spec_from_dict,
    spec_to_dict,
)
from repro.experiments.configs import MachineConfig
from repro.experiments.parallel import RunSpec
from repro.experiments.runner import WorkloadResult

__all__ = ["Campaign", "CampaignStatus", "completion_rate", "MANIFEST_NAME"]

MANIFEST_NAME = "campaign.json"

#: campaign.json schema version.
MANIFEST_FORMAT = 1


def _geometry_to_dict(geometry) -> Optional[dict]:
    if geometry is None:
        return None
    return {
        "size_bytes": geometry.size_bytes,
        "block_bytes": geometry.block_bytes,
        "assoc": geometry.assoc,
    }


def _geometry_from_dict(data: Optional[dict]) -> Optional[CacheGeometry]:
    if data is None:
        return None
    return CacheGeometry(
        size_bytes=data["size_bytes"],
        block_bytes=data["block_bytes"],
        assoc=data["assoc"],
    )


def machine_to_dict(config: MachineConfig) -> dict:
    return {
        "num_cores": config.num_cores,
        "geometry": _geometry_to_dict(config.geometry),
        "num_controllers": config.num_controllers,
        "instructions": config.instructions,
        "workload_scale": config.workload_scale,
        "l1_geometry": _geometry_to_dict(config.l1_geometry),
        "l1_inclusive": config.l1_inclusive,
        "dram_banks": config.dram_banks,
        "dram_row_blocks": config.dram_row_blocks,
    }


def machine_from_dict(data: dict) -> MachineConfig:
    # Hierarchy fields use .get defaults so manifests written before the
    # multi-level machine still load.
    return MachineConfig(
        num_cores=data["num_cores"],
        geometry=_geometry_from_dict(data["geometry"]),
        num_controllers=data["num_controllers"],
        instructions=data["instructions"],
        workload_scale=data["workload_scale"],
        l1_geometry=_geometry_from_dict(data.get("l1_geometry")),
        l1_inclusive=data.get("l1_inclusive", False),
        dram_banks=data.get("dram_banks", 1),
        dram_row_blocks=data.get("dram_row_blocks", 0),
    )


@dataclass(frozen=True)
class CampaignStatus:
    """Store-side progress of a campaign (unique fingerprints).

    ``specs_per_min``/``eta_seconds`` are derived from the completed
    records' stored timestamps (``RunMeta.created_at``): the completion
    *rate* needs at least two records and a non-zero span, the ETA
    additionally needs pending work. Both are ``None`` when they cannot
    be estimated. The same columns feed ``repro-sim campaign status``
    and the herd status view.
    """

    total: int
    completed: int
    failed: int
    pending: int
    specs_per_min: Optional[float] = None
    eta_seconds: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.pending == 0 and self.failed == 0

    @staticmethod
    def _format_eta(seconds: float) -> str:
        if seconds >= 3600:
            return f"{seconds / 3600:.1f}h"
        if seconds >= 60:
            return f"{seconds / 60:.1f}m"
        return f"{seconds:.0f}s"

    def describe(self) -> str:
        text = (
            f"{self.completed}/{self.total} completed, "
            f"{self.failed} failed, {self.pending} pending"
        )
        if self.specs_per_min is not None:
            text += f", {self.specs_per_min:.1f} specs/min"
        if self.eta_seconds is not None:
            text += f", ETA {self._format_eta(self.eta_seconds)}"
        return text


def completion_rate(created_ats: Sequence[float]) -> Optional[float]:
    """Specs per *minute* from completed-record timestamps, or ``None``.

    The first record anchors the clock, so the rate is over the spans
    *between* completions — ``n`` records over ``span`` seconds is
    ``n - 1`` completions of observed spacing.
    """
    stamps = sorted(t for t in created_ats if t)
    if len(stamps) < 2:
        return None
    span = stamps[-1] - stamps[0]
    if span <= 0:
        return None
    return (len(stamps) - 1) / span * 60.0


class Campaign:
    """A spec grid bound to a result store, with a persisted manifest."""

    def __init__(
        self,
        store: Union[ResultStore, str, Path],
        config: MachineConfig,
        specs: Sequence[RunSpec],
        retries: int = 1,
        timeout: Optional[float] = None,
    ) -> None:
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.config = config
        self.specs = list(specs)
        self.retries = retries
        self.timeout = timeout

    # -- construction -------------------------------------------------------

    @classmethod
    def grid(
        cls,
        store: Union[ResultStore, str, Path],
        config: MachineConfig,
        mixes: Sequence[str],
        schemes: Sequence[str],
        seeds: Iterable[int] = (0,),
        instructions: Optional[int] = None,
        scheme_kwargs: Optional[Dict[str, dict]] = None,
        telemetry: bool = False,
        check: bool = False,
        retries: int = 1,
        timeout: Optional[float] = None,
    ) -> "Campaign":
        """The standard mixes × schemes × seeds grid as a campaign."""
        scheme_kwargs = scheme_kwargs or {}
        specs = [
            RunSpec(
                mix=mix,
                scheme=scheme,
                seed=seed,
                instructions=instructions,
                scheme_kwargs=scheme_kwargs.get(scheme),
                telemetry=telemetry,
                check=check,
            )
            for mix in mixes
            for scheme in schemes
            for seed in seeds
        ]
        return cls(store, config, specs, retries=retries, timeout=timeout)

    @classmethod
    def load(cls, store: Union[ResultStore, str, Path]) -> "Campaign":
        """Rebuild a campaign from its store's manifest alone.

        Raises:
            FileNotFoundError: the store has no ``campaign.json`` (it was
                never saved, or the directory is not a campaign store).
        """
        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        manifest_path = store.root / MANIFEST_NAME
        if not manifest_path.exists():
            raise FileNotFoundError(
                f"{manifest_path} does not exist — not a saved campaign "
                "(run `repro-sim campaign run` or Campaign.save first)"
            )
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        return cls(
            store,
            machine_from_dict(manifest["machine"]),
            [spec_from_dict(s) for s in manifest["specs"]],
            retries=manifest.get("retries", 1),
            timeout=manifest.get("timeout"),
        )

    def save(self) -> Path:
        """Write/refresh the manifest so ``load`` can resume from disk."""
        from repro import __version__

        manifest = {
            "format": MANIFEST_FORMAT,
            "created_at": time.time(),
            "repro_version": __version__,
            "machine": machine_to_dict(self.config),
            "specs": [spec_to_dict(spec) for spec in self.specs],
            "retries": self.retries,
            "timeout": self.timeout,
        }
        path = self.store.root / MANIFEST_NAME
        with open(path, "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    # -- queries ------------------------------------------------------------

    def runner(self, jobs: Optional[int] = None) -> CampaignRunner:
        return CampaignRunner(
            self.store,
            self.config,
            jobs=jobs,
            retries=self.retries,
            timeout=self.timeout,
        )

    def fingerprints(self) -> List[str]:
        """One fingerprint per spec, aligned with ``self.specs``."""
        runner = self.runner()
        return [runner.fingerprint(spec) for spec in self.specs]

    def status(self) -> CampaignStatus:
        """Progress over the campaign's unique fingerprints."""
        completed = failed = 0
        seen = set()
        created_ats = []
        for spec, fp in zip(self.specs, self.fingerprints()):
            if fp in seen:
                continue
            seen.add(fp)
            if cache_hit(self.store, fp, spec) is not None:
                completed += 1
                stored = self.store.record_for(fp)
                if stored is not None:
                    created_ats.append(stored.meta.created_at)
            elif self.store.failure_for(fp) is not None:
                failed += 1
        total = len(seen)
        pending = total - completed - failed
        rate = completion_rate(created_ats)
        eta = pending / (rate / 60.0) if rate and pending else None
        return CampaignStatus(
            total=total,
            completed=completed,
            failed=failed,
            pending=pending,
            specs_per_min=rate,
            eta_seconds=eta,
        )

    def failures(self) -> List[FailedRun]:
        """Stored failures belonging to this campaign's fingerprints."""
        wanted = set(self.fingerprints())
        return [f for f in self.store.failures() if f.fingerprint in wanted]

    def results(self) -> List[Optional[WorkloadResult]]:
        """Stored results aligned with ``self.specs`` (``None`` = not done)."""
        runner = self.runner()
        return [
            cache_hit(self.store, runner.fingerprint(spec), spec) for spec in self.specs
        ]

    # -- execution ----------------------------------------------------------

    def run(
        self,
        jobs: Optional[int] = None,
        progress: Progress = None,
        limit: Optional[int] = None,
    ) -> CampaignRun:
        """Execute (or resume) the campaign: only pending specs simulate.

        Saves the manifest first, so even a run killed before its first
        result leaves a resumable store behind.
        """
        self.save()
        return self.runner(jobs=jobs).run(self.specs, progress=progress, limit=limit)

    # -- export -------------------------------------------------------------

    #: Summary-metric columns shared by both export formats.
    EXPORT_FIELDS = (
        "fingerprint",
        "status",
        "mix",
        "scheme",
        "seed",
        "instructions",
        "antt",
        "fairness",
        "throughput",
        "weighted_speedup",
        "intervals",
        "wall_seconds",
        "host",
        "repro_version",
        "error",
    )

    def export_rows(self) -> List[dict]:
        """One flat summary row per unique spec, in campaign order."""
        rows = []
        seen = set()
        runner = self.runner()
        for spec in self.specs:
            fp = runner.fingerprint(spec)
            if fp in seen:
                continue
            seen.add(fp)
            row = {
                "fingerprint": fp,
                "mix": spec.mix if isinstance(spec.mix, str) else "+".join(spec.mix),
                "scheme": spec.scheme,
                "seed": spec.seed,
                "instructions": (
                    spec.instructions
                    if spec.instructions is not None
                    else self.config.instructions
                ),
            }
            stored = self.store.record_for(fp)
            failure = self.store.failure_for(fp)
            if stored is not None:
                result = stored.result
                row.update(
                    status="completed",
                    antt=result.antt,
                    fairness=result.fairness,
                    throughput=result.throughput,
                    weighted_speedup=result.weighted_speedup,
                    intervals=result.intervals,
                    wall_seconds=stored.meta.wall_seconds,
                    host=stored.meta.host,
                    repro_version=stored.meta.repro_version,
                )
            elif failure is not None:
                row.update(
                    status="failed",
                    error=f"{failure.error_type}: {failure.message}",
                )
            else:
                row.update(status="pending")
            rows.append(row)
        return rows

    def export_csv(self, path: Union[str, Path]) -> Path:
        """Write the per-spec summary table as CSV."""
        path = Path(path)
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=self.EXPORT_FIELDS, restval="")
            writer.writeheader()
            for row in self.export_rows():
                writer.writerow(row)
        return path

    def export_jsonl(self, path: Union[str, Path]) -> Path:
        """Write full records (summary row + complete result) as JSONL."""
        path = Path(path)
        with open(path, "w") as fh:
            seen = set()
            runner = self.runner()
            rows = {row["fingerprint"]: row for row in self.export_rows()}
            for spec in self.specs:
                fp = runner.fingerprint(spec)
                if fp in seen:
                    continue
                seen.add(fp)
                record = dict(rows[fp])
                stored = self.store.record_for(fp)
                if stored is not None:
                    record["result"] = result_to_dict(stored.result)
                fh.write(json.dumps(record) + "\n")
        return path

    def export_parquet(self, path: Union[str, Path]) -> Path:
        """Write the summary table as Parquet (columnar, for big sweeps).

        Parquet needs ``pyarrow``, which is deliberately *optional* —
        the simulator itself must not grow the dependency. Without it
        the export **falls back loudly to CSV**: a ``RuntimeWarning``
        plus a stderr line, and the returned path carries a ``.csv``
        suffix so nothing downstream mistakes the bytes for Parquet.
        """
        path = Path(path)
        try:
            import pyarrow as pa
            import pyarrow.parquet as pq
        except ImportError:
            import sys
            import warnings

            fallback = path.with_suffix(".csv")
            message = (
                f"pyarrow is not installed: falling back from Parquet to CSV "
                f"({fallback}). `pip install pyarrow` for columnar export."
            )
            warnings.warn(message, RuntimeWarning, stacklevel=2)
            print(f"WARNING: {message}", file=sys.stderr)
            return self.export_csv(fallback)
        rows = self.export_rows()
        columns = {
            name: [row.get(name) for row in rows] for name in self.EXPORT_FIELDS
        }
        pq.write_table(pa.table(columns), path)
        return path

    def export(self, path: Union[str, Path], fmt: Optional[str] = None) -> Path:
        """Export by format name, or by the path's extension."""
        path = Path(path)
        if fmt is None:
            suffix = path.suffix.lower()
            fmt = {"": "jsonl", ".csv": "csv", ".parquet": "parquet"}.get(suffix, "jsonl")
        if fmt == "csv":
            return self.export_csv(path)
        if fmt == "jsonl":
            return self.export_jsonl(path)
        if fmt == "parquet":
            return self.export_parquet(path)
        raise ValueError(
            f"unknown export format {fmt!r} (expected csv, jsonl, or parquet)"
        )
