"""Campaign subsystem: content-addressed, resumable experiment sweeps.

Large cache-partitioning studies are grid-shaped — scheme × mix × seed ×
machine — and every cell is an independent, deterministic
:class:`~repro.experiments.parallel.RunSpec`. This package treats each
cell as a cacheable, retryable unit of work:

- :mod:`repro.campaign.fingerprint` — the canonical content address of a
  run (stable SHA-256 of everything its outcome depends on);
- :mod:`repro.campaign.store` — :class:`ResultStore`, an append-only
  JSONL log of results and typed :class:`FailedRun` records that
  round-trips :class:`~repro.experiments.runner.WorkloadResult`s exactly;
- :mod:`repro.campaign.executor` — per-spec fault isolation (a worker
  exception or timeout costs one spec, not the pool) with fresh-worker
  retries;
- :mod:`repro.campaign.runner` — :class:`CampaignRunner`, the
  skip-completed / execute-pending / persist-incrementally loop;
- :mod:`repro.campaign.campaign` — :class:`Campaign`, the saved-manifest
  API behind ``repro-sim campaign run/status/resume/export``.

See ``docs/campaigns.md`` for the store layout, fingerprint stability
guarantees, and resume semantics.
"""

from repro.campaign.campaign import Campaign, CampaignStatus
from repro.campaign.executor import SpecError, SpecOutcome, iter_isolated, run_isolated
from repro.campaign.fingerprint import (
    FINGERPRINT_VERSION,
    canonical_payload,
    spec_fingerprint,
)
from repro.campaign.runner import CampaignRun, CampaignRunner, cache_hit
from repro.campaign.store import (
    FailedRun,
    ResultStore,
    RunMeta,
    StoredResult,
    StoreMergeError,
)

__all__ = [
    "Campaign",
    "CampaignStatus",
    "CampaignRun",
    "CampaignRunner",
    "cache_hit",
    "ResultStore",
    "StoreMergeError",
    "StoredResult",
    "RunMeta",
    "FailedRun",
    "SpecError",
    "SpecOutcome",
    "iter_isolated",
    "run_isolated",
    "spec_fingerprint",
    "canonical_payload",
    "FINGERPRINT_VERSION",
]
