"""The multi-tenant replay driver: PriSM as a memcached partitioner.

:func:`run_tenant_workload` is the tenant-family counterpart of
:func:`repro.experiments.runner.run_workload` — same signature shape,
same :class:`~repro.experiments.runner.WorkloadResult` out — but the
"programs" are key-value tenants and the "CPU" is a service-cost model:

- tenant index = core index, so every scheme (PriSM-H/F/Q, the
  cliff-aware baseline, unmanaged LRU) runs unchanged — eviction
  probability *is* the per-tenant memory-reclaim pressure;
- performance counters come from :class:`~repro.tenancy.perf.
  TenantPerfProvider` (hit/miss service costs), giving PriSM-F and
  PriSM-Q the ``cpi``/``ipc`` signals they normally read from the
  timing model;
- stand-alone baselines replay each tenant alone on the full cache
  under the scheme's baseline policy (memoised like the ``IPC^SP``
  runs), yielding both the normalisation IPCs and the solo hit rates
  that set tenant-relative SLO targets;
- replay is chunked through ``access_many`` on pre-encoded traces, so
  the classic and vector engines consume byte-identical streams and
  produce bit-identical results.

Interval cadence: scheme runs use the engines' natural miss-driven
interval machinery. Unmanaged (scheme-less) runs never fire intervals,
so the driver records a telemetry sample at every generation-chunk
boundary instead — a fixed request window, identical across backends —
which keeps SLO-attainment defined for the LRU baseline too.
"""

from __future__ import annotations

import hashlib
import json
import time
import warnings
from typing import Optional, Union

import numpy as np

from repro.cache.backends import build_cache
from repro.cache.encode import encode_accesses
from repro.cpu.system import CoreResult
from repro.experiments.configs import MachineConfig
from repro.experiments.runner import (
    DEFAULT_STANDALONE_CACHE,
    StandaloneIPCCache,
    WorkloadResult,
    _scheme_diagnostics,
)
from repro.experiments.schemes import build_scheme
from repro.metrics import antt, fairness, ipc_throughput, weighted_speedup
from repro.metrics.tenancy import MissRunTracker, TenantSLOReport
from repro.telemetry import TelemetryRecorder
from repro.tenancy.perf import TenantPerfProvider
from repro.util.rng import derive_seed
from repro.workloads.registry import WorkloadSource, resolve_workload
from repro.workloads.tenants import DEFAULT_CHUNK

__all__ = ["run_tenant_workload", "tenant_standalone"]


def _identity_digest(source: WorkloadSource) -> str:
    """Short stable digest of a workload identity, for memo keys."""
    payload = json.dumps(source.identity(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _cost(hits: int, misses: int, provider: TenantPerfProvider) -> float:
    return hits * provider.hit_cost + misses * provider.miss_cost


def tenant_standalone(
    source,
    config: MachineConfig,
    scheme: str = "lru",
    total_requests: Optional[int] = None,
    seed: int = 0,
    cache: Optional[StandaloneIPCCache] = None,
    backend: str = "classic",
):
    """Per-tenant solo baselines on the full cache (memoised).

    Each tenant replays its own request budget (its rate share of the
    shared run) alone, under the baseline replacement policy the scheme
    registry pairs with ``scheme``. Returns ``(ipcs, hit_rates)`` —
    service-cost IPC analogues for metric normalisation, hit rates for
    SLO targets. Results memoise into ``cache`` keyed by the workload
    identity digest, tenant, geometry, policy and request budget.
    """
    source = resolve_workload(source)
    total = total_requests or config.instructions
    if cache is None:
        cache = DEFAULT_STANDALONE_CACHE
    digest = _identity_digest(source)
    ipcs, hit_rates = [], []
    for index, tenant in enumerate(source.tenants):
        _, policy = build_scheme(scheme, 1, [1.0])
        requests = source.solo_requests(index, total)
        key = (
            f"tenant:{digest}:{tenant.name}",
            config.geometry,
            type(policy).__name__,
            config.num_controllers,
            requests,
            config.workload_scale,
            seed,
        )
        ipc = cache.get(key + ("ipc",))
        rate = cache.get(key + ("hit_rate",))
        if ipc is None or rate is None:
            solo_cache, _ = build_cache(
                config.geometry, 1, policy=policy, scheme=None, backend=backend
            )
            provider = TenantPerfProvider(solo_cache)
            for cores, addrs in source.tenant_chunks(index, requests, seed):
                solo_cache.access_many(encode_accesses(cores, addrs, config.geometry))
            hits = solo_cache.stats.hits[0]
            misses = solo_cache.stats.misses[0]
            served = hits + misses
            cycles = _cost(hits, misses, provider)
            ipc = served / cycles if cycles else 0.0
            rate = hits / served if served else 0.0
            cache.store(key + ("ipc",), ipc)
            cache.store(key + ("hit_rate",), rate)
        ipcs.append(ipc)
        hit_rates.append(rate)
    return ipcs, hit_rates


def run_tenant_workload(
    source,
    config: MachineConfig,
    scheme: str = "lru",
    seed: int = 0,
    instructions: Optional[int] = None,
    scheme_kwargs: Optional[dict] = None,
    telemetry: Union[bool, TelemetryRecorder] = False,
    standalone_cache: Optional[StandaloneIPCCache] = None,
    check: bool = False,
    backend: str = "classic",
) -> WorkloadResult:
    """Run one tenant workload under one scheme; report the paper's metrics.

    Args:
        source: a :class:`~repro.workloads.tenants.TenantWorkload` or a
            ``"tenants:<preset>"`` reference.
        config: the machine; ``config.num_cores`` must equal the tenant
            count, and ``instructions`` (or ``config.instructions``) is
            the total shared request budget.
        scheme/seed/instructions/scheme_kwargs/telemetry/standalone_cache/
            check/backend: as in
            :func:`~repro.experiments.runner.run_workload`.

    Returns:
        A :class:`~repro.experiments.runner.WorkloadResult` whose cores
        are tenants (instructions = requests served, cycles = service
        cost) and whose ``tenant_slo`` field carries the per-tenant SLO
        scorecard.
    """
    source = resolve_workload(source)
    if source.num_cores != config.num_cores:
        raise ValueError(
            f"mix {source.label!r} has {source.num_cores} programs but the "
            f"machine has {config.num_cores} cores"
        )
    total_requests = instructions or config.instructions
    sp_ipcs, solo_hit_rates = tenant_standalone(
        source,
        config,
        scheme=scheme,
        total_requests=total_requests,
        seed=seed,
        cache=standalone_cache,
        backend=backend,
    )

    scheme_obj, policy = build_scheme(
        scheme, config.num_cores, sp_ipcs, **(scheme_kwargs or {})
    )
    if check and backend != "classic":
        warnings.warn(
            "check=True audits the classic engine; ignoring backend="
            f"{backend!r} for this run",
            RuntimeWarning,
            stacklevel=2,
        )
        backend = "classic"
    cache, _ = build_cache(
        config.geometry,
        config.num_cores,
        policy=policy,
        scheme=scheme_obj,
        backend=backend,
    )
    checker = None
    if check:
        from repro.check.invariants import attach_checker

        checker = attach_checker(cache)

    provider = TenantPerfProvider(cache)
    if scheme_obj is not None and hasattr(scheme_obj, "perf"):
        # PriSM-F/Q read ctx.perf every interval; the provider stands in
        # for the timing model with the service-cost analogues.
        scheme_obj.perf = provider
    recorder = (
        telemetry if isinstance(telemetry, TelemetryRecorder) else TelemetryRecorder()
    )
    recorder.bind_cache(cache, benchmarks=source.tenant_names, perf=provider)

    miss_runs = MissRunTracker(config.num_cores)
    shared_seed = derive_seed(seed, "shared", source.label, scheme)
    window_intervals = scheme_obj is None  # unmanaged runs never fire intervals
    start = time.perf_counter()
    for cores, addrs in source.chunks(total_requests, shared_seed, DEFAULT_CHUNK):
        trace = encode_accesses(cores, addrs, config.geometry)
        out = cache.access_many(trace, collect=True)
        miss_runs.update(cores, np.asarray(out.hit))
        if window_intervals:
            recorder.record_interval(cache)
            cache.stats.reset_interval()
            cache.intervals_completed += 1
    run_telemetry = recorder.finalize(
        time.perf_counter() - start, accesses=total_requests
    )
    if checker is not None:
        checker.check_now()

    stats = cache.stats
    hits = list(stats.hits)
    misses = list(stats.misses)
    num_blocks = config.geometry.num_blocks
    cores_out = []
    mp_ipcs = []
    for index, tenant in enumerate(source.tenants):
        served = hits[index] + misses[index]
        cycles = _cost(hits[index], misses[index], provider)
        ipc = served / cycles if cycles else 0.0
        mp_ipcs.append(ipc)
        cores_out.append(
            CoreResult(
                name=tenant.name,
                ipc=ipc,
                cpi=cycles / served if served else 0.0,
                llc_stall_cpi=(
                    misses[index] * (provider.miss_cost - provider.hit_cost) / served
                    if served
                    else 0.0
                ),
                instructions=served,
                cycles=cycles,
                hits=hits[index],
                misses=misses[index],
                occupancy_at_finish=cache.occupancy[index] / num_blocks,
            )
        )

    slo = TenantSLOReport.build(
        source.tenant_names,
        hits,
        misses,
        solo_hit_rates,
        run_telemetry.samples,
        miss_runs,
    )
    return WorkloadResult(
        mix=source.label,
        scheme=scheme,
        benchmarks=source.tenant_names,
        cores=cores_out,
        standalone=sp_ipcs,
        antt=antt(sp_ipcs, mp_ipcs),
        fairness=fairness(sp_ipcs, mp_ipcs),
        throughput=ipc_throughput(mp_ipcs),
        weighted_speedup=weighted_speedup(sp_ipcs, mp_ipcs),
        intervals=cache.intervals_completed,
        telemetry=run_telemetry if telemetry else None,
        tenant_slo=slo,
        **_scheme_diagnostics(scheme_obj),
    )
