"""Multi-tenant web-cache scenario: PriSM as a memcached partitioner.

Maps the paper's machinery onto datacenter key-value caching: tenant →
core, eviction probability → per-tenant memory-reclaim pressure, CPI →
request service cost. See :mod:`repro.tenancy.run` for the replay
driver and :mod:`repro.tenancy.perf` for the cost model; workloads live
in :mod:`repro.workloads.tenants`, SLO metrics in
:mod:`repro.metrics.tenancy`, and ``docs/tenancy.md`` ties the scenario
together.
"""

from repro.tenancy.perf import HIT_COST, MISS_COST, TenantPerfProvider
from repro.tenancy.run import run_tenant_workload, tenant_standalone

__all__ = [
    "HIT_COST",
    "MISS_COST",
    "TenantPerfProvider",
    "run_tenant_workload",
    "tenant_standalone",
]
