"""Performance counters for tenant runs: the service-cost model.

PriSM-F and PriSM-Q read performance counters (``cpi``, ``ipc``,
``llc_stall_cpi``) that normally come from the CPU timing model. A
key-value cache tenant has no pipeline — its analogue of "cycles" is
service cost: a hit is served from cache, a miss pays the backing-store
fetch. :class:`TenantPerfProvider` maps interval hit/miss counters
through that two-point cost model, so the paper's fairness and QoS
policies run unchanged with *requests* standing in for instructions and
*service cost* standing in for cycles.

The provider reads the cache's live interval counters at the moment the
scheme (or the telemetry recorder) asks — both engines flush their
deferred counts before firing the interval boundary, so the values are
exact and identical across backends.
"""

from __future__ import annotations

__all__ = ["HIT_COST", "MISS_COST", "TenantPerfProvider"]

#: Service cost of a cache hit, in abstract cost units ("cycles").
HIT_COST = 2.0
#: Service cost of a miss (backing-store fetch + refill).
MISS_COST = 50.0


class TenantPerfProvider:
    """Interval performance counters derived from cache hit/miss counts.

    Satisfies both consumer protocols: the allocation policies'
    ``ctx.perf`` (``cpi``/``ipc``/``llc_stall_cpi``) and the telemetry
    recorder's sample provider (``interval_instructions``/``ipc``).
    """

    def __init__(
        self, cache, hit_cost: float = HIT_COST, miss_cost: float = MISS_COST
    ) -> None:
        if miss_cost < hit_cost:
            raise ValueError("miss_cost must be >= hit_cost")
        self.cache = cache
        self.hit_cost = hit_cost
        self.miss_cost = miss_cost

    def _interval(self, core: int):
        stats = self.cache.stats
        return stats.interval_hits[core], stats.interval_misses[core]

    def interval_instructions(self, core: int) -> int:
        """Requests the tenant made this interval (the instruction analogue)."""
        hits, misses = self._interval(core)
        return hits + misses

    def cpi(self, core: int) -> float:
        """Average service cost per request this interval (0 if idle)."""
        hits, misses = self._interval(core)
        requests = hits + misses
        if requests <= 0:
            return 0.0
        return (hits * self.hit_cost + misses * self.miss_cost) / requests

    def ipc(self, core: int) -> float:
        """Requests served per unit service cost this interval."""
        hits, misses = self._interval(core)
        cost = hits * self.hit_cost + misses * self.miss_cost
        if cost <= 0.0:
            return 0.0
        return (hits + misses) / cost

    def llc_stall_cpi(self, core: int) -> float:
        """Miss-attributable extra cost per request this interval."""
        hits, misses = self._interval(core)
        requests = hits + misses
        if requests <= 0:
            return 0.0
        return misses * (self.miss_cost - self.hit_cost) / requests
