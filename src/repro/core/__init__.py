"""PriSM — the paper's primary contribution.

Three pieces, mirroring Section 3 of the paper:

1. :mod:`repro.core.eviction` — the analytical model (Eq. 1) that turns
   target occupancies into eviction probabilities,
2. :mod:`repro.core.manager` — the probabilistic cache manager: the
   core-selection + victim-identification replacement step,
3. :mod:`repro.core.allocation` — allocation policies that turn high-level
   goals (hit-maximisation, fairness, QoS) into target occupancies.

:class:`~repro.core.prism.PrismScheme` ties them together as a management
scheme pluggable into :class:`repro.cache.SharedCache`.
"""

from repro.core.eviction import derive_eviction_probabilities, projected_occupancy
from repro.core.hardware import SchemeCost, scheme_costs
from repro.core.manager import ProbabilisticCacheManager
from repro.core.quantize import dequantize, quantize_distribution
from repro.core.prism import PrismScheme
from repro.core.allocation import (
    AllocationContext,
    AllocationPolicy,
    FairnessPolicy,
    HitMaxPolicy,
    QOSPolicy,
    UCPExtendedPolicy,
)

__all__ = [
    "derive_eviction_probabilities",
    "projected_occupancy",
    "SchemeCost",
    "scheme_costs",
    "ProbabilisticCacheManager",
    "quantize_distribution",
    "dequantize",
    "PrismScheme",
    "AllocationContext",
    "AllocationPolicy",
    "HitMaxPolicy",
    "FairnessPolicy",
    "QOSPolicy",
    "UCPExtendedPolicy",
]
