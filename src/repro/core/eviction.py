"""The PriSM analytical model (Section 3.2, Eq. 1).

Over an interval of ``W`` misses on a cache of ``N`` blocks, a core that
starts at occupancy fraction ``C_i``, contributes miss fraction ``M_i`` and
is evicted with probability ``E_i`` ends the interval at

    tau_i = C_i + (M_i - E_i) * W / N.

Solving for the eviction probability that reaches a target ``T_i`` gives

    E_i = (C_i - T_i) * N / W + M_i,

clamped to [0, 1] when the target is unreachable within one interval
(``E_i = 0`` grows as fast as possible, ``E_i = 1`` shrinks as fast as
possible).

The unclamped values always sum to 1 when ``sum(C) = sum(T)`` and
``sum(M) = 1`` — the identity the paper's distribution property relies on.
Clamping can break the sum, so :func:`derive_eviction_probabilities`
renormalises afterwards; the renormalised vector is what the hardware's
core-selection step samples from.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.util.validate import check_positive

__all__ = ["eviction_probability", "derive_eviction_probabilities", "projected_occupancy"]


def eviction_probability(
    occupancy: float, target: float, miss_fraction: float, num_blocks: int, interval: int
) -> float:
    """Eq. 1 for a single core: clamped ``(C - T) * N/W + M``."""
    raw = (occupancy - target) * num_blocks / interval + miss_fraction
    if raw < 0.0:
        return 0.0
    if raw > 1.0:
        return 1.0
    return raw


def derive_eviction_probabilities(
    occupancy: Sequence[float],
    targets: Sequence[float],
    miss_fractions: Sequence[float],
    num_blocks: int,
    interval: int,
    renormalize: bool = True,
) -> List[float]:
    """Compute the per-core eviction probability distribution.

    Args:
        occupancy: ``C_i`` — current occupancy fractions.
        targets: ``T_i`` — desired occupancy fractions.
        miss_fractions: ``M_i`` — per-core share of the interval's misses.
        num_blocks: ``N`` — total cache blocks.
        interval: ``W`` — interval length in misses.
        renormalize: rescale the clamped vector to sum to 1 so that it is a
            sampleable distribution (falls back to ``M`` and then uniform
            when everything clamps to zero).

    Returns:
        ``E_i`` as a list of floats.

    Raises:
        ValueError: if the three input vectors disagree in length.
    """
    if not len(occupancy) == len(targets) == len(miss_fractions):
        raise ValueError(
            f"length mismatch: C={len(occupancy)} T={len(targets)} M={len(miss_fractions)}"
        )
    check_positive("num_blocks", num_blocks)
    check_positive("interval", interval)
    probabilities = [
        eviction_probability(c, t, m, num_blocks, interval)
        for c, t, m in zip(occupancy, targets, miss_fractions)
    ]
    if not renormalize:
        return probabilities
    total = sum(probabilities)
    if total <= 0.0:
        # Everyone is below target; evict in proportion to insertion pressure
        # so the cache keeps functioning, as a real controller must.
        total = sum(miss_fractions)
        if total <= 0.0:
            n = len(probabilities)
            return [1.0 / n] * n
        return [m / total for m in miss_fractions]
    return [p / total for p in probabilities]


def projected_occupancy(
    occupancy: float,
    miss_fraction: float,
    eviction_probability_: float,
    num_blocks: int,
    interval: int,
) -> float:
    """``tau_i``: occupancy reached after one interval, clamped to [0, 1]."""
    tau = occupancy + (miss_fraction - eviction_probability_) * interval / num_blocks
    return min(1.0, max(0.0, tau))
