"""Hardware-cost model: storage overhead of each management scheme.

Section 3.4 of the paper argues PriSM's hardware cost is comparable to
way-partitioning and far below Vantage's. This module makes that argument
quantitative: per-scheme storage estimates (in bits) as a function of the
cache geometry and core count, following the structures each original
paper describes. Latency/energy are out of scope — storage is what the
papers themselves compare.

Common infrastructure (charged to every partitioning scheme alike, per
the paper: "these requirements are common to all the cache
partitioning/management schemes"):

- a core-id tag on every cache block,
- per-core occupancy and miss counters,
- sampled shadow tags (for schemes with an allocation policy that needs
  stand-alone estimates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.cache.geometry import CacheGeometry

__all__ = ["SchemeCost", "common_monitor_bits", "scheme_costs"]

#: Counter widths, generous and round.
_COUNTER_BITS = 32
#: Address-tag width assumed for shadow-tag entries.
_SHADOW_TAG_BITS = 24


@dataclass(frozen=True)
class SchemeCost:
    """Storage breakdown for one scheme (bits)."""

    name: str
    per_block_bits: float      # state added to every cache block
    global_bits: float         # registers, counters, selector state
    monitor_bits: float        # shadow tags / UMON arrays

    @property
    def total_bits(self) -> float:
        num = self.per_block_bits + self.global_bits + self.monitor_bits
        return num

    def total_kib(self) -> float:
        return self.total_bits / 8 / 1024


def _core_id_bits(num_cores: int) -> int:
    return max(1, math.ceil(math.log2(num_cores)))


def common_monitor_bits(
    geometry: CacheGeometry, num_cores: int, sample_ratio: int = 32
) -> float:
    """Sampled per-core shadow tags + position hit counters (UMON-DSS)."""
    sampled_sets = max(1, geometry.num_sets // sample_ratio)
    tag_array = num_cores * sampled_sets * geometry.assoc * _SHADOW_TAG_BITS
    position_counters = num_cores * geometry.assoc * _COUNTER_BITS
    return tag_array + position_counters


def scheme_costs(
    geometry: CacheGeometry,
    num_cores: int,
    probability_bits: int = 8,
    sample_ratio: int = 32,
) -> Dict[str, SchemeCost]:
    """Storage estimates for the paper's schemes on this machine.

    Args:
        geometry: the shared LLC.
        num_cores: sharing cores.
        probability_bits: K for PriSM's stored probabilities (Fig. 12
            shows 6-8 suffice).
        sample_ratio: shadow-tag set sampling (paper: 1/32).
    """
    n_blocks = geometry.num_blocks
    core_id = _core_id_bits(num_cores)
    counters = 2 * num_cores * _COUNTER_BITS  # occupancy + misses per core
    monitors = common_monitor_bits(geometry, num_cores, sample_ratio)
    way_bits = max(1, math.ceil(math.log2(geometry.assoc + 1)))

    costs = {}

    # Every partitioning scheme tags blocks with the owning core.
    base_block = core_id * n_blocks

    costs["prism"] = SchemeCost(
        "prism",
        per_block_bits=base_block,
        # K-bit probability per core + a 16-bit LFSR + interval counter.
        global_bits=num_cores * probability_bits + 16 + _COUNTER_BITS + counters,
        monitor_bits=monitors,
    )

    costs["waypart"] = SchemeCost(
        "waypart",
        per_block_bits=base_block,
        # A way quota per core.
        global_bits=num_cores * way_bits + counters,
        monitor_bits=0.0,
    )

    costs["ucp"] = SchemeCost(
        "ucp",
        per_block_bits=base_block,
        global_bits=num_cores * way_bits + counters,
        monitor_bits=monitors,  # UMON
    )

    costs["pipp"] = SchemeCost(
        "pipp",
        per_block_bits=base_block,
        # Per-core insertion priority + stream-detection bit.
        global_bits=num_cores * (way_bits + 1) + 16 + counters,
        monitor_bits=monitors,
    )

    # Vantage: per-block partition id + 8-bit timestamp + managed bit;
    # per-partition size/target/aperture registers and setpoint timestamps.
    costs["vantage"] = SchemeCost(
        "vantage",
        per_block_bits=(core_id + 8 + 1) * n_blocks,
        global_bits=num_cores * (3 * _COUNTER_BITS + 8) + counters,
        monitor_bits=monitors,
    )

    # DIP-class: PSEL(s) only; TA-DIP has one per core.
    costs["dip"] = SchemeCost(
        "dip", per_block_bits=0.0, global_bits=10, monitor_bits=0.0
    )
    costs["tadip"] = SchemeCost(
        "tadip", per_block_bits=core_id * n_blocks, global_bits=10 * num_cores,
        monitor_bits=0.0,
    )

    return costs
