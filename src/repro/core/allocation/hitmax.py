"""PriSM-H: hit-maximisation allocation (Algorithm 1).

Each core's *potential gain* is how many more hits it would have had with
the whole cache to itself (shadow-tag stand-alone hits minus actual shared
hits over the interval, both on the sampled sets). The target occupancy
scales the current occupancy up in proportion to the core's share of the
total potential gain:

    T_i = C_i * (1 + PotentialGain_i / TotalGain),  then normalise.

Two optional refinements (both **on** by default; set ``pure=True`` for
the literal Algorithm 1) compensate for pathologies that the scaled-down
substrate exposes much more strongly than the paper's full-size machines
(see DESIGN.md §3 and EXPERIMENTS.md):

- **Small-core protection.** Way-partitioning implicitly guarantees every
  core at least one way — enough to hold a small program's entire working
  set. Gain-share scaling has no such floor, so it can hold a cheap-to-
  satisfy core just below its knee forever, paying steady misses for
  space that barely helps anyone else. The refinement reads the knee of
  each core's shadow-tag utility curve (the smallest allocation capturing
  ``knee_quantile`` of its stand-alone hits) and floors the target there
  for cores whose knee is small (at most ``protect_cap_mult / num_cores``
  of the cache).
- **Thrash discounting.** A core whose utility curve has no knee inside
  the cache (e.g. a 5x-cache working set) reports a large stand-alone
  gain it can never realise; its gain is scaled by ``thrash_discount`` so
  it cannot vampirise space from saturable cores. The threshold is set
  just below the full cache (0.99) so that big-but-saturable programs —
  179.art's working set barely fits, exactly the paper's headline case —
  are never misclassified as thrashers.
"""

from __future__ import annotations

from typing import List

from repro.core.allocation.base import AllocationContext, AllocationPolicy, normalize_targets

__all__ = ["HitMaxPolicy"]


class HitMaxPolicy(AllocationPolicy):
    """Algorithm 1 of the paper, plus optional small-core/thrash guards.

    Args:
        occupancy_floor: minimum occupancy used in the scaling step, in
            blocks. Algorithm 1 multiplies the *current* occupancy, so a
            core squeezed to zero could never recover; the floor (one block
            by default) keeps the fixed point reachable without changing
            behaviour for any active core.
        pure: run the literal Algorithm 1 with no refinements.
        knee_quantile: stand-alone hit fraction defining a curve's knee.
        protect_cap_mult: protect a core only when its knee is at most
            ``protect_cap_mult / num_cores`` of the cache.
        thrash_knee: knee fraction above which a core counts as
            unsaturable within the cache.
        thrash_discount: gain multiplier applied to unsaturable cores.
    """

    name = "prism-hitmax"

    def __init__(
        self,
        occupancy_floor: float = 1.0,
        pure: bool = False,
        knee_quantile: float = 0.95,
        protect_cap_mult: float = 1.5,
        thrash_knee: float = 0.99,
        thrash_discount: float = 0.25,
    ) -> None:
        if occupancy_floor < 0:
            raise ValueError(f"occupancy_floor must be >= 0, got {occupancy_floor}")
        if not 0.0 < knee_quantile <= 1.0:
            raise ValueError(f"knee_quantile must be in (0, 1], got {knee_quantile}")
        if not 0.0 <= thrash_discount <= 1.0:
            raise ValueError(f"thrash_discount must be in [0, 1], got {thrash_discount}")
        self.occupancy_floor = occupancy_floor
        self.pure = pure
        self.knee_quantile = knee_quantile
        self.protect_cap_mult = protect_cap_mult
        self.thrash_knee = thrash_knee
        self.thrash_discount = thrash_discount

    def potential_gains(self, ctx: AllocationContext) -> List[float]:
        """``StandAloneHits_i - SharedHits_i`` on the sampled sets, floored at 0."""
        gains = []
        for core in range(ctx.num_cores):
            gain = ctx.shadow.standalone_hits(core) - ctx.shadow.shared_hits[core]
            gains.append(float(max(0, gain)))
        return gains

    def utility_knees(self, ctx: AllocationContext) -> List[float]:
        """Per-core knee of the shadow utility curve, as a cache fraction.

        The knee is the smallest way count whose prefix of the stand-alone
        utility curve reaches ``knee_quantile`` of the full-cache hits
        (0 for cores with no stand-alone hits this interval).
        """
        assoc = ctx.shadow.assoc
        knees = []
        for core in range(ctx.num_cores):
            total = ctx.shadow.hits_with_ways(core, assoc)
            if total <= 0:
                knees.append(0.0)
                continue
            threshold = self.knee_quantile * total
            knee_ways = assoc
            for ways in range(assoc + 1):
                if ctx.shadow.hits_with_ways(core, ways) >= threshold:
                    knee_ways = ways
                    break
            knees.append(knee_ways / assoc)
        return knees

    def compute_targets(self, ctx: AllocationContext) -> List[float]:
        gains = self.potential_gains(ctx)
        knees = self.utility_knees(ctx) if not self.pure else []
        if not self.pure:
            gains = [
                gain * self.thrash_discount if knees[core] > self.thrash_knee else gain
                for core, gain in enumerate(gains)
            ]
        total_gain = sum(gains)
        floor = self.occupancy_floor / ctx.num_blocks
        occupancy = [max(c, floor) for c in ctx.occupancy]
        if total_gain <= 0.0:
            # Nobody would do better alone: hold current shares.
            targets = normalize_targets(occupancy)
        else:
            targets = normalize_targets(
                [c * (1.0 + gain / total_gain) for c, gain in zip(occupancy, gains)]
            )
        if self.pure:
            return targets
        return self._apply_protection(ctx, targets, knees)

    def _apply_protection(
        self, ctx: AllocationContext, targets: List[float], knees: List[float]
    ) -> List[float]:
        """Floor small cores' targets at their utility knee."""
        cap = self.protect_cap_mult / ctx.num_cores
        floors = [k if 0.0 < k <= cap else 0.0 for k in knees]
        deficit = [i for i in range(ctx.num_cores) if targets[i] < floors[i]]
        if not deficit:
            return targets
        needed = sum(floors[i] - targets[i] for i in deficit)
        donors_total = sum(t for i, t in enumerate(targets) if i not in deficit)
        if donors_total <= needed:
            return targets  # floors infeasible this interval; keep Alg. 1
        scale = (donors_total - needed) / donors_total
        adjusted = [
            floors[i] if i in deficit else targets[i] * scale
            for i in range(ctx.num_cores)
        ]
        return normalize_targets(adjusted)
