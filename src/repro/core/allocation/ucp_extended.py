"""Extended-UCP allocation: UCP's lookahead at sub-way granularity.

Section 5.3 compares PriSM against Vantage with "both ... using the
extended UCP allocation policy that has been shown to work well with
Vantage". This policy runs the lookahead algorithm of [14] over the
shadow-tag utility curves, but distributes ``granularity`` units per way
(with linear interpolation between the way-granular UMON points), then
returns the allocation as occupancy fractions — the fine-grained targets
that only Vantage and PriSM can actually enforce.
"""

from __future__ import annotations

from typing import List

from repro.core.allocation.base import AllocationContext, AllocationPolicy
from repro.partitioning.ucp import lookahead_allocate

__all__ = ["UCPExtendedPolicy"]


class UCPExtendedPolicy(AllocationPolicy):
    """Lookahead allocation over interpolated utility curves.

    Args:
        granularity: allocation units per cache way (4 units per way gives
            quarter-way resolution; way-partitioning corresponds to 1).
    """

    name = "ucp-extended"

    def __init__(self, granularity: int = 4) -> None:
        if granularity < 1:
            raise ValueError(f"granularity must be >= 1, got {granularity}")
        self.granularity = granularity

    def compute_targets(self, ctx: AllocationContext) -> List[float]:
        assoc = ctx.shadow.assoc
        budget = assoc * self.granularity
        prefix = [
            [ctx.shadow.hits_with_ways(core, w) for w in range(assoc + 1)]
            for core in range(ctx.num_cores)
        ]

        def utility(core: int, units: int) -> float:
            ways = min(units / self.granularity, float(assoc))
            lo = int(ways)
            frac = ways - lo
            base = prefix[core][lo]
            if frac == 0.0:
                return float(base)
            return base + frac * (prefix[core][min(lo + 1, assoc)] - base)

        alloc = lookahead_allocate(utility, ctx.num_cores, budget, minimum=1)
        return [a / budget for a in alloc]
