"""PriSM-Q: quality-of-service allocation (Algorithm 3).

One core (core 0 in the paper, configurable here) gets a minimum-IPC
guarantee; the remaining cores share what is left under hit-maximisation.
The QoS core's target occupancy follows a multiplicative
increase/decrease rule around its current occupancy:

    below target IPC:  T_0 = (1 + alpha) * C_0
    above target IPC:  T_0 = (1 - beta) * C_0
    on target:         T_0 = C_0

with alpha = beta = 0.1 in the paper.
"""

from __future__ import annotations

from typing import List

from repro.core.allocation.base import AllocationContext, AllocationPolicy
from repro.core.allocation.hitmax import HitMaxPolicy
from repro.util.validate import check_fraction, check_positive

__all__ = ["QOSPolicy"]


class QOSPolicy(AllocationPolicy):
    """Algorithm 3 of the paper.

    Args:
        target_ipc: minimum IPC to hold for the QoS core.
        qos_core: which core carries the guarantee (paper: core 0).
        alpha: multiplicative increase step when under target.
        beta: multiplicative decrease step when over target.
        deadband: relative IPC band treated as "on target" (0 reproduces
            the paper's strict comparison).
        max_occupancy: cap on the QoS core's target fraction, so the other
            cores always keep some cache.
    """

    name = "prism-qos"
    requires_perf = True

    def __init__(
        self,
        target_ipc: float,
        qos_core: int = 0,
        alpha: float = 0.1,
        beta: float = 0.1,
        deadband: float = 0.0,
        max_occupancy: float = 0.9,
    ) -> None:
        check_positive("target_ipc", target_ipc)
        if qos_core < 0:
            raise ValueError(f"qos_core must be >= 0, got {qos_core}")
        check_fraction("max_occupancy", max_occupancy)
        self.target_ipc = target_ipc
        self.qos_core = qos_core
        self.alpha = alpha
        self.beta = beta
        self.deadband = deadband
        self.max_occupancy = max_occupancy
        self._hitmax = HitMaxPolicy()

    def compute_targets(self, ctx: AllocationContext) -> List[float]:
        self._check_perf(ctx)
        if self.qos_core >= ctx.num_cores:
            raise ValueError(
                f"qos_core {self.qos_core} out of range for {ctx.num_cores} cores"
            )
        qos = self.qos_core
        current_ipc = ctx.perf.ipc(qos)
        # Never let the controlled occupancy collapse to zero: one block is
        # the smallest unit the mechanism can allocate.
        c0 = max(ctx.occupancy[qos], 1.0 / ctx.num_blocks)
        if current_ipc < self.target_ipc * (1.0 - self.deadband):
            t0 = (1.0 + self.alpha) * c0
        elif current_ipc > self.target_ipc * (1.0 + self.deadband):
            t0 = (1.0 - self.beta) * c0
        else:
            t0 = c0
        t0 = min(t0, self.max_occupancy)

        # Hit-maximisation for everyone else inside the remaining space.
        hitmax_targets = self._hitmax.compute_targets(ctx)
        others_total = sum(t for core, t in enumerate(hitmax_targets) if core != qos)
        remaining = 1.0 - t0
        targets = []
        for core in range(ctx.num_cores):
            if core == qos:
                targets.append(t0)
            elif others_total > 0.0:
                targets.append(hitmax_targets[core] / others_total * remaining)
            else:
                targets.append(remaining / max(1, ctx.num_cores - 1))
        return targets
