"""Extension: QoS guarantees for several cores at once.

Algorithm 3 guards a single core; the paper presents the single-core case
"without loss of generality". This policy generalises it: every
guaranteed core runs its own multiplicative increase/decrease controller,
and the remaining cores share what is left under hit-maximisation. If the
guarantees' combined demand exceeds ``max_total_occupancy``, the targets
are scaled back proportionally — an explicit admission-control decision
the single-core algorithm never has to make.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.allocation.base import AllocationContext, AllocationPolicy
from repro.core.allocation.hitmax import HitMaxPolicy
from repro.util.validate import check_fraction

__all__ = ["MultiQOSPolicy"]


class MultiQOSPolicy(AllocationPolicy):
    """Per-core IPC floors for several cores, hit-max for the rest.

    Args:
        targets: mapping ``core -> minimum IPC``.
        alpha: multiplicative increase when a guaranteed core is under
            target.
        beta: multiplicative decrease when it is over.
        max_total_occupancy: cap on the summed QoS targets, so
            best-effort cores always keep some cache.
    """

    name = "prism-multiqos"
    requires_perf = True

    def __init__(
        self,
        targets: Dict[int, float],
        alpha: float = 0.1,
        beta: float = 0.1,
        max_total_occupancy: float = 0.9,
    ) -> None:
        if not targets:
            raise ValueError("need at least one guaranteed core")
        for core, ipc in targets.items():
            if core < 0:
                raise ValueError(f"core ids must be >= 0, got {core}")
            if ipc <= 0:
                raise ValueError(f"target IPC for core {core} must be > 0, got {ipc}")
        check_fraction("max_total_occupancy", max_total_occupancy)
        self.targets_ipc = dict(targets)
        self.alpha = alpha
        self.beta = beta
        self.max_total_occupancy = max_total_occupancy
        self._hitmax = HitMaxPolicy()

    def compute_targets(self, ctx: AllocationContext) -> List[float]:
        self._check_perf(ctx)
        for core in self.targets_ipc:
            if core >= ctx.num_cores:
                raise ValueError(
                    f"guaranteed core {core} out of range for {ctx.num_cores} cores"
                )
        if len(self.targets_ipc) >= ctx.num_cores:
            raise ValueError("at least one core must remain best-effort")

        # Each guaranteed core: Algorithm 3's multiplicative rule.
        qos_targets: Dict[int, float] = {}
        for core, target_ipc in self.targets_ipc.items():
            occupancy = max(ctx.occupancy[core], 1.0 / ctx.num_blocks)
            current = ctx.perf.ipc(core)
            if current < target_ipc:
                qos_targets[core] = (1.0 + self.alpha) * occupancy
            elif current > target_ipc:
                qos_targets[core] = (1.0 - self.beta) * occupancy
            else:
                qos_targets[core] = occupancy

        # Admission control: scale back proportionally if over the cap.
        total = sum(qos_targets.values())
        if total > self.max_total_occupancy:
            scale = self.max_total_occupancy / total
            qos_targets = {core: t * scale for core, t in qos_targets.items()}
            total = self.max_total_occupancy

        # Hit-max for the best-effort cores in the remaining space.
        hitmax = self._hitmax.compute_targets(ctx)
        best_effort = [c for c in range(ctx.num_cores) if c not in qos_targets]
        weight = sum(hitmax[c] for c in best_effort)
        remaining = 1.0 - total
        targets = [0.0] * ctx.num_cores
        for core, t in qos_targets.items():
            targets[core] = t
        for core in best_effort:
            if weight > 0.0:
                targets[core] = hitmax[core] / weight * remaining
            else:
                targets[core] = remaining / len(best_effort)
        return targets
