"""Allocation policies: performance goal → target occupancies ``T_i``.

The paper envisions these running in software every interval, reading
performance counters and shadow-tag statistics, and handing eviction
probabilities to the cache controller. Here each policy is a pure function
from an :class:`~repro.core.allocation.base.AllocationContext` snapshot to
a vector of target occupancy fractions; :class:`repro.core.prism.PrismScheme`
converts the targets to probabilities via Eq. 1.
"""

from repro.core.allocation.base import AllocationContext, AllocationPolicy
from repro.core.allocation.cliff import CliffAwarePolicy
from repro.core.allocation.hitmax import HitMaxPolicy
from repro.core.allocation.fairness import FairnessPolicy
from repro.core.allocation.qos import QOSPolicy
from repro.core.allocation.ucp_extended import UCPExtendedPolicy
from repro.core.allocation.balanced import BalancedPolicy
from repro.core.allocation.multi_qos import MultiQOSPolicy

__all__ = [
    "MultiQOSPolicy",
    "AllocationContext",
    "AllocationPolicy",
    "CliffAwarePolicy",
    "HitMaxPolicy",
    "FairnessPolicy",
    "QOSPolicy",
    "UCPExtendedPolicy",
    "BalancedPolicy",
]
