"""Memshare-style cliff-aware greedy allocation.

Memshare's observation for multi-tenant web caches: tenant hit-rate
curves are not concave — a scan or a tight loop has a *cliff* (zero
marginal hits until the allocation covers the working set, then all the
hits at once), so slope-following allocators park capacity on the flat
region below a cliff where it earns nothing. The cliff-aware answer is
two-part:

- every tenant keeps a small *reserved* share of the cache (Memshare's
  guaranteed memory), so no tenant is starved to zero;
- the remaining capacity is allocated greedily by *lookahead* marginal
  utility — the best hits-per-block over **any** extension of the
  current allocation, not just the next block — so a cliff is either
  cleared in full or not climbed at all.

Utility curves come from the shadow tags' per-way stand-alone hit
counters (:meth:`~repro.cache.shadow.ShadowTagMonitor.hits_with_ways`),
the same UMON data UCP reads. Targets are computed in way-granularity
steps and emitted as occupancy fractions, so the policy plugs into a
plain :class:`~repro.core.prism.PrismScheme` — eviction probabilities
become the reclaim pressure that enforces the partition, and the vector
backend runs it unchanged.
"""

from __future__ import annotations

from typing import List

from repro.core.allocation.base import (
    AllocationContext,
    AllocationPolicy,
    normalize_targets,
)

__all__ = ["CliffAwarePolicy"]


class CliffAwarePolicy(AllocationPolicy):
    """Greedy lookahead partitioning with per-tenant reserves.

    Args:
        reserve_fraction: guaranteed cache fraction per tenant, applied as
            a floor after the greedy pass (clamped so the floors of all
            tenants never exceed the whole cache).
    """

    name = "cliff-aware"

    def __init__(self, reserve_fraction: float = 0.05) -> None:
        if not 0.0 <= reserve_fraction < 1.0:
            raise ValueError(
                f"reserve_fraction must be in [0, 1), got {reserve_fraction}"
            )
        self.reserve_fraction = reserve_fraction

    def compute_targets(self, ctx: AllocationContext) -> List[float]:
        shadow = ctx.shadow
        n = ctx.num_cores
        assoc = shadow.assoc
        curves = [
            [shadow.hits_with_ways(core, w) for w in range(assoc + 1)]
            for core in range(n)
        ]
        ways = self._greedy_lookahead(curves, assoc)
        if ways is None:
            # Cold shadow tags (no sampled hits yet): hold current shares.
            return normalize_targets(ctx.occupancy)
        reserve = min(self.reserve_fraction, 1.0 / n)
        targets = [max(w / assoc, reserve) for w in ways]
        return normalize_targets(targets)

    @staticmethod
    def _greedy_lookahead(curves: List[List[int]], assoc: int):
        """Allocate ``assoc`` way-units by best lookahead density.

        Returns per-tenant way counts, or ``None`` when every curve is
        flat at zero (nothing to optimise for).
        """
        n = len(curves)
        if not any(curve[-1] for curve in curves):
            return None
        ways = [0] * n
        remaining = assoc
        while remaining > 0:
            best_density = 0.0
            best_tenant = -1
            best_step = 0
            for tenant in range(n):
                held = ways[tenant]
                if held >= assoc:
                    continue
                base = curves[tenant][held]
                limit = min(assoc, held + remaining)
                for w in range(held + 1, limit + 1):
                    density = (curves[tenant][w] - base) / (w - held)
                    # Strict '>' keeps ties on the lowest tenant index and
                    # the shortest step: deterministic across platforms.
                    if density > best_density:
                        best_density = density
                        best_tenant = tenant
                        best_step = w - held
            if best_tenant < 0:
                # Residual capacity earns no hits anywhere: spread it evenly
                # over the tenants with headroom.
                open_tenants = [t for t in range(n) if ways[t] < assoc]
                for i in range(remaining):
                    ways[open_tenants[i % len(open_tenants)]] += 1
                break
            ways[best_tenant] += best_step
            remaining -= best_step
        return ways
