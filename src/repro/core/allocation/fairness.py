"""PriSM-F: fairness allocation (Algorithm 2).

Fairness means equal slowdown relative to stand-alone execution [3]. The
policy estimates each core's stand-alone CPI from counters available on the
shared run:

    CPI_shared = CPI_ideal + CPI_llc              (measured)
    CPI_llc^alone = CPI_llc * scale               (shadow-tag miss delta)
    CPI_alone = (CPI_shared - CPI_llc) + CPI_llc^alone
    Slowdown_i = CPI_shared / CPI_alone

``CPI_llc`` is the commit-stall CPI attributable to LLC misses — a counter
modern processors expose [4] and our timing model computes exactly. The
scaling factor is the ratio of stand-alone to shared misses on the sampled
shadow sets ("the estimate of benefits provided by shadow tags to scale
the CPI_llc value linearly"). Cache space then grows in proportion to each
core's slowdown:

    T_i = C_i * Slowdown_i,  then normalise.
"""

from __future__ import annotations

from typing import List

from repro.core.allocation.base import AllocationContext, AllocationPolicy, normalize_targets

__all__ = ["FairnessPolicy"]


class FairnessPolicy(AllocationPolicy):
    """Algorithm 2 of the paper.

    Args:
        occupancy_floor: same reachability floor (in blocks) as PriSM-H.
    """

    name = "prism-fairness"
    requires_perf = True

    def __init__(self, occupancy_floor: float = 1.0) -> None:
        if occupancy_floor < 0:
            raise ValueError(f"occupancy_floor must be >= 0, got {occupancy_floor}")
        self.occupancy_floor = occupancy_floor

    def estimated_slowdowns(self, ctx: AllocationContext) -> List[float]:
        """Per-core ``CPI_shared / CPI_alone`` estimates (>= 1 by clamping)."""
        self._check_perf(ctx)
        slowdowns = []
        for core in range(ctx.num_cores):
            cpi_shared = ctx.perf.cpi(core)
            cpi_llc = ctx.perf.llc_stall_cpi(core)
            if cpi_shared <= 0.0:
                # Core retired nothing this interval; treat as unaffected.
                slowdowns.append(1.0)
                continue
            cpi_ideal = max(0.0, cpi_shared - cpi_llc)
            shared_misses = ctx.shadow.shared_misses[core]
            alone_misses = ctx.shadow.standalone_misses(core)
            if shared_misses > 0:
                scale = alone_misses / shared_misses
            else:
                scale = 1.0
            cpi_alone = cpi_ideal + cpi_llc * scale
            if cpi_alone <= 0.0:
                slowdowns.append(1.0)
                continue
            slowdowns.append(max(1.0, cpi_shared / cpi_alone))
        return slowdowns

    def compute_targets(self, ctx: AllocationContext) -> List[float]:
        slowdowns = self.estimated_slowdowns(ctx)
        floor = self.occupancy_floor / ctx.num_blocks
        targets = [
            max(c, floor) * s for c, s in zip(ctx.occupancy, slowdowns)
        ]
        return normalize_targets(targets)
