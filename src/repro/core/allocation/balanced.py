"""Extension: a tunable throughput/fairness blend.

The paper positions PriSM as a *framework*: "the flexibility to implement
and choose from a variety of performance goals" (Section 3.3). This policy
demonstrates that flexibility beyond the paper's three goals by blending
the hit-maximisation and fairness targets:

    T = (1 - balance) * T_hitmax + balance * T_fairness

``balance = 0`` is PriSM-H, ``balance = 1`` is PriSM-F, and intermediate
values trade aggregate hits against slowdown equality — the knob an
operator actually wants when neither extreme is acceptable.
"""

from __future__ import annotations

from typing import List

from repro.core.allocation.base import AllocationContext, AllocationPolicy, normalize_targets
from repro.core.allocation.fairness import FairnessPolicy
from repro.core.allocation.hitmax import HitMaxPolicy
from repro.util.validate import check_fraction

__all__ = ["BalancedPolicy"]


class BalancedPolicy(AllocationPolicy):
    """Convex combination of PriSM-H and PriSM-F targets.

    Args:
        balance: 0 = pure hit-maximisation, 1 = pure fairness.
        hitmax: the hit-max component (default :class:`HitMaxPolicy`).
        fairness: the fairness component (default :class:`FairnessPolicy`).
    """

    name = "prism-balanced"
    requires_perf = True

    def __init__(
        self,
        balance: float = 0.5,
        hitmax: HitMaxPolicy = None,
        fairness: FairnessPolicy = None,
    ) -> None:
        check_fraction("balance", balance)
        self.balance = balance
        self.hitmax = hitmax if hitmax is not None else HitMaxPolicy()
        self.fairness = fairness if fairness is not None else FairnessPolicy()

    def compute_targets(self, ctx: AllocationContext) -> List[float]:
        if self.balance == 0.0:
            return self.hitmax.compute_targets(ctx)
        if self.balance == 1.0:
            return self.fairness.compute_targets(ctx)
        self._check_perf(ctx)
        hit_targets = self.hitmax.compute_targets(ctx)
        fair_targets = self.fairness.compute_targets(ctx)
        blended = [
            (1.0 - self.balance) * h + self.balance * f
            for h, f in zip(hit_targets, fair_targets)
        ]
        return normalize_targets(blended)
