"""Allocation-policy interface and the counter snapshot it consumes."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cache.shadow import ShadowTagMonitor

__all__ = ["AllocationContext", "AllocationPolicy", "normalize_targets"]


@dataclass
class AllocationContext:
    """Everything an allocation policy may read at the end of an interval.

    Attributes:
        num_cores: cores sharing the cache.
        occupancy: ``C_i`` — current occupancy fractions (sum <= 1; equals 1
            once the cache is warm).
        miss_fractions: ``M_i`` — the just-finished interval's per-core miss
            shares (sum to 1).
        num_blocks: ``N``.
        interval: ``W`` in misses.
        shadow: sampled shadow tags with interval counters.
        perf: performance counters, or ``None`` when the cache runs without
            a timing model. When present it must provide ``cpi(core)``,
            ``ipc(core)`` and ``llc_stall_cpi(core)`` — the counters
            Section 3.3 reads (CPI, IPC, commit-stall cycles from long
            latency loads).
    """

    num_cores: int
    occupancy: List[float]
    miss_fractions: List[float]
    num_blocks: int
    interval: int
    shadow: ShadowTagMonitor
    perf: Optional[object] = None


def normalize_targets(targets: Sequence[float]) -> List[float]:
    """Scale non-negative targets to sum to 1 (uniform if all-zero)."""
    clipped = [max(0.0, t) for t in targets]
    total = sum(clipped)
    if total <= 0.0:
        n = len(clipped)
        return [1.0 / n] * n if n else []
    return [t / total for t in clipped]


class AllocationPolicy(ABC):
    """Base class: map an interval snapshot to target occupancies."""

    name = "base"
    #: Whether the policy needs a timing model (``ctx.perf``).
    requires_perf = False

    @abstractmethod
    def compute_targets(self, ctx: AllocationContext) -> List[float]:
        """Return ``T_i`` (non-negative, summing to 1)."""

    def _check_perf(self, ctx: AllocationContext) -> None:
        if self.requires_perf and ctx.perf is None:
            raise RuntimeError(
                f"{self.name} needs performance counters; run it inside a "
                "MultiCoreSystem (or provide ctx.perf)"
            )
