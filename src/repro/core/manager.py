"""The probabilistic cache manager (Section 3.1).

On every replacement the manager runs the paper's two-step mechanism:

1. **Core-selection** — sample a victim core id from the eviction
   probability distribution ``E`` (a hardware random number generator in
   the paper; a seeded PRNG here).
2. **Victim-identification** — the first block in the baseline replacement
   policy's preference order that belongs to the selected core.

If the selected core holds no block in the accessed set (rare by design —
Fig. 13 quantifies it at 2.5-3.8% of replacements), a fallback picks the
victim among the cores that *are* present. Two fallbacks are provided:

- ``"resample"`` (default): redraw from ``E`` restricted to the cores
  present in the set (renormalised), then evict that core's preferred
  candidate. This keeps realised per-core eviction rates proportional to
  ``E`` even when the not-found rate is non-negligible.
- ``"paper"``: the paper's literal rule — "use the underlying replacement
  policy to select the first replacement candidate that belongs to a core
  with non-zero eviction probability".

At the paper's scale (64K blocks, 2-4% not-found) the two are nearly
indistinguishable; at this repo's 1/64 scale the not-found rate reaches
~10%, where the literal rule biases evictions toward high-occupancy cores
strongly enough to stall Eq. 1's control loop (see DESIGN.md §3). The
fallback count is exported either way for the Fig. 13 reproduction.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import accumulate
from typing import List, Sequence

from repro.util.rng import make_rng

__all__ = ["ProbabilisticCacheManager"]


class ProbabilisticCacheManager:
    """Samples victim cores and identifies victim blocks.

    Args:
        num_cores: number of cores sharing the cache.
        seed: PRNG seed (stands in for the hardware RNG).
        fallback: ``"resample"`` or ``"paper"`` (see module docstring).
    """

    __slots__ = (
        "num_cores",
        "fallback",
        "_rng",
        "_policy",
        "_recency_ordered",
        "_cumulative",
        "victim_select",
        "probabilities",
        "replacements",
        "victim_not_found",
    )

    def __init__(self, num_cores: int, seed: int = 0, fallback: str = "resample") -> None:
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        if fallback not in ("resample", "paper"):
            raise ValueError(f"fallback must be 'resample' or 'paper', got {fallback!r}")
        self.num_cores = num_cores
        self.fallback = fallback
        self._rng = make_rng(seed, "prism-manager")
        self._policy = None
        self._recency_ordered = False
        # The list object is mutated in place by set_distribution so the
        # specialised selector built by bind_policy stays valid across
        # interval re-allocations.
        self._cumulative: List[float] = [1.0]
        #: Resolved per-replacement entry point; bind_policy swaps in a
        #: specialised closure when the policy's order is the recency order.
        self.victim_select = self.victim_block
        self.set_distribution([1.0 / num_cores] * num_cores)
        self.replacements = 0
        #: Replacements where the sampled core had no block in the set.
        self.victim_not_found = 0

    # -- distribution -------------------------------------------------------

    def set_distribution(self, probabilities: Sequence[float]) -> None:
        """Install a new eviction distribution ``E`` (must sum to ~1).

        Raises:
            ValueError: on length mismatch, negative entries, or a sum far
                from 1 (beyond what quantisation error explains).
        """
        if len(probabilities) != self.num_cores:
            raise ValueError(
                f"expected {self.num_cores} probabilities, got {len(probabilities)}"
            )
        if any(p < 0.0 for p in probabilities):
            raise ValueError(f"negative eviction probability in {probabilities!r}")
        total = sum(probabilities)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"eviction probabilities sum to {total}, expected 1")
        self.probabilities: List[float] = list(probabilities)
        cumulative = list(accumulate(probabilities))
        cumulative[-1] = 1.0  # guard against float drift at the top end
        self._cumulative[:] = cumulative  # in place: selectors hold a reference

    def sample_core(self) -> int:
        """Core-selection: draw a victim core id distributed as ``E``."""
        return bisect_right(self._cumulative, self._rng.random())

    # -- replacement ----------------------------------------------------------

    def bind_policy(self, policy) -> None:
        """Fix the baseline policy so :meth:`victim_block` can skip it."""
        self._policy = policy
        self._recency_ordered = bool(getattr(policy, "recency_ordered", False))
        if self._recency_ordered:
            self.victim_select = self._make_recency_select()
        else:
            self.victim_select = self.victim_block

    def _make_recency_select(self):
        """Specialised two-step replacement for recency-ordered policies.

        Hot state is pinned in default arguments (one LOAD_FAST each instead
        of attribute chains); ``_cumulative`` is mutated in place by
        :meth:`set_distribution` so the pinned reference tracks ``E``. The
        RNG is pinned as the object, not its bound method, so tests that
        substitute ``_rng.random`` keep working.
        """

        def select(
            cset,
            core: int = -1,
            _mgr=self,
            _cum=self._cumulative,
            _rng=self._rng,
            _bisect=bisect_right,
        ):
            _mgr.replacements += 1
            target_core = _bisect(_cum, _rng.random())
            # _core_counts is a defaultdict: a plain subscript, no .get.
            if cset._core_counts[target_core]:
                node = cset._tail.prev
                while node.core != target_core:
                    node = node.prev
                return node
            return _mgr._recency_fallback(cset)

        return select

    def select_victim(self, cset, policy):
        """Run the two-step replacement on a full set.

        Args:
            cset: the :class:`~repro.cache.cacheset.CacheSet` needing a victim.
            policy: the baseline replacement policy supplying the
                preference order.

        Returns:
            The victim :class:`~repro.cache.block.CacheBlock`.
        """
        self.bind_policy(policy)
        return self.victim_block(cset)

    def victim_block(self, cset, core: int = -1):
        """Two-step replacement against the bound policy.

        The cache-facing hot entry point (accepts and ignores the requesting
        ``core`` so it can serve as a scheme's resolved ``select_victim``);
        requires :meth:`bind_policy` (or a prior :meth:`select_victim` call).
        """
        self.replacements += 1
        target_core = bisect_right(self._cumulative, self._rng.random())
        # Fast path: when the policy's preference order is exactly the
        # recency order, victim-identification is a direct linked-list walk
        # from the LRU end — O(victim depth), no generator, no list.
        if self._recency_ordered:
            if cset._core_counts[target_core]:
                node = cset._tail.prev
                while node.core != target_core:
                    node = node.prev
                return node
            return self._recency_fallback(cset)
        order = list(self._policy.eviction_candidates(cset))
        for block in order:
            if block.core == target_core:
                return block
        return self._victim_fallback(cset, order)

    def _victim_fallback(self, cset, order):
        """Fallback over a materialised preference order (non-recency)."""
        self.victim_not_found += 1
        if self.fallback == "paper":
            # First candidate from any core with non-zero eviction
            # probability (paper, Section 3.1).
            for block in order:
                if self.probabilities[block.core] > 0.0:
                    return block
            # Every resident core has E == 0: baseline victim.
            return order[0]
        # Resample E restricted to the cores present in this set.
        present = {}
        for block in order:
            p = self.probabilities[block.core]
            if p > 0.0 and block.core not in present:
                present[block.core] = p
        if not present:
            return order[0]
        cores = list(present)
        total = sum(present.values())
        draw = self._rng.random() * total
        acc = 0.0
        chosen = cores[-1]
        for core in cores:
            acc += present[core]
            if draw <= acc:
                chosen = core
                break
        for block in order:
            if block.core == chosen:
                return block
        return order[0]  # unreachable; defensive

    def _recency_fallback(self, cset):
        """The fallback specialised to a recency-ordered preference order.

        Uses the set's incremental per-core counts and intrusive recency
        list in place of materialising ``eviction_candidates``: the resample
        iterates resident cores (in first-residency order) rather than
        blocks, then walks to the chosen core's LRU-most block.
        """
        self.victim_not_found += 1
        probabilities = self.probabilities
        lru = cset._tail.prev
        if self.fallback == "paper":
            head = cset._head
            node = lru
            while node is not head:
                if probabilities[node.core] > 0.0:
                    return node
                node = node.prev
            return lru  # every resident core has E == 0: baseline victim
        # Resample E restricted to the cores present in this set.
        counts = cset._core_counts
        total = 0.0
        for c, n in counts.items():
            if n:
                total += probabilities[c]
        if total <= 0.0:
            return lru
        draw = self._rng.random() * total
        acc = 0.0
        chosen = -1
        for c, n in counts.items():
            if n:
                p = probabilities[c]
                if p > 0.0:
                    acc += p
                    chosen = c
                    if draw <= acc:
                        break
        node = lru
        while node.core != chosen:
            node = node.prev
        return node

    def victim_not_found_rate(self) -> float:
        """Fraction of replacements that hit the fallback path (Fig. 13)."""
        if self.replacements == 0:
            return 0.0
        return self.victim_not_found / self.replacements
