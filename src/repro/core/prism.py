"""PriSM as a pluggable management scheme.

:class:`PrismScheme` wires the three framework components together:

- every ``interval_len`` misses it snapshots occupancy (``C``), interval
  miss fractions (``M``), shadow-tag statistics and (when attached to a
  timing model) performance counters into an
  :class:`~repro.core.allocation.base.AllocationContext`;
- asks its allocation policy for targets ``T``;
- converts targets to eviction probabilities with Eq. 1
  (:func:`repro.core.eviction.derive_eviction_probabilities`), optionally
  quantised to K bits as the hardware would store them;
- installs the distribution in the
  :class:`~repro.core.manager.ProbabilisticCacheManager`, which then serves
  every replacement until the next interval.

Hits behave exactly like the baseline cache — PriSM adds no hit-path
behaviour (a property the paper contrasts with Vantage's promotions).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.cache.shadow import ShadowTagMonitor
from repro.core.allocation.base import AllocationContext, AllocationPolicy
from repro.core.eviction import derive_eviction_probabilities
from repro.core.manager import ProbabilisticCacheManager
from repro.core.quantize import dequantize, quantize_distribution
from repro.partitioning.base import ManagementScheme

__all__ = ["PrismScheme"]


class PrismScheme(ManagementScheme):
    """The PriSM framework over any baseline replacement policy.

    Args:
        policy: allocation policy (PriSM-H / PriSM-F / PriSM-Q /
            extended UCP / any custom :class:`AllocationPolicy`).
        interval_len: ``W`` in misses; ``None`` applies the paper's default
            of one interval per cache's worth of blocks (``W = N``).
        probability_bits: store eviction probabilities as K-bit integers
            (``None`` keeps full float precision — the Fig. 12 reference).
        sample_shift: shadow-tag set sampling (1/2**shift of sets). The
            default samples 1/2 of sets: the scaled caches have 64-128 sets
            versus the paper's 2048-4096, so matching the paper's *sampled
            set count* (not its 1/32 ratio) needs dense sampling.
        seed: seed for the manager's core-selection PRNG.
        fallback: victim-not-found fallback, ``"resample"`` (default) or
            ``"paper"`` — see :mod:`repro.core.manager`.
        bias_correction: subtract the previous interval's realised-minus-
            installed eviction-fraction error from the new distribution
            before installing it. Eq. 1 assumes realised per-core eviction
            rates equal ``E``; at scaled-down set counts the victim-not-
            found fallback (10-20% of replacements versus the paper's
            2.5-3.8%) breaks that assumption, and this one-step integral
            controller restores it. Disable to run the uncorrected model.
    """

    name = "prism"

    def __init__(
        self,
        policy: AllocationPolicy,
        interval_len: Optional[int] = None,
        probability_bits: Optional[int] = None,
        sample_shift: int = 1,
        seed: int = 0,
        fallback: str = "resample",
        bias_correction: bool = True,
    ) -> None:
        super().__init__()
        if probability_bits is not None and probability_bits < 1:
            raise ValueError(f"probability_bits must be >= 1, got {probability_bits}")
        self.policy_alloc = policy
        self._interval_override = interval_len
        self.probability_bits = probability_bits
        self._sample_shift = sample_shift
        self._seed = seed
        self._fallback = fallback
        self.bias_correction = bias_correction
        self._installed: List[float] = []
        self.manager: ProbabilisticCacheManager = None
        self.shadow: ShadowTagMonitor = None
        #: Performance-counter provider; a MultiCoreSystem sets this.
        self.perf = None
        self.targets: List[float] = []
        self.recomputations = 0
        self._prob_sum: List[float] = []
        self._prob_sumsq: List[float] = []

    @property
    def name_with_policy(self) -> str:
        """E.g. ``prism[prism-hitmax]``, for experiment reports."""
        return f"{self.name}[{self.policy_alloc.name}]"

    def on_attach(self) -> None:
        geometry = self.cache.geometry
        num_cores = self.cache.num_cores
        self.interval_len = self._interval_override or geometry.num_blocks
        self.manager = ProbabilisticCacheManager(
            num_cores, seed=self._seed, fallback=self._fallback
        )
        # Hand the cache the manager's victim routine directly — the miss
        # path calls it without a delegation hop through select_victim.
        self.manager.bind_policy(self.cache.policy)
        self._resolved_select = self.manager.victim_select
        self.shadow = ShadowTagMonitor(
            num_cores, geometry.num_sets, geometry.assoc, sample_shift=self._sample_shift
        )
        self.cache.add_monitor(self.shadow)
        self.targets = [1.0 / num_cores] * num_cores
        self._installed = list(self.manager.probabilities)
        self._prob_sum = [0.0] * num_cores
        self._prob_sumsq = [0.0] * num_cores

    # -- replacement: the probabilistic manager runs the show ---------------

    def select_victim(self, cset, core: int):
        return self.manager.select_victim(cset, self.cache.policy)

    # -- interval: run the allocation policy ----------------------------------

    def build_context(self, cache) -> AllocationContext:
        """Snapshot the counters the allocation policy may read."""
        return AllocationContext(
            num_cores=cache.num_cores,
            occupancy=cache.occupancy_fractions(),
            miss_fractions=cache.stats.interval_miss_fractions(),
            num_blocks=cache.geometry.num_blocks,
            interval=self.interval_len,
            shadow=self.shadow,
            perf=self.perf,
        )

    def end_interval(self, cache) -> None:
        ctx = self.build_context(cache)
        self.targets = self.policy_alloc.compute_targets(ctx)
        probabilities = derive_eviction_probabilities(
            ctx.occupancy,
            self.targets,
            ctx.miss_fractions,
            ctx.num_blocks,
            self.interval_len,
        )
        if self.bias_correction:
            probabilities = self._apply_bias_correction(cache, probabilities)
        if self.probability_bits is not None:
            levels = quantize_distribution(probabilities, self.probability_bits)
            probabilities = dequantize(levels, self.probability_bits)
        self.manager.set_distribution(probabilities)
        self._installed = list(probabilities)
        self.recomputations += 1
        for core, p in enumerate(probabilities):
            self._prob_sum[core] += p
            self._prob_sumsq[core] += p * p

    def _apply_bias_correction(self, cache, probabilities: List[float]) -> List[float]:
        """Correct for the gap between installed and realised eviction rates.

        The realised per-core eviction fractions of the finished interval
        (from the cache's eviction counters — hardware the schemes already
        assume) are compared with the distribution that was installed; the
        difference is the fallback-path bias, which is subtracted from the
        next distribution so occupancy converges to the Eq. 1 prediction.
        """
        evictions = cache.stats.interval_evictions
        total = sum(evictions)
        if total <= 0:
            return probabilities
        corrected = [
            max(0.0, p - (evicted / total - installed))
            for p, evicted, installed in zip(probabilities, evictions, self._installed)
        ]
        norm = sum(corrected)
        if norm <= 0.0:
            return probabilities
        return [p / norm for p in corrected]

    # -- reporting (Fig. 11 / Fig. 13) -------------------------------------------

    @property
    def eviction_probabilities(self) -> Sequence[float]:
        """The distribution currently installed in the manager."""
        return tuple(self.manager.probabilities)

    def probability_stats(self) -> List[dict]:
        """Per-core mean and standard deviation of ``E_i`` across intervals."""
        stats = []
        n = self.recomputations
        for core in range(self.cache.num_cores):
            if n == 0:
                stats.append({"mean": 0.0, "std": 0.0, "samples": 0})
                continue
            mean = self._prob_sum[core] / n
            variance = max(0.0, self._prob_sumsq[core] / n - mean * mean)
            stats.append({"mean": mean, "std": math.sqrt(variance), "samples": n})
        return stats

    def victim_not_found_rate(self) -> float:
        """Fraction of replacements that needed the fallback path (Fig. 13)."""
        return self.manager.victim_not_found_rate()
