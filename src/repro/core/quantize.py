"""K-bit fixed-point representation of eviction probabilities.

Section 5.6 ("Bits required for Eviction-probability") shows that storing
``E_i`` as 6-12-bit integers performs like the floating-point reference.
:func:`quantize_distribution` models the hardware's storage: each entry is
rounded to a ``bits``-wide integer numerator over ``2**bits - 1``, then the
sampled distribution is the renormalised dequantised vector.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["quantize_distribution", "dequantize"]


def quantize_distribution(probabilities: Sequence[float], bits: int) -> List[int]:
    """Round a probability vector to ``bits``-wide integer numerators.

    Rounding is to-nearest; a vector whose every entry rounds to zero gets
    its largest entry forced to 1 so the hardware always has someone to
    evict.

    Raises:
        ValueError: for a non-positive bit width or probabilities outside
            [0, 1].
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    scale = (1 << bits) - 1
    levels = []
    for p in probabilities:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability {p!r} outside [0, 1]")
        levels.append(int(round(p * scale)))
    if probabilities and sum(levels) == 0:
        largest = max(range(len(levels)), key=lambda i: probabilities[i])
        levels[largest] = 1
    return levels


def dequantize(levels: Sequence[int], bits: int) -> List[float]:
    """Back to a normalised float distribution (uniform if all-zero)."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    scale = (1 << bits) - 1
    if any(level < 0 or level > scale for level in levels):
        raise ValueError(f"levels {levels!r} outside [0, {scale}]")
    total = sum(levels)
    if total == 0:
        n = len(levels)
        return [1.0 / n] * n if n else []
    return [level / total for level in levels]
