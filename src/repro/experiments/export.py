"""Export experiment results to CSV.

Every experiment's ``run()`` returns a dict whose tabular payloads are
lists of flat row-dicts (usually under ``"rows"``, sometimes nested one
level, e.g. Fig. 3's ``quad``/``thirtytwo`` panels). The exporter
flattens that shape generically so downstream users can plot the paper's
figures with their own tooling:

    from repro.experiments import fig07_vantage
    from repro.experiments.export import export_csv
    from repro.experiments.options import RunOptions

    result = fig07_vantage.run(RunOptions(instructions=200_000))
    export_csv(result, "fig7")          # fig7_quad.csv, fig7_sixteen.csv
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Union

__all__ = ["collect_tables", "export_csv", "rows_to_csv"]


def collect_tables(result: Dict) -> Dict[str, List[dict]]:
    """Find every list-of-row-dicts table in an experiment result.

    Top-level ``rows`` is exported under the experiment id; nested panels
    (dict values that themselves contain ``rows``) are exported under
    their key.
    """
    tables: Dict[str, List[dict]] = {}
    base = result.get("id", "experiment")
    for key, value in result.items():
        if key == "rows" and _is_row_table(value):
            tables[base] = value
        elif isinstance(value, dict) and _is_row_table(value.get("rows")):
            tables[f"{base}_{key}"] = value["rows"]
    return tables


def _is_row_table(value) -> bool:
    return (
        isinstance(value, list)
        and len(value) > 0
        and all(isinstance(row, dict) for row in value)
    )


def rows_to_csv(rows: List[dict], path: Union[str, Path]) -> Path:
    """Write one table (union of row keys as the header)."""
    if not rows:
        raise ValueError("cannot export an empty table")
    path = Path(path)
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def export_csv(result: Dict, prefix: Union[str, Path]) -> List[Path]:
    """Write every table in ``result`` as ``<prefix>[_panel].csv``.

    Returns:
        The written paths (empty if the result holds no row tables).
    """
    prefix = Path(prefix)
    tables = collect_tables(result)
    written = []
    for name, rows in tables.items():
        suffix = "" if name == result.get("id", "experiment") else f"_{name.split('_', 1)[-1]}"
        written.append(rows_to_csv(rows, prefix.with_name(prefix.name + suffix + ".csv")))
    return written
