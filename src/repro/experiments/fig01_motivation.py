"""Figure 1 — Motivation.

(a) How UCP's and PIPP's ANTT gains over LRU, and the way-partitioning
fairness scheme's fairness, evolve as core count grows 4 -> 32 (16 for
fairness). The paper's point: way-granular schemes lose their edge at high
core counts.

(b) UCP's IPC throughput on a fixed-capacity cache whose associativity
grows 16 -> 64 -> 256: higher associativity mimics finer-grained
partitioning, and UCP gains more from it than LRU does.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import (
    Progress,
    compare_schemes,
    format_table,
    geomean_ratio,
    resolve_instructions,
)
from repro.experiments.configs import machine
from repro.experiments.options import experiment_run
from repro.metrics import geomean
from repro.workloads.mixes import mixes_for_cores

__all__ = ["run_scalability", "run_fine_grain", "run", "format_result"]


def run_scalability(
    instructions: Optional[int] = None,
    mixes_per_count: Optional[int] = None,
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    """Fig. 1(a): normalised ANTT of UCP/PIPP and fairness vs core count."""
    rows = []
    for cores in (4, 8, 16, 32):
        config = machine(cores)
        mixes = mixes_for_cores(cores)
        if mixes_per_count:
            mixes = mixes[:mixes_per_count]
        schemes = ["lru", "ucp", "pipp"]
        if cores <= 16:
            schemes.append("fair-waypart")
        results = compare_schemes(
            mixes,
            config,
            schemes,
            instructions=resolve_instructions(instructions, cores),
            seed=seed,
            progress=progress,
        )
        row = {
            "cores": cores,
            "ucp_antt_vs_lru": geomean_ratio(results, "ucp", "lru"),
            "pipp_antt_vs_lru": geomean_ratio(results, "pipp", "lru"),
        }
        if cores <= 16:
            row["fairness_waypart"] = geomean(
                [results[m]["fair-waypart"].fairness for m in mixes]
            )
            row["fairness_lru"] = geomean([results[m]["lru"].fairness for m in mixes])
        rows.append(row)
    return {"id": "fig1a", "rows": rows}


def run_fine_grain(
    instructions: Optional[int] = None,
    mixes_per_count: Optional[int] = 6,
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    """Fig. 1(b): LRU and UCP throughput at 16/64/256-way associativity."""
    rows = []
    for assoc in (16, 64, 256):
        per_assoc = {"assoc": assoc}
        for cores in (4, 8):
            config = machine(cores, assoc=assoc)
            mixes = mixes_for_cores(cores)
            if mixes_per_count:
                mixes = mixes[:mixes_per_count]
            results = compare_schemes(
                mixes,
                config,
                ["lru", "ucp"],
                instructions=resolve_instructions(instructions, cores),
                seed=seed,
                progress=progress,
            )
            per_assoc[f"lru_throughput_{cores}c"] = geomean(
                [results[m]["lru"].throughput for m in mixes]
            )
            per_assoc[f"ucp_throughput_{cores}c"] = geomean(
                [results[m]["ucp"].throughput for m in mixes]
            )
        rows.append(per_assoc)
    return {"id": "fig1b", "rows": rows}


@experiment_run
def run(
    instructions: Optional[int] = None,
    mixes_per_count: Optional[int] = None,
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    """Both panels of Figure 1."""
    return {
        "id": "fig1",
        "scalability": run_scalability(
            instructions=instructions,
            mixes_per_count=mixes_per_count,
            seed=seed,
            progress=progress,
        ),
        "fine_grain": run_fine_grain(
            instructions=instructions,
            mixes_per_count=mixes_per_count or 6,
            seed=seed,
            progress=progress,
        ),
    }


def format_result(result: Dict) -> str:
    """Paper-style text rendering of the Figure 1 data."""
    parts = ["Figure 1(a): scheme performance vs core count (ANTT vs LRU; lower = better)"]
    rows_a = result["scalability"]["rows"]
    headers = ["cores", "UCP/LRU", "PIPP/LRU", "fair(WP)", "fair(LRU)"]
    table_a = [
        [
            r["cores"],
            r["ucp_antt_vs_lru"],
            r["pipp_antt_vs_lru"],
            r.get("fairness_waypart", float("nan")),
            r.get("fairness_lru", float("nan")),
        ]
        for r in rows_a
    ]
    parts.append(format_table(headers, table_a))
    parts.append("Figure 1(b): IPC throughput vs associativity (geomean)")
    rows_b = result["fine_grain"]["rows"]
    headers_b = ["assoc", "LRU-4c", "UCP-4c", "LRU-8c", "UCP-8c"]
    table_b = [
        [
            r["assoc"],
            r["lru_throughput_4c"],
            r["ucp_throughput_4c"],
            r["lru_throughput_8c"],
            r["ucp_throughput_8c"],
        ]
        for r in rows_b
    ]
    parts.append(format_table(headers_b, table_b))
    return "\n".join(parts)
